"""The online assignment engine: warm shard sessions fed by an event stream.

:class:`OnlineAssignmentService` is the driver behind both the asyncio
front end (:mod:`repro.serve.async_front`) and the ``repro-cca serve``
CLI/benchmark replay.  It owns:

* the **live global instance** — one :class:`~repro.core.problem.CCAProblem`
  mutated in place as events arrive (arrivals append customers, departures
  tombstone them to weight 0, capacity events replace providers), so the
  final state can always be re-solved cold for verification;
* a **shard plan** — provider-disjoint districts from
  :func:`~repro.core.shard.plan_shards` (or a single identity shard for
  ``shards=1``, the reference serving mode);
* one **warm session per shard** — a
  :class:`~repro.core.session.Matcher` whose residual network, R-tree and
  potentials persist across delta groups.  Events become session deltas;
  one :meth:`~repro.core.session.Matcher.assign` per *touched* shard per
  group re-solves warm (or falls back to a certified cold solve — both
  fallbacks are counted, never silent).

Correctness contract
--------------------
Each shard session is exact for the sub-instance it owns, so with
``shards=1`` the service is *bit-identical* to a cold
:func:`~repro.core.solve.solve` of the final problem state after any
replay — :meth:`OnlineAssignmentService.verify_against_cold` checks
exactly that, and the bench gate enforces it in CI.  With ``shards > 1``
per-shard optimality still holds but customers are pinned to the shard
they were routed to; the periodic :meth:`reconcile` pass re-homes
boundary customers (same accept-or-revert
:class:`~repro.core.shard.SessionMover` the batch engine uses, monotone
non-increasing in cost) and re-matches stranded customers into shards
with spare capacity, keeping the live matching valid and near-optimal.

Fallback accounting
-------------------
A warm re-solve can degrade to cold two ways, and the service certifies
(counts and exposes) both:

* **hazard colds** — a delta's feasibility check proved the residual
  state unusable *before* the solve (capacity cut below usage, unsafe
  departure/widening, pinned-potential arrival);
* **repair fallbacks** — the warm solve itself surfaced a negative
  reduced cost mid-flight
  (:class:`~repro.flow.graph.NegativeReducedCostError`) and the session
  restarted cold.

``stats.warm_assigns / stats.assigns`` is therefore an honest warm-hit
rate, not a best case.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.faults import FaultPlan
from repro.core.matching import Matching
from repro.core.problem import CCAProblem, Customer, Provider
from repro.core.session import Matcher
from repro.core.shard import (
    SessionMover,
    ShardPlan,
    move_candidates,
    plan_shards,
    route_nearest,
)
from repro.core.solve import solve
from repro.datagen.events import Event, group_events
from repro.experiments.config import PAPER_DEFAULTS
from repro.flow.backend import DEFAULT_BACKEND, BackendLike, get_backend
from repro.geometry.point import Point
from repro.rtree.backend import IndexBackendLike, resolve_index_backend


@dataclass
class EventOutcome:
    """What the service did with one event (returned per request)."""

    seq: int
    kind: str
    ok: bool
    detail: str = ""
    customer_id: Optional[int] = None
    shard: Optional[int] = None
    provider_id: Optional[int] = None
    distance: Optional[float] = None


@dataclass
class GroupResult:
    """One delta group's application: outcomes plus latency bookkeeping."""

    events: int
    outcomes: List[EventOutcome]
    touched_shards: List[int]
    latency_s: float
    reconciled: bool = False


@dataclass
class ServeStats:
    """Service-lifetime counters (see module docstring for the fallback
    taxonomy)."""

    shards: int
    startup_s: float = 0.0
    events: int = 0
    groups: int = 0
    arrivals: int = 0
    departures: int = 0
    capacity_changes: int = 0
    rejected: int = 0
    assigns: int = 0
    warm_assigns: int = 0
    cold_assigns: int = 0
    hazard_colds: int = 0
    repair_fallbacks: int = 0
    reconcile_passes: int = 0
    reconcile_moves: int = 0
    reconcile_rebalanced: int = 0
    reconcile_s: float = 0.0
    # Degraded-operation counters (graceful degradation, not failure):
    # quarantines = dead shard sessions rebuilt cold without touching the
    # other shards' warm state; shed = requests rejected by the async
    # frontend's bounded queue; timeouts = per-request deadlines blown.
    quarantines: int = 0
    quarantine_s: float = 0.0
    shed: int = 0
    timeouts: int = 0
    group_latencies_s: List[float] = field(default_factory=list)

    def latency_percentiles(
        self, qs: Sequence[float] = (50.0, 99.0)
    ) -> Dict[float, float]:
        """Per-group latency percentiles in seconds (0.0 before any group)."""
        if not self.group_latencies_s:
            return {float(q): 0.0 for q in qs}
        values = np.percentile(
            np.asarray(self.group_latencies_s, dtype=float), list(qs)
        )
        return {float(q): float(v) for q, v in zip(qs, values, strict=False)}

    @property
    def events_per_sec(self) -> float:
        """Sustained throughput over time spent applying groups (which
        includes any reconciliation they triggered)."""
        busy = sum(self.group_latencies_s)
        return self.events / busy if busy > 0 else 0.0

    def summary(self) -> Dict[str, object]:
        percentiles = self.latency_percentiles((50.0, 99.0))
        return {
            "shards": self.shards,
            "startup_s": self.startup_s,
            "events": self.events,
            "groups": self.groups,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "capacity_changes": self.capacity_changes,
            "rejected": self.rejected,
            "assigns": self.assigns,
            "warm_assigns": self.warm_assigns,
            "cold_assigns": self.cold_assigns,
            "hazard_colds": self.hazard_colds,
            "repair_fallbacks": self.repair_fallbacks,
            "warm_rate": (self.warm_assigns / self.assigns if self.assigns else 0.0),
            "reconcile_passes": self.reconcile_passes,
            "reconcile_moves": self.reconcile_moves,
            "reconcile_rebalanced": self.reconcile_rebalanced,
            "reconcile_s": self.reconcile_s,
            "quarantines": self.quarantines,
            "quarantine_s": self.quarantine_s,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "latency_p50_ms": percentiles[50.0] * 1e3,
            "latency_p99_ms": percentiles[99.0] * 1e3,
            "events_per_sec": self.events_per_sec,
        }


class OnlineAssignmentService:
    """A long-running assignment service over warm shard sessions.

    Parameters
    ----------
    problem:
        The seeding instance.  The service takes ownership and mutates it
        in place as the live global state (exactly like
        :class:`~repro.core.session.Matcher` does for a single session).
    shards:
        Number of provider-disjoint districts.  ``1`` (default) keeps one
        global warm session and is bit-identical to a cold solve after
        any replay; larger values trade exactness at shard boundaries for
        smaller, faster per-delta re-solves.
    backend / index_backend:
        Flow-kernel and spatial-index selection for every session (see
        :mod:`repro.flow.backend` / :mod:`repro.rtree.backend`).
    delta:
        Shard-planning group diagonal (``shards > 1`` only); defaults to
        the paper's SA sweet spot.
    reconcile_every:
        Run :meth:`reconcile` after every N delta groups (``0`` disables
        periodic reconciliation; ``shards=1`` never needs it).
    max_moves / patience:
        Reconciliation bounds, as in :func:`~repro.core.shard.solve_sharded`.
    plan:
        A prebuilt :class:`~repro.core.shard.ShardPlan` (operator
        districts) overriding ``shards``/``delta``.
    fault_plan:
        A :class:`~repro.core.faults.FaultPlan` whose ``site="session"``
        specs kill warm shard sessions deterministically (the occurrence
        axis is the delta-group index) — chaos testing for the quarantine
        path.  A killed shard is rebuilt cold from the live global state
        without touching the other shards' warm sessions, so replay
        results are unchanged; ``stats.quarantines`` counts the rebuilds.
    """

    def __init__(
        self,
        problem: CCAProblem,
        *,
        shards: int = 1,
        backend: BackendLike = DEFAULT_BACKEND,
        index_backend: Optional[IndexBackendLike] = None,
        delta: Optional[float] = None,
        reconcile_every: int = 8,
        max_moves: int = 32,
        patience: int = 4,
        use_pua: bool = True,
        ann_group_size: Optional[int] = None,
        plan: Optional[ShardPlan] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be positive")
        if ann_group_size is None:
            ann_group_size = PAPER_DEFAULTS["ann_group_size"]
        self.problem = problem
        self.backend = get_backend(backend)
        self.index_backend = resolve_index_backend(problem, index_backend)
        self.reconcile_every = int(reconcile_every)
        self.max_moves = int(max_moves)
        self.patience = int(patience)
        self.use_pua = use_pua
        self.ann_group_size = ann_group_size
        self.fault_plan = fault_plan

        nq = len(problem.providers)
        if plan is None:
            if shards == 1:
                # Identity single-shard plan: local ids == global ids, so
                # the reference serving mode adds zero translation noise.
                plan = ShardPlan.from_provider_lists([list(range(nq))], problem)
            else:
                plan = plan_shards(problem, shards, delta=delta)
        self.plan = plan
        self._qxy = np.array(
            [q.point.coords for q in problem.providers], dtype=float
        ).reshape(nq, 2)
        self._shard_of_provider = np.array(
            [plan.shard_of_provider[i] for i in range(nq)], dtype=np.int64
        )
        # provider registries: global id <-> (shard, local id)
        self._shard_providers: Dict[int, List[int]] = {}
        self._provider_loc: Dict[int, Tuple[int, int]] = {}
        for spec in plan.shards:
            self._shard_providers[spec.index] = list(spec.provider_ids)
            for local, pid in enumerate(spec.provider_ids):
                self._provider_loc[pid] = (spec.index, local)

        # Customer registries, exactly the dict shapes SessionMover
        # mutates in place during reconciliation:
        #   _local_customers[s][local] -> global id   (grows, never shrinks)
        #   _customer_loc[global]      -> (shard, local)   (live customers)
        self._local_customers: Dict[int, List[int]] = {}
        self._customer_loc: Dict[int, Tuple[int, int]] = {}

        started = time.perf_counter()
        routed = route_nearest(problem, plan)
        self.sessions: Dict[int, Matcher] = {}
        for spec in plan.shards:
            bucket = routed[spec.index]
            customer_ids = sorted(bucket)
            sub = CCAProblem.from_arrays(
                [problem.providers[i].point.coords for i in spec.provider_ids],
                [problem.providers[i].capacity for i in spec.provider_ids],
                [problem.customers[j].point.coords for j in customer_ids],
                customer_weights=[bucket[j] for j in customer_ids],
                page_size=problem.page_size,
                buffer_fraction=problem.buffer_fraction,
            )
            session = Matcher(
                sub,
                backend=self.backend,
                index_backend=self.index_backend.name,
                use_pua=use_pua,
                ann_group_size=ann_group_size,
            )
            session.assign()  # the one cold solve per shard, at startup
            self.sessions[spec.index] = session
            self._local_customers[spec.index] = list(customer_ids)
            for local, j in enumerate(customer_ids):
                self._customer_loc[j] = (spec.index, local)
        self.stats = ServeStats(shards=plan.num_shards)
        self.stats.startup_s = time.perf_counter() - started
        self._groups_since_reconcile = 0

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def apply(self, events: Sequence[Event]) -> GroupResult:
        """Apply one delta group: all deltas first, then one warm
        re-assign per touched shard, then (periodically) reconciliation.

        Reconciliation time is charged to the group that triggered it, so
        the reported p99 latency is honest about the maintenance spikes.
        """
        started = time.perf_counter()
        touched: Set[int] = set()
        spare = self._spare_by_shard()
        outcomes: List[EventOutcome] = []
        arrivals: List[Tuple[int, int]] = []  # (outcome index, global id)
        for event in events:
            outcome = self._apply_event(event, touched, spare)
            outcomes.append(outcome)
            if not outcome.ok:
                self.stats.rejected += 1
            elif outcome.kind == "arrive":
                arrivals.append((len(outcomes) - 1, outcome.customer_id))
        # Chaos seam: session-site faults kill warm sessions on a fixed
        # delta-group schedule; marking the shard touched routes it into
        # the quarantine-and-rebuild path below.
        if self.fault_plan is not None:
            group_index = self.stats.groups
            for index, session in self.sessions.items():
                spec = self.fault_plan.match("session", index, group_index)
                if spec is not None:
                    session.mark_dead(
                        f"injected session fault (shard {index}, "
                        f"group {group_index})"
                    )
                    touched.add(index)
        for index in sorted(touched):
            self._assign_shard(index)
        if arrivals:
            self._resolve_arrivals(arrivals, outcomes, touched)
        reconciled = False
        self._groups_since_reconcile += 1
        if (
            self.reconcile_every > 0
            and self.plan.num_shards > 1
            and self._groups_since_reconcile >= self.reconcile_every
        ):
            self.reconcile()
            self._groups_since_reconcile = 0
            reconciled = True
        latency = time.perf_counter() - started
        self.stats.groups += 1
        self.stats.events += len(events)
        self.stats.group_latencies_s.append(latency)
        return GroupResult(
            events=len(events),
            outcomes=outcomes,
            touched_shards=sorted(touched),
            latency_s=latency,
            reconciled=reconciled,
        )

    def run(self, events: Sequence[Event], *, window: float = 0.0) -> ServeStats:
        """Replay a whole stream, grouped under ``window`` (stream time
        units); returns the lifetime stats for convenience."""
        for group in group_events(list(events), window):
            self.apply(group)
        return self.stats

    def _apply_event(
        self, event: Event, touched: Set[int], spare: Dict[int, int]
    ) -> EventOutcome:
        if event.kind == "arrive":
            return self._apply_arrival(event, touched, spare)
        if event.kind == "depart":
            return self._apply_departure(event, touched)
        if event.kind == "capacity":
            return self._apply_capacity(event, touched)
        return EventOutcome(
            seq=event.seq,
            kind=event.kind,
            ok=False,
            detail=f"unknown event kind {event.kind!r}",
        )

    def _apply_arrival(
        self, event: Event, touched: Set[int], spare: Dict[int, int]
    ) -> EventOutcome:
        if event.xy is None:
            return EventOutcome(
                seq=event.seq,
                kind="arrive",
                ok=False,
                detail="arrival without coordinates",
            )
        gid = len(self.problem.customers)
        if event.ref is not None and event.ref != gid:
            # Generated streams carry the positional ref the arrival will
            # occupy; a mismatch means the stream is being replayed
            # against the wrong state — refuse rather than mis-id.
            raise ValueError(
                f"arrival ref {event.ref} does not match the next "
                f"customer id {gid}; stream and service state disagree"
            )
        weight = int(event.weight)
        if weight <= 0:
            return EventOutcome(
                seq=event.seq,
                kind="arrive",
                ok=False,
                detail="arrival weight must be positive",
            )
        shard = self._route_arrival(event.xy, spare)
        local = self.sessions[shard].add_customer(event.xy, weight)
        self._local_customers[shard].append(gid)
        self._customer_loc[gid] = (shard, local)
        # Mirror into the live global instance (positional id = gid).
        self.problem.customers.append(_global_customer(gid, event.xy, weight))
        touched.add(shard)
        spare[shard] = max(0, spare.get(shard, 0) - weight)
        self.stats.arrivals += 1
        return EventOutcome(
            seq=event.seq,
            kind="arrive",
            ok=True,
            customer_id=gid,
            shard=shard,
        )

    def _apply_departure(self, event: Event, touched: Set[int]) -> EventOutcome:
        ref = event.ref
        if ref is None or not 0 <= ref < len(self.problem.customers):
            return EventOutcome(
                seq=event.seq,
                kind="depart",
                ok=False,
                detail=f"unknown customer {ref}",
            )
        location = self._customer_loc.get(ref)
        if location is None or self.problem.customers[ref].weight == 0:
            return EventOutcome(
                seq=event.seq,
                kind="depart",
                ok=False,
                detail=f"customer {ref} is not live",
            )
        shard, local = location
        self.sessions[shard].remove_customer(local)
        old = self.problem.customers[ref]
        self.problem.customers[ref] = Customer(old.point, 0)
        del self._customer_loc[ref]
        touched.add(shard)
        self.stats.departures += 1
        return EventOutcome(
            seq=event.seq,
            kind="depart",
            ok=True,
            customer_id=ref,
            shard=shard,
        )

    def _apply_capacity(self, event: Event, touched: Set[int]) -> EventOutcome:
        pid = event.provider_id
        if pid is None or not 0 <= pid < len(self.problem.providers):
            return EventOutcome(
                seq=event.seq,
                kind="capacity",
                ok=False,
                detail=f"unknown provider {pid}",
            )
        if event.capacity is None or event.capacity < 0:
            return EventOutcome(
                seq=event.seq,
                kind="capacity",
                ok=False,
                detail="capacity must be non-negative",
            )
        capacity = int(event.capacity)
        shard, local = self._provider_loc[pid]
        self.sessions[shard].set_provider_capacity(local, capacity)
        old = self.problem.providers[pid]
        self.problem.providers[pid] = Provider(old.point, capacity)
        touched.add(shard)
        self.stats.capacity_changes += 1
        return EventOutcome(
            seq=event.seq,
            kind="capacity",
            ok=True,
            provider_id=pid,
            shard=shard,
        )

    def _route_arrival(self, xy: Sequence[float], spare: Dict[int, int]) -> int:
        """Shard of the nearest provider whose shard still has (estimated)
        spare capacity; falls back to the globally nearest provider's
        shard when everything is full (ties break to the lowest provider
        id, matching :func:`~repro.core.shard.route_nearest`)."""
        d = np.hypot(self._qxy[:, 0] - float(xy[0]), self._qxy[:, 1] - float(xy[1]))
        order = np.argsort(d, kind="stable")
        for idx in order:
            shard = int(self._shard_of_provider[idx])
            if spare.get(shard, 0) > 0:
                return shard
        return int(self._shard_of_provider[order[0]])

    def _assign_shard(self, index: int) -> None:
        session = self.sessions[index]
        if session.is_dead:
            self._quarantine(index, session.death_reason)
            return
        eligible = session.is_warm
        try:
            session.assign()
        # repro-lint: disable=RPR008 -- deliberate quarantine seam: the
        # failure is recorded on the session and surfaced via degradation
        # stats; serving must outlive any single shard's divergence
        except Exception as exc:
            # The session normally marks itself dead on the way out (see
            # Matcher.assign); mark it here too (idempotent) so the
            # abandoned object is dead no matter where the exception
            # originated.  Degrade gracefully — rebuild this one shard
            # cold; every other shard keeps its warm state.
            session.mark_dead(f"{type(exc).__name__}: {exc}")
            self._quarantine(index, session.death_reason)
            return
        self.stats.assigns += 1
        if not eligible:
            self.stats.hazard_colds += 1
        if session.last_was_warm:
            self.stats.warm_assigns += 1
        else:
            self.stats.cold_assigns += 1
            if eligible:
                # The warm solve itself hit a NegativeReducedCostError and
                # the session certified a restart-from-scratch.
                self.stats.repair_fallbacks += 1

    def _quarantine(self, index: int, reason: str) -> None:
        """Rebuild one shard's session cold from the live global state.

        The replacement sub-instance preserves the shard's *positional*
        local ids exactly — every global id the shard ever held appears
        at its historic local position, with its live weight iff the
        customer registry still maps it here and weight 0 (tombstone)
        otherwise — so ``_local_customers``/``_customer_loc`` stay valid
        and a cold solve of the rebuilt instance is semantically
        identical to the dead session's state.  Quarantine assigns are
        counted separately (``quarantines``/``quarantine_s``), not as
        service assigns: the warm-rate and fallback invariants describe
        healthy operation.
        """
        started = time.perf_counter()
        provider_ids = self._shard_providers[index]
        xy: List[Tuple[float, float]] = []
        weights: List[int] = []
        for local, gid in enumerate(self._local_customers[index]):
            customer = self.problem.customers[gid]
            xy.append(customer.point.coords)
            live = self._customer_loc.get(gid) == (index, local)
            weights.append(customer.weight if live else 0)
        sub = CCAProblem.from_arrays(
            [self.problem.providers[i].point.coords for i in provider_ids],
            [self.problem.providers[i].capacity for i in provider_ids],
            xy,
            customer_weights=weights,
            page_size=self.problem.page_size,
            buffer_fraction=self.problem.buffer_fraction,
        )
        session = Matcher(
            sub,
            backend=self.backend,
            index_backend=self.index_backend.name,
            use_pua=self.use_pua,
            ann_group_size=self.ann_group_size,
        )
        session.assign()
        self.sessions[index] = session
        self.stats.quarantines += 1
        self.stats.quarantine_s += time.perf_counter() - started

    def _resolve_arrivals(self, arrivals, outcomes, touched) -> None:
        """Fill each accepted arrival's (provider, distance) from the
        freshly re-assigned sessions; unmatched arrivals keep None."""
        pair_of: Dict[int, Tuple[int, float]] = {}
        for index in sorted(touched):
            provider_ids = self._shard_providers[index]
            mapping = self._local_customers[index]
            for i_local, j_local, dist in self.sessions[index].current_pairs():
                pair_of[mapping[j_local]] = (provider_ids[i_local], dist)
        for outcome_index, gid in arrivals:
            hit = pair_of.get(gid)
            if hit is not None:
                outcomes[outcome_index].provider_id = hit[0]
                outcomes[outcome_index].distance = hit[1]

    def _spare_by_shard(self) -> Dict[int, int]:
        return {
            index: max(0, int(session.net.spare_capacity()))
            for index, session in self.sessions.items()
        }

    # ------------------------------------------------------------------
    # reconciliation
    # ------------------------------------------------------------------
    def reconcile(self) -> Dict[str, int]:
        """One maintenance pass over shard boundaries.

        First stranded unmatched customers are re-homed into the nearest
        shard with spare capacity (restores maximality that per-shard
        routing can lose); then the batch engine's candidate search +
        accept-or-revert mover (:class:`~repro.core.shard.SessionMover`)
        re-homes boundary customers whose nearest cross-shard provider is
        closer — monotone non-increasing in cost, size-preserving.
        """
        started = time.perf_counter()
        rebalanced = moves = attempted = 0
        if self.plan.num_shards > 1:
            rebalanced = self._rebalance_unmatched()
            if self.max_moves > 0:
                assigned, unmatched, worst = self._assignment_view()
                candidates = move_candidates(
                    self.problem,
                    self.plan,
                    assigned,
                    unmatched,
                    worst,
                    self.max_moves,
                )
                if candidates:
                    mover = SessionMover(
                        self.problem,
                        self.sessions,
                        self._local_customers,
                        self._customer_loc,
                        assigned,
                    )
                    moves, attempted = mover.run(candidates, self.patience)
        self.stats.reconcile_passes += 1
        self.stats.reconcile_moves += moves
        self.stats.reconcile_rebalanced += rebalanced
        self.stats.reconcile_s += time.perf_counter() - started
        return {
            "rebalanced": rebalanced,
            "moves": moves,
            "attempted": attempted,
        }

    def _assignment_view(self):
        """(assigned, unmatched, worst_matched) in the exact shapes
        :func:`~repro.core.shard.move_candidates` consumes — global ids,
        unit-weight customers only."""
        assigned: Dict[int, Tuple[int, float]] = {}
        matched_units: Dict[int, int] = {}
        worst: Dict[int, float] = {}
        for index, session in self.sessions.items():
            provider_ids = self._shard_providers[index]
            mapping = self._local_customers[index]
            for i_local, j_local, dist in session.current_pairs():
                gid = mapping[j_local]
                matched_units[gid] = matched_units.get(gid, 0) + 1
                if self.problem.customers[gid].weight == 1:
                    assigned[gid] = (provider_ids[i_local], dist)
                worst[index] = max(worst.get(index, 0.0), dist)
        unmatched: Dict[int, int] = {}
        for gid, (shard, _local) in self._customer_loc.items():
            if (
                self.problem.customers[gid].weight == 1
                and matched_units.get(gid, 0) == 0
            ):
                unmatched[gid] = shard
        return assigned, unmatched, worst

    def _rebalance_unmatched(self) -> int:
        """Move fully-unmatched unit customers into the nearest shard with
        spare capacity.  The mover deliberately never does this (growing
        |M| cannot pass its cost-only accept test), but a *service* must:
        an arrival stranded in a full shard while a neighbor has spare
        capacity is lost demand."""
        _, unmatched, _ = self._assignment_view()
        if not unmatched:
            return 0
        spare = self._spare_by_shard()
        touched: Set[int] = set()
        moved = 0
        for gid in sorted(unmatched):
            if not any(v > 0 for v in spare.values()):
                break
            source = unmatched[gid]
            xy = self.problem.customers[gid].point.coords
            d = np.hypot(self._qxy[:, 0] - xy[0], self._qxy[:, 1] - xy[1])
            target = None
            for idx in np.argsort(d, kind="stable"):
                shard = int(self._shard_of_provider[idx])
                if shard != source and spare.get(shard, 0) > 0:
                    target = shard
                    break
            if target is None:
                continue
            shard, local = self._customer_loc[gid]
            # Removing an unmatched customer releases no flow, so the
            # source session needs no re-assign.
            self.sessions[shard].remove_customer(local)
            new_local = self.sessions[target].add_customer(xy)
            self._local_customers[target].append(gid)
            self._customer_loc[gid] = (target, new_local)
            spare[target] -= 1
            touched.add(target)
            moved += 1
        for index in sorted(touched):
            self._assign_shard(index)
        return moved

    # ------------------------------------------------------------------
    # inspection & verification
    # ------------------------------------------------------------------
    def live_pairs(self) -> List[Tuple[int, int, float]]:
        """The current global matching as (provider, customer, distance)
        triples in global ids."""
        pairs: List[Tuple[int, int, float]] = []
        for index in sorted(self.sessions):
            provider_ids = self._shard_providers[index]
            mapping = self._local_customers[index]
            pairs.extend(
                (provider_ids[i_local], mapping[j_local], dist)
                for i_local, j_local, dist in self.sessions[
                    index
                ].current_pairs()
            )
        return pairs

    def live_matching(self) -> Matching:
        return Matching(sorted(self.live_pairs()))

    def live_cost(self) -> float:
        return sum(session.net.matching_cost() for session in self.sessions.values())

    def final_problem(self) -> CCAProblem:
        """A fresh instance of the live global state (tombstones kept as
        weight-0 customers so positional ids line up with the service)."""
        return CCAProblem.from_arrays(
            [q.point.coords for q in self.problem.providers],
            [q.capacity for q in self.problem.providers],
            [p.point.coords for p in self.problem.customers],
            customer_weights=[p.weight for p in self.problem.customers],
            page_size=self.problem.page_size,
            buffer_fraction=self.problem.buffer_fraction,
            index_backend=self.index_backend.name,
        )

    def verify_against_cold(self) -> Dict[str, object]:
        """Cold-solve the final problem state and compare bit-for-bit.

        The cold reference runs the same solver configuration a session's
        own cold fallback uses (IDA, fast path off), on the same flow and
        index backends.  ``identical`` requires the exact same sorted
        (provider, customer, distance) triples — float equality included.
        With ``shards > 1`` boundary pinning makes strict identity
        unattainable in general; the report still carries both costs so
        callers can assert a bound instead.
        """
        cold = solve(
            self.final_problem(),
            "ida",
            use_pua=self.use_pua,
            ann_group_size=self.ann_group_size,
            use_fast_path=False,
            backend=self.backend,
            index_backend=self.index_backend.name,
        )
        live = sorted(self.live_pairs())
        reference = sorted(cold.pairs)
        identical = live == reference
        return {
            "identical": identical,
            "live_size": len(live),
            "cold_size": len(reference),
            "live_cost": sum(d for _, _, d in live),
            "cold_cost": cold.cost,
        }

    def __repr__(self) -> str:
        return (
            f"OnlineAssignmentService(shards={self.plan.num_shards}, "
            f"|Q|={len(self.problem.providers)}, "
            f"|P|={len(self.problem.customers)}, "
            f"events={self.stats.events})"
        )


def _global_customer(gid: int, xy: Sequence[float], weight: int) -> Customer:
    return Customer(Point(gid, (float(xy[0]), float(xy[1]))), int(weight))
