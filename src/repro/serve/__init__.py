"""The online assignment service (serving layer).

Batch CCA solvers answer "match everything now"; a dispatch-style service
answers "a customer just arrived — who serves them?" thousands of times a
minute.  This package wires the two halves the repository already has —
warm-start :class:`~repro.core.session.Matcher` sessions (PR 1) and the
provider-disjoint shard decomposition (PR 2) — into a long-running
engine:

* :mod:`repro.serve.engine` — :class:`OnlineAssignmentService`: keeps one
  warm session per shard alive, routes each event of a stream
  (:mod:`repro.datagen.events`) to its shard, applies batched delta
  groups, runs periodic boundary reconciliation, and certifies every
  fallback to a cold solve.
* :mod:`repro.serve.async_front` — :class:`AsyncAssignmentFrontend`: an
  asyncio front end that coalesces concurrent requests into delta groups
  under a batching window and resolves each request with its assignment.

See ``docs/SERVING.md`` for the operator-facing guide and
``docs/ARCHITECTURE.md`` for where this layer sits in the system.
"""

from repro.serve.async_front import AsyncAssignmentFrontend
from repro.serve.engine import (
    EventOutcome,
    GroupResult,
    OnlineAssignmentService,
    ServeStats,
)

__all__ = [
    "OnlineAssignmentService",
    "AsyncAssignmentFrontend",
    "EventOutcome",
    "GroupResult",
    "ServeStats",
]
