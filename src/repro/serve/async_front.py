"""Asyncio front end: concurrent requests coalesced into delta groups.

The engine (:mod:`repro.serve.engine`) is synchronous and fastest when
deltas arrive in groups — one warm re-assign per touched shard amortizes
across every delta in the group.  :class:`AsyncAssignmentFrontend` turns
that batch-shaped core into a request/response service:

* each ``await front.arrive(xy)`` / ``depart(id)`` / ``set_capacity(...)``
  enqueues one event and parks the caller on a future;
* pending events flush as one delta group when either the **batching
  window** (``window_s`` after the group's first event) elapses or the
  group reaches ``max_batch`` events;
* the group runs in a single worker thread (the engine is not
  thread-safe; one thread serializes it without blocking the event
  loop), and every parked caller is resolved with its own
  :class:`~repro.serve.engine.EventOutcome` — arrivals learn their
  provider and distance.

The window is the latency/throughput dial: ``0`` flushes every request
alone (lowest latency, most re-solves), larger windows raise per-request
latency by at most ``window_s`` while letting one warm re-solve serve
many requests.  ``docs/SERVING.md`` discusses how to pick it.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.datagen.events import Event
from repro.serve.engine import (
    EventOutcome,
    GroupResult,
    OnlineAssignmentService,
)


class AsyncAssignmentFrontend:
    """Coalesce concurrent asyncio requests into engine delta groups.

    Parameters
    ----------
    service:
        The engine to drive.  The frontend owns its execution: all
        ``apply`` calls go through one single-thread executor.
    window_s:
        Batching window in seconds — a group flushes this long after its
        first pending event (0 flushes immediately after every submit).
    max_batch:
        Hard group-size cap; a full group flushes without waiting.
    """

    def __init__(
        self,
        service: OnlineAssignmentService,
        *,
        window_s: float = 0.005,
        max_batch: int = 256,
    ):
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.service = service
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._pending: List[Tuple[Event, asyncio.Future]] = []
        self._timer: Optional[asyncio.Task] = None
        self._flush_lock = asyncio.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-engine"
        )
        self._seq = 0
        self._t0: Optional[float] = None
        self._closed = False
        self.requests = 0
        self.groups_flushed = 0

    # ------------------------------------------------------------------
    # request API
    # ------------------------------------------------------------------
    async def arrive(
        self, xy: Sequence[float], weight: int = 1
    ) -> EventOutcome:
        """A customer arrives; resolves with its assignment (provider and
        distance when matched, ``provider_id=None`` when capacity ran
        out)."""
        return await self.submit(
            self._event(
                "arrive",
                xy=(float(xy[0]), float(xy[1])),
                weight=int(weight),
            )
        )

    async def depart(self, customer_id: int) -> EventOutcome:
        """A customer leaves; their matched units are released."""
        return await self.submit(self._event("depart", ref=int(customer_id)))

    async def set_capacity(
        self, provider_id: int, capacity: int
    ) -> EventOutcome:
        """A provider's capacity changes."""
        return await self.submit(
            self._event(
                "capacity",
                provider_id=int(provider_id),
                capacity=int(capacity),
            )
        )

    async def submit(self, event: Event) -> EventOutcome:
        """Enqueue one event; resolves when its delta group is applied."""
        if self._closed:
            raise RuntimeError("frontend is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((event, future))
        self.requests += 1
        if len(self._pending) >= self.max_batch or self.window_s == 0:
            await self._flush()
        elif self._timer is None or self._timer.done():
            self._timer = asyncio.create_task(self._flush_after())
        return await future

    async def aclose(self) -> None:
        """Flush anything pending and release the worker thread."""
        self._closed = True
        if self._timer is not None and not self._timer.done():
            self._timer.cancel()
        await self._flush()
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncAssignmentFrontend":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _event(self, kind: str, **fields) -> Event:
        loop = asyncio.get_running_loop()
        if self._t0 is None:
            self._t0 = loop.time()
        seq = self._seq
        self._seq += 1
        return Event(
            seq=seq, time=loop.time() - self._t0, kind=kind, **fields
        )

    async def _flush_after(self) -> None:
        try:
            await asyncio.sleep(self.window_s)
        except asyncio.CancelledError:
            return  # a size-triggered flush already took the batch
        await self._flush()

    async def _flush(self) -> None:
        async with self._flush_lock:
            batch = self._pending
            self._pending = []
            if not batch:
                return
            if (
                self._timer is not None
                and not self._timer.done()
                and asyncio.current_task() is not self._timer
            ):
                self._timer.cancel()
            events = [event for event, _ in batch]
            loop = asyncio.get_running_loop()
            try:
                result: GroupResult = await loop.run_in_executor(
                    self._executor, self.service.apply, events
                )
            except Exception as exc:  # engine refused the group
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            self.groups_flushed += 1
            for (_, future), outcome in zip(batch, result.outcomes):
                if not future.done():
                    future.set_result(outcome)
