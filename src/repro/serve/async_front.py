"""Asyncio front end: concurrent requests coalesced into delta groups.

The engine (:mod:`repro.serve.engine`) is synchronous and fastest when
deltas arrive in groups — one warm re-assign per touched shard amortizes
across every delta in the group.  :class:`AsyncAssignmentFrontend` turns
that batch-shaped core into a request/response service:

* each ``await front.arrive(xy)`` / ``depart(id)`` / ``set_capacity(...)``
  enqueues one event and parks the caller on a future;
* pending events flush as one delta group when either the **batching
  window** (``window_s`` after the group's first event) elapses or the
  group reaches ``max_batch`` events;
* the group runs in a single worker thread (the engine is not
  thread-safe; one thread serializes it without blocking the event
  loop), and every parked caller is resolved with its own
  :class:`~repro.serve.engine.EventOutcome` — arrivals learn their
  provider and distance.

The window is the latency/throughput dial: ``0`` flushes every request
alone (lowest latency, most re-solves), larger windows raise per-request
latency by at most ``window_s`` while letting one warm re-solve serve
many requests.  ``docs/SERVING.md`` discusses how to pick it.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.datagen.events import Event
from repro.serve.engine import EventOutcome, GroupResult, OnlineAssignmentService


class Overloaded(RuntimeError):
    """The frontend shed this request: its in-flight backlog is at
    ``max_queue``.  Carries a machine-usable ``retry_after_s`` hint (the
    batching window plus the engine's latest group latency) and the
    shedding ``reason`` — reject-with-reason, never unbounded buffering.
    """

    def __init__(self, reason: str, retry_after_s: float):
        super().__init__(f"{reason} (retry after {retry_after_s:.3f}s)")
        self.reason = reason
        self.retry_after_s = retry_after_s


class AsyncAssignmentFrontend:
    """Coalesce concurrent asyncio requests into engine delta groups.

    Parameters
    ----------
    service:
        The engine to drive.  The frontend owns its execution: all
        ``apply`` calls go through one single-thread executor.
    window_s:
        Batching window in seconds — a group flushes this long after its
        first pending event (0 flushes immediately after every submit).
    max_batch:
        Hard group-size cap; a full group flushes without waiting.
    max_queue:
        Load-shedding bound on *in-flight* requests (submitted, not yet
        resolved — the honest backlog, counted across pending and
        currently-flushing groups).  A request arriving at the bound is
        rejected with :class:`Overloaded` instead of buffered without
        limit; ``0`` disables shedding.  Shed requests are counted on
        ``service.stats.shed``.
    request_timeout_s:
        Per-request deadline on the *caller's wait*.  A request that
        blows it raises ``asyncio.TimeoutError`` (counted on
        ``service.stats.timeouts``); its event is already enqueued and
        will still be applied — the engine's state stays consistent, only
        the caller stops waiting.  ``None`` disables deadlines.
    """

    def __init__(
        self,
        service: OnlineAssignmentService,
        *,
        window_s: float = 0.005,
        max_batch: int = 256,
        max_queue: int = 0,
        request_timeout_s: Optional[float] = None,
    ):
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative (0 = off)")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive (or None)")
        self.service = service
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self.request_timeout_s = request_timeout_s
        self._pending: List[Tuple[Event, asyncio.Future]] = []
        self._timer: Optional[asyncio.Task] = None
        self._flush_lock = asyncio.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-engine"
        )
        self._seq = 0
        self._t0: Optional[float] = None
        self._closed = False
        self._backlog = 0  # in-flight: submitted, future not yet resolved
        self.requests = 0
        self.groups_flushed = 0
        self.shed = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # request API
    # ------------------------------------------------------------------
    async def arrive(self, xy: Sequence[float], weight: int = 1) -> EventOutcome:
        """A customer arrives; resolves with its assignment (provider and
        distance when matched, ``provider_id=None`` when capacity ran
        out)."""
        return await self.submit(
            self._event("arrive", xy=(float(xy[0]), float(xy[1])), weight=int(weight),)
        )

    async def depart(self, customer_id: int) -> EventOutcome:
        """A customer leaves; their matched units are released."""
        return await self.submit(self._event("depart", ref=int(customer_id)))

    async def set_capacity(self, provider_id: int, capacity: int) -> EventOutcome:
        """A provider's capacity changes."""
        return await self.submit(
            self._event(
                "capacity",
                provider_id=int(provider_id),
                capacity=int(capacity),
            )
        )

    async def submit(self, event: Event) -> EventOutcome:
        """Enqueue one event; resolves when its delta group is applied.

        Raises :class:`Overloaded` when the in-flight backlog is at
        ``max_queue`` and ``asyncio.TimeoutError`` when the request's
        ``request_timeout_s`` deadline passes first (the event itself
        still lands — see the class docstring).
        """
        if self._closed:
            raise RuntimeError("frontend is closed")
        if self.max_queue and self._backlog >= self.max_queue:
            self.shed += 1
            self.service.stats.shed += 1
            raise Overloaded(
                f"in-flight backlog at max_queue={self.max_queue}",
                self._retry_after_s(),
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((event, future))
        self._backlog += 1
        self.requests += 1
        future.add_done_callback(self._on_resolved)
        if len(self._pending) >= self.max_batch or self.window_s == 0:
            await self._flush()
        elif self._timer is None or self._timer.done():
            self._timer = asyncio.create_task(self._flush_after())
        if self.request_timeout_s is None:
            return await future
        try:
            return await asyncio.wait_for(
                asyncio.shield(future), self.request_timeout_s
            )
        except asyncio.TimeoutError:
            # The caller stops waiting; the event is already queued (or
            # applied) and the future will still resolve, keeping the
            # backlog accounting straight via the done callback.
            self.timeouts += 1
            self.service.stats.timeouts += 1
            raise

    def _on_resolved(self, _future: asyncio.Future) -> None:
        self._backlog -= 1

    def _retry_after_s(self) -> float:
        """Honest hint: one batching window plus the engine's latest
        group latency (how long the current wave needs to drain)."""
        latencies = self.service.stats.group_latencies_s
        recent = latencies[-1] if latencies else 0.0
        return self.window_s + recent

    async def aclose(self) -> None:
        """Flush anything pending and release the worker thread."""
        self._closed = True
        if self._timer is not None and not self._timer.done():
            self._timer.cancel()
        await self._flush()
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncAssignmentFrontend":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _event(self, kind: str, **fields) -> Event:
        loop = asyncio.get_running_loop()
        if self._t0 is None:
            self._t0 = loop.time()
        seq = self._seq
        self._seq += 1
        return Event(seq=seq, time=loop.time() - self._t0, kind=kind, **fields)

    async def _flush_after(self) -> None:
        try:
            await asyncio.sleep(self.window_s)
        except asyncio.CancelledError:
            return  # a size-triggered flush already took the batch
        await self._flush()

    async def _flush(self) -> None:
        async with self._flush_lock:
            batch = self._pending
            self._pending = []
            if not batch:
                return
            if (
                self._timer is not None
                and not self._timer.done()
                and asyncio.current_task() is not self._timer
            ):
                self._timer.cancel()
            events = [event for event, _ in batch]
            loop = asyncio.get_running_loop()
            try:
                result: GroupResult = await loop.run_in_executor(
                    self._executor, self.service.apply, events
                )
            # repro-lint: disable=RPR008 -- not swallowed: the exception is
            # re-delivered to every waiter through future.set_exception
            except Exception as exc:  # engine refused the group
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            self.groups_flushed += 1
            for (_, future), outcome in zip(batch, result.outcomes, strict=False):
                if not future.done():
                    future.set_result(outcome)
