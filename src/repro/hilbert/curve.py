"""2-D Hilbert curve encoding/decoding.

Classic iterative rotate-and-fold implementation.  ``hilbert_key`` maps a
point in a bounded world to its curve position so nearby points receive
nearby keys — the property the paper exploits for provider grouping.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.geometry.point import Point

DEFAULT_ORDER = 16


def _rotate(n: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Rotate/flip a quadrant so the curve orientation is preserved."""
    if ry == 0:
        if rx == 1:
            x = n - 1 - x
            y = n - 1 - y
        x, y = y, x
    return x, y


def hilbert_xy2d(order: int, x: int, y: int) -> int:
    """Map grid cell ``(x, y)`` on a ``2^order`` grid to its curve index."""
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise ValueError(f"cell ({x}, {y}) outside 2^{order} grid")
    d = 0
    s = n // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


def hilbert_d2xy(order: int, d: int) -> Tuple[int, int]:
    """Inverse of :func:`hilbert_xy2d`."""
    n = 1 << order
    if not (0 <= d < n * n):
        raise ValueError(f"index {d} outside curve of order {order}")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def hilbert_key(
    coords: Sequence[float],
    world_lo: Sequence[float],
    world_hi: Sequence[float],
    order: int = DEFAULT_ORDER,
) -> int:
    """Curve position of a real-valued 2-D point within a bounding world.

    Coordinates are quantized onto a ``2^order`` grid.  Points outside the
    world are clamped, which keeps the ordering total.
    """
    if len(coords) < 2:
        raise ValueError("hilbert_key requires 2-D coordinates")
    n = 1 << order
    cells = []
    for c, lo, hi in zip(coords[:2], world_lo[:2], world_hi[:2], strict=False):
        span = hi - lo
        if span <= 0:
            cells.append(0)
            continue
        cell = int((c - lo) / span * n)
        cells.append(min(max(cell, 0), n - 1))
    return hilbert_xy2d(order, cells[0], cells[1])


def hilbert_sort(
    points: Iterable[Point],
    world_lo: Sequence[float],
    world_hi: Sequence[float],
    order: int = DEFAULT_ORDER,
) -> List[Point]:
    """Return ``points`` sorted by Hilbert curve position (ties by id)."""
    return sorted(
        points,
        key=lambda p: (hilbert_key(p.coords, world_lo, world_hi, order), p.pid),
    )
