"""Hilbert space-filling curve.

The paper uses Hilbert ordering twice: to group service providers for the
incremental all-nearest-neighbor search (Section 3.4.2) and to order
providers in SA partitioning (Section 4.1).
"""

from repro.hilbert.curve import hilbert_d2xy, hilbert_key, hilbert_sort, hilbert_xy2d

__all__ = ["hilbert_d2xy", "hilbert_xy2d", "hilbert_key", "hilbert_sort"]
