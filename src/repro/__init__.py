"""repro — Capacity Constrained Assignment in Spatial Databases.

A production-grade reproduction of U, Yiu, Mouratidis & Mamoulis (SIGMOD
2008).  Given customers ``P`` and capacitated service providers ``Q``, find
the maximum-size matching of minimum total Euclidean distance.

Quickstart::

    from repro import CCAProblem, solve

    problem = CCAProblem.from_arrays(
        provider_xy=[(10, 10), (90, 90)],
        provider_capacities=[2, 2],
        customer_xy=[(12, 9), (11, 14), (88, 92), (95, 85)],
    )
    matching = solve(problem, method="ida")
    print(matching.cost, matching.pairs)

Exact solvers: ``sspa`` (baseline), ``ria``, ``nia``, ``ida``.
Approximate: ``san``/``sae`` (provider grouping), ``can``/``cae`` (customer
grouping), ``sm`` (greedy).  See :mod:`repro.experiments` for the paper's
full evaluation suite.
"""

from repro.core.matching import Matching, SolverStats
from repro.core.problem import CCAProblem, Customer, Provider
from repro.core.session import Matcher
from repro.core.shard import ShardPlan, plan_shards, solve_sharded
from repro.core.solve import APPROX_METHODS, EXACT_METHODS, solve
from repro.flow.backend import BACKENDS, DEFAULT_BACKEND, get_backend
from repro.geometry.pointset import PointSet
from repro.rtree.backend import DEFAULT_INDEX_BACKEND, INDEX_BACKENDS, get_index_backend

__version__ = "1.2.0"

__all__ = [
    "CCAProblem",
    "Provider",
    "Customer",
    "Matching",
    "SolverStats",
    "Matcher",
    "solve",
    "ShardPlan",
    "plan_shards",
    "solve_sharded",
    "EXACT_METHODS",
    "APPROX_METHODS",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "get_backend",
    "PointSet",
    "INDEX_BACKENDS",
    "DEFAULT_INDEX_BACKEND",
    "get_index_backend",
    "__version__",
]
