"""Pages and the page manager (the simulated disk).

Each R-tree node occupies exactly one page.  Pages hold an opaque payload
object plus an optional serialized form; :class:`PageManager` is the "disk":
a dict of page-id → page with allocation, free-list reuse, and byte-level
serialization helpers used by the persistence tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

DEFAULT_PAGE_SIZE = 1024

# Serialized entry layouts (2-D):
#   leaf entry:     point id (q), x (d), y (d)                -> 24 bytes
#   internal entry: child page id (q), lox, loy, hix, hiy (d) -> 40 bytes
_LEAF_ENTRY = struct.Struct("<qdd")
_DIR_ENTRY = struct.Struct("<qdddd")
_HEADER = struct.Struct("<qii")  # page id, is_leaf, entry count

LEAF_ENTRY_BYTES = _LEAF_ENTRY.size
DIR_ENTRY_BYTES = _DIR_ENTRY.size
HEADER_BYTES = _HEADER.size


class PageOverflowError(RuntimeError):
    """Raised when a node no longer fits in its page."""


@dataclass
class Page:
    """One disk page.

    ``payload`` is the live object (an R-tree node); ``raw`` is its
    serialized image, produced on demand by :meth:`PageManager.serialize`.
    """

    page_id: int
    payload: Any = None
    raw: Optional[bytes] = None
    dirty: bool = False


@dataclass
class PageManager:
    """The simulated disk: allocates, stores, and serializes pages."""

    page_size: int = DEFAULT_PAGE_SIZE
    _pages: Dict[int, Page] = field(default_factory=dict)
    _free: List[int] = field(default_factory=list)
    _next_id: int = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, payload: Any = None) -> Page:
        """Allocate a fresh page (reusing freed ids first)."""
        if self._free:
            pid = self._free.pop()
        else:
            pid = self._next_id
            self._next_id += 1
        page = Page(page_id=pid, payload=payload, dirty=True)
        self._pages[pid] = page
        return page

    def free(self, page_id: int) -> None:
        """Return a page to the free list."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not allocated")
        del self._pages[page_id]
        self._free.append(page_id)

    def get(self, page_id: int) -> Page:
        """Fetch a page from "disk" (no fault accounting here — the buffer
        pool owns that)."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} is not allocated") from None

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def page_ids(self) -> List[int]:
        return list(self._pages)

    # ------------------------------------------------------------------
    # capacity maths (how many entries fit on a page)
    # ------------------------------------------------------------------
    def leaf_capacity(self) -> int:
        """Number of point entries fitting on one page."""
        cap = (self.page_size - HEADER_BYTES) // LEAF_ENTRY_BYTES
        if cap < 2:
            raise ValueError(f"page size {self.page_size} too small for a leaf")
        return cap

    def dir_capacity(self) -> int:
        """Number of child entries fitting on one internal page."""
        cap = (self.page_size - HEADER_BYTES) // DIR_ENTRY_BYTES
        if cap < 2:
            raise ValueError(
                f"page size {self.page_size} too small for a directory node"
            )
        return cap

    # ------------------------------------------------------------------
    # serialization (persistence-grade; not on the hot query path)
    # ------------------------------------------------------------------
    def serialize(self, page: Page) -> bytes:
        """Serialize a page's R-tree node payload into its on-disk image.

        The payload must expose ``is_leaf``, and either ``points`` (leaf)
        or ``children_ids``/``child_mbrs`` (internal).
        """
        node = page.payload
        if node is None:
            raise ValueError(f"page {page.page_id} has no payload")
        parts = []
        if node.is_leaf:
            entries = node.points
            parts.append(_HEADER.pack(page.page_id, 1, len(entries)))
            for p in entries:
                parts.append(_LEAF_ENTRY.pack(p.pid, p.coords[0], p.coords[1]))
        else:
            ids = node.children_ids
            mbrs = node.child_mbrs
            parts.append(_HEADER.pack(page.page_id, 0, len(ids)))
            for cid, m in zip(ids, mbrs, strict=False):
                parts.append(_DIR_ENTRY.pack(cid, m.lo[0], m.lo[1], m.hi[0], m.hi[1]))
        raw = b"".join(parts)
        if len(raw) > self.page_size:
            raise PageOverflowError(
                f"page {page.page_id}: {len(raw)} bytes > page size "
                f"{self.page_size}"
            )
        page.raw = raw.ljust(self.page_size, b"\x00")
        page.dirty = False
        return page.raw

    def deserialize_header(self, raw: bytes):
        """Decode (page_id, is_leaf, count) from a page image."""
        page_id, is_leaf, count = _HEADER.unpack_from(raw, 0)
        return page_id, bool(is_leaf), count

    def deserialize_leaf_entries(self, raw: bytes):
        """Decode [(pid, x, y), ...] from a leaf page image."""
        _, is_leaf, count = _HEADER.unpack_from(raw, 0)
        if not is_leaf:
            raise ValueError("not a leaf page")
        out = []
        off = HEADER_BYTES
        for _ in range(count):
            out.append(_LEAF_ENTRY.unpack_from(raw, off))
            off += LEAF_ENTRY_BYTES
        return out

    def deserialize_dir_entries(self, raw: bytes):
        """Decode [(child_id, lox, loy, hix, hiy), ...] from a dir page."""
        _, is_leaf, count = _HEADER.unpack_from(raw, 0)
        if is_leaf:
            raise ValueError("not a directory page")
        out = []
        off = HEADER_BYTES
        for _ in range(count):
            out.append(_DIR_ENTRY.unpack_from(raw, off))
            off += DIR_ENTRY_BYTES
        return out
