"""LRU buffer pool.

Every logical page access in the R-tree goes through
:meth:`LRUBufferPool.access`.  A miss counts as a page fault and charges the
configured I/O penalty via :class:`~repro.storage.iostats.IOStats`.  The
paper sizes the buffer at 1% of the tree (Section 5.1); we expose that as
``capacity_for_tree``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.storage.iostats import IOStats
from repro.storage.page import Page, PageManager

MIN_BUFFER_PAGES = 4


class LRUBufferPool:
    """A fixed-capacity LRU cache of pages with fault accounting."""

    def __init__(
        self,
        manager: PageManager,
        capacity: int,
        stats: Optional[IOStats] = None,
    ):
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1 page")
        self.manager = manager
        self.capacity = capacity
        self.stats = stats if stats is not None else IOStats()
        self._resident: "OrderedDict[int, Page]" = OrderedDict()

    @staticmethod
    def capacity_for_tree(num_pages: int, fraction: float = 0.01) -> int:
        """Paper sizing rule: buffer = ``fraction`` of the tree's pages."""
        return max(MIN_BUFFER_PAGES, int(num_pages * fraction))

    # ------------------------------------------------------------------
    # the single hot operation
    # ------------------------------------------------------------------
    def access(self, page_id: int) -> Page:
        """Fetch a page, updating recency and fault counters."""
        self.stats.reads += 1
        page = self._resident.get(page_id)
        if page is not None:
            self._resident.move_to_end(page_id)
            return page
        self.stats.faults += 1
        page = self.manager.get(page_id)
        self._admit(page)
        return page

    def _admit(self, page: Page) -> None:
        while len(self._resident) >= self.capacity:
            _, evicted = self._resident.popitem(last=False)
            if evicted.dirty:
                self.stats.writes += 1
                evicted.dirty = False
        self._resident[page.page_id] = page

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def pin_warm(self, page_id: int) -> None:
        """Place a page in the buffer without charging a fault.

        Used when building a tree in memory: construction I/O is not part of
        the measured workload, matching the paper's setup where indexes are
        pre-built.
        """
        page = self.manager.get(page_id)
        self._admit(page)

    def invalidate(self, page_id: int) -> None:
        self._resident.pop(page_id, None)

    def clear(self) -> None:
        self._resident.clear()

    @property
    def resident_ids(self):
        return list(self._resident)

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def __repr__(self) -> str:
        return (
            f"LRUBufferPool(capacity={self.capacity}, "
            f"resident={len(self._resident)}, {self.stats!r})"
        )
