"""I/O accounting.

``IOStats`` is the single place where page faults are converted into charged
I/O time.  The paper (Section 5.1) charges 10 ms per page fault, citing the
standard textbook figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_IO_PENALTY_S = 0.010


@dataclass
class IOStats:
    """Counters for buffer-pool traffic.

    Attributes
    ----------
    reads:
        Logical page requests.
    faults:
        Requests that missed the buffer (simulated disk reads).
    writes:
        Pages written back to the simulated disk.
    io_penalty_s:
        Charged seconds per fault (paper default: 10 ms).
    """

    reads: int = 0
    faults: int = 0
    writes: int = 0
    io_penalty_s: float = field(default=DEFAULT_IO_PENALTY_S)

    @property
    def hits(self) -> int:
        return self.reads - self.faults

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.reads if self.reads else 0.0

    @property
    def io_time_s(self) -> float:
        """Charged I/O time in seconds (faults × penalty)."""
        return self.faults * self.io_penalty_s

    def reset(self) -> None:
        self.reads = 0
        self.faults = 0
        self.writes = 0

    def snapshot(self) -> "IOStats":
        """A frozen copy (useful to diff before/after a query)."""
        return IOStats(self.reads, self.faults, self.writes, self.io_penalty_s)

    def diff(self, before: "IOStats") -> "IOStats":
        """Counters accumulated since ``before`` was snapshotted."""
        return IOStats(
            self.reads - before.reads,
            self.faults - before.faults,
            self.writes - before.writes,
            self.io_penalty_s,
        )

    def __repr__(self) -> str:
        return (
            f"IOStats(reads={self.reads}, faults={self.faults}, "
            f"writes={self.writes}, io_time={self.io_time_s:.3f}s)"
        )
