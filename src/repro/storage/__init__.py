"""Simulated disk substrate.

The paper keeps the customer set ``P`` on disk behind an R-tree with 1 KB
pages and an LRU buffer sized at 1% of the tree, and charges 10 ms per page
fault.  We reproduce that accounting with a page manager (one page per R-tree
node, with real serialization for persistence) and an LRU buffer pool that
counts hits and faults.
"""

from repro.storage.buffer import LRUBufferPool
from repro.storage.iostats import DEFAULT_IO_PENALTY_S, IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, Page, PageManager

__all__ = [
    "IOStats",
    "DEFAULT_IO_PENALTY_S",
    "Page",
    "PageManager",
    "DEFAULT_PAGE_SIZE",
    "LRUBufferPool",
]
