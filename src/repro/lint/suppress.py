"""Inline suppression parsing.

Grammar (one comment per line, reason mandatory)::

    # repro-lint: disable=RPR003 -- drain order restored by sort below
    # repro-lint: disable=RPR006,RPR008 -- <reason>
    # repro-lint: disable-file=RPR006 -- <reason>

A ``disable`` comment on a code line covers that line; on a line of its
own it covers the next line.  ``disable-file`` covers the whole file.
A suppression without a ``--  <reason>`` tail does not suppress anything
— it *is* a finding (RPR000): the reason string is the reviewable
artifact that makes the escape hatch auditable.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.diagnostics import ENGINE_RULE, Diagnostic

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]*?)\s*(?P<tail>--.*)?$"
)
_CODE = re.compile(r"^RPR\d{3}$")


@dataclass
class Suppression:
    line: int
    codes: tuple[str, ...]
    file_level: bool
    target_line: int  # the code line this pragma covers
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, diag: Diagnostic) -> bool:
        if diag.rule == ENGINE_RULE:
            return False
        if diag.rule not in self.codes:
            return False
        return self.file_level or diag.line == self.target_line


def _comments(source: str) -> list[tuple[int, int, str, bool]]:
    """(line, col, text, standalone) for every real comment token.

    Tokenizing — rather than regexing raw lines — keeps pragma examples
    inside string literals and docstrings from parsing as pragmas.
    """
    out = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                standalone = not tok.line[: tok.start[1]].strip()
                out.append((tok.start[0], tok.start[1], tok.string, standalone))
    except (tokenize.TokenError, IndentationError):
        pass  # ast.parse already vetted the file; be permissive here
    return out


def parse_suppressions(
    path: str, source: str
) -> tuple[list[Suppression], list[Diagnostic]]:
    """Return (suppressions, hygiene diagnostics) for one file."""
    supps: list[Suppression] = []
    problems: list[Diagnostic] = []
    for lineno, col, text, standalone in _comments(source):
        if "repro-lint:" not in text:
            continue
        match = _PRAGMA.search(text)
        if match is None:
            problems.append(
                Diagnostic(
                    path,
                    lineno,
                    col,
                    ENGINE_RULE,
                    "malformed repro-lint pragma; expected "
                    "'# repro-lint: disable=RPR00x -- <reason>'",
                )
            )
            continue
        codes = tuple(c.strip() for c in match.group("codes").split(",") if c.strip())
        bad = [c for c in codes if not _CODE.match(c)]
        if not codes or bad:
            problems.append(
                Diagnostic(
                    path,
                    lineno,
                    col,
                    ENGINE_RULE,
                    f"suppression names no valid rule code ({bad or 'empty'}); "
                    "expected RPR001..RPR008",
                )
            )
            continue
        tail = match.group("tail") or ""
        reason = tail[2:].strip() if tail.startswith("--") else ""
        if not reason:
            problems.append(
                Diagnostic(
                    path,
                    lineno,
                    col,
                    ENGINE_RULE,
                    f"suppression for {','.join(codes)} carries no reason; "
                    "append ' -- <why this occurrence is safe>'",
                )
            )
            continue
        # A trailing pragma covers its own line; a standalone one covers
        # the next code line, skipping the rest of its comment block so
        # multi-line reasons stay legal.
        target = lineno
        if standalone:
            lines = source.splitlines()
            target = len(lines) + 1  # dangling pragma at EOF covers nothing
            for off in range(lineno, len(lines)):
                stripped = lines[off].strip()
                if stripped and not stripped.startswith("#"):
                    target = off + 1
                    break
        supps.append(
            Suppression(
                line=lineno,
                codes=codes,
                file_level=match.group("kind") == "disable-file",
                target_line=target,
                reason=reason,
            )
        )
    return supps, problems


def apply_suppressions(
    diags: list[Diagnostic],
    supps: list[Suppression],
    *,
    strict: bool,
    path: str,
) -> list[Diagnostic]:
    """Filter suppressed findings; under strict, flag unused suppressions."""
    kept: list[Diagnostic] = []
    for diag in diags:
        hit = False
        for supp in supps:
            if supp.covers(diag):
                supp.used = True
                hit = True
        if not hit:
            kept.append(diag)
    if strict:
        for supp in supps:
            if not supp.used:
                kept.append(
                    Diagnostic(
                        path,
                        supp.line,
                        0,
                        ENGINE_RULE,
                        f"unused suppression for {','.join(supp.codes)}; "
                        "remove it (the finding it silenced is gone)",
                    )
                )
    return kept
