"""repro-lint: determinism & reliability static analysis for this repo.

The solver's headline contract is *bit-identity*: every backend, every
shard count, every warm/cold path must produce results identical to the
reference dict solver down to the last float bit.  Most regressions
against that contract in this repo's history were not algorithmic — they
were ambient-state leaks (libm ``pow``, set iteration order, unseeded
RNGs, wall-clock control flow) that survive review because each one
looks idiomatic in isolation.

This package encodes those lessons as AST rules (``RPR001``-``RPR008``)
over the repo's own layout, built on nothing but the stdlib ``ast``
module.  It ships as ``repro-cca lint`` and runs as a CI gate; see
``docs/LINTING.md`` for the rule catalogue and suppression policy.
"""

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import lint_paths, lint_source
from repro.lint.rules import all_rules

__all__ = ["Diagnostic", "all_rules", "lint_paths", "lint_source"]
