"""Diagnostic records emitted by repro-lint rules."""

from __future__ import annotations

from dataclasses import dataclass

# Engine-level code: suppression hygiene (missing reason, unknown code,
# unused suppression under --strict) and unparsable files.  RPR000 is
# itself never suppressible — otherwise a bad suppression could hide
# the report about the bad suppression.
ENGINE_RULE = "RPR000"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, anchored to a precise source position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
