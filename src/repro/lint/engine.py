"""The repro-lint driver: parse once, dispatch nodes to rules, filter
through inline suppressions.

Every file is parsed exactly once and walked exactly once; rules
declare the node types they care about and the engine multiplexes the
walk over them, so adding a rule costs a dict lookup per node, not a
fresh traversal.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import ENGINE_RULE, Diagnostic
from repro.lint.rules import all_rules
from repro.lint.suppress import apply_suppressions, parse_suppressions

# Directory names never descended into when expanding path arguments.
_SKIP_DIRS = {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build", "dist"}


def lint_source(
    source: str, path: str = "<memory>", *, strict: bool = False
) -> list[Diagnostic]:
    """Lint one module given as text. ``path`` determines rule scoping
    (e.g. 'src/repro/flow/x.py' activates the flow-scoped rules)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                ENGINE_RULE,
                f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path, source, tree)
    rules = [rule for rule in all_rules() if rule.applies(ctx)]
    dispatch: dict[type, list] = {}
    for rule in rules:
        rule.begin_module(ctx)
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    diags: list[Diagnostic] = []
    for node in ast.walk(tree):
        for rule in dispatch.get(type(node), ()):
            diags.extend(rule.visit(node, ctx))
    supps, hygiene = parse_suppressions(path, source)
    kept = apply_suppressions(diags, supps, strict=strict, path=path)
    kept.extend(hygiene)
    kept.sort(key=lambda d: (d.line, d.col, d.rule))
    return kept


def _expand(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                files.extend(
                    Path(dirpath) / f for f in sorted(filenames) if f.endswith(".py")
                )
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(paths: Iterable[str], *, strict: bool = False) -> list[Diagnostic]:
    """Lint every .py file under the given files/directories."""
    diags: list[Diagnostic] = []
    for file in _expand(paths):
        rel = file.as_posix()
        diags.extend(lint_source(file.read_text(), rel, strict=strict))
    diags.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return diags
