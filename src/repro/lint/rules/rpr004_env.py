"""RPR004: no ambient ``os.environ`` reads outside the config seam.

Configuration must arrive through explicit parameters so a solve is a
pure function of its arguments.  The single sanctioned exception is
``core/faults.py``'s ``resolve_fault_plan`` — the documented seam where
the deprecated chaos-injection env alias is read and immediately turned
into an explicit ``FaultPlan`` value.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule, register

_ALLOWLIST = (("core", "faults.py"),)


@register
class EnvRule(Rule):
    id = "RPR004"
    title = "no os.environ outside the config seam"
    rationale = (
        "env reads make a solve depend on ambient process state that "
        "no caller passed and no test pins; route configuration "
        "through explicit parameters (core/faults.py is the one "
        "documented exception)."
    )
    node_types = (ast.Attribute, ast.Name, ast.Call)

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.domain not in _ALLOWLIST

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Call):
            if ctx.resolve(node.func) == "os.getenv":
                yield self.diag(
                    ctx,
                    node,
                    "os.getenv() outside the config seam; thread the value "
                    "through an explicit parameter",
                )
            return
        if ctx.resolve(node) != "os.environ":
            return
        # Flag `os.environ` itself once, not again for `os.environ.get`.
        parent = ctx.parent(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            node = parent  # anchor the finding on the full access
        yield self.diag(
            ctx,
            node,
            "os.environ access outside the config seam "
            "(core/faults.resolve_fault_plan); thread configuration "
            "through explicit parameters",
        )
