"""RPR008: no broad ``except`` that can swallow invariant violations.

``NegativeReducedCostError`` and ``SessionDeadError`` are how the
supervised runtime *finds out* that a shard diverged or a session is
unusable.  A bare ``except`` / ``except Exception`` in ``core/`` or
``serve/`` that neither re-raises nor narrows its type converts those
signals into silent wrong answers.  Handlers that genuinely must
quarantine everything (last-resort pool teardown, per-shard serving
degradation) carry a written suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule, register

_BROAD = ("Exception", "BaseException")


def _is_broad(expr: ast.AST | None) -> bool:
    if expr is None:
        return True
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(el) for el in expr.elts)
    return False


@register
class BroadExceptRule(Rule):
    id = "RPR008"
    title = "no broad except swallowing invariant errors"
    rationale = (
        "except Exception without a re-raise can eat "
        "NegativeReducedCostError/SessionDeadError — the signals the "
        "supervised runtime uses to detect divergence — turning a loud "
        "failure into a silent wrong answer."
    )
    node_types = (ast.ExceptHandler,)

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_subpackage("core", "serve")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.ExceptHandler)
        if not _is_broad(node.type):
            return
        for stmt in node.body:
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(stmt)):
                return  # re-raises (possibly conditionally): signal survives
        what = "bare except:" if node.type is None else "except Exception"
        yield self.diag(
            ctx,
            node,
            f"{what} without re-raise can swallow NegativeReducedCostError/"
            "SessionDeadError; narrow the type or re-raise",
        )
