"""RPR003: no iteration over sets in ordered solver paths.

Set iteration order depends on insertion history and hash seeds (and,
for object elements like futures, on heap addresses), so any ordered
output derived from it differs run to run.  In ``core/``, ``flow/`` and
``serve/`` — the subpackages whose outputs feed the bit-identity gates —
a set may be *tested* or *sorted*, never walked directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule, register

# Wrapping a set in one of these preserves its arbitrary order.
_ORDER_PRESERVING = {"list", "tuple", "iter", "enumerate", "reversed"}

_SCOPES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)


def _is_set_display(node: ast.AST) -> bool:
    return isinstance(node, (ast.Set, ast.SetComp))


def _is_set_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class SetOrderRule(Rule):
    id = "RPR003"
    title = "no direct set iteration in ordered solver paths"
    rationale = (
        "set order varies with hash seed and element identity; walking "
        "one feeds nondeterministic order into solver output. Sort it "
        "(with an explicit key) or keep an ordered container."
    )
    node_types = (ast.For, ast.AsyncFor, ast.comprehension, ast.Call)

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_subpackage("core", "flow", "serve")

    def begin_module(self, ctx: ModuleContext) -> None:
        # Per-scope harvest of names that are ever bound to a set-valued
        # expression.  Deliberately sticky: rebinding from an unknown
        # call does NOT clear the mark (`finished, _ = wait(...)` keeps
        # `finished = set()`'s mark — and wait() does return a set).
        self._setish: dict[int, set[str]] = {}
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, _SCOPES):
                continue
            names: set[str] = set()
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets, value = [node.target], node.value
                else:
                    continue
                if value is None or not self._setish_expr(value, names):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            self._setish[id(scope)] = names

    def _setish_expr(self, node: ast.AST, names: set[str]) -> bool:
        if _is_set_display(node) or _is_set_call(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._setish_expr(node.left, names) or self._setish_expr(
                node.right, names
            )
        return False

    def _names_for(self, node: ast.AST, ctx: ModuleContext) -> set[str]:
        scope = ctx.enclosing_scope(node)
        return self._setish.get(id(scope), set())

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if self._setish_expr(node.iter, self._names_for(node, ctx)):
                yield self.diag(
                    ctx,
                    node.iter,
                    "iterating a set directly: order is arbitrary; iterate "
                    "sorted(...) with an explicit key instead",
                )
        elif isinstance(node, ast.comprehension):
            if self._setish_expr(node.iter, self._names_for(node.iter, ctx)):
                yield self.diag(
                    ctx,
                    node.iter,
                    "comprehension over a set: order is arbitrary; wrap the "
                    "source in sorted(...)",
                )
        elif isinstance(node, ast.Call):
            names = self._names_for(node, ctx)
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_PRESERVING
                and node.args
                and self._setish_expr(node.args[0], names)
            ):
                yield self.diag(
                    ctx,
                    node,
                    f"{func.id}() over a set materializes its arbitrary "
                    "order; use sorted(...) with an explicit key",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "fromkeys"
                and isinstance(func.value, ast.Name)
                and func.value.id == "dict"
                and node.args
                and self._setish_expr(node.args[0], names)
            ):
                yield self.diag(
                    ctx,
                    node,
                    "dict.fromkeys(<set>) freezes the set's arbitrary order "
                    "into the dict; sort the keys first",
                )
