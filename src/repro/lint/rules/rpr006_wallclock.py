"""RPR006: no wall-clock calls in solver decision paths.

Timers that feed ``SolveStats`` use ``time.perf_counter`` and never
influence control flow; any other clock read inside the solver
subpackages is a smell that elapsed time is about to steer a decision
(early exit, adaptive batch size), which no fixed seed can reproduce.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule, register

_BANNED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.sleep",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    id = "RPR006"
    title = "no wall-clock in solver decision paths"
    rationale = (
        "elapsed-time-dependent control flow cannot be reproduced by "
        "any seed; solver code may read time.perf_counter for stats "
        "only. Scheduling layers that genuinely need clocks carry a "
        "file-level suppression with a written reason."
    )
    node_types = (ast.Call,)

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_subpackage("core", "flow", "rtree", "geometry", "hilbert")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved in _BANNED:
            yield self.diag(
                ctx,
                node,
                f"{resolved}() in a solver path: wall-clock-dependent "
                "behavior defeats bit-reproducibility; stats timers use "
                "time.perf_counter",
            )
