"""RPR007: SharedMemory segments are created only via ``core/shm.py``.

The guarded constructor there pairs every segment with a
``weakref.finalize`` unlink guard and resource-tracker bookkeeping; a
raw ``SharedMemory(create=True)`` anywhere else leaks segments on the
failure paths the chaos suite exercises.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule, register

_SHM_TYPES = {
    "multiprocessing.shared_memory.SharedMemory",
    "multiprocessing.shared_memory.ShareableList",
}


@register
class SharedMemoryRule(Rule):
    id = "RPR007"
    title = "SharedMemory only via core/shm.py"
    rationale = (
        "raw SharedMemory construction skips the finalizer and "
        "resource-tracker guards in core/shm.py, leaking segments when "
        "a worker dies mid-attach; go through SharedColumnStore or its "
        "attach helpers."
    )
    node_types = (ast.Call,)

    def applies(self, ctx: ModuleContext) -> bool:
        return not ctx.is_module("core", "shm.py")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved in _SHM_TYPES:
            leaf = resolved.rsplit(".", 1)[1]
            yield self.diag(
                ctx,
                node,
                f"direct {leaf}() bypasses core/shm.py's guarded "
                "constructor (leak tracking + finalizers); use "
                "SharedColumnStore / attach helpers",
            )
