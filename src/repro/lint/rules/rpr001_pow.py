"""RPR001: no ``** 2`` / ``math.pow`` in distance or potential arithmetic.

History: the packed R-tree's MINDIST once used ``(dx) ** 2 + (dy) ** 2``
while the pointer tree used ``dx * dx + dy * dy``.  CPython lowers
``float ** 2`` to libm ``pow``, which is allowed to be 1 ulp off the
exact product — enough to flip a heap tie and desynchronize the two
index backends' visit orders.  Distance/potential code must spell the
product out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule, register

_POW_FUNCS = {"math.pow", "numpy.power"}
_BAD_EXPONENTS = {2, 2.0, 0.5}


@register
class PowRule(Rule):
    id = "RPR001"
    title = "no '** 2' / math.pow in distance/potential arithmetic"
    rationale = (
        "float ** 2 and math.pow go through libm pow (1 ulp off an exact "
        "product); a single ulp flips heap ties and breaks backend "
        "bit-identity. Write dx * dx, and math.sqrt for roots."
    )
    node_types = (ast.BinOp, ast.Call)

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_subpackage("geometry", "flow", "rtree")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
            exp = node.right
            if (
                isinstance(exp, ast.Constant)
                and not isinstance(exp.value, bool)
                and exp.value in _BAD_EXPONENTS
            ):
                yield self.diag(
                    ctx,
                    node,
                    f"'** {exp.value}' goes through libm pow (1 ulp off an "
                    "exact multiply); write the explicit product "
                    "(x * x) or math.sqrt",
                )
        elif isinstance(node, ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved in _POW_FUNCS:
                yield self.diag(
                    ctx,
                    node,
                    f"{resolved}() in distance/potential arithmetic is not "
                    "bit-reproducible across libms; use explicit products",
                )
