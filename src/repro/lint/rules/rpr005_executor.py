"""RPR005: executor submissions must be picklable module functions, and
cross-process payload dataclasses must be frozen.

Lambdas, closures and bound methods either fail to pickle outright or —
worse — drag an entire enclosing object graph across the process
boundary, where mutation after submit races the pickle.  Payload types
(``*Task``/``*Spec``/``*Plan``/``*Handle``) are frozen so a task cannot
be mutated between submission and execution; retries go through
``dataclasses.replace``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule, register

_PAYLOAD_SUFFIXES = ("Task", "Spec", "Plan", "Handle")


def _dataclass_decorator(dec: ast.AST, ctx: ModuleContext) -> ast.Call | bool | None:
    """Return the decorator Call (to inspect kwargs), True for a bare
    @dataclass, or None when the decorator is something else."""
    target = dec.func if isinstance(dec, ast.Call) else dec
    is_dc = (isinstance(target, ast.Name) and target.id == "dataclass") or (
        ctx.resolve(target) in ("dataclasses.dataclass",)
    )
    if not is_dc:
        return None
    return dec if isinstance(dec, ast.Call) else True


@register
class ExecutorPayloadRule(Rule):
    id = "RPR005"
    title = "picklable submissions, frozen cross-process payloads"
    rationale = (
        "lambdas/closures/bound methods don't pickle cleanly across the "
        "ProcessPoolExecutor boundary, and a mutable task object can be "
        "changed between submit and execution; submit module-level "
        "functions carrying frozen dataclasses."
    )
    node_types = (ast.Call, ast.ClassDef)

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_subpackage("core")

    def begin_module(self, ctx: ModuleContext) -> None:
        # Names of functions defined inside another function: submitting
        # one ships a closure.
        self._nested_defs: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cur = ctx.parent(node)
                while cur is not None:
                    if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._nested_defs.add(node.name)
                        break
                    cur = ctx.parent(cur)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if isinstance(node, ast.ClassDef):
            yield from self._visit_class(node, ctx)
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "submit" and node.args:
            target = node.args[0]
        elif func.attr == "run_in_executor" and len(node.args) >= 2:
            target = node.args[1]
        else:
            return
        if isinstance(target, ast.Lambda):
            yield self.diag(
                ctx,
                target,
                "lambda submitted across the executor boundary does not "
                "pickle; submit a module-level function",
            )
        elif isinstance(target, ast.Attribute) and ctx.resolve(target) is None:
            yield self.diag(
                ctx,
                target,
                "bound method submitted across the executor boundary drags "
                "its whole object through pickle; submit a module-level "
                "function taking an explicit payload",
            )
        elif isinstance(target, ast.Name) and target.id in self._nested_defs:
            yield self.diag(
                ctx,
                target,
                f"nested function '{target.id}' submitted across the "
                "executor boundary captures a closure that cannot pickle; "
                "hoist it to module level",
            )

    def _visit_class(
        self, node: ast.ClassDef, ctx: ModuleContext
    ) -> Iterator[Diagnostic]:
        if not node.name.endswith(_PAYLOAD_SUFFIXES):
            return
        for dec in node.decorator_list:
            found = _dataclass_decorator(dec, ctx)
            if found is None:
                continue
            frozen = isinstance(found, ast.Call) and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in found.keywords
            )
            if not frozen:
                yield self.diag(
                    ctx,
                    node,
                    f"payload dataclass {node.name} is not frozen; "
                    "cross-process payloads must be @dataclass(frozen=True) "
                    "(retries use dataclasses.replace)",
                )
