"""RPR002: no ambient or unseeded randomness outside ``datagen/``.

Every random draw in this repo must flow from an explicitly seeded
``numpy`` Generator (``default_rng(seed)`` / ``derive_rng`` /
``FaultPlan``'s seeded streams).  The stdlib ``random`` module and the
legacy ``np.random.*`` module-level API share hidden global state, and
``default_rng()`` with no argument seeds from the OS — all three make a
run unreproducible in a way no test can pin.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic
from repro.lint.rules.base import Rule, register

# Seeded constructors / types on numpy.random that are fine to touch.
_NP_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


@register
class RandomnessRule(Rule):
    id = "RPR002"
    title = "no unseeded/ambient randomness outside datagen/"
    rationale = (
        "stdlib random and module-level np.random.* draw from hidden "
        "global state; default_rng() with no seed draws from the OS. "
        "Either one silently breaks run-to-run reproducibility."
    )
    node_types = (ast.Call,)

    def applies(self, ctx: ModuleContext) -> bool:
        return not ctx.in_subpackage("datagen")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        assert isinstance(node, ast.Call)
        resolved = ctx.resolve(node.func)
        if resolved is None:
            return
        if resolved == "random" or resolved.startswith("random."):
            yield self.diag(
                ctx,
                node,
                f"{resolved}() uses the stdlib's hidden global RNG state; "
                "thread a seeded numpy Generator instead",
            )
            return
        if not resolved.startswith("numpy.random."):
            return
        leaf = resolved.rsplit(".", 1)[1]
        if leaf == "default_rng":
            if not node.args and not node.keywords:
                yield self.diag(
                    ctx,
                    node,
                    "default_rng() without a seed draws entropy from the OS; "
                    "pass an explicit seed or SeedSequence",
                )
        elif leaf not in _NP_ALLOWED:
            yield self.diag(
                ctx,
                node,
                f"numpy.random.{leaf}() is the legacy global-state API; "
                "use a seeded Generator (default_rng(seed))",
            )
