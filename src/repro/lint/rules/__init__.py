"""Rule registry: importing this package registers every RPR rule."""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    rpr001_pow,
    rpr002_randomness,
    rpr003_set_order,
    rpr004_env,
    rpr005_executor,
    rpr006_wallclock,
    rpr007_shm,
    rpr008_except,
)
from repro.lint.rules.base import Rule, register, registered_rules


def all_rules() -> list[Rule]:
    """Fresh rule instances (rules hold per-module prepass state)."""
    return [cls() for cls in registered_rules()]


__all__ = ["Rule", "all_rules", "register", "registered_rules"]
