"""Rule protocol and registry for repro-lint."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.diagnostics import Diagnostic


class Rule:
    """One determinism/reliability invariant.

    Subclasses set ``id``/``title``/``rationale`` and declare the AST
    node types they inspect; the engine calls ``visit`` for each
    matching node of a single shared walk.  ``applies`` scopes the rule
    to the subpackages where its invariant is load-bearing, so e.g. the
    pow rule never fires on the Hilbert curve's genuine ``2 ** order``.
    """

    id: str = "RPR???"
    title: str = ""
    rationale: str = ""
    node_types: tuple[type, ...] = ()

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def begin_module(self, ctx: ModuleContext) -> None:
        """Optional per-module prepass (alias/type harvesting)."""

    def visit(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: ModuleContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            ctx.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            self.id,
            message,
        )


_REGISTRY: list[type[Rule]] = []


def register(cls: type[Rule]) -> type[Rule]:
    _REGISTRY.append(cls)
    return cls


def registered_rules() -> list[type[Rule]]:
    return sorted(_REGISTRY, key=lambda c: c.id)
