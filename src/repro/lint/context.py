"""Per-module analysis context shared by all rules.

Built once per file: the parsed tree, parent pointers, and an
import-alias table so rules match *resolved* dotted names (``np.random``
and ``from numpy import random as nr`` both resolve to
``numpy.random``) instead of guessing from surface spelling.
"""

from __future__ import annotations

import ast

_SCOPE_NODES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


class ModuleContext:
    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source_lines = source.splitlines()
        self.tree = tree
        # Package-relative location: parts after the last 'repro' dir
        # component, e.g. src/repro/core/shard.py -> ('core', 'shard.py').
        # Files outside the package (tests/, benchmarks/) get () — only
        # globally-scoped rules apply to them.
        parts = path.replace("\\", "/").split("/")
        self.domain: tuple[str, ...] = ()
        if "repro" in parts:
            self.domain = tuple(
                parts[len(parts) - 1 - parts[::-1].index("repro") :][1:]
            )
        self.parents: dict[int, ast.AST] = {}
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c=a.b
                    self.aliases[bound] = alias.name if alias.asname else (
                        alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = f"{base}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted path of a Name/Attribute via the import table, or None
        for anything bound locally (parameters, assignments, builtins)."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(id(node))

    def enclosing_scope(self, node: ast.AST) -> ast.AST:
        cur = self.parent(node)
        while cur is not None and not isinstance(cur, _SCOPE_NODES):
            cur = self.parent(cur)
        return cur if cur is not None else self.tree

    def in_subpackage(self, *names: str) -> bool:
        return bool(self.domain) and self.domain[0] in names

    def is_module(self, *rel: str) -> bool:
        """True when this file is exactly src/repro/<rel...>."""
        return self.domain == rel
