"""Path Update Algorithm (PUA) — Section 3.4.1, Algorithm 5.

After an invalid shortest path, NIA/IDA insert one more edge into ``Esub``
and need a new shortest path.  Restarting Dijkstra wastes all previous work;
PUA instead *repairs* the existing search state:

1. if the new edge's provider endpoint ``q`` already has a label ``q.α``,
   offer ``q.α + w(q, p)`` to the customer endpoint;
2. cascade the improvement: any node whose ``α`` drops is re-queued (and, if
   it was settled, un-settled), so the resumed Dijkstra re-relaxes exactly
   the affected region and nothing else.  Nodes the insertion cannot reach
   are never touched — the saving PUA exists for.

The paper maintains a second heap ``Hf`` over previously-visited nodes and
patches keys inside the main heap ``Hd``.  Our :class:`DijkstraState` uses a
single lazy-deletion heap, so both roles collapse into
:meth:`DijkstraState.improve` + resume: the improved customer is re-queued;
if its new label beats the sink's, the resumed run pops it before the sink
and re-relaxes its out-edges (the Hf cascade); otherwise the old path stands
and the resume returns immediately.  Same node set, same order — only the
container differs.

PUA state is valid only *within* one CCA iteration: augmenting a path
reverses edges and moves potentials, so the engine discards the state after
every augmentation (the paper makes the same observation).
"""

from __future__ import annotations

from repro.flow.dijkstra import DijkstraState
from repro.flow.graph import CCAFlowNetwork


def path_update(
    state: DijkstraState,
    net: CCAFlowNetwork,
    provider: int,
    customer: int,
    distance: float,
) -> bool:
    """Repair ``state`` after inserting bipartite edge (provider, customer).

    Returns True if the customer's label improved (i.e. Algorithm 5's
    cascade had work to do).
    """
    base = state.alpha_of(provider)
    if base == float("inf"):
        # q is unreached so far; the resumed run relaxes the new edge
        # naturally if it ever labels q (the adjacency is read live).
        return False
    reduced = net.reduced_cost_qp(provider, customer, distance)
    return state.improve(net.customer_node(customer), base + reduced, provider)
