"""Sharded parallel assignment engine.

The δ-bounded decomposition that powers the paper's SA/CA approximations
is exactly the seam a multi-core solver needs: provider groups whose MBR
diagonal stays within δ can be bundled into *shards*, each shard solved
exactly and independently, and the pieces reconciled into one valid,
capacity-feasible assignment.  This module implements that pipeline:

1. **Planning** (:func:`plan_shards`) — partition the providers with the
   shared Hilbert-greedy grouping (:mod:`repro.partitioning`), then bundle
   contiguous groups into ``num_shards`` capacity-balanced shards.  Shards
   are always provider-disjoint.
2. **Routing** — assign every customer (unit) to a shard:

   * ``"nearest"`` — each customer follows its globally nearest provider.
     Cheap (vectorized NumPy) and exact on well-separated shardings; any
     over-subscribed shard simply leaves its surplus to the residual pass.
   * ``"concise"`` — SA's concise matching (Section 4.1) at the plan's δ:
     group representatives at capacity-weighted centroids are matched
     exactly against all customers and each customer unit follows its
     representative's shard.  Routed demand never exceeds shard capacity,
     and because per-shard exact solves can only improve on SA's per-group
     refinement, the final objective is provably ≤ serial SA at the same δ
     (hence within Theorem 3's Ψ(opt) + 2γδ family).
3. **Parallel solve** — every shard becomes a picklable :class:`ShardTask`
   solved in worker processes (``concurrent.futures.ProcessPoolExecutor``)
   with a per-shard flow-kernel backend; ``workers<=1`` solves inline.
   Coordinate columns, capacities, and routed weights travel through ONE
   ``multiprocessing.shared_memory`` segment (:mod:`repro.core.shm`):
   tasks pickle only scalars plus a :class:`~repro.core.shm.StoreHandle`,
   and workers rebuild zero-copy ``np.ndarray`` views — the per-task
   serialization cost no longer grows with |Q| + |P|.  The segment is
   unlinked in a ``finally``, so neither normal nor faulted exits leak.
4. **Reconciliation** — each worker ships its residual network back to the
   parent, which adopts it as a warm :class:`~repro.core.session.Matcher`
   (:meth:`~repro.core.session.Matcher.from_solved`).  A bounded
   improvement sweep then re-homes boundary customers: a customer matched
   at distance d whose nearest cross-shard provider sits closer is moved
   via session deltas (remove from its shard, add to the other) and both
   shards re-assign **warm** — the target shard's successive-shortest-path
   re-solve reroutes around saturated providers automatically.  Moves that
   fail to lower the global objective are reverted, so reconciliation
   never degrades the solution.
5. **Residual pass** — leftover demand (over-subscribed shards) is matched
   against leftover capacity by one exact solve, restoring maximality:
   the final matching always has exactly γ pairs and respects every
   capacity, which :meth:`~repro.core.matching.Matching.validate` asserts
   before the result is returned.

With ``shards=1`` the engine falls through to the plain serial solver and
is bit-identical to it.  On provider-disjoint, well-separated shardings
(every customer's optimal provider inside its own shard) the sharded
objective equals the serial optimum; ``benchmarks/bench_shard.py`` checks
that invariant on a separated-cluster workload in CI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.faults import (
    FAULT_ENV,
    FaultLedger,
    FaultPlan,
    attach_fault,
    poison_result,
    resolve_fault_plan,
    trigger,
)
from repro.core.ida import IDASolver
from repro.core.matching import Matching, SolverStats
from repro.core.nia import NIASolver
from repro.core.problem import CCAProblem
from repro.core.ria import RIASolver
from repro.core.session import Matcher
from repro.core.shm import SharedColumnStore, StoreHandle, attach
from repro.core.supervisor import RetryPolicy, run_supervised
from repro.experiments.config import PAPER_DEFAULTS, default_theta
from repro.flow.backend import DEFAULT_BACKEND, BackendLike, get_backend
from repro.partitioning import (
    balanced_bundles,
    capacity_weighted_centroid,
    hilbert_greedy_groups,
)
from repro.rtree.backend import IndexBackendLike, resolve_index_backend

ROUTERS = ("nearest", "concise")
SHARD_METHODS = ("ida", "nia", "ria")

# Customers are routed / re-homed in bounded-size coordinate chunks so the
# distance matrix never materializes at |P| x |Q|.
_CHUNK = 8192

_EPS = 1e-9


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard: a capacity-balanced bundle of δ-bounded provider groups."""

    index: int
    provider_ids: Tuple[int, ...]
    capacity: int


@dataclass(frozen=True)
class ShardPlan:
    """A provider-disjoint decomposition of the instance.

    ``groups`` are the δ-bounded Hilbert groups (global provider ids) the
    shards were bundled from; ``group_to_shard[g]`` names the shard owning
    group ``g`` — the concise router needs both.
    """

    shards: List[ShardSpec]
    groups: List[List[int]]
    group_to_shard: List[int]
    delta: float
    shard_of_provider: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if not self.shard_of_provider:
            for spec in self.shards:
                for pid in spec.provider_ids:
                    self.shard_of_provider[pid] = spec.index

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @classmethod
    def from_provider_lists(
        cls, provider_lists: Sequence[Sequence[int]], problem: CCAProblem
    ) -> "ShardPlan":
        """A hand-built plan (e.g. operator-defined districts): each inner
        list becomes one shard and one routing group."""
        shards = []
        for index, pids in enumerate(provider_lists):
            capacity = sum(problem.providers[i].capacity for i in pids)
            shards.append(ShardSpec(index, tuple(pids), capacity))
        groups = [list(pids) for pids in provider_lists]
        return cls(
            shards=shards,
            groups=groups,
            group_to_shard=list(range(len(groups))),
            delta=float("inf"),
        )


def plan_shards(
    problem: CCAProblem,
    num_shards: int,
    delta: Optional[float] = None,
) -> ShardPlan:
    """Partition the providers into ≤ ``num_shards`` provider-disjoint,
    capacity-balanced shards of δ-bounded Hilbert groups."""
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    if delta is None:
        delta = PAPER_DEFAULTS["sa_delta"]
    world = problem.world_mbr()
    point_groups = hilbert_greedy_groups(
        [q.point for q in problem.providers], delta, world.lo, world.hi
    )
    groups = [[p.pid for p in members] for members in point_groups]
    group_caps = [
        sum(problem.providers[i].capacity for i in members) for members in groups
    ]
    ranges = balanced_bundles(group_caps, num_shards)
    shards: List[ShardSpec] = []
    group_to_shard = [0] * len(groups)
    for index, (start, end) in enumerate(ranges):
        provider_ids: List[int] = []
        for g in range(start, end):
            provider_ids.extend(groups[g])
            group_to_shard[g] = index
        shards.append(
            ShardSpec(index, tuple(provider_ids), sum(group_caps[start:end]),)
        )
    return ShardPlan(
        shards=shards,
        groups=groups,
        group_to_shard=group_to_shard,
        delta=float(delta),
    )


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def _provider_xy(problem: CCAProblem) -> np.ndarray:
    return np.array(
        [q.point.coords for q in problem.providers], dtype=float
    ).reshape(len(problem.providers), 2)


def _customer_xy(problem: CCAProblem) -> np.ndarray:
    return np.array(
        [p.point.coords for p in problem.customers], dtype=float
    ).reshape(len(problem.customers), 2)


def nearest_providers(problem: CCAProblem) -> Tuple[np.ndarray, np.ndarray]:
    """Per customer: (globally nearest provider id, its distance).

    Chunked NumPy broadcast — no SciPy dependency in the core package.
    """
    qxy = _provider_xy(problem)
    pxy = _customer_xy(problem)
    nearest = np.empty(len(pxy), dtype=np.int64)
    distance = np.empty(len(pxy), dtype=float)
    for start in range(0, len(pxy), _CHUNK):
        chunk = pxy[start : start + _CHUNK]
        d = np.hypot(
            chunk[:, None, 0] - qxy[None, :, 0],
            chunk[:, None, 1] - qxy[None, :, 1],
        )
        idx = np.argmin(d, axis=1)  # ties -> lowest provider id
        nearest[start : start + len(chunk)] = idx
        distance[start : start + len(chunk)] = d[np.arange(len(chunk)), idx]
    return nearest, distance


def route_nearest(problem: CCAProblem, plan: ShardPlan) -> List[Dict[int, int]]:
    """Each customer (with its full weight) follows its nearest provider's
    shard.  Over-subscription is allowed — the residual pass mops it up."""
    nearest, _ = nearest_providers(problem)
    routed: List[Dict[int, int]] = [dict() for _ in plan.shards]
    for j, customer in enumerate(problem.customers):
        if customer.weight <= 0:
            continue
        shard = plan.shard_of_provider[int(nearest[j])]
        routed[shard][j] = customer.weight
    return routed


def route_concise(
    problem: CCAProblem,
    plan: ShardPlan,
    backend: BackendLike = DEFAULT_BACKEND,
    index_backend: Optional[IndexBackendLike] = None,
) -> List[Dict[int, int]]:
    """SA's concise matching as a capacity-respecting router.

    Every δ-group becomes a representative provider (capacity-weighted
    centroid, summed capacity) and the representative ↔ customer CCA is
    solved exactly; each matched customer unit then follows its
    representative's shard.  Routed demand per shard never exceeds shard
    capacity, so every routed unit is matched by the per-shard solves.
    """
    from repro.core.problem import Provider
    from repro.geometry.point import Point

    representatives = []
    for rep_id, members in enumerate(plan.groups):
        points = [problem.providers[i].point for i in members]
        capacities = [problem.providers[i].capacity for i in members]
        x, y = capacity_weighted_centroid(points, capacities)
        representatives.append(Provider(Point(rep_id, (x, y)), sum(capacities)))
    concise_problem = CCAProblem(
        representatives,
        problem.customers,
        page_size=problem.page_size,
        buffer_fraction=problem.buffer_fraction,
    )
    # attach_rtree adopts the shared tree's backend, so the concise
    # routing solve streams neighbors on the selected index kernel.
    concise_problem.attach_rtree(problem.rtree(index_backend=index_backend))
    solver = IDASolver(concise_problem, use_pua=True, cold_start=False, backend=backend)
    solver.solve()
    routed: List[Dict[int, int]] = [dict() for _ in plan.shards]
    for rep_id, customer_id, _, units in solver.net.matching_flows():
        shard = plan.group_to_shard[rep_id]
        bucket = routed[shard]
        bucket[customer_id] = bucket.get(customer_id, 0) + units
    return routed


# ----------------------------------------------------------------------
# per-shard tasks (picklable; solved in worker processes)
# ----------------------------------------------------------------------
# FAULT_ENV (re-exported above) is the deprecated env hook; faults now
# travel as a FaultPlan ON the task, resolved once by the coordinator —
# workers never read the environment (see repro.core.faults).
_ = FAULT_ENV


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to solve one shard.

    Deliberately column-free: coordinates, capacities, shard membership,
    and routed weights live in the shared segment behind ``store``, so a
    task pickles to a few hundred bytes regardless of instance size.
    """

    index: int
    method: str
    backend: str
    index_backend: str
    use_pua: bool
    ann_group_size: int
    use_fast_path: bool
    theta: Optional[float]
    page_size: int
    buffer_fraction: float
    need_net: bool
    store: Optional[StoreHandle] = None
    # Supervision extras: the coordinator-resolved fault schedule (tests
    # and chaos runs; None in production) and the retry attempt this
    # execution represents — both travel WITH the task so workers need
    # no ambient state.
    faults: Optional[FaultPlan] = None
    attempt: int = 0


class _TaskColumns(NamedTuple):
    """One shard's slice of the shared columns (safe, owned copies)."""

    provider_ids: np.ndarray
    provider_xy: np.ndarray
    capacities: np.ndarray
    customer_ids: np.ndarray
    customer_xy: np.ndarray
    customer_weights: np.ndarray


def _task_columns(task: ShardTask) -> _TaskColumns:
    """Materialize the shard's columns from the shared segment.

    ``attach`` is a cached zero-copy mapping; the per-shard subsets are
    explicit copies (fancy indexing copies, slices are ``.copy()``-ed)
    because problems and warm sessions built from them must stay valid
    after the segment is unlinked.
    """
    cols = attach(task.store)
    s = task.index
    qid = cols["qid"][cols["qptr"][s] : cols["qptr"][s + 1]]
    pid = cols["pid"][cols["pptr"][s] : cols["pptr"][s + 1]]
    pw = cols["pw"][cols["pptr"][s] : cols["pptr"][s + 1]]
    return _TaskColumns(
        provider_ids=qid.copy(),
        provider_xy=cols["q_xy"][qid],
        capacities=cols["q_cap"][qid],
        customer_ids=pid.copy(),
        customer_xy=cols["p_xy"][pid],
        customer_weights=pw.copy(),
    )


@dataclass
class ShardResult:
    """A worker's answer: global-id pairs plus bookkeeping."""

    index: int
    pairs: List[Tuple[int, int, float]]
    cpu_s: float
    esub_edges: int
    dijkstra_runs: int
    nn_requests: int
    io_faults: int
    gamma: int
    net: Optional[object] = None
    # Per-stage pipeline wall times of the shard's solve (summed across
    # shards into the top-level SolverStats.stage_s — sharded runs keep
    # the `repro-cca profile` surface).
    stage_s: Dict[str, float] = field(default_factory=dict)


def _task_problem(task: ShardTask, cols: Optional[_TaskColumns] = None) -> CCAProblem:
    if cols is None:
        cols = _task_columns(task)
    return CCAProblem.from_arrays(
        cols.provider_xy,
        cols.capacities,
        cols.customer_xy,
        customer_weights=cols.customer_weights,
        page_size=task.page_size,
        buffer_fraction=task.buffer_fraction,
    )


def _build_solver(problem: CCAProblem, task: ShardTask):
    if task.method == "ida":
        return IDASolver(
            problem,
            use_pua=task.use_pua,
            ann_group_size=task.ann_group_size,
            use_fast_path=task.use_fast_path,
            backend=task.backend,
            index_backend=task.index_backend,
        )
    if task.method == "nia":
        return NIASolver(
            problem,
            use_pua=task.use_pua,
            ann_group_size=task.ann_group_size,
            backend=task.backend,
            index_backend=task.index_backend,
        )
    if task.method == "ria":
        theta = task.theta
        if theta is None:
            theta = default_theta(max(1, len(problem.customers)))
        return RIASolver(
            problem,
            theta=theta,
            backend=task.backend,
            index_backend=task.index_backend,
        )
    raise ValueError(
        f"unknown shard method {task.method!r}; expected one of " f"{SHARD_METHODS}"
    )


def solve_shard_task(task: ShardTask) -> ShardResult:
    """Solve one shard to optimality (runs inside a worker process)."""
    where = f"shard {task.index}, attempt {task.attempt}"
    poison = attach_spec = None
    if task.faults is not None:
        spec = task.faults.match("worker", task.index, task.attempt)
        if spec is not None:
            if spec.kind == "poison":
                poison = spec  # corrupt the result after solving
            else:
                trigger(spec, where=where)
        attach_spec = task.faults.match("attach", task.index, task.attempt)
    with attach_fault(attach_spec, where=where):
        cols = _task_columns(task)
    if cols.customer_ids.size == 0 or int(cols.capacities.sum()) == 0:
        # Nothing to solve (γ = 0) — but the shard still wants a
        # (trivially solved) network of the right shape so the
        # reconciliation pass can adopt it as a warm session and move
        # boundary customers into any unused capacity.
        net = None
        if task.need_net and cols.capacities.size:
            net = get_backend(task.backend).network(
                cols.capacities.tolist(), cols.customer_weights.tolist()
            )
        result = ShardResult(task.index, [], 0.0, 0, 0, 0, 0, 0, net=net)
        return poison_result(result) if poison is not None else result
    problem = _task_problem(task, cols)
    solver = _build_solver(problem, task)
    matching = solver.solve()
    pids = cols.provider_ids
    cids = cols.customer_ids
    pairs = [(int(pids[i]), int(cids[j]), d) for i, j, d in matching.pairs]
    stats = solver.stats
    result = ShardResult(
        index=task.index,
        pairs=pairs,
        cpu_s=stats.cpu_s,
        esub_edges=stats.esub_edges,
        dijkstra_runs=stats.dijkstra_runs,
        nn_requests=stats.nn_requests,
        io_faults=stats.io.faults,
        gamma=stats.gamma,
        net=solver.net if task.need_net else None,
        stage_s=dict(stats.stage_s),
    )
    return poison_result(result) if poison is not None else result


def _make_tasks(
    problem: CCAProblem,
    plan: ShardPlan,
    routed: List[Dict[int, int]],
    method: str,
    backend_names: List[str],
    index_backend_name: str,
    use_pua: bool,
    ann_group_size: int,
    use_fast_path: bool,
    theta: Optional[float],
    need_net: bool,
) -> Tuple[List[ShardTask], SharedColumnStore]:
    """Pack the instance columns into one shared segment + slim tasks.

    The caller owns the returned store and must ``close_and_unlink`` it
    (in a ``finally``) once the results — and any reconciliation built on
    them — are in hand.
    """
    qid_parts: List[np.ndarray] = []
    pid_parts: List[np.ndarray] = []
    pw_parts: List[np.ndarray] = []
    qptr = [0]
    pptr = [0]
    for spec in plan.shards:
        qid_parts.append(np.asarray(spec.provider_ids, dtype=np.int64))
        qptr.append(qptr[-1] + len(spec.provider_ids))
        bucket = routed[spec.index]
        customer_ids = sorted(bucket)
        pid_parts.append(np.asarray(customer_ids, dtype=np.int64))
        pw_parts.append(np.asarray([bucket[j] for j in customer_ids], dtype=np.int64))
        pptr.append(pptr[-1] + len(customer_ids))
    store = SharedColumnStore(
        {
            "q_xy": _provider_xy(problem),
            "q_cap": np.asarray(
                [q.capacity for q in problem.providers], dtype=np.int64
            ),
            "p_xy": _customer_xy(problem),
            "qid": np.concatenate(qid_parts),
            "qptr": np.asarray(qptr, dtype=np.int64),
            "pid": np.concatenate(pid_parts),
            "pw": np.concatenate(pw_parts),
            "pptr": np.asarray(pptr, dtype=np.int64),
        }
    )
    tasks = [
        ShardTask(
            index=spec.index,
            method=method,
            backend=backend_names[spec.index],
            index_backend=index_backend_name,
            use_pua=use_pua,
            ann_group_size=ann_group_size,
            use_fast_path=use_fast_path,
            theta=theta,
            page_size=problem.page_size,
            buffer_fraction=problem.buffer_fraction,
            need_net=need_net,
            store=store.handle,
        )
        for spec in plan.shards
    ]
    return tasks, store


def _requeue_cold(task: ShardTask) -> ShardResult:
    """Re-solve a given-up shard in the coordinator, fault-free.

    The per-shard solvers are deterministic, so this produces exactly the
    result a healthy worker would have returned — the supervisor's
    certify-or-fall-back guarantee rests on that.
    """
    return solve_shard_task(replace(task, faults=None, attempt=0))


def _verify_shard_result(task: ShardTask, result: ShardResult) -> Optional[str]:
    """Cheap coordinator-side plausibility certificate for a worker's
    answer; a lying (poisoned) result reads as a fault, not a matching.

    Returns an error string, or None when the result certifies: pair ids
    inside the shard's provider/routed-customer sets, stored distances
    matching the shared coordinate columns, per-provider/per-customer
    feasibility, and the claimed γ equal to the pair count.
    """
    if result.index != task.index:
        return f"result for shard {result.index} answers task {task.index}"
    cols = _task_columns(task)
    if len(result.pairs) != result.gamma:
        return (f"claimed gamma {result.gamma} != {len(result.pairs)} pairs")
    providers = {int(i) for i in cols.provider_ids}
    capacity = {
        int(i): int(c) for i, c in zip(cols.provider_ids, cols.capacities, strict=False)
    }
    weight = {
        int(j): int(w)
        for j, w in zip(cols.customer_ids, cols.customer_weights, strict=False)
    }
    qxy = {
        int(i): xy for i, xy in zip(cols.provider_ids, cols.provider_xy, strict=False)
    }
    pxy = {
        int(j): xy for j, xy in zip(cols.customer_ids, cols.customer_xy, strict=False)
    }
    used: Dict[int, int] = {}
    served: Dict[int, int] = {}
    for i, j, d in result.pairs:
        if i not in providers:
            return f"pair provider {i} outside shard {task.index}"
        if j not in weight:
            return f"pair customer {j} not routed to shard {task.index}"
        actual = float(np.hypot(qxy[i][0] - pxy[j][0], qxy[i][1] - pxy[j][1]))
        if abs(actual - d) > 1e-6:
            return (f"pair ({i},{j}) distance {d!r} != actual {actual!r}")
        used[i] = used.get(i, 0) + 1
        served[j] = served.get(j, 0) + 1
        if used[i] > capacity[i]:
            return f"provider {i} over capacity {capacity[i]}"
        if served[j] > weight[j]:
            return f"customer {j} over weight {weight[j]}"
    return None


def _run_tasks(
    tasks: List[ShardTask],
    workers: Optional[int],
    mp_context=None,
    policy: Optional[RetryPolicy] = None,
    ledger: Optional[FaultLedger] = None,
) -> List[ShardResult]:
    return run_supervised(
        tasks,
        solve=solve_shard_task,
        fallback=_requeue_cold,
        verify=_verify_shard_result,
        workers=workers,
        mp_context=mp_context,
        policy=policy,
        ledger=ledger,
    )


# ----------------------------------------------------------------------
# reconciliation
# ----------------------------------------------------------------------
def _reconcile_boundaries(
    problem: CCAProblem,
    plan: ShardPlan,
    tasks: List[ShardTask],
    results: List[ShardResult],
    max_moves: int,
    patience: int,
) -> Tuple[List[Tuple[int, int, float]], int, int, int]:
    """Bounded cross-shard improvement via warm Matcher sessions.

    Candidates are matched unit-weight customers whose nearest cross-shard
    provider is strictly closer than their assigned provider.  A move
    removes the customer from its shard's session, adds it to the target
    shard's session, and warm re-assigns both; the target's SSP re-solve
    reroutes internally when the closer provider is saturated.  Moves that
    do not lower the combined objective are reverted, so this pass is
    monotone non-increasing in cost and preserves matching size exactly.

    Candidates are computed *first* (cheap vectorized NumPy) and warm
    sessions are built lazily, only for shards a candidate actually
    touches: adopting a session rebuilds the shard problem and its
    R-tree, which used to dominate the pass on well-separated instances
    with nothing to move (the |Q|=250 bench point paid 0.19s of session
    builds against a 0.16s solve for zero accepted moves).  Shards with
    no session contribute their worker pairs unchanged, which is exactly
    what the eager version produced for them — the accept/reject
    decisions are unchanged because the batch test compares cost *deltas*
    and untouched sessions only ever contributed constants.

    Attempts stop after ``patience`` consecutive rejections (deterministic
    early exit): candidates are ordered by estimated gain, so a streak of
    failures means the remaining, lower-gain candidates are near-certain
    losers — and in the capacity-saturated regime each attempt may cost a
    cold shard re-solve, which is exactly when bailing out matters.

    Returns the merged global pairs, accepted move count, attempted
    count, and the number of sessions actually built.
    """
    has_net = {r.index for r in results if r.net is not None}
    columns: Dict[int, _TaskColumns] = {
        task.index: _task_columns(task) for task in tasks
    }

    # Current assignment of every matched unit-weight customer, the
    # routed-but-unmatched ones, and each shard's worst matched distance.
    assigned: Dict[int, Tuple[int, float]] = {}
    worst_matched: Dict[int, float] = {}
    for result in results:
        for i, j, d in result.pairs:
            if problem.customers[j].weight == 1:
                assigned[j] = (i, d)
            worst_matched[result.index] = max(worst_matched.get(result.index, 0.0), d)
    unmatched: Dict[int, int] = {}
    for task in tasks:
        if task.index not in has_net:
            continue
        for j in columns[task.index].customer_ids:
            j = int(j)
            if j not in assigned and problem.customers[j].weight == 1:
                unmatched[j] = task.index

    candidates = _move_candidates(
        problem, plan, assigned, unmatched, worst_matched, max_moves
    )

    needed = set()
    for j, target, _gain in candidates:
        if j in assigned:
            needed.add(plan.shard_of_provider[assigned[j][0]])
        else:
            needed.add(unmatched[j])
        needed.add(target)
    needed &= has_net

    sessions: Dict[int, Matcher] = {}
    local_to_global: Dict[int, List[int]] = {}
    global_to_local: Dict[int, Tuple[int, int]] = {}
    task_by_index = {task.index: task for task in tasks}
    result_by_index = {result.index: result for result in results}
    for index in sorted(needed):
        task = task_by_index[index]
        cols = columns[index]
        sessions[index] = Matcher.from_solved(
            _task_problem(task, cols),
            result_by_index[index].net,
            backend=task.backend,
            index_backend=task.index_backend,
        )
        ids = [int(j) for j in cols.customer_ids]
        local_to_global[index] = list(ids)
        for local_j, global_j in enumerate(ids):
            global_to_local[global_j] = (index, local_j)

    mover = _SessionMover(problem, sessions, local_to_global, global_to_local, assigned)
    moves, attempted = mover.run(candidates, patience)

    pairs: List[Tuple[int, int, float]] = []
    for index in sorted(sessions):
        pids = columns[index].provider_ids
        mapping = local_to_global[index]
        for i_local, j_local, d in sessions[index].current_pairs():
            pairs.append((int(pids[i_local]), mapping[j_local], d))
    # Shards without a session (no candidate touched them, or skipped
    # empties) contribute their worker pairs unchanged.
    for result in results:
        if result.index not in sessions:
            pairs.extend(result.pairs)
    return pairs, moves, attempted, len(sessions)


class _SessionMover:
    """Executes candidate moves against the per-shard warm sessions.

    Strategy: apply *all* candidates as one delta batch and re-assign
    every touched session once (two warm re-solves per shard instead of
    two per move).  Keep the batch iff it lowers the combined objective
    without changing the matched count; otherwise revert it wholesale and
    retry the top candidates one at a time (with the ``patience``
    early-exit), which salvages the good moves a bad batch member hid.
    Either way the pass is monotone non-increasing in cost and preserves
    the matching size exactly.
    """

    def __init__(self, problem, sessions, local_to_global, global_to_local, assigned):
        self.problem = problem
        self.sessions = sessions
        self.local_to_global = local_to_global
        self.global_to_local = global_to_local
        self.assigned = assigned

    # -- session-state helpers -----------------------------------------
    def _totals(self) -> Tuple[float, int]:
        cost = sum(m.net.matching_cost() for m in self.sessions.values())
        matched = sum(m.net.matched for m in self.sessions.values())
        return cost, matched

    def _viable(self, j: int, source, target) -> bool:
        """Can this move preserve the matching size?

        A *matched* unit stays matched iff the target has spare capacity
        or the source is over-subscribed (its γ stays at capacity after
        the removal while the saturated target may swap its worst unit
        out for the arrival).  An *unmatched* customer only helps when
        the saturated target swaps for it — targets with spare capacity
        are the residual pass's job (matching there would grow |M|,
        which the cost-only accept test cannot credit).
        """
        target_spare = target.net.spare_capacity() > 0
        if j in self.assigned:
            source_surplus = (sum(source.net.p_cap) - source.net.matched >= 1)
            return target_spare or source_surplus
        return not target_spare

    def _apply(self, j: int, target_shard: int):
        """Move j's delta to the target session; returns an undo token."""
        source_shard, local_j = self.global_to_local[j]
        source = self.sessions[source_shard]
        target = self.sessions[target_shard]
        xy = self.problem.customers[j].point.coords
        source.remove_customer(local_j)
        new_local = target.add_customer(xy)
        # Every add_customer call extends the session's customer list,
        # so the local->global map must grow in lockstep — even for
        # adds that a revert immediately tombstones.
        self.local_to_global[target_shard].append(j)
        self.global_to_local[j] = (target_shard, new_local)
        return (j, source_shard, target_shard, new_local, xy)

    def _undo(self, token) -> None:
        j, source_shard, target_shard, new_local, xy = token
        self.sessions[target_shard].remove_customer(new_local)
        back_local = self.sessions[source_shard].add_customer(xy)
        self.local_to_global[source_shard].append(j)
        self.global_to_local[j] = (source_shard, back_local)

    def _assign(self, shard_indices) -> None:
        for index in sorted(shard_indices):
            self.sessions[index].assign()

    # -- strategies ----------------------------------------------------
    def run(self, candidates, patience: int) -> Tuple[int, int]:
        candidates = [
            (j, target, gain)
            for j, target, gain in candidates
            if self._filter(j, target)
        ]
        if not candidates:
            return 0, 0
        accepted = self._batch(candidates)
        if accepted:
            return len(candidates), 1
        if len(candidates) == 1:
            return 0, 1  # the batch WAS the single per-move attempt
        moves, attempted = self._per_move(candidates, patience)
        return moves, attempted + 1

    def _filter(self, j: int, target_shard: int) -> bool:
        if j not in self.global_to_local:
            return False  # source shard has no session (net-less shard)
        source_shard, _ = self.global_to_local[j]
        if source_shard == target_shard:
            return False
        source = self.sessions.get(source_shard)
        target = self.sessions.get(target_shard)
        if source is None or target is None:
            return False
        return self._viable(j, source, target)

    def _batch(self, candidates) -> bool:
        before_cost, before_matched = self._totals()
        tokens = []
        touched = set()
        for j, target_shard, _ in candidates:
            source_shard, _local = self.global_to_local[j]
            tokens.append(self._apply(j, target_shard))
            touched.add(source_shard)
            touched.add(target_shard)
        self._assign(touched)
        after_cost, after_matched = self._totals()
        if (after_matched == before_matched and after_cost < before_cost - 1e-12):
            return True
        for token in reversed(tokens):
            self._undo(token)
        self._assign(touched)
        return False

    def _per_move(self, candidates, patience: int) -> Tuple[int, int]:
        moves = attempted = 0
        consecutive_rejects = 0
        for j, target_shard, _gain in candidates:
            if patience > 0 and consecutive_rejects >= patience:
                break
            if not self._filter(j, target_shard):
                continue
            attempted += 1
            source_shard, _local = self.global_to_local[j]
            before_cost, before_matched = self._totals()
            token = self._apply(j, target_shard)
            self._assign({source_shard, target_shard})
            after_cost, after_matched = self._totals()
            if (after_matched == before_matched and after_cost < before_cost - 1e-12):
                moves += 1
                consecutive_rejects = 0
            else:
                self._undo(token)
                self._assign({source_shard, target_shard})
                consecutive_rejects += 1
        return moves, attempted


def _move_candidates(
    problem: CCAProblem,
    plan: ShardPlan,
    assigned: Dict[int, Tuple[int, float]],
    unmatched: Dict[int, int],
    worst_matched: Dict[int, float],
    max_moves: int,
) -> List[Tuple[int, int, float]]:
    """Top-gain (customer, target shard, gain) triples, best first.

    Two candidate kinds:

    * a *matched* customer whose nearest cross-shard provider is closer
      than its assigned one (gain = distance saved by re-homing);
    * an *unmatched* customer that is closer to some other shard's
      providers than that shard's worst matched unit (gain = the swap's
      estimated saving — the target re-solve trades its worst unit out).
    """
    if max_moves <= 0 or not (assigned or unmatched):
        return []
    qxy = _provider_xy(problem)
    num_shards = plan.num_shards
    shard_of = np.array(
        [plan.shard_of_provider[i] for i in range(len(qxy))], dtype=np.int64
    )
    shard_cols = [np.flatnonzero(shard_of == s) for s in range(num_shards)]
    worst = np.array([worst_matched.get(s, 0.0) for s in range(num_shards)])

    matched_items = sorted(assigned.items())
    unmatched_items = sorted(unmatched.items())
    n_matched = len(matched_items)
    all_j = [j for j, _ in matched_items] + [j for j, _ in unmatched_items]
    pxy = np.array(
        [problem.customers[j].point.coords for j in all_j], dtype=float
    ).reshape(len(all_j), 2)
    source = np.array(
        [plan.shard_of_provider[i] for _, (i, _) in matched_items]
        + [s for _, s in unmatched_items],
        dtype=np.int64,
    )
    d_cur = np.array([d for _, (_, d) in matched_items])

    out: List[Tuple[int, int, float]] = []
    for start in range(0, len(all_j), _CHUNK):
        end = min(start + _CHUNK, len(all_j))
        chunk = pxy[start:end]
        d = np.hypot(
            chunk[:, None, 0] - qxy[None, :, 0],
            chunk[:, None, 1] - qxy[None, :, 1],
        )
        # Per-customer minimum distance into each shard's provider set.
        per_shard = np.full((len(chunk), num_shards), np.inf)
        for s, cols in enumerate(shard_cols):
            if len(cols):
                per_shard[:, s] = d[:, cols].min(axis=1)
        rows = np.arange(len(chunk))
        per_shard[rows, source[start:end]] = np.inf  # own shard excluded
        # Matched rows: gain = current distance − nearest foreign provider.
        m_rows = rows[start + rows < n_matched]
        if len(m_rows):
            best = np.argmin(per_shard[m_rows], axis=1)
            gains = d_cur[start + m_rows] - per_shard[m_rows, best]
            for row, shard, gain in zip(m_rows, best, gains, strict=False):
                if gain > _EPS:
                    out.append((all_j[start + row], int(shard), float(gain)))
        # Unmatched rows: gain = target's worst matched unit − entry cost
        # (shards with no matched pairs have worst 0 ⇒ never positive).
        u_rows = rows[start + rows >= n_matched]
        if len(u_rows):
            swap_gains = worst[None, :] - per_shard[u_rows]
            best = np.argmax(swap_gains, axis=1)
            gains = swap_gains[np.arange(len(u_rows)), best]
            for row, shard, gain in zip(u_rows, best, gains, strict=False):
                if gain > _EPS:
                    out.append((all_j[start + row], int(shard), float(gain)))
    out.sort(key=lambda item: (-item[2], item[0]))
    return out[:max_moves]


# ----------------------------------------------------------------------
# residual pass
# ----------------------------------------------------------------------
def _residual_pairs(
    problem: CCAProblem,
    pairs: List[Tuple[int, int, float]],
    backend: str,
    index_backend: str,
) -> Tuple[List[Tuple[int, int, float]], Dict[str, int]]:
    """Match leftover demand against leftover capacity (restores γ)."""
    used = [0] * len(problem.providers)
    matched = [0] * len(problem.customers)
    for i, j, _ in pairs:
        used[i] += 1
        matched[j] += 1
    spare_ids = [i for i, q in enumerate(problem.providers) if q.capacity - used[i] > 0]
    open_ids = [j for j, p in enumerate(problem.customers) if p.weight - matched[j] > 0]
    info = {"providers": len(spare_ids), "customers": len(open_ids)}
    if not spare_ids or not open_ids:
        info["matched"] = 0
        return [], info
    residual = CCAProblem.from_arrays(
        [problem.providers[i].point.coords for i in spare_ids],
        [problem.providers[i].capacity - used[i] for i in spare_ids],
        [problem.customers[j].point.coords for j in open_ids],
        customer_weights=[problem.customers[j].weight - matched[j] for j in open_ids],
        page_size=problem.page_size,
        buffer_fraction=problem.buffer_fraction,
    )
    solver = IDASolver(residual, backend=backend, index_backend=index_backend)
    matching = solver.solve()
    extra = [(spare_ids[i], open_ids[j], d) for i, j, d in matching.pairs]
    info["matched"] = len(extra)
    return extra, info


# ----------------------------------------------------------------------
# the engine façade
# ----------------------------------------------------------------------
def _backend_names(
    backend: Union[BackendLike, Sequence[BackendLike]], num_shards: int
) -> List[str]:
    """Normalize the per-shard backend selection to one name per shard."""
    if isinstance(backend, (list, tuple)):
        if len(backend) != num_shards:
            raise ValueError(
                f"per-shard backend list has {len(backend)} entries for "
                f"{num_shards} shards"
            )
        return [get_backend(b).name for b in backend]
    name = get_backend(backend).name
    return [name] * num_shards


def solve_sharded(
    problem: CCAProblem,
    shards: int,
    *,
    workers: Optional[int] = None,
    method: str = "ida",
    router: str = "nearest",
    delta: Optional[float] = None,
    backend: Union[BackendLike, Sequence[BackendLike]] = DEFAULT_BACKEND,
    index_backend: Optional[IndexBackendLike] = None,
    reconcile: bool = True,
    max_moves: int = 32,
    patience: int = 4,
    use_pua: bool = True,
    ann_group_size: Optional[int] = None,
    use_fast_path: bool = True,
    theta: Optional[float] = None,
    mp_context=None,
    plan: Optional[ShardPlan] = None,
    validate: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> Matching:
    """Solve a CCA instance with the sharded parallel engine.

    Parameters
    ----------
    shards:
        Requested shard count (the plan may produce fewer when the
        instance has fewer δ-groups).  ``shards=1`` is the serial solver,
        bit-identical to ``solve(problem, method)``.
    workers:
        Worker *processes* for the per-shard solves; ``None``/``1`` solves
        inline (deterministic either way — results are merged in shard
        order).
    router:
        ``"nearest"`` or ``"concise"`` (see module docstring).
    delta:
        Group diagonal for planning (and concise routing); defaults to
        the paper's SA sweet spot from ``PAPER_DEFAULTS``.
    backend:
        Flow-kernel selection: one name/instance for every shard, or a
        sequence with one entry per shard.
    index_backend:
        Spatial-index kernel for every per-shard tree, the concise
        router, and the residual pass (see :mod:`repro.rtree.backend`);
        ``None`` follows the problem's default.
    reconcile / max_moves / patience:
        Enable the warm-session boundary improvement pass, cap its move
        attempts, and stop early after ``patience`` consecutive rejected
        moves (0 disables the early exit).
    plan:
        A prebuilt :class:`ShardPlan` (e.g. operator districts) to use
        instead of :func:`plan_shards`.
    validate:
        Assert validity/maximality of the merged matching (cheap; on by
        default because reconciliation spans solver boundaries).
    fault_plan:
        A :class:`~repro.core.faults.FaultPlan` to inject at the worker
        and shm-attach seams (chaos testing).  ``None`` falls back to the
        deprecated ``REPRO_SHARD_FAULT_INDEX`` env alias, resolved once
        here in the coordinator; pass :meth:`FaultPlan.none` to disable
        even that.  The supervisor guarantees the returned matching is
        bit-identical to the fault-free run regardless.  Not consulted by
        the ``shards=1`` serial fall-through, which never leaves this
        process.
    retry_policy:
        Supervision knobs (:class:`~repro.core.supervisor.RetryPolicy`):
        retries, per-task deadline, backoff, requeue-cold.  The surviving
        :class:`~repro.core.faults.FaultLedger` lands on
        ``stats.faults`` (and ``stats.extra["faults"]`` when non-empty).
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    if router not in ROUTERS:
        raise ValueError(f"unknown router {router!r}; expected one of {ROUTERS}")
    if method not in SHARD_METHODS:
        raise ValueError(
            f"sharded solve supports per-shard methods {SHARD_METHODS}, "
            f"got {method!r}"
        )
    if ann_group_size is None:
        ann_group_size = PAPER_DEFAULTS["ann_group_size"]
    # The ONE place fault schedules are resolved (explicit plan beats the
    # deprecated env alias) — workers only see what rides on their task.
    fault_plan = resolve_fault_plan(fault_plan)
    index_backend_name = resolve_index_backend(problem, index_backend).name
    started = time.perf_counter()
    if shards == 1 and plan is None:
        # Serial fall-through: one shard IS the whole problem, and going
        # through the task machinery would only re-index it.
        names = _backend_names(backend, 1)
        task = ShardTask(
            index=0,
            method=method,
            backend=names[0],
            index_backend=index_backend_name,
            use_pua=use_pua,
            ann_group_size=ann_group_size,
            use_fast_path=use_fast_path,
            theta=theta,
            page_size=problem.page_size,
            buffer_fraction=problem.buffer_fraction,
            need_net=False,
        )
        solver = _build_solver(problem, task)
        matching = solver.solve()
        matching.stats.extra.update({"shards": 1, "workers": 1, "router": "serial"})
        return matching

    if plan is None:
        plan = plan_shards(problem, shards, delta=delta)
    else:
        _check_plan(plan, problem)
    backend_names = _backend_names(backend, plan.num_shards)

    plan_done = time.perf_counter()
    if router == "nearest":
        routed = route_nearest(problem, plan)
    else:
        routed = route_concise(
            problem,
            plan,
            backend=backend_names[0],
            index_backend=index_backend_name,
        )
    route_done = time.perf_counter()

    tasks, store = _make_tasks(
        problem,
        plan,
        routed,
        method,
        backend_names,
        index_backend_name,
        use_pua,
        ann_group_size,
        use_fast_path,
        theta,
        need_net=reconcile,
    )
    if fault_plan is not None:
        tasks = [replace(task, faults=fault_plan) for task in tasks]
    ledger = FaultLedger()
    # The segment must outlive reconciliation (sessions slice it) but is
    # gone before we return — even when a worker raises mid-solve.
    try:
        results = _run_tasks(
            tasks,
            workers,
            mp_context=mp_context,
            policy=retry_policy,
            ledger=ledger,
        )
        solve_done = time.perf_counter()

        moves = attempted = sessions_built = 0
        if reconcile:
            pairs, moves, attempted, sessions_built = _reconcile_boundaries(
                problem, plan, tasks, results, max_moves, patience
            )
        else:
            pairs = [pair for result in results for pair in result.pairs]
    finally:
        store.close_and_unlink()
    reconcile_done = time.perf_counter()

    residual, residual_info = _residual_pairs(
        problem, pairs, backend_names[0], index_backend_name
    )
    pairs = pairs + residual

    stats = SolverStats(method=f"shard-{method}", gamma=problem.gamma)
    stats.faults = ledger
    if len(ledger):
        stats.extra["faults"] = ledger.summary()
    stats.esub_edges = sum(r.esub_edges for r in results)
    stats.dijkstra_runs = sum(r.dijkstra_runs for r in results)
    stats.nn_requests = sum(r.nn_requests for r in results)
    for result in results:
        for stage, seconds in result.stage_s.items():
            stats.add_stage(stage, seconds)
    stats.cpu_s = time.perf_counter() - started
    stats.extra.update(
        {
            "shards": plan.num_shards,
            "workers": workers or 1,
            "router": router,
            "delta": plan.delta,
            "backends": backend_names,
            "index_backend": index_backend_name,
            "plan_s": plan_done - started,
            "route_s": route_done - plan_done,
            "solve_s": solve_done - route_done,
            "reconcile_s": reconcile_done - solve_done,
            "reconcile_moves": moves,
            "reconcile_attempted": attempted,
            "reconcile_sessions": sessions_built,
            "residual": residual_info,
            "per_shard": [
                {
                    "shard": r.index,
                    "providers": len(plan.shards[r.index].provider_ids),
                    "customers": len(routed[r.index]),
                    "gamma": r.gamma,
                    "cpu_s": r.cpu_s,
                    "esub": r.esub_edges,
                    "io_faults": r.io_faults,
                }
                for r in results
            ],
        }
    )
    matching = Matching(pairs, stats=stats)
    if validate:
        matching.validate(problem)
    return matching


# Public names for the reconciliation machinery: the serving layer
# (repro.serve.engine) runs the same candidate search and accept-or-revert
# mover against its long-lived shard sessions between delta groups.
move_candidates = _move_candidates
SessionMover = _SessionMover


def _check_plan(plan: ShardPlan, problem: CCAProblem) -> None:
    seen: Dict[int, int] = {}
    for spec in plan.shards:
        for pid in spec.provider_ids:
            if pid in seen:
                raise ValueError(
                    f"provider {pid} appears in shards {seen[pid]} and "
                    f"{spec.index}; shards must be provider-disjoint"
                )
            if not 0 <= pid < len(problem.providers):
                raise ValueError(f"provider id {pid} out of range")
            seen[pid] = spec.index
    if len(seen) != len(problem.providers):
        missing = set(range(len(problem.providers))) - set(seen)
        raise ValueError(
            f"shard plan does not cover providers {sorted(missing)[:5]}..."
        )
