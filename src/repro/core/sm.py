"""Spatial-matching (SM) greedy baseline — Section 2.3 related work.

The SM join of [12, 14] repeatedly reports the globally closest
(provider, customer) pair and removes both.  Generalized to capacities, a
provider is removed once it has served ``k`` customers.  SM performs *local*
assignments and therefore does not minimize the global cost Ψ — it is the
natural greedy comparator for CCA (and is exactly the "exclusive NN"
heuristic of Section 4.3 applied to the whole dataset).
"""

from __future__ import annotations

import heapq
import time
from typing import List, Tuple

from repro.core.matching import Matching, SolverStats
from repro.core.problem import CCAProblem
from repro.experiments.config import PAPER_DEFAULTS
from repro.rtree.backend import resolve_index_backend


class SMSolver:
    """Greedy exclusive closest-pair matching with capacities."""

    method = "sm"

    def __init__(
        self,
        problem: CCAProblem,
        ann_group_size: int = PAPER_DEFAULTS["ann_group_size"],
        cold_start: bool = True,
        backend="dict",
        index_backend=None,
    ):
        # SM is flow-free (pure greedy over NN streams); ``backend`` is
        # accepted for API uniformity with the other solvers and validated,
        # but selects nothing.
        from repro.flow.backend import get_backend

        self.backend = get_backend(backend)
        self.problem = problem
        self.index = resolve_index_backend(problem, index_backend)
        self.tree = problem.rtree(index_backend=self.index.name)
        self.ann_group_size = ann_group_size
        self.cold_start = cold_start
        self.stats = SolverStats(method=self.method, gamma=problem.gamma)
        self.stats.extra["index_backend"] = self.index.name

    def solve(self) -> Matching:
        if self.cold_start:
            self.tree.cold()
        io_before = self.tree.stats.snapshot()
        started = time.perf_counter()
        problem = self.problem
        remaining_cap = [q.capacity for q in problem.providers]
        remaining_w = [p.weight for p in problem.customers]
        ann = self.index.grouped_ann(
            self.tree,
            [q.point for q in problem.providers],
            group_size=self.ann_group_size,
        )

        # One pending candidate per provider, globally ordered by distance.
        heap: List[Tuple[float, int, int]] = []  # (dist, provider, customer)
        for i, _q in enumerate(problem.providers):
            if remaining_cap[i] > 0:
                self._refill(heap, ann, i)

        pairs: List[Tuple[int, int, float]] = []
        gamma = problem.gamma
        while heap and len(pairs) < gamma:
            d, i, j = heapq.heappop(heap)
            if remaining_cap[i] == 0:
                continue  # provider retired after this entry was queued
            if remaining_w[j] == 0:
                # Candidate already taken: advance this provider's stream.
                self._refill(heap, ann, i)
                continue
            pairs.append((i, j, d))
            remaining_w[j] -= 1
            remaining_cap[i] -= 1
            if remaining_cap[i] > 0:
                if remaining_w[j] > 0:
                    # Weighted customer with spare units: still this
                    # provider's best candidate at the same distance.
                    heapq.heappush(heap, (d, i, j))
                else:
                    self._refill(heap, ann, i)

        self.stats.cpu_s = time.perf_counter() - started
        self.stats.io = self.tree.stats.diff(io_before)
        return Matching(pairs, stats=self.stats)

    def _refill(self, heap, ann, provider: int) -> None:
        # Fused supply: the ANN reports (customer_id, distance) columns —
        # no Point materialization, no distance re-derivation.
        started = time.perf_counter()
        hit = ann.next_nn_ids(provider)
        self.stats.add_stage("supply", time.perf_counter() - started)
        self.stats.nn_requests += 1
        if hit is not None:
            customer, d = hit
            heapq.heappush(heap, (d, provider, customer))
