"""The paper's contribution: exact and approximate CCA solvers.

* :mod:`repro.core.problem` / :mod:`repro.core.matching` — the public data
  model (providers with capacities, customers, matchings with validation).
* :mod:`repro.core.engine` — the shared incremental SSPA engine built on
  Theorem 1 (certified shortest paths in a growing subgraph).
* :mod:`repro.core.ria` / :mod:`repro.core.nia` / :mod:`repro.core.ida` —
  Algorithms 2-4.
* :mod:`repro.core.approx` — Section 4's SA/CA approximations.
* :mod:`repro.core.sm` — the greedy spatial-matching baseline (related work).
* :mod:`repro.core.solve` — one-call façade.
* :mod:`repro.core.session` — long-lived :class:`Matcher` sessions with
  warm-started re-solves over the flow-backend seam.
* :mod:`repro.core.shard` — the sharded parallel assignment engine
  (provider-disjoint spatial shards, worker processes, warm-session
  boundary reconciliation).
"""

from repro.core.matching import Matching, SolverStats
from repro.core.problem import CCAProblem, Customer, Provider
from repro.core.session import Matcher
from repro.core.shard import ShardPlan, plan_shards, solve_sharded
from repro.core.solve import APPROX_METHODS, EXACT_METHODS, solve

__all__ = [
    "Provider",
    "Customer",
    "CCAProblem",
    "Matching",
    "SolverStats",
    "solve",
    "EXACT_METHODS",
    "APPROX_METHODS",
    "Matcher",
    "ShardPlan",
    "plan_shards",
    "solve_sharded",
]
