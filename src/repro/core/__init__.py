"""The paper's contribution: exact and approximate CCA solvers.

* :mod:`repro.core.problem` / :mod:`repro.core.matching` — the public data
  model (providers with capacities, customers, matchings with validation).
* :mod:`repro.core.engine` — the shared incremental SSPA engine built on
  Theorem 1 (certified shortest paths in a growing subgraph).
* :mod:`repro.core.ria` / :mod:`repro.core.nia` / :mod:`repro.core.ida` —
  Algorithms 2-4.
* :mod:`repro.core.approx` — Section 4's SA/CA approximations.
* :mod:`repro.core.sm` — the greedy spatial-matching baseline (related work).
* :mod:`repro.core.solve` — one-call façade.
* :mod:`repro.core.session` — long-lived :class:`Matcher` sessions with
  warm-started re-solves over the flow-backend seam.
"""

from repro.core.problem import Provider, Customer, CCAProblem
from repro.core.matching import Matching, SolverStats
from repro.core.solve import solve, EXACT_METHODS, APPROX_METHODS
from repro.core.session import Matcher

__all__ = [
    "Provider",
    "Customer",
    "CCAProblem",
    "Matching",
    "SolverStats",
    "solve",
    "EXACT_METHODS",
    "APPROX_METHODS",
    "Matcher",
]
