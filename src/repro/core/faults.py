"""Deterministic, composable fault injection for the shard runtime.

The sharded engine and the serving layer both run real production
hazards — worker processes crash, hang, or start slowly; shared-memory
segments vanish between creation and attach; a solver hands back a
corrupted result; a warm session's residual state dies.  Reproducing
those hazards on demand is what makes the supervision layer
(:mod:`repro.core.supervisor`) testable: a :class:`FaultPlan` names
exactly which fault fires where and when, the same plan replays the same
failure schedule in any process, and `repro-cca chaos` sweeps seeded
plans as a reproducible chaos harness.

Sites (where a fault can fire)
------------------------------
* ``"worker"`` — inside :func:`~repro.core.shard.solve_shard_task`,
  before/around the per-shard solve.  Occurrence axis: the task's retry
  *attempt* (0 = first try).
* ``"attach"`` — inside :func:`repro.core.shm.attach`, the worker's
  zero-copy mapping of the shared column segment.  Occurrence axis: the
  attempt, as above.
* ``"session"`` — a warm :class:`~repro.core.session.Matcher` owned by
  the serving engine dies (is marked dead and must be quarantined and
  rebuilt).  Occurrence axis: the service's delta-group index.

Kinds (what the fault does)
---------------------------
* ``"crash"`` — the worker process dies hard (``os._exit``); inside the
  coordinator process it degrades to raising :class:`FaultInjected`
  (killing the caller's interpreter would be a test hazard, not a
  simulated one).
* ``"error"`` — raise :class:`FaultInjected` (a clean worker exception).
* ``"hang"`` — sleep for ``delay_s`` (long; the supervisor's per-task
  deadline is what ends it).
* ``"slow"`` — sleep for ``delay_s``, then continue normally (slow
  start; exercises deadlines without losing the work).
* ``"poison"`` — complete the solve, then corrupt the result
  deterministically (the supervisor's verifier must catch it).

Matching is purely positional — ``(site, shard, occurrence)`` — so a
plan is deterministic by construction: no clocks, no randomness at fire
time.  :meth:`FaultPlan.from_seed` derives a random *plan* from a seed,
but the plan itself is then fixed.

The legacy ``REPRO_SHARD_FAULT_INDEX`` environment hook is kept as a
deprecated alias: :func:`resolve_fault_plan` reads it exactly once, in
the coordinator, and only when no explicit plan was passed — a stray
env var from one test can no longer bleed into a worker of the next.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

FAULT_SITES = ("worker", "attach", "session")
FAULT_KINDS = ("crash", "error", "hang", "slow", "poison")

# Deprecated alias (formerly read inside every worker by
# solve_shard_task; now resolved once by the coordinator).
FAULT_ENV = "REPRO_SHARD_FAULT_INDEX"

# Default sleep for "hang" faults: long enough that only a supervisor
# deadline ends it, short enough that an unsupervised run (workers<=1,
# no timeout) eventually finishes instead of wedging a test session.
DEFAULT_HANG_S = 60.0
DEFAULT_SLOW_S = 0.2


class FaultInjected(RuntimeError):
    """An injected fault fired (never raised by real failures)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where (site/shard), when (occurrences), what (kind).

    ``shard=None`` matches every shard; ``at=None`` + ``period=None``
    matches every occurrence; ``at=(0, 2)`` fires on occurrences 0 and 2
    only; ``period=k`` fires on every k-th occurrence (k, 2k, ...).
    """

    kind: str = "error"
    site: str = "worker"
    shard: Optional[int] = None
    at: Optional[Tuple[int, ...]] = (0,)
    period: Optional[int] = None
    delay_s: float = 0.0

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of " f"{FAULT_SITES}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of " f"{FAULT_KINDS}"
            )
        if self.period is not None and self.period < 1:
            raise ValueError("fault period must be >= 1")
        if self.at is not None:
            object.__setattr__(self, "at", tuple(int(a) for a in self.at))

    def matches(self, site: str, shard: int, occurrence: int) -> bool:
        if site != self.site:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        if self.at is None and self.period is None:
            return True
        if self.at is not None and occurrence in self.at:
            return True
        if self.period is not None and occurrence > 0:
            return occurrence % self.period == 0
        return False

    def describe(self) -> str:
        where = "any shard" if self.shard is None else f"shard {self.shard}"
        if self.at is None and self.period is None:
            when = "every occurrence"
        elif self.at is not None:
            when = f"occurrences {list(self.at)}"
        else:
            when = f"every {self.period}th occurrence"
        return f"{self.kind}@{self.site} on {where}, {when}"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, picklable collection of :class:`FaultSpec`.

    Plans compose with ``|`` (left plan's specs match first) and travel
    inside :class:`~repro.core.shard.ShardTask`, so workers see exactly
    the schedule the coordinator decided on — no ambient state.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None  # provenance of generated plans

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __or__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(specs=self.specs + tuple(other.specs))

    def match(self, site: str, shard: int, occurrence: int) -> Optional[FaultSpec]:
        """The first spec firing at (site, shard, occurrence), if any."""
        for spec in self.specs:
            if spec.matches(site, shard, int(occurrence)):
                return spec
        return None

    def describe(self) -> str:
        if not self.specs:
            return "fault-free plan"
        head = f"FaultPlan(seed={self.seed}): " if self.seed is not None \
            else "FaultPlan: "
        return head + "; ".join(spec.describe() for spec in self.specs)

    # -- constructors ---------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """An explicitly fault-free plan.

        Passing this (instead of ``None``) to ``solve_sharded`` also
        disables the deprecated env alias — the scoped way to guarantee
        a clean run regardless of ambient state.
        """
        return cls()

    @classmethod
    def single(
        cls,
        kind: str,
        *,
        shard: Optional[int] = None,
        site: Optional[str] = None,
        at: Optional[Sequence[int]] = (0,),
        period: Optional[int] = None,
        delay_s: Optional[float] = None,
    ) -> "FaultPlan":
        """One fault; site defaults by kind (``attach`` is site-like and
        maps to an error at the attach seam for convenience)."""
        if kind == "attach":
            site, kind = "attach", "error"
        if site is None:
            site = "worker"
        if delay_s is None:
            delay_s = DEFAULT_HANG_S if kind == "hang" else (
                DEFAULT_SLOW_S if kind == "slow" else 0.0
            )
        return cls(
            specs=(
                FaultSpec(
                    kind=kind,
                    site=site,
                    shard=shard,
                    at=None if at is None else tuple(at),
                    period=period,
                    delay_s=float(delay_s),
                ),
            )
        )

    @classmethod
    def from_seed(
        cls,
        seed: int,
        num_shards: int,
        *,
        kinds: Sequence[str] = ("crash", "error", "hang", "slow", "poison"),
        attach_faults: bool = True,
        n_faults: int = 2,
        hang_s: float = DEFAULT_HANG_S,
    ) -> "FaultPlan":
        """A random — but fully deterministic given ``seed`` — chaos plan.

        Every generated fault fires on the *first* attempt only, so a
        supervised run always recovers (retry attempt 1 is clean); the
        bit-identity acceptance gate is therefore checkable on any
        generated plan.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(max(1, int(n_faults))):
            kind = str(rng.choice(list(kinds)))
            shard = int(rng.integers(0, num_shards))
            site = "worker"
            if attach_faults and kind == "error" and rng.random() < 0.5:
                site = "attach"
            delay_s = hang_s if kind == "hang" else (
                DEFAULT_SLOW_S if kind == "slow" else 0.0
            )
            specs.append(
                FaultSpec(kind=kind, site=site, shard=shard, at=(0,), delay_s=delay_s,)
            )
        return cls(specs=tuple(specs), seed=int(seed))

    @classmethod
    def session_faults(
        cls,
        groups: Sequence[int],
        num_shards: int,
    ) -> "FaultPlan":
        """Kill one (rotating) shard session at each listed delta group —
        the serving layer's fixed-crash-rate chaos schedule."""
        specs = tuple(
            FaultSpec(
                kind="error",
                site="session",
                shard=(k % max(1, num_shards)),
                at=(int(g),),
            )
            for k, g in enumerate(groups)
        )
        return cls(specs=specs)


def resolve_fault_plan(
    plan: Optional[FaultPlan], env: Optional[dict] = None
) -> Optional[FaultPlan]:
    """The single place the deprecated env alias is read.

    An explicit ``plan`` — including :meth:`FaultPlan.none` — always
    wins; only when the caller passed nothing is ``REPRO_SHARD_FAULT_INDEX``
    consulted (with a :class:`DeprecationWarning`), and the result is a
    plan object that travels with the tasks, so workers never read the
    environment themselves.
    """
    if plan is not None:
        return plan if plan else None
    raw = (os.environ if env is None else env).get(FAULT_ENV)
    if raw is None:
        return None
    warnings.warn(
        f"{FAULT_ENV} is deprecated; pass solve_sharded(fault_plan="
        f"FaultPlan.single('error', shard={int(raw)}, at=None)) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return FaultPlan(
        specs=(FaultSpec(kind="error", site="worker", shard=int(raw), at=None),)
    )


def trigger(spec: FaultSpec, *, where: str = "") -> None:
    """Fire a worker-site fault (poison is handled by the caller, which
    owns the result to corrupt)."""
    label = f" ({where})" if where else ""
    if spec.kind == "crash":
        if multiprocessing.parent_process() is not None:
            os._exit(17)  # a real hard death; no cleanup, no exception
        # Inline (coordinator) execution: killing the caller's interpreter
        # would take the test session down with it — degrade to a raise.
        raise FaultInjected(f"injected shard worker fault{label}: crash")
    if spec.kind == "error":
        raise FaultInjected(f"injected shard worker fault{label}")
    if spec.kind in ("hang", "slow"):
        # repro-lint: disable=RPR006 -- the sleep IS the injected fault
        # (latency/hang simulation); its duration comes from the seeded plan
        time.sleep(spec.delay_s)
        if spec.kind == "hang" and spec.delay_s >= DEFAULT_HANG_S:
            # An unsupervised hang that slept its full budget still
            # surfaces loudly rather than pretending nothing happened.
            raise FaultInjected(f"injected shard worker fault{label}: hang expired")
        return
    if spec.kind == "poison":
        return  # the caller corrupts its result after solving


@contextmanager
def attach_fault(spec: Optional[FaultSpec], *, where: str = "") -> Iterator[None]:
    """Arm the shm attach seam to fail while the context is active."""
    from repro.core import shm

    if spec is None:
        yield
        return

    def _hook(handle):
        raise FaultInjected(
            f"injected shm attach failure ({where}): segment "
            f"{handle.name!r} unreachable"
        )

    shm.set_attach_fault(_hook)
    try:
        yield
    finally:
        shm.set_attach_fault(None)


def poison_result(result):
    """Deterministically corrupt a ShardResult-shaped object in place.

    Perturbs the first pair's distance when there is one (a silent
    objective corruption — exactly what the supervisor's verifier must
    catch), otherwise inflates the claimed matching size.
    """
    if result.pairs:
        i, j, d = result.pairs[0]
        result.pairs[0] = (i, j, d + 1.0)
    else:
        result.gamma += 1
    return result


# ----------------------------------------------------------------------
# ledger (recorded by the supervisor, surfaced on SolverStats)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One observed failure and what the supervisor did about it."""

    shard: int
    attempt: int
    kind: str  # crash | error | timeout | poison | collateral
    action: str  # retry | requeue_cold | raise | requeue
    detail: str = ""
    backoff_s: float = 0.0


@dataclass
class FaultLedger:
    """Every retry / requeue / timeout of one supervised run."""

    events: list = field(default_factory=list)

    def record(
        self,
        shard: int,
        attempt: int,
        kind: str,
        action: str,
        detail: str = "",
        backoff_s: float = 0.0,
    ) -> FaultEvent:
        event = FaultEvent(
            shard=int(shard),
            attempt=int(attempt),
            kind=kind,
            action=action,
            detail=detail,
            backoff_s=float(backoff_s),
        )
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def count(self, *, kind: Optional[str] = None, action: Optional[str] = None) -> int:
        return sum(
            1
            for e in self.events
            if (kind is None or e.kind == kind)
            and (action is None or e.action == action)
        )

    @property
    def retries(self) -> int:
        return self.count(action="retry")

    @property
    def requeues(self) -> int:
        return self.count(action="requeue_cold")

    @property
    def timeouts(self) -> int:
        return self.count(kind="timeout")

    @property
    def crashes(self) -> int:
        return self.count(kind="crash")

    @property
    def poisoned(self) -> int:
        return self.count(kind="poison")

    def summary(self) -> dict:
        """JSON-able roll-up (stored in ``SolverStats.extra['faults']``)."""
        return {
            "events": len(self.events),
            "retries": self.retries,
            "requeues_cold": self.requeues,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "poisoned": self.poisoned,
            "backoff_s": round(sum(e.backoff_s for e in self.events), 6),
            "by_shard": sorted({e.shard for e in self.events}),
        }


__all__ = [
    "FAULT_ENV",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultEvent",
    "FaultInjected",
    "FaultLedger",
    "FaultPlan",
    "FaultSpec",
    "attach_fault",
    "poison_result",
    "resolve_fault_plan",
    "trigger",
]

# `replace` is re-exported for supervisor convenience (attempt stamping).
_ = replace
