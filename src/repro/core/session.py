"""Warm-start assignment sessions — the online scenario the paper never
needed but a service does.

A :class:`Matcher` keeps the residual flow network, the customer R-tree,
and the node potentials alive across calls.  The first :meth:`assign` is a
cold IDA solve; afterwards the caller applies *deltas* — customers arrive
and leave, provider capacities change — and the next :meth:`assign`
re-solves **warm**: it resumes the successive-shortest-path computation
from the existing feasible flow and potentials, augmenting only the few
units the deltas actually added, instead of recomputing the whole matching
from scratch.

Why this is sound
-----------------
SSP stays exact as long as (a) the current flow is minimum-cost for its
value on the *current* instance and (b) the node potentials are feasible
(every residual edge — including the reverse sink edges ``(t, p)`` — has
non-negative reduced cost).  Each delta either re-establishes both
invariants in O(|Q| + |Esub|) or honestly reports that it cannot:

* **Customer arrival** — the new node enters at τ = 0, so feasibility of
  its future edges requires ``τ_qi ≤ d(q_i, p_new)`` for every provider.
  Providers above that are *lowered to exactly* ``d(q_i, p_new)``, which
  is legal while no flow-carrying edge pins τ_qi from below
  (``τ_q ≥ d + τ_p`` per matched customer).  A pinned provider means the
  residual graph has a negative cycle through the new customer — the
  provider is serving someone farther away than the arrival — i.e. the
  old matching is genuinely no longer optimal at its own value; the
  session then schedules a cold re-solve instead of silently returning a
  stale matching.  Customer potentials are never touched, preserving
  ``τ_p ≥ 0`` on matched customers (= feasibility of the ``(t, p)``
  reversals) and ``τ_p = 0`` on unmatched ones.
* **Customer departure** — the customer's matched units are cancelled and
  its edges dropped.  Cancelling *reopens* the residual ``(s, q)`` edge
  of each saturated provider that served the customer; that is safe only
  while ``τ_q ≥ τ_s`` still holds.  A provider that saturated early has
  a stale potential (τ_q stops advancing once its source edge closes),
  the reopened edge would enter with negative reduced cost, and the
  remaining flow may be suboptimal for its value — the session detects
  this (:meth:`~repro.flow.graph.CCAFlowNetwork.can_remove_customer_warm`)
  and falls back to a cold solve.
* **Capacity increase** (or a decrease that stays above current usage) —
  widens ``(s, q_i)`` and the per-edge caps.  The same reopening hazard
  applies (to the source edge of a saturated provider, and — for
  weighted customers — to saturated flow-carrying bipartite edges whose
  ``min(k, w)`` cap lifts); the session checks
  :meth:`~repro.flow.graph.CCAFlowNetwork.can_widen_provider_warm` and
  falls back to cold when the widening is not certifiably safe.

A decrease *below* current usage would require cancelling flow along
minimum-cost reverse paths; the session detects it and falls back to a
cold solve on the next :meth:`assign` (correct, just not incremental).

Warm re-solves run IDA with the Theorem-2 fast path disabled (its lazy
potential offsets assume a pristine network) but with the full
NN-incremental edge supply, PUA resumption, and IDA's real-unit
certification — so a delta of one customer costs roughly one augmentation
rather than γ of them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.ida import IDASolver
from repro.core.matching import Matching, SolverStats
from repro.core.nia import DEFAULT_ANN_GROUP_SIZE
from repro.core.problem import CCAProblem, Customer, Provider
from repro.flow.backend import DEFAULT_BACKEND, BackendLike, get_backend
from repro.flow.graph import NegativeReducedCostError
from repro.geometry.point import Point
from repro.rtree.backend import IndexBackendLike, resolve_index_backend


class SessionDeadError(RuntimeError):
    """The session is marked dead: its residual state can no longer be
    trusted and every further :meth:`Matcher.assign` refuses until the
    owner rebuilds the session cold (the serving layer's quarantine)."""


class Matcher:
    """A long-lived CCA assignment session with warm-started re-solves.

    Parameters
    ----------
    problem:
        The initial instance.  The Matcher takes ownership and mutates it
        in place as deltas arrive.
    backend:
        Flow-kernel selector (see :mod:`repro.flow.backend`); the session
        network is built once on this backend and kept alive.
    index_backend:
        Spatial-index selector (see :mod:`repro.rtree.backend`); ``None``
        follows the problem's default.  The packed backend applies
        customer deltas by staging them and lazily rebuilding its arrays
        on the next query — fine for delta-then-assign sessions, where
        queries dominate deltas.
    use_pua / ann_group_size:
        Passed through to the underlying IDA solver.
    use_fast_path:
        Whether *cold* solves may use IDA's Theorem-2 fast path.  Warm
        re-solves never do (see module docstring).  Defaults to False so
        cold and warm solves run the same code path, which makes their
        Dijkstra-pop counts directly comparable.
    """

    def __init__(
        self,
        problem: CCAProblem,
        *,
        backend: BackendLike = DEFAULT_BACKEND,
        index_backend: Optional[IndexBackendLike] = None,
        use_pua: bool = True,
        ann_group_size: int = DEFAULT_ANN_GROUP_SIZE,
        use_fast_path: bool = False,
    ):
        self.problem = problem
        self.backend = get_backend(backend)
        self.index_backend = resolve_index_backend(problem, index_backend)
        self.use_pua = use_pua
        self.ann_group_size = ann_group_size
        self.use_fast_path = use_fast_path
        # Built once; mutated by deltas.
        self.tree = problem.rtree(index_backend=self.index_backend.name)
        self.net = None  # session-owned residual network (after 1st solve)
        self._needs_cold = True
        self.assign_count = 0
        self.last_stats: Optional[SolverStats] = None
        self.last_was_warm = False
        self._last_matching: Optional[Matching] = None
        self._dead = False
        self.death_reason = ""

    @classmethod
    def from_solved(
        cls,
        problem: CCAProblem,
        net,
        *,
        backend: BackendLike = DEFAULT_BACKEND,
        **kwargs,
    ) -> "Matcher":
        """Adopt an already-solved residual network as a warm session.

        The sharded engine's reconciliation pass uses this to turn each
        worker's finished per-shard solve into a live session (in the
        parent process) without paying for a cold re-solve: ``net`` must be
        the residual network of a completed solve of exactly ``problem``,
        on the same ``backend``.  Deltas and warm re-assigns then work as
        if the session had performed the solve itself.
        """
        if net.nq != len(problem.providers) or net.np != len(problem.customers):
            raise ValueError(
                "solved network shape does not match the problem "
                f"({net.nq}x{net.np} vs {len(problem.providers)}x"
                f"{len(problem.customers)})"
            )
        session = cls(problem, backend=backend, **kwargs)
        session.net = net
        session._needs_cold = False
        return session

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def assign(self) -> Matching:
        """Solve (or warm re-solve) the current instance to optimality."""
        if self._dead:
            raise SessionDeadError(self.death_reason or "session marked dead")
        warm = self.net is not None and not self._needs_cold
        self.last_was_warm = warm
        try:
            matching, solver = self._run_solver(warm)
        except NegativeReducedCostError:
            if not warm:
                raise
            # The warm re-solve's fresh NN streams surfaced a *new* edge
            # with negative reduced cost against the inherited potentials.
            # The per-delta hazard checks certify the present residual
            # network, but cannot bound edges the previous solve never
            # discovered — such an edge proves the seeded matching is no
            # longer optimal at its own value.  Same honest fallback the
            # deltas use: discard the (now partially mutated) network and
            # re-solve from scratch.
            self.last_was_warm = False
            matching, solver = self._run_solver(False)
        except Exception as exc:
            # Anything else mid-solve may have left the residual network
            # half-mutated: the state is no longer certifiable.  Mark the
            # session dead so the owner quarantines and rebuilds instead
            # of trusting a poisoned warm state on the next call.
            self.mark_dead(f"{type(exc).__name__}: {exc}")
            raise
        self.net = solver.net
        self._needs_cold = False
        self.assign_count += 1
        self.last_stats = solver.stats
        self._last_matching = matching
        return matching

    def _run_solver(self, warm: bool):
        solver = IDASolver(
            self.problem,
            use_pua=self.use_pua,
            ann_group_size=self.ann_group_size,
            # Warm re-solves never fast-path: the lazy potential offsets
            # assume a pristine network (see module docstring).
            use_fast_path=False if warm else self.use_fast_path,
            # The session's R-tree and buffer stay warm across calls; a
            # measured cold start is a benchmarking concept, not a
            # service one.
            cold_start=False,
            backend=self.backend,
            net=self.net if warm else None,
            index_backend=self.index_backend,
        )
        return solver.solve(), solver

    @property
    def matching(self) -> Optional[Matching]:
        """The most recent :meth:`assign` result (None before the first)."""
        return self._last_matching

    @property
    def is_warm(self) -> bool:
        """Whether the next :meth:`assign` may resume from the live
        residual state (False before the first solve, and after a delta
        whose hazard check scheduled a cold re-solve)."""
        return self.net is not None and not self._needs_cold

    # ------------------------------------------------------------------
    # death (quarantine support)
    # ------------------------------------------------------------------
    def mark_dead(self, reason: str = "") -> None:
        """Declare the session's residual state untrustworthy.

        Subsequent :meth:`assign` calls raise :class:`SessionDeadError`;
        the serving engine reacts by quarantining the shard and
        rebuilding it cold from the live global state.  Idempotent (the
        first reason wins).
        """
        if not self._dead:
            self._dead = True
            self.death_reason = reason

    @property
    def is_dead(self) -> bool:
        return self._dead

    @property
    def gamma(self) -> int:
        return self.problem.gamma

    # ------------------------------------------------------------------
    # deltas
    # ------------------------------------------------------------------
    def add_customer(self, xy: Sequence[float], weight: int = 1) -> int:
        """A customer arrives; returns its id (valid after next assign)."""
        if weight < 0:
            raise ValueError("customer weight must be non-negative")
        j = len(self.problem.customers)
        point = Point(j, (float(xy[0]), float(xy[1])))
        self.problem.customers.append(Customer(point, int(weight)))
        if weight > 0:
            # Indexes cover live customers only; broadcast to every built
            # backend tree so the per-backend caches stay coherent.
            self.problem.tree_insert(point)
        if self.net is not None and not self._needs_cold:
            # One batch-kernel call against the provider coordinate
            # columns (bit-identical to the per-provider scalar dist) —
            # the warm admit's feasibility sweep is O(|Q|) arithmetic,
            # so the Point-object loop was pure overhead.
            distances = self.problem.provider_points().dists_to(point.coords)
            if self.net.admit_customer(int(weight), distances) is None:
                # The arrival invalidates the current matching (see
                # module docstring); re-solve from scratch next time.
                self._needs_cold = True
        return j

    def remove_customer(self, customer_id: int) -> None:
        """A customer leaves; its matched units (if any) are released."""
        old = self.problem.customers[customer_id]
        if old.weight == 0:
            return  # already removed (tombstoned)
        # Tombstone, don't renumber: provider/customer ids are positional
        # throughout the solver stack.
        self.problem.customers[customer_id] = Customer(old.point, 0)
        self.problem.tree_delete(old.point)
        if self.net is not None and not self._needs_cold:
            if self.net.can_remove_customer_warm(customer_id):
                self.net.remove_customer_node(customer_id)
            else:
                # Releasing the flow would reopen a stale-potential source
                # edge (negative reduced cost): the remaining matching
                # could be suboptimal, so re-solve from scratch.
                self._needs_cold = True

    def set_provider_capacity(self, provider_id: int, capacity: int) -> None:
        """Change a provider's capacity.

        Increases (and decreases that stay above the provider's current
        usage) are applied warm; a decrease below usage schedules a cold
        re-solve on the next :meth:`assign`.
        """
        if capacity < 0:
            raise ValueError("provider capacity must be non-negative")
        old = self.problem.providers[provider_id]
        self.problem.providers[provider_id] = Provider(old.point, int(capacity))
        if self.net is None or self._needs_cold:
            return
        if capacity >= int(
            self.net.q_used[provider_id]
        ) and self.net.can_widen_provider_warm(provider_id, int(capacity)):
            self.net.set_provider_capacity(provider_id, int(capacity))
        else:
            # Below current usage, or the widening would reopen residual
            # edges with negative reduced cost (stale potentials):
            # re-solve from scratch.
            self._needs_cold = True

    # ------------------------------------------------------------------
    def current_pairs(self) -> List[Tuple[int, int, float]]:
        """Matched (provider, customer, distance) triples of the session
        network (empty before the first assign)."""
        if self.net is None:
            return []
        return self.net.matching_pairs()

    def __repr__(self) -> str:
        state = "cold" if (self.net is None or self._needs_cold) else "warm"
        return (
            f"Matcher(|Q|={len(self.problem.providers)}, "
            f"|P|={len(self.problem.customers)}, {state}, "
            f"assigns={self.assign_count})"
        )
