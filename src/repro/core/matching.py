"""Matchings and solver statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.storage.iostats import IOStats


@dataclass
class SolverStats:
    """Everything Section 5 measures, per solve.

    ``esub_edges`` is the paper's "size of subgraph" metric; ``io`` carries
    page-fault counts convertible to charged I/O seconds; ``cpu_s`` is
    wall-clock compute time of the solver itself.

    ``stage_s`` is a per-stage wall-time breakdown of ``cpu_s`` along the
    fused pipeline's seams — ``supply`` (index/ANN retrieval), ``insert``
    (edge insertion into the flow network), ``dijkstra`` (shortest-path
    search), ``augment`` (path reversal + potential update); whatever the
    stages don't cover (certification, heap upkeep, bookkeeping) is the
    remainder against ``cpu_s``.  Always collected: the timers sit at
    per-request granularity, orders of magnitude above the inner loops,
    so their overhead is noise.  ``repro-cca profile`` renders it.
    """

    method: str = ""
    gamma: int = 0
    esub_edges: int = 0
    dijkstra_runs: int = 0
    dijkstra_pops: int = 0
    invalid_paths: int = 0
    fast_path_augments: int = 0
    edges_inserted: int = 0
    range_searches: int = 0
    nn_requests: int = 0
    cpu_s: float = 0.0
    io: IOStats = field(default_factory=IOStats)
    stage_s: Dict[str, float] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    # Supervised (sharded) runs attach their FaultLedger here: every
    # retry/requeue/timeout the run survived.  None for unsupervised
    # solves; a JSON-able roll-up also lands in ``extra["faults"]``
    # whenever the ledger is non-empty.
    faults: Optional[object] = None

    def add_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall time into one pipeline stage."""
        self.stage_s[stage] = self.stage_s.get(stage, 0.0) + seconds

    @property
    def stage_other_s(self) -> float:
        """cpu_s not attributed to any named stage."""
        return max(0.0, self.cpu_s - sum(self.stage_s.values()))

    @property
    def io_s(self) -> float:
        return self.io.io_time_s

    @property
    def total_s(self) -> float:
        """CPU + charged I/O, the paper's "total time"."""
        return self.cpu_s + self.io_s


@dataclass
class Matching:
    """A CCA matching ``M``: (provider_id, customer_id, distance) triples."""

    pairs: List[Tuple[int, int, float]]
    stats: Optional[SolverStats] = None

    @property
    def cost(self) -> float:
        """Ψ(M) — Equation 1."""
        return sum(d for _, _, d in self.pairs)

    @property
    def size(self) -> int:
        return len(self.pairs)

    def assignment_of(self, customer_id: int) -> Optional[int]:
        """Provider assigned to a customer, or None."""
        for q, p, _ in self.pairs:
            if p == customer_id:
                return q
        return None

    def customers_of(self, provider_id: int) -> List[int]:
        return [p for q, p, _ in self.pairs if q == provider_id]

    def validate(self, problem) -> None:
        """Assert the three CCA requirements of Section 1 (validity and
        maximality; optimality is checked against oracles in the tests)."""
        provider_load = Counter(q for q, _, _ in self.pairs)
        customer_load = Counter(p for _, p, _ in self.pairs)
        for i, count in provider_load.items():
            cap = problem.providers[i].capacity
            if count > cap:
                raise AssertionError(f"provider {i} assigned {count} > capacity {cap}")
        for j, count in customer_load.items():
            weight = problem.customers[j].weight
            if count > weight:
                raise AssertionError(f"customer {j} assigned {count} > weight {weight}")
        if len(self.pairs) != problem.gamma:
            raise AssertionError(
                f"matching size {len(self.pairs)} != gamma {problem.gamma}"
            )
        for i, j, d in self.pairs:
            actual = problem.distance(i, j)
            if abs(actual - d) > 1e-6:
                raise AssertionError(
                    f"pair ({i},{j}) stores distance {d}, actual {actual}"
                )

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        return f"Matching(size={self.size}, cost={self.cost:.3f})"
