"""Nearest Neighbor Incremental Algorithm (NIA) — Section 3.2, Algorithm 3.

NIA replaces RIA's bulk range queries with an edge-at-a-time supply: a
min-heap ``H`` holds, for every provider, its next undiscovered
nearest-neighbor edge, keyed by length.  Each attempt moves the globally
shortest pending edge into ``Esub``, refills the provider's slot from its
incremental NN stream (shared-I/O grouped ANN, Section 3.4.2), and re-runs
(or PUA-resumes, Section 3.4.1) the shortest-path search.  ``TopKey(H)``
*is* ``φ(E − Esub)``, so Theorem 1 certifies paths directly against it.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Tuple

from repro.core.engine import IncrementalCCASolver
from repro.core.problem import CCAProblem
from repro.core.pua import path_update
from repro.experiments.config import PAPER_DEFAULTS
from repro.flow.dijkstra import INF, DijkstraState

# The paper's Section 5.1 grouping default, shared with every consumer
# (solve(), IDA, SM, sessions, the CLI) via experiments.config.
DEFAULT_ANN_GROUP_SIZE = PAPER_DEFAULTS["ann_group_size"]


class NIASolver(IncrementalCCASolver):
    """Exact CCA via incremental nearest-neighbor edge supply."""

    method = "nia"

    def __init__(
        self,
        problem: CCAProblem,
        use_pua: bool = True,
        ann_group_size: int = DEFAULT_ANN_GROUP_SIZE,
        cold_start: bool = True,
        backend="dict",
        net=None,
        index_backend=None,
    ):
        super().__init__(
            problem,
            use_pua=use_pua,
            cold_start=cold_start,
            backend=backend,
            net=net,
            index_backend=index_backend,
        )
        self.ann_group_size = ann_group_size
        self._heap: List[Tuple[float, int, int]] = []  # (key, version, i)
        self._version: List[int] = []
        # Pending (customer_id, distance) per provider — streamed from
        # the ANN as columns, never materialized as Point objects.
        self._frontier: List[Optional[Tuple[int, float]]] = []

    # ------------------------------------------------------------------
    # heap keys — NIA uses plain edge lengths; IDA overrides.
    # ------------------------------------------------------------------
    def _key(self, provider: int, distance: float) -> float:
        return distance

    # ------------------------------------------------------------------
    # edge supply
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        nq = len(self.problem.providers)
        self._version = [0] * nq
        self._frontier = [None] * nq
        started = time.perf_counter()
        self.ann = self.index.grouped_ann(
            self.tree,
            [q.point for q in self.problem.providers],
            group_size=self.ann_group_size,
        )
        self.stats.add_stage("supply", time.perf_counter() - started)
        for i in range(nq):
            # A zero-capacity provider can never appear in the matching;
            # giving it no frontier keeps it out of Esub entirely (and
            # preserves IDA's Theorem 2 premise, since such a provider is
            # "full" from the start yet owns no edges).
            if self.problem.providers[i].capacity > 0:
                self._advance_frontier(i)

    def _advance_frontier(self, provider: int) -> None:
        """Fetch the provider's next NN and en-heap its edge (one pending
        edge per provider at all times).

        The ANN stream reports ``(customer_id, distance)`` directly — the
        distance is the candidate key Algorithm 6 computed when the point
        was fanned out, so nothing is re-derived here and no Point view
        is built for edges that may never enter Esub.
        """
        started = time.perf_counter()
        hit = self.ann.next_nn_ids(provider)
        self.stats.add_stage("supply", time.perf_counter() - started)
        self.stats.nn_requests += 1
        if hit is None:
            self._frontier[provider] = None  # NN stream exhausted
            return
        self._frontier[provider] = hit
        self._push_current(provider)

    def _push_current(self, provider: int) -> None:
        """(Re-)queue the provider's pending edge under its current key."""
        entry = self._frontier[provider]
        if entry is None:
            return
        _, d = entry
        self._version[provider] += 1
        heapq.heappush(
            self._heap,
            (self._key(provider, d), self._version[provider], provider),
        )

    def _pop_edge(self) -> Optional[Tuple[int, int, float]]:
        """De-heap the valid top edge as (provider, customer, distance);
        None when the supply is exhausted."""
        while self._heap:
            _, version, provider = heapq.heappop(self._heap)
            if version != self._version[provider]:
                continue  # superseded by a key refresh
            customer, d = self._frontier[provider]
            self._frontier[provider] = None
            return provider, customer, d
        return None

    def _top_key(self) -> float:
        """TopKey(H): the certification bound φ/Φ(E − Esub)."""
        while self._heap:
            key, version, provider = self._heap[0]
            if version == self._version[provider]:
                return key
            heapq.heappop(self._heap)
        return INF

    # ------------------------------------------------------------------
    # per-attempt hooks (IDA overrides both)
    # ------------------------------------------------------------------
    def _after_insert(
        self,
        provider: int,
        customer: int,
        distance: float,
        state: Optional[DijkstraState],
        inserted: bool = True,
    ) -> None:
        """NIA en-heaps the next NN immediately (Algorithm 3 lines 9-10).

        ``inserted`` is False when the popped edge was already in Esub —
        possible only in warm-started sessions, whose restarted NN streams
        re-deliver known edges.  Those need no PUA repair (they were in
        the adjacency when the state ran), and a *saturated* known edge
        may legitimately carry a negative reduced cost, so repairing it
        would trip the NegativeReducedCostError guard.
        """
        self._advance_frontier(provider)
        if inserted and self.use_pua and state is not None:
            path_update(state, self.net, provider, customer, distance)

    def _post_dijkstra(
        self, state: DijkstraState, popped: Optional[Tuple[int, int, float]]
    ) -> None:
        """No key maintenance in NIA (keys are static lengths)."""

    def _pre_augment(self, state: DijkstraState) -> None:
        """No key maintenance in NIA."""

    # ------------------------------------------------------------------
    # one CCA iteration (Algorithm 3 lines 6-17)
    # ------------------------------------------------------------------
    def _iteration(self) -> None:
        state: Optional[DijkstraState] = None
        add_stage = self.stats.add_stage
        while True:
            popped = self._pop_edge()
            if popped is not None:
                provider, customer, d = popped
                started = time.perf_counter()
                inserted = self.net.add_edge(provider, customer, d)
                add_stage("insert", time.perf_counter() - started)
                if inserted:
                    self.stats.edges_inserted += 1
                self._after_insert(provider, customer, d, state, inserted)
            if state is None or not self.use_pua:
                state = self._fresh_state()
            started = time.perf_counter()
            reachable = state.run()
            add_stage("dijkstra", time.perf_counter() - started)
            self._post_dijkstra(state, popped)
            if reachable and self._certified(state, self._top_key()):
                self._pre_augment(state)
                self._augment(state)
                return
            self.stats.invalid_paths += 1
            if popped is None and not reachable:
                raise RuntimeError("edge supply exhausted but the sink is unreachable")
