"""Range Incremental Algorithm (RIA) — Section 3.1, Algorithm 2.

RIA grows ``Esub`` in bulk: it keeps a global radius ``T`` (initially the
system parameter ``θ``) and inserts every bipartite edge shorter than ``T``
via one range query per provider.  ``T`` is a lower bound on
``φ(E − Esub)``, so by Theorem 1 a shortest path of cost
``≤ T − τmax`` is globally shortest and can be augmented.  When the test
fails, ``T`` grows by ``θ`` and an *annular* range search per provider
fetches exactly the new ring ``(T − θ, T]``.
"""

from __future__ import annotations

import math
import time

from repro.core.engine import IncrementalCCASolver
from repro.core.problem import CCAProblem
from repro.flow.dijkstra import INF
from repro.hilbert.curve import hilbert_key
from repro.rtree.queries import annular_range_search_columns, range_search_columns

DEFAULT_THETA = 0.8


class RIASolver(IncrementalCCASolver):
    """Exact CCA via incremental range expansion."""

    method = "ria"

    def __init__(
        self,
        problem: CCAProblem,
        theta: float = DEFAULT_THETA,
        use_pua: bool = False,
        backend="dict",
        net=None,
        index_backend=None,
    ):
        # PUA is a NIA/IDA optimization in the paper (edges arrive in bulk
        # here, so repairing is less attractive); accepted for ablation.
        super().__init__(
            problem,
            use_pua=use_pua,
            backend=backend,
            net=net,
            index_backend=index_backend,
        )
        if theta <= 0:
            raise ValueError("theta must be positive")
        self.theta = float(theta)
        self.T = float(theta)
        # Once T covers the world diagonal, Esub == E and the bound is ∞.
        world = problem.world_mbr()
        self._max_distance = world.diagonal
        # Searching providers in Hilbert order makes consecutive range
        # queries hit overlapping R-tree pages, so the tiny LRU buffer
        # (1% of the tree) actually absorbs repeats — the same locality
        # trick Section 3.4.2 applies to the NN-based algorithms.
        self._search_order = [
            q.point.pid
            for q in sorted(
                problem.providers,
                key=lambda q: hilbert_key(q.point.coords, world.lo, world.hi),
            )
        ]

    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        # Fused supply: the range search reports (id, distance) columns —
        # the distances its radius filter already computed — and the bulk
        # add_edges consumes them without a Point object in between.
        for i in self._search_order:
            q = self.problem.providers[i]
            ids, dists = self._timed_search(
                range_search_columns, self.tree, q.point, self.T
            )
            self.stats.edges_inserted += self._timed_insert(i, ids, dists)

    def _bound(self) -> float:
        return INF if self.T >= self._max_distance else self.T

    def _expand(self) -> None:
        """Grow T by θ and fetch the new annulus around every provider."""
        inner = self.T
        self.T += self.theta
        for i in self._search_order:
            q = self.problem.providers[i]
            ids, dists = self._timed_search(
                annular_range_search_columns, self.tree, q.point, inner, self.T
            )
            self.stats.edges_inserted += self._timed_insert(i, ids, dists)

    def _timed_search(self, search, *args):
        started = time.perf_counter()
        out = search(*args)
        self.stats.add_stage("supply", time.perf_counter() - started)
        self.stats.range_searches += 1
        return out

    def _timed_insert(self, provider: int, ids, dists) -> int:
        started = time.perf_counter()
        inserted = self.net.add_edges(provider, ids, dists)
        self.stats.add_stage("insert", time.perf_counter() - started)
        return inserted

    def _iteration(self) -> None:
        while True:
            state = self._fresh_state()
            started = time.perf_counter()
            reachable = state.run()
            self.stats.add_stage("dijkstra", time.perf_counter() - started)
            if reachable and self._certified(state, self._bound()):
                self._augment(state)
                return
            self.stats.invalid_paths += 1
            if self._bound() == INF:
                # Esub is complete; an uncertified path here is a bug.
                raise RuntimeError("no augmenting path in the complete flow graph")
            self._expand()

    # ------------------------------------------------------------------
    @staticmethod
    def expansions_needed(world_diagonal: float, theta: float) -> int:
        """How many annuli cover the world — a planning helper for θ."""
        return int(math.ceil(world_diagonal / theta))
