"""SSPA as a library-level solver (the Section 2.2 baseline).

Materializes the complete |Q|·|P| bipartite graph in memory and runs γ
potential-aware Dijkstra computations — exact, index-free, and the
scalability strawman the incremental algorithms are measured against
(Figure 8).
"""

from __future__ import annotations

import time

from repro.core.matching import Matching, SolverStats
from repro.core.problem import CCAProblem
from repro.flow.sspa import sspa_solve


class SSPASolver:
    """Exact CCA on the complete bipartite flow graph."""

    method = "sspa"

    def __init__(self, problem: CCAProblem, backend="dict", index_backend=None):
        # SSPA is index-free; ``index_backend`` is accepted for API
        # uniformity and validated, but selects nothing.
        from repro.rtree.backend import get_index_backend

        if index_backend is not None:
            get_index_backend(index_backend)
        self.problem = problem
        self.backend = backend
        self.stats = SolverStats(method=self.method, gamma=problem.gamma)

    def solve(self) -> Matching:
        started = time.perf_counter()
        # Columnar row oracle: distances from provider i to every
        # customer in one batch-kernel call, bit-identical to the scalar
        # problem.distance (pointset kernels accumulate per axis in the
        # same order) — the array backend then consumes each row through
        # one bulk add_edges call.
        q_coords = self.problem.provider_points().coords
        customer_ps = self.problem.customer_points()
        pairs, net = sspa_solve(
            self.problem.capacities,
            self.problem.weights,
            self.problem.distance,
            backend=self.backend,
            distance_rows=lambda i: customer_ps.dists_to(q_coords[i]),
            stage_s=self.stats.stage_s,
        )
        self.stats.cpu_s = time.perf_counter() - started
        self.stats.esub_edges = net.edge_count  # the *full* bipartite graph
        self.net = net
        return Matching(pairs, stats=self.stats)
