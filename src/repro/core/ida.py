"""Incremental On-demand Algorithm (IDA) — Section 3.3, Algorithm 4.

IDA refines NIA with two ideas:

1. **Full-provider keys** (Definition 2): once provider ``q`` is full,
   reaching it costs a real detour through its matched customers, so any
   path through a pending edge ``(q, pm)`` costs at least (reach cost of
   ``q``) + ``dist(q, pm)``.  The pending edge's heap key becomes
   ``R_est(q) + dist`` where ``R_est`` is the best *known* real reach
   distance, refreshed from Dijkstra's settled labels (Algorithm 4
   lines 10-12).

   We track reach costs in **real** (un-reduced) units rather than the
   paper's literal reduced ``q.α`` values: real source distances are
   monotone non-decreasing across successive-shortest-path iterations (the
   classical SSP lemma), so a recorded value can never overestimate later
   reality; and the provider's own potential cancels out of the bound,
   leaving a certification test that needs no ``τmax`` slack at all:

       ``sp_reduced + τ_s ≤ min over pending (R_est(q) + dist)``

   (Derivation: a path through an unseen edge has reduced cost ≥
   ``α_cur(q) + dist − τ_q + τ_pm`` with ``τ_pm ≥ 0``, and
   ``α_cur(q) = R_cur(q) − τ_s + τ_q ≥ R_est(q) − τ_s + τ_q``.)

   Labels are adopted only when they sit below the current certification
   bound — labels above it were computed on ``Esub`` and may overestimate
   the full-graph distance.

2. **Theorem 2 fast path** (Definition 3): while no provider is full, the
   globally shortest s→t path is simply the shortest pending edge with a
   non-full customer, so augmentations need no Dijkstra at all.  Edges
   popped onto *full* customers are inserted into ``Esub`` and skipped.

   The fast path maintains potentials in O(log) amortized per step using a
   *lazy offset*: every fast augmentation of cost ``a`` advances the source
   and all provider potentials by ``a`` uniformly; a full customer that a
   real Dijkstra would have settled first settles when its (static) minimum
   in-edge length drops below the accumulated offset — afterwards its label
   is identically 0 and its potential advances with the same offset.  The
   offsets are materialized into the network when the fast phase ends.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.engine import CERT_EPS
from repro.core.nia import DEFAULT_ANN_GROUP_SIZE, NIASolver
from repro.core.problem import CCAProblem
from repro.core.pua import path_update
from repro.flow.dijkstra import INF, DijkstraState
from repro.flow.graph import S_NODE, T_NODE


class IDASolver(NIASolver):
    """Exact CCA with full-provider pruning and the Theorem 2 fast path."""

    method = "ida"

    def __init__(
        self,
        problem: CCAProblem,
        use_pua: bool = True,
        ann_group_size: int = DEFAULT_ANN_GROUP_SIZE,
        use_fast_path: bool = True,
        cold_start: bool = True,
        backend="dict",
        net=None,
        index_backend=None,
    ):
        super().__init__(
            problem,
            use_pua=use_pua,
            ann_group_size=ann_group_size,
            cold_start=cold_start,
            backend=backend,
            net=net,
            index_backend=index_backend,
        )
        self.use_fast_path = use_fast_path
        # Theorem 2's premise (no full provider) and the lazy-offset trick
        # (all provider potentials identical) both require a pristine
        # network, so a warm-started solve goes straight to the main loop.
        self._fast_mode = use_fast_path and not self.warm_start
        # Best known real reach distance per provider (0 while non-full:
        # the zero-cost source edge reaches it directly).
        self._real_est: List[float] = []
        # Lazy fast-phase potential bookkeeping.
        self._offset = 0.0
        self._unjoined: List[Tuple[float, int]] = []  # (min in-edge len, j)
        self._in_unjoined: Dict[int, float] = {}  # j -> min in-edge length
        self._joined: Dict[int, float] = {}  # j -> join_offset
        self._materialized = True
        # Partially-used multi-unit edge still eligible for fast augments
        # (only arises with weighted customers, i.e. CA concise matching).
        self._pending: Optional[Tuple[int, int, float]] = None

    def _initialize(self) -> None:
        # Keys read _real_est, so it must exist before the base class
        # en-heaps the initial frontiers.
        self._real_est = [0.0] * len(self.problem.providers)
        super()._initialize()

    # ------------------------------------------------------------------
    # IDA heap keys: real reach estimate + edge length
    # ------------------------------------------------------------------
    def _key(self, provider: int, distance: float) -> float:
        return self._real_est[provider] + distance

    def _certified(self, state: DijkstraState, bound: float) -> bool:
        """sp_real = sp_reduced + τ_s against the real-unit heap bound
        (tighter than the generic ``bound − τmax`` test; see module doc)."""
        if state.sp_cost == INF:
            return False
        if bound == INF:
            return True
        return state.sp_cost + self.net.tau_s <= bound + CERT_EPS

    def _refresh_keys(self, state: DijkstraState) -> None:
        """Algorithm 4 lines 10-12: adopt newly-settled reach costs of
        full providers and re-queue their pending edges.

        Only labels below the current certification bound are trusted —
        they are provably full-graph-exact; larger labels may be ``Esub``
        artifacts.  Must run *before* the potentials move (the labels are
        expressed in the current potential basis).
        """
        net = self.net
        # Only full providers carry reach-based keys; the network tracks
        # them as a set so this per-run refresh skips the open ones
        # entirely (iteration order is irrelevant: per-provider updates
        # are independent and the heap orders by key, not push sequence).
        full = net.full_providers
        if not full:
            return
        bound_reduced = self._top_key() - net.tau_s
        real_est = self._real_est
        tau_s = net.tau_s
        q_tau, _ = net.tau_lists()
        for provider in full:
            alpha = state.settled_alpha(provider)
            if alpha is None or alpha > bound_reduced + CERT_EPS:
                continue
            real = alpha + tau_s - q_tau[provider]
            if real > real_est[provider] + 1e-12:
                real_est[provider] = real
                self._push_current(provider)

    # ------------------------------------------------------------------
    # per-attempt hooks (Algorithm 4 defers the en-heap until after the
    # Dijkstra run so the new edge carries an up-to-date key)
    # ------------------------------------------------------------------
    def _after_insert(
        self,
        provider: int,
        customer: int,
        distance: float,
        state: Optional[DijkstraState],
        inserted: bool = True,
    ) -> None:
        if inserted and self.use_pua and state is not None:
            path_update(state, self.net, provider, customer, distance)

    def _post_dijkstra(
        self, state: DijkstraState, popped: Optional[Tuple[int, int, float]]
    ) -> None:
        # Advance the popped provider's frontier BEFORE refreshing keys
        # (lines 13-14): while its next-NN edge is missing from the heap,
        # TopKey is inflated, and _refresh_keys would adopt labels above
        # the true certification bound as "full-graph exact" reach
        # estimates.  Those overestimates later over-bound the
        # certification test, letting a non-shortest path augment and
        # corrupt the potentials (surfacing as NegativeReducedCostError
        # deep inside a later PUA repair).  The new edge still gets an
        # up-to-date key: _refresh_keys re-pushes it if the adopted reach
        # estimate of its provider improves.
        if popped is not None:
            self._advance_frontier(popped[0])
        self._refresh_keys(state)

    def _pre_augment(self, state: DijkstraState) -> None:
        """Providers often become full at augmentation; re-key from the
        augmenting run's labels while the potential basis still matches
        (cf. the Figure 4(b) example)."""
        self._refresh_keys(state)

    # ------------------------------------------------------------------
    # the iteration: fast path while no provider is full
    # ------------------------------------------------------------------
    def _iteration(self) -> None:
        if self._fast_mode:
            if self._fast_iteration():
                return
            # Supply exhausted or a provider filled up — leave fast mode.
            self._leave_fast_mode()
        super()._iteration()

    def _fast_iteration(self) -> bool:
        """Theorem 2: augment one unit without Dijkstra.  Returns False
        when the fast phase must end (handled by the caller); True after
        a successful augmentation."""
        net = self.net
        self._materialized = False
        while True:
            if self._pending is not None:
                # A partially-used edge is still the global minimum (every
                # heap key is at least its length): keep pushing units.
                provider, customer, d = self._pending
            else:
                popped = self._pop_edge()
                if popped is None:
                    return False
                provider, customer, d = popped
                if net.add_edge(provider, customer, d):
                    self.stats.edges_inserted += 1
                self._advance_frontier(provider)
                if net.customer_full(customer):
                    self._note_skip(customer, d)
                    continue

            # sp = {e(s, q), e(q, p), e(p, t)} with cost d − τ_Q; in lazy
            # form all provider potentials equal the offset, so the reduced
            # cost is d − offset (p's potential is 0: never settled early).
            alpha_min = d - self._offset
            if alpha_min < -1e-6:
                raise AssertionError("fast path produced a negative cost")
            alpha_min = max(alpha_min, 0.0)
            net.apply_path([S_NODE, provider, net.customer_node(customer), T_NODE])
            new_offset = self._offset + alpha_min
            # Settle every full customer whose label would have beaten
            # alpha_min (its static min in-edge length < new offset).
            while self._unjoined and self._unjoined[0][0] < new_offset:
                key, j = heapq.heappop(self._unjoined)
                if self._in_unjoined.get(j) != key:
                    continue  # stale heap entry
                del self._in_unjoined[j]
                self._joined[j] = key
            self._offset = new_offset
            self.stats.fast_path_augments += 1

            residual = net.edge_residual(provider, customer) > 0
            p_full = net.customer_full(customer)
            if p_full and residual:
                # The leftover forward capacity is now an in-edge of a full
                # customer: account for its (lazy) settlement like a skip.
                self._note_skip(customer, d)
            if net.provider_full(provider):
                self._pending = None
                self._leave_fast_mode()
                return True
            self._pending = (
                (provider, customer, d) if residual and not p_full else None
            )
            return True

    def _note_skip(self, customer: int, distance: float) -> None:
        """Track an Esub in-edge of a full customer for lazy settlement."""
        if customer in self._joined:
            return  # already settled once; its label is 0 forever after
        current = self._in_unjoined.get(customer)
        if current is None or distance < current:
            self._in_unjoined[customer] = distance
            heapq.heappush(self._unjoined, (distance, customer))

    def _leave_fast_mode(self) -> None:
        if self._materialized:
            self._fast_mode = False
            return
        net = self.net
        net.advance_source_and_providers(self._offset)
        net.advance_customer_potentials(
            {j: self._offset - join for j, join in self._joined.items()}
        )
        self._offset = 0.0
        self._joined.clear()
        self._in_unjoined.clear()
        self._unjoined.clear()
        self._pending = None
        self._materialized = True
        self._fast_mode = False

    # ------------------------------------------------------------------
    def solve(self):
        matching = super().solve()
        # A solve that finished entirely inside the fast phase still owes
        # the materialization (so the network's potentials are inspectable).
        if not self._materialized:
            self._leave_fast_mode()
        return matching
