"""One-call façade over every solver in the repository."""

from __future__ import annotations

from typing import Optional

from repro.core.approx.ca import CAApproxSolver
from repro.core.approx.sa import SAApproxSolver
from repro.core.baseline import SSPASolver
from repro.core.ida import IDASolver
from repro.core.matching import Matching
from repro.core.nia import NIASolver
from repro.core.problem import CCAProblem
from repro.core.ria import RIASolver
from repro.core.shard import SHARD_METHODS, solve_sharded
from repro.core.sm import SMSolver
from repro.experiments.config import PAPER_DEFAULTS
from repro.flow.backend import DEFAULT_BACKEND, BackendLike
from repro.rtree.backend import IndexBackendLike

EXACT_METHODS = ("sspa", "ria", "nia", "ida")
APPROX_METHODS = ("san", "sae", "can", "cae", "sm")


def solve(
    problem: CCAProblem,
    method: str = "ida",
    *,
    theta: float = 0.8,
    delta: Optional[float] = None,
    use_pua: bool = True,
    use_fast_path: bool = True,
    ann_group_size: Optional[int] = None,
    backend: BackendLike = DEFAULT_BACKEND,
    index_backend: Optional[IndexBackendLike] = None,
    shards: int = 1,
    workers: Optional[int] = None,
    router: str = "nearest",
) -> Matching:
    """Solve a CCA instance.

    Parameters
    ----------
    method:
        One of ``sspa`` / ``ria`` / ``nia`` / ``ida`` (exact), ``san`` /
        ``sae`` / ``can`` / ``cae`` (SA/CA approximation with NN-based or
        exclusive-NN refinement), or ``sm`` (greedy spatial-matching
        baseline).
    theta:
        RIA's range increment θ.
    delta:
        SA/CA partition diagonal δ (defaults: the paper's sweet spots from
        ``experiments.config.PAPER_DEFAULTS`` — 40 for SA, 10 for CA).
        With ``shards > 1`` it doubles as the shard-planning diagonal.
    use_pua / use_fast_path / ann_group_size:
        Optimization toggles for NIA/IDA (Section 3.3-3.4), exposed for
        ablation studies.  ``ann_group_size`` defaults to the paper's
        Section 3.4.2 group size from
        ``experiments.config.PAPER_DEFAULTS``.
    backend:
        Flow-kernel selector (``"dict"`` reference, ``"array"`` columnar
        kernel, or ``"numba"`` JIT-compiled kernel when the optional
        ``perf`` extra is installed; see :mod:`repro.flow.backend`).
        All return identical matchings; ``array`` and ``numba`` are
        faster at scale, and ``"numba"`` falls back to ``array`` with a
        warning when the dependency is absent.
    index_backend:
        Spatial-index selector (``"pointer"`` reference R-tree or
        ``"packed"`` columnar array tree; see :mod:`repro.rtree.backend`).
        Both return bit-identical matchings and page-access counts;
        ``packed`` streams neighbors at array speed.  ``None`` follows
        the problem's configured default.
    shards / workers / router:
        ``shards > 1`` routes exact methods through the sharded parallel
        engine (:mod:`repro.core.shard`): the instance is decomposed into
        provider-disjoint spatial shards solved concurrently by
        ``workers`` processes and reconciled.  ``shards=1`` (default) is
        the plain serial solver.
    """
    method = method.lower()
    if ann_group_size is None:
        ann_group_size = PAPER_DEFAULTS["ann_group_size"]
    if shards != 1:
        if method not in SHARD_METHODS:
            raise ValueError(
                f"shards={shards} requires an incremental exact method "
                f"{SHARD_METHODS}, got {method!r}"
            )
        return solve_sharded(
            problem,
            shards,
            workers=workers,
            method=method,
            router=router,
            delta=delta,
            backend=backend,
            index_backend=index_backend,
            use_pua=use_pua,
            ann_group_size=ann_group_size,
            use_fast_path=use_fast_path,
            theta=theta,
        )
    if method == "sspa":
        return SSPASolver(problem, backend=backend, index_backend=index_backend).solve()
    if method == "ria":
        return RIASolver(
            problem,
            theta=theta,
            backend=backend,
            index_backend=index_backend,
        ).solve()
    if method == "nia":
        return NIASolver(
            problem,
            use_pua=use_pua,
            ann_group_size=ann_group_size,
            backend=backend,
            index_backend=index_backend,
        ).solve()
    if method == "ida":
        return IDASolver(
            problem,
            use_pua=use_pua,
            ann_group_size=ann_group_size,
            use_fast_path=use_fast_path,
            backend=backend,
            index_backend=index_backend,
        ).solve()
    if method in ("san", "sae"):
        return SAApproxSolver(
            problem,
            delta=PAPER_DEFAULTS["sa_delta"] if delta is None else delta,
            refinement="nn" if method == "san" else "exclusive",
            backend=backend,
            index_backend=index_backend,
        ).solve()
    if method in ("can", "cae"):
        return CAApproxSolver(
            problem,
            delta=PAPER_DEFAULTS["ca_delta"] if delta is None else delta,
            refinement="nn" if method == "can" else "exclusive",
            backend=backend,
            index_backend=index_backend,
        ).solve()
    if method == "sm":
        return SMSolver(
            problem,
            ann_group_size=ann_group_size,
            backend=backend,
            index_backend=index_backend,
        ).solve()
    raise ValueError(
        f"unknown method {method!r}; expected one of "
        f"{EXACT_METHODS + APPROX_METHODS}"
    )
