"""Problem definition: service providers, customers, and CCA instances."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.distance import dist
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.rtree.tree import RTree
from repro.storage.page import DEFAULT_PAGE_SIZE


@dataclass(frozen=True)
class Provider:
    """A service provider ``q`` with capacity ``q.k`` (Section 1)."""

    point: Point
    capacity: int

    def __post_init__(self):
        if self.capacity < 0:
            raise ValueError("provider capacity must be non-negative")

    @property
    def pid(self) -> int:
        return self.point.pid


@dataclass(frozen=True)
class Customer:
    """A customer ``p``; ``weight > 1`` only occurs for CA representatives."""

    point: Point
    weight: int = 1

    def __post_init__(self):
        if self.weight < 0:
            raise ValueError("customer weight must be non-negative")

    @property
    def pid(self) -> int:
        return self.point.pid


class CCAProblem:
    """A capacity-constrained assignment instance.

    Provider/customer ids must equal their list positions — the solvers use
    ids as array indices.  Use :meth:`from_arrays` to build instances from
    raw coordinates (it assigns ids for you).
    """

    def __init__(
        self,
        providers: Sequence[Provider],
        customers: Sequence[Customer],
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
    ):
        self.providers: List[Provider] = list(providers)
        self.customers: List[Customer] = list(customers)
        for i, q in enumerate(self.providers):
            if q.pid != i:
                raise ValueError(
                    f"provider at position {i} has id {q.pid}; ids must be "
                    "consecutive from 0 (use CCAProblem.from_arrays)"
                )
        for j, p in enumerate(self.customers):
            if p.pid != j:
                raise ValueError(
                    f"customer at position {j} has id {p.pid}; ids must be "
                    "consecutive from 0 (use CCAProblem.from_arrays)"
                )
        self.page_size = page_size
        self.buffer_fraction = buffer_fraction
        self._rtree: Optional[RTree] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        provider_xy: Sequence[Tuple[float, float]],
        provider_capacities: Sequence[int],
        customer_xy: Sequence[Tuple[float, float]],
        customer_weights: Optional[Sequence[int]] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
    ) -> "CCAProblem":
        """Build an instance from coordinate arrays."""
        provider_xy = np.asarray(provider_xy, dtype=float)
        customer_xy = np.asarray(customer_xy, dtype=float)
        if len(provider_xy) != len(provider_capacities):
            raise ValueError("provider coordinates/capacities length mismatch")
        if customer_weights is None:
            customer_weights = [1] * len(customer_xy)
        if len(customer_xy) != len(customer_weights):
            raise ValueError("customer coordinates/weights length mismatch")
        providers = [
            Provider(Point(i, xy), int(k))
            for i, (xy, k) in enumerate(zip(provider_xy, provider_capacities))
        ]
        customers = [
            Customer(Point(j, xy), int(w))
            for j, (xy, w) in enumerate(zip(customer_xy, customer_weights))
        ]
        return cls(
            providers,
            customers,
            page_size=page_size,
            buffer_fraction=buffer_fraction,
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def gamma(self) -> int:
        """Required matching size γ = min(Σ weights, Σ capacities)."""
        return min(
            sum(p.weight for p in self.customers),
            sum(q.capacity for q in self.providers),
        )

    @property
    def capacities(self) -> List[int]:
        return [q.capacity for q in self.providers]

    @property
    def weights(self) -> List[int]:
        return [p.weight for p in self.customers]

    def distance(self, i: int, j: int) -> float:
        """dist(q_i, p_j)."""
        return dist(self.providers[i].point, self.customers[j].point)

    def world_mbr(self) -> MBR:
        """Tight MBR over all points (RIA's expansion ceiling)."""
        points = [q.point for q in self.providers] + [
            p.point for p in self.customers
        ]
        if not points:
            return MBR((0.0, 0.0), (1.0, 1.0))
        return MBR.from_points(points)

    # ------------------------------------------------------------------
    # the disk-resident index over P
    # ------------------------------------------------------------------
    def rtree(self, rebuild: bool = False) -> RTree:
        """The (lazily built, cached) R-tree over the customer set."""
        if self._rtree is None or rebuild:
            self._rtree = RTree.from_points(
                [p.point for p in self.customers],
                page_size=self.page_size,
                buffer_fraction=self.buffer_fraction,
            )
        return self._rtree

    def attach_rtree(self, tree: RTree) -> None:
        """Share an existing index (the approximate solvers reuse the main
        tree for concise matching instead of rebuilding it)."""
        self._rtree = tree

    def __repr__(self) -> str:
        return (
            f"CCAProblem(|Q|={len(self.providers)}, "
            f"|P|={len(self.customers)}, gamma={self.gamma})"
        )
