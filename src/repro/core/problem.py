"""Problem definition: service providers, customers, and CCA instances."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.distance import dist
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.pointset import PointSet
from repro.rtree.backend import (
    DEFAULT_INDEX_BACKEND,
    IndexBackendLike,
    backend_of_tree,
    get_index_backend,
)
from repro.storage.page import DEFAULT_PAGE_SIZE


@dataclass(frozen=True)
class Provider:
    """A service provider ``q`` with capacity ``q.k`` (Section 1)."""

    point: Point
    capacity: int

    def __post_init__(self):
        if self.capacity < 0:
            raise ValueError("provider capacity must be non-negative")

    @property
    def pid(self) -> int:
        return self.point.pid


@dataclass(frozen=True)
class Customer:
    """A customer ``p``; ``weight > 1`` only occurs for CA representatives."""

    point: Point
    weight: int = 1

    def __post_init__(self):
        if self.weight < 0:
            raise ValueError("customer weight must be non-negative")

    @property
    def pid(self) -> int:
        return self.point.pid


def _as_coord_matrix(xy) -> np.ndarray:
    """Coerce coordinate input to an ``(n, d)`` float64 matrix."""
    arr = np.asarray(xy, dtype=np.float64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim == 1:
        return arr.reshape(-1, 1)
    return arr


class CCAProblem:
    """A capacity-constrained assignment instance.

    Provider/customer ids must equal their list positions — the solvers use
    ids as array indices.  Use :meth:`from_arrays` to build instances from
    raw coordinates (it assigns ids for you).

    Coordinates are held **columnarly** (two
    :class:`~repro.geometry.pointset.PointSet` columns); instances built
    via :meth:`from_arrays` materialize their ``Provider`` / ``Customer``
    object views lazily, on first access.  ``index_backend`` names the
    default spatial-index kernel for :meth:`rtree`
    (see :mod:`repro.rtree.backend`); trees are cached per backend.
    """

    def __init__(
        self,
        providers: Sequence[Provider],
        customers: Sequence[Customer],
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
        index_backend: IndexBackendLike = DEFAULT_INDEX_BACKEND,
    ):
        providers = list(providers)
        customers = list(customers)
        for i, q in enumerate(providers):
            if q.pid != i:
                raise ValueError(
                    f"provider at position {i} has id {q.pid}; ids must be "
                    "consecutive from 0 (use CCAProblem.from_arrays)"
                )
        for j, p in enumerate(customers):
            if p.pid != j:
                raise ValueError(
                    f"customer at position {j} has id {p.pid}; ids must be "
                    "consecutive from 0 (use CCAProblem.from_arrays)"
                )
        self._init_common(page_size, buffer_fraction, index_backend)
        self._providers: Optional[List[Provider]] = providers
        self._customers: Optional[List[Customer]] = customers
        self._capacity_col: Optional[np.ndarray] = None
        self._weight_col: Optional[np.ndarray] = None
        self._provider_ps: Optional[PointSet] = None
        self._customer_ps: Optional[PointSet] = None

    def _init_common(self, page_size, buffer_fraction, index_backend) -> None:
        self.page_size = page_size
        self.buffer_fraction = buffer_fraction
        self.index_backend = get_index_backend(index_backend).name
        self._rtrees: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        provider_xy: Sequence[Tuple[float, float]],
        provider_capacities: Sequence[int],
        customer_xy: Sequence[Tuple[float, float]],
        customer_weights: Optional[Sequence[int]] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
        index_backend: IndexBackendLike = DEFAULT_INDEX_BACKEND,
    ) -> "CCAProblem":
        """Build an instance from coordinate arrays (held natively)."""
        provider_xy = _as_coord_matrix(provider_xy)
        customer_xy = _as_coord_matrix(customer_xy)
        if len(provider_xy) != len(provider_capacities):
            raise ValueError("provider coordinates/capacities length mismatch")
        if customer_weights is None:
            customer_weights = np.ones(len(customer_xy), dtype=np.int64)
        if len(customer_xy) != len(customer_weights):
            raise ValueError("customer coordinates/weights length mismatch")
        capacities = np.asarray(provider_capacities, dtype=np.int64)
        weights = np.asarray(customer_weights, dtype=np.int64)
        if len(capacities) and capacities.min() < 0:
            raise ValueError("provider capacity must be non-negative")
        if len(weights) and weights.min() < 0:
            raise ValueError("customer weight must be non-negative")
        problem = cls.__new__(cls)
        problem._init_common(page_size, buffer_fraction, index_backend)
        problem._providers = None
        problem._customers = None
        problem._capacity_col = capacities
        problem._weight_col = weights
        problem._provider_ps = PointSet(provider_xy)
        problem._customer_ps = PointSet(customer_xy)
        return problem

    # ------------------------------------------------------------------
    # object views (materialized on demand; the mutable source of truth
    # once materialized — sessions tombstone/append on these lists)
    # ------------------------------------------------------------------
    @property
    def providers(self) -> List[Provider]:
        if self._providers is None:
            ps = self._provider_ps
            caps = self._capacity_col
            self._providers = [
                Provider(ps.point(i), int(caps[i])) for i in range(len(ps))
            ]
        return self._providers

    @property
    def customers(self) -> List[Customer]:
        if self._customers is None:
            ps = self._customer_ps
            weights = self._weight_col
            self._customers = [
                Customer(ps.point(j), int(weights[j])) for j in range(len(ps))
            ]
        return self._customers

    # ------------------------------------------------------------------
    # columnar views (kept fresh against list mutation by length check:
    # point coordinates at an index never change — deltas only append or
    # tombstone — so a same-length cache is always valid)
    # ------------------------------------------------------------------
    def provider_points(self) -> PointSet:
        if self._providers is not None and (
            self._provider_ps is None or len(self._provider_ps) != len(self._providers)
        ):
            self._provider_ps = PointSet.from_points(q.point for q in self._providers)
        return self._provider_ps

    def customer_points(self) -> PointSet:
        if self._customers is not None and (
            self._customer_ps is None or len(self._customer_ps) != len(self._customers)
        ):
            self._customer_ps = PointSet.from_points(p.point for p in self._customers)
        return self._customer_ps

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def gamma(self) -> int:
        """Required matching size γ = min(Σ weights, Σ capacities)."""
        return min(sum(self.weights), sum(self.capacities))

    @property
    def capacities(self) -> List[int]:
        if self._providers is None:
            return [int(k) for k in self._capacity_col]
        return [q.capacity for q in self._providers]

    @property
    def weights(self) -> List[int]:
        if self._customers is None:
            return [int(w) for w in self._weight_col]
        return [p.weight for p in self._customers]

    def distance(self, i: int, j: int) -> float:
        """dist(q_i, p_j).

        Computed on the (cached) Point views, not numpy rows: SSPA's full
        bipartite oracle and RIA's per-edge inserts call this in a tight
        loop, where tuple arithmetic is ~3x faster than numpy scalars.
        """
        return dist(self.providers[i].point, self.customers[j].point)

    def world_mbr(self) -> MBR:
        """Tight MBR over all points (RIA's expansion ceiling)."""
        pps = self.provider_points()
        cps = self.customer_points()
        if not len(pps) and not len(cps):
            return MBR((0.0, 0.0), (1.0, 1.0))
        if not len(pps):
            return cps.mbr()
        if not len(cps):
            return pps.mbr()
        plo, phi = pps.bounds()
        clo, chi = cps.bounds()
        return MBR(np.minimum(plo, clo), np.maximum(phi, chi))

    # ------------------------------------------------------------------
    # the disk-resident index over P
    # ------------------------------------------------------------------
    def live_customer_points(self) -> PointSet:
        """Customer rows with weight > 0 — what the index covers.

        Zero-weight customers can never be matched; indexing them would
        only pad the NN streams.  Session deltas tombstone departures to
        weight 0 and delete them from every *built* tree, so building a
        fresh tree from the live rows keeps all per-backend caches
        coherent mid-session.
        """
        points = self.customer_points()
        weights = np.asarray(self.weights, dtype=np.int64)
        live = np.flatnonzero(weights > 0)
        if len(live) == len(points):
            return points
        return points.take(live)

    def rtree(
        self,
        rebuild: bool = False,
        index_backend: Optional[IndexBackendLike] = None,
    ):
        """The (lazily built, per-backend cached) R-tree over the customer
        set.  ``index_backend=None`` uses the instance default."""
        backend = get_index_backend(
            self.index_backend if index_backend is None else index_backend
        )
        tree = self._rtrees.get(backend.name)
        if tree is None or rebuild:
            tree = backend.build(
                self.live_customer_points(),
                page_size=self.page_size,
                buffer_fraction=self.buffer_fraction,
            )
            self._rtrees[backend.name] = tree
        return tree

    def tree_insert(self, point: Point) -> None:
        """Apply a customer arrival to every built index (session delta)."""
        for tree in self._rtrees.values():
            tree.insert(point)

    def tree_delete(self, point: Point) -> None:
        """Apply a customer departure to every built index (session
        delta)."""
        for tree in self._rtrees.values():
            tree.delete(point)

    def attach_rtree(self, tree) -> None:
        """Share an existing index (the approximate solvers reuse the main
        tree for concise matching instead of rebuilding it).  The attached
        tree's backend becomes this instance's default."""
        backend = backend_of_tree(tree)
        self._rtrees[backend.name] = tree
        self.index_backend = backend.name

    def __repr__(self) -> str:
        return (
            f"CCAProblem(|Q|={len(self.providers)}, "
            f"|P|={len(self.customers)}, gamma={self.gamma})"
        )
