"""Zero-copy column transport for worker processes.

The sharded engine used to pickle every shard's coordinate columns,
capacities, and routed weights into each :class:`ShardTask` — per-task
serialization that grows with |Q| + |P| and is pure overhead on a
machine where workers share physical memory.  This module replaces it:

* :class:`SharedColumnStore` packs a set of named NumPy arrays into ONE
  ``multiprocessing.shared_memory`` segment (64-byte aligned blocks, one
  manifest describing offsets/shapes/dtypes).
* :class:`StoreHandle` is the picklable stub a task ships instead: the
  segment name plus the manifest — a few hundred bytes no matter how
  large the instance is.
* :func:`attach` rebuilds zero-copy ``np.ndarray`` views in the worker.
  Attachments are cached per process, so a pool worker maps the segment
  once and every subsequent task is a dict lookup; the creating process
  seeds its own cache at construction, making parent-side "attach" free.

Lifecycle: exactly one owner (the process that built the store) calls
:func:`close_and_unlink` — in a ``finally`` so faulted solves cannot
leak segments.  Workers never unlink; their mappings are released on
process exit.  CPython's ``resource_tracker`` would otherwise unlink
attached segments a second time (and warn) when a *spawned* worker
exits, so worker attachments are explicitly untracked.

Views handed out by :func:`attach` are only valid while the segment
lives.  Anything that must survive ``close_and_unlink`` — problem
objects, warm sessions — must copy at the boundary (fancy indexing does;
plain slices do not).
"""

from __future__ import annotations

import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Dict, Optional, Tuple

import numpy as np

# /dev/shm name prefix — the lifecycle tests scan for leaked segments by
# this marker, so keep it stable.
SEGMENT_PREFIX = "repro_cca_"

_ALIGN = 64


@dataclass(frozen=True)
class StoreHandle:
    """Picklable description of a shared segment: name + array manifest.

    ``manifest`` rows are ``(key, offset, shape, dtype_str)``; tuples all
    the way down so the handle hashes and pickles to a tiny payload.
    """

    name: str
    manifest: Tuple[Tuple[str, int, Tuple[int, ...], str], ...]
    nbytes: int


# Process-local cache: segment name -> (SharedMemory, views-by-key).
# Keeps exactly one mapping per segment per process, and holds the view
# references so repeated attaches are free.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]]
_ATTACHED = {}


def _views(
    seg: shared_memory.SharedMemory, handle: StoreHandle
) -> Dict[str, np.ndarray]:
    out = {}
    for key, offset, shape, dtype in handle.manifest:
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf, offset=offset)
        arr.flags.writeable = False  # one writer (the packer), many readers
        out[key] = arr
    return out


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without resource_tracker ownership (the creator owns it)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # track= is 3.13+; unregister manually before that
        seg = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        # repro-lint: disable=RPR008 -- best-effort unregister of a private
        # tracker API; on failure the segment is merely double-tracked
        except Exception:
            pass  # tracker may be absent (fork server quirks); harmless
        return seg


class SharedColumnStore:
    """One shared segment holding named, aligned NumPy columns."""

    def __init__(self, arrays: Dict[str, np.ndarray]):
        manifest = []
        offset = 0
        packed = {}
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            packed[key] = arr
            manifest.append((key, offset, tuple(arr.shape), arr.dtype.str))
            offset += arr.nbytes
            offset += (-offset) % _ALIGN
        total = max(offset, 1)  # zero-size segments are not allocatable
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        self._seg = shared_memory.SharedMemory(create=True, size=total, name=name)
        self.handle = StoreHandle(name, tuple(manifest), total)
        # Last-resort lifecycle guard, registered the instant the segment
        # exists: if anything raises between here and the owner's
        # ``finally`` unlink — or the coordinator dies without reaching
        # it — the finalizer (GC'd or interpreter-exit) still unlinks.
        # ``weakref.finalize`` runs at exit by default, covering atexit.
        self._finalizer = weakref.finalize(self, close_and_unlink, self.handle)
        views = _views(self._seg, self.handle)
        for key, arr in packed.items():
            view = views[key]
            view.flags.writeable = True
            view[...] = arr
            view.flags.writeable = False
        # Seed the creator's cache: parent-side attach() is then free.
        _ATTACHED[name] = (self._seg, views)

    def close_and_unlink(self) -> None:
        # Through the finalizer so the explicit unlink also marks the
        # guard dead (the callback itself is idempotent regardless).
        self._finalizer()


# Fault-injection seam: when set, every attach in THIS process raises
# through the hook instead of mapping the segment.  Armed only by
# :func:`repro.core.faults.attach_fault` around a worker's column
# materialization — never ambient, never cross-process.
_ATTACH_FAULT: Optional[Callable[[StoreHandle], None]] = None


def set_attach_fault(
    hook: Optional[Callable[[StoreHandle], None]],
) -> None:
    global _ATTACH_FAULT
    _ATTACH_FAULT = hook


def attach(handle: StoreHandle) -> Dict[str, np.ndarray]:
    """Zero-copy views onto the store's columns (cached per process)."""
    if _ATTACH_FAULT is not None:
        _ATTACH_FAULT(handle)
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    seg = _attach_untracked(handle.name)
    views = _views(seg, handle)
    _ATTACHED[handle.name] = (seg, views)
    return views


def close_and_unlink(handle: StoreHandle) -> None:
    """Release the segment and remove its name (owner-side, idempotent).

    Views still referenced elsewhere keep the mapping alive until they
    die (``close`` is best-effort around exported buffers), but the name
    disappears from the system immediately — nothing can leak.
    """
    entry = _ATTACHED.pop(handle.name, None)
    seg = entry[0] if entry else None
    if entry:
        entry[1].clear()  # drop the cached views' buffer exports
    if seg is None:
        try:
            seg = _attach_untracked(handle.name)
        except FileNotFoundError:
            return  # already unlinked
    try:
        seg.close()
    except (BufferError, ValueError):
        pass  # a live external view pins the mapping; unlink regardless
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
