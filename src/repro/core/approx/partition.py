"""Partitioning phase of the approximate solvers.

Both SA and CA bound every group's MBR *diagonal* by the quality knob ``δ``
(smaller δ ⇒ tighter groups ⇒ better approximation, per Theorems 3-4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.hilbert.curve import hilbert_key
from repro.partitioning import SCAN_WINDOW as _SCAN_WINDOW
from repro.partitioning import hilbert_greedy_groups
from repro.rtree.tree import RTree

# SA's provider partitioning now lives in the shared, solver-agnostic
# :mod:`repro.partitioning` module (the shard planner reuses it); it is
# re-exported here so the approximate solvers keep their historical API.
__all__ = [
    "hilbert_greedy_groups",
    "CustomerGroup",
    "rtree_customer_partition",
]


@dataclass
class CustomerGroup:
    """A δ-bounded customer group produced by CA's partitioning.

    ``mbr`` is the *partition* rectangle whose diagonal respects δ (an
    R-tree entry MBR, a conceptual leaf half, or a merged hyper-entry);
    the representative sits at its center so no member is farther than
    δ/2 from it (the Theorem 4 argument).
    """

    members: List[Point]
    mbr: MBR

    @property
    def weight(self) -> int:
        return len(self.members)

    @property
    def representative_xy(self) -> Tuple[float, float]:
        center = self.mbr.center
        return center[0], center[1]


def rtree_customer_partition(tree: RTree, delta: float) -> List[CustomerGroup]:
    """CA's partitioning (Section 4.2).

    Descend the customer R-tree; an entry whose MBR diagonal is ≤ δ becomes
    a group (its subtree's points are the members).  Oversized *leaves* are
    split conceptually into equal halves along their longest dimension until
    every part satisfies δ.  Finally, groups are merged into hyper-entries
    (Hilbert-greedy on their MBRs) while the union diagonal stays ≤ δ.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    if tree.root_id is None:
        return []
    raw: List[CustomerGroup] = []
    root = tree.node(tree.root_id)
    root_mbr = root.mbr()
    if root_mbr is None:
        return []
    _collect(tree, tree.root_id, root_mbr, delta, raw)
    return _merge_groups(raw, delta, root_mbr)


def _collect(
    tree: RTree,
    page_id: int,
    entry_mbr: MBR,
    delta: float,
    out: List[CustomerGroup],
) -> None:
    if entry_mbr.diagonal <= delta:
        members = _subtree_points(tree, page_id)
        if members:
            out.append(CustomerGroup(members, entry_mbr))
        return
    node = tree.node(page_id)
    if node.is_leaf:
        _split_leaf(node.points, entry_mbr, delta, out)
        return
    for child_id, child_mbr in zip(node.children_ids, node.child_mbrs, strict=False):
        _collect(tree, child_id, child_mbr, delta, out)


def _split_leaf(
    points: Sequence[Point], mbr: MBR, delta: float, out: List[CustomerGroup]
) -> None:
    """Conceptually halve an oversized leaf MBR along its longest axis
    until every part's diagonal is ≤ δ; members follow their coordinates."""
    if mbr.diagonal <= delta:
        if points:
            out.append(CustomerGroup(list(points), mbr))
        return
    axis = mbr.longest_axis()
    low_half, high_half = mbr.split_halves(axis)
    mid = low_half.hi[axis]
    low_points = [p for p in points if p.coords[axis] < mid]
    high_points = [p for p in points if p.coords[axis] >= mid]
    _split_leaf(low_points, low_half, delta, out)
    _split_leaf(high_points, high_half, delta, out)


def _subtree_points(tree: RTree, page_id: int) -> List[Point]:
    out: List[Point] = []
    stack = [page_id]
    while stack:
        node = tree.node(stack.pop())
        if node.is_leaf:
            out.extend(node.points)
        else:
            stack.extend(node.children_ids)
    return out


def _merge_groups(
    groups: List[CustomerGroup], delta: float, world: MBR
) -> List[CustomerGroup]:
    """The extra merging step: combine groups into hyper-entries while the
    merged MBR diagonal stays within δ (reduces |S| without violating δ)."""
    order = sorted(
        range(len(groups)),
        key=lambda idx: hilbert_key(groups[idx].mbr.center, world.lo, world.hi),
    )
    merged: List[CustomerGroup] = []
    for idx in order:
        group = groups[idx]
        placed = False
        for pos in range(len(merged) - 1, max(len(merged) - _SCAN_WINDOW, 0) - 1, -1):
            candidate = merged[pos].mbr.union(group.mbr)
            if candidate.diagonal <= delta:
                merged[pos] = CustomerGroup(
                    merged[pos].members + group.members, candidate
                )
                placed = True
                break
        if not placed:
            merged.append(CustomerGroup(list(group.members), group.mbr))
    return merged
