"""Approximate CCA (Section 4): partition → concise matching → refinement.

* :mod:`~repro.core.approx.partition` — δ-bounded grouping (Hilbert greedy
  for providers, R-tree guided for customers).
* :mod:`~repro.core.approx.sa` — Service-provider Approximation (§4.1).
* :mod:`~repro.core.approx.ca` — Customer Approximation (§4.2).
* :mod:`~repro.core.approx.refine` — NN-based and exclusive-NN refinement
  heuristics (§4.3).
* :mod:`~repro.core.approx.bounds` — the Theorems 3/4 error guarantees.
"""

from repro.core.approx.bounds import ca_error_bound, quality_ratio, sa_error_bound
from repro.core.approx.ca import CAApproxSolver
from repro.core.approx.partition import (
    CustomerGroup,
    hilbert_greedy_groups,
    rtree_customer_partition,
)
from repro.core.approx.refine import exclusive_nn_refine, nn_refine
from repro.core.approx.sa import SAApproxSolver

__all__ = [
    "hilbert_greedy_groups",
    "rtree_customer_partition",
    "CustomerGroup",
    "SAApproxSolver",
    "CAApproxSolver",
    "nn_refine",
    "exclusive_nn_refine",
    "sa_error_bound",
    "ca_error_bound",
    "quality_ratio",
]
