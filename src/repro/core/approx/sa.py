"""Service-provider Approximation (SA) — Section 4.1.

1. *Partition*: group providers along the Hilbert curve with MBR diagonal
   ≤ δ.
2. *Concise matching*: replace each group by one representative at the
   capacity-weighted centroid, with capacity Σ q.k, and solve that smaller
   CCA exactly with IDA over the full customer R-tree.
3. *Refinement*: within each group, distribute the customers that the
   concise matching assigned to the representative among the group's real
   providers (NN-based or exclusive-NN heuristic).

Theorem 3: Ψ(SA) ≤ Ψ(optimal) + 2·γ·δ.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.core.approx.partition import hilbert_greedy_groups
from repro.core.approx.refine import exclusive_nn_refine, nn_refine
from repro.core.ida import IDASolver
from repro.core.matching import Matching, SolverStats
from repro.core.problem import CCAProblem, Provider
from repro.experiments.config import PAPER_DEFAULTS
from repro.geometry.point import Point
from repro.partitioning import capacity_weighted_centroid

DEFAULT_SA_DELTA = PAPER_DEFAULTS["sa_delta"]

_REFINERS = {"nn": nn_refine, "exclusive": exclusive_nn_refine}


class SAApproxSolver:
    """Approximate CCA by grouping the service providers."""

    def __init__(
        self,
        problem: CCAProblem,
        delta: float = DEFAULT_SA_DELTA,
        refinement: str = "nn",
        cold_start: bool = True,
        backend="dict",
        index_backend=None,
    ):
        if refinement not in _REFINERS:
            raise ValueError(
                f"unknown refinement {refinement!r}; use 'nn' or 'exclusive'"
            )
        self.problem = problem
        self.delta = float(delta)
        self.refinement = refinement
        self.cold_start = cold_start
        self.backend = backend
        self.index_backend = index_backend
        self.method = "sa" + ("n" if refinement == "nn" else "e")
        self.stats = SolverStats(method=self.method, gamma=problem.gamma)

    # ------------------------------------------------------------------
    def solve(self) -> Matching:
        problem = self.problem
        tree = problem.rtree(index_backend=self.index_backend)
        if self.cold_start:
            tree.cold()
        io_before = tree.stats.snapshot()
        started = time.perf_counter()

        # Phase 1: partition Q (in memory — no I/O).
        world = problem.world_mbr()
        groups = hilbert_greedy_groups(
            [q.point for q in problem.providers],
            self.delta,
            world.lo,
            world.hi,
        )
        representatives = [self._representative(m, g) for m, g in enumerate(groups)]

        # Phase 2: concise matching between Q' and the full P (via IDA on
        # the shared disk-resident R-tree: this is SA's I/O cost).
        concise_problem = CCAProblem(
            representatives,
            problem.customers,
            page_size=problem.page_size,
            buffer_fraction=problem.buffer_fraction,
        )
        # attach_rtree adopts the tree's index backend, so the concise
        # solve runs on the same (pointer or packed) kernel as the caller.
        concise_problem.attach_rtree(tree)
        # cold_start=False keeps cumulative I/O accounting on the shared tree.
        concise_solver = IDASolver(
            concise_problem, use_pua=True, cold_start=False, backend=self.backend
        )
        concise = concise_solver.solve()
        self.stats.extra["concise"] = concise_solver.stats
        self.stats.esub_edges = concise_solver.stats.esub_edges
        self.stats.dijkstra_runs = concise_solver.stats.dijkstra_runs
        self.stats.nn_requests = concise_solver.stats.nn_requests

        # Phase 3: per-group refinement (members and coordinates are in
        # memory; no further index I/O).
        assigned: Dict[int, List[int]] = {}
        for rep_id, customer_id, _ in concise.pairs:
            assigned.setdefault(rep_id, []).append(customer_id)
        refine = _REFINERS[self.refinement]
        pairs: List[Tuple[int, int, float]] = []
        for rep_id, customer_ids in assigned.items():
            members = groups[rep_id]
            quotas = [
                (point, problem.providers[point.pid].capacity) for point in members
            ]
            customers = [problem.customers[j].point for j in customer_ids]
            pairs.extend(refine(quotas, customers))

        self.stats.cpu_s = time.perf_counter() - started
        self.stats.io = tree.stats.diff(io_before)
        self.stats.extra["num_groups"] = len(groups)
        self.stats.extra["delta"] = self.delta
        return Matching(pairs, stats=self.stats)

    # ------------------------------------------------------------------
    def _representative(self, rep_id: int, members: List[Point]) -> Provider:
        """Capacity-weighted centroid with the group's summed capacity."""
        capacities = [self.problem.providers[p.pid].capacity for p in members]
        x, y = capacity_weighted_centroid(members, capacities)
        return Provider(Point(rep_id, (x, y)), sum(capacities))
