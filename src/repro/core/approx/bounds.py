"""Quality guarantees of the approximate solvers (Section 4.4).

``Err(M) = Ψ(M) − Ψ(M_CCA)`` is bounded by ``2γδ`` for SA (Theorem 3: one
δ-hop moving each provider to its representative, one δ-hop moving it back
during refinement) and by ``γδ`` for CA (Theorem 4: members lie within δ/2
of their representative, again paid twice).
"""

from __future__ import annotations


def sa_error_bound(gamma: int, delta: float) -> float:
    """Theorem 3: Err(SA) ≤ 2·γ·δ."""
    if gamma < 0 or delta < 0:
        raise ValueError("gamma and delta must be non-negative")
    return 2.0 * gamma * delta


def ca_error_bound(gamma: int, delta: float) -> float:
    """Theorem 4: Err(CA) ≤ γ·δ."""
    if gamma < 0 or delta < 0:
        raise ValueError("gamma and delta must be non-negative")
    return float(gamma) * delta


def quality_ratio(approx_cost: float, optimal_cost: float) -> float:
    """Section 5.3's accuracy metric Ψ(M)/Ψ(M_CCA) (1.0 = optimal).

    A zero-cost optimum with a zero-cost approximation is a perfect 1.0;
    a zero-cost optimum with positive approximate cost is unbounded.
    """
    if approx_cost < 0 or optimal_cost < 0:
        raise ValueError("costs must be non-negative")
    if optimal_cost == 0.0:
        return 1.0 if approx_cost == 0.0 else float("inf")
    return approx_cost / optimal_cost


def delta_for_target_error(
    gamma: int, target_error: float, method: str = "ca"
) -> float:
    """Invert the bounds: the largest δ guaranteeing ``Err ≤ target``.

    A planning helper: pick δ from an acceptable absolute cost error.
    """
    if gamma <= 0:
        return float("inf")
    if target_error < 0:
        raise ValueError("target error must be non-negative")
    if method == "ca":
        return target_error / gamma
    if method == "sa":
        return target_error / (2.0 * gamma)
    raise ValueError(f"unknown method {method!r}")
