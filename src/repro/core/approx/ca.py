"""Customer Approximation (CA) — Section 4.2.

1. *Partition*: descend the customer R-tree collecting entries with MBR
   diagonal ≤ δ (splitting oversized leaves, merging small entries into
   hyper-entries).  This traversal is CA's only disk I/O.
2. *Concise matching*: each group becomes one weighted representative at
   its partition-MBR center (weight = member count); solve the provider ↔
   representative CCA exactly with IDA, entirely in memory.
3. *Refinement*: the concise matching dictates how many instances of each
   provider serve each group; hand the group's member points to those
   instances with an NN heuristic.

Theorem 4: Ψ(CA) ≤ Ψ(optimal) + γ·δ (members sit within δ/2 of their
representative).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.core.approx.partition import rtree_customer_partition
from repro.core.approx.refine import exclusive_nn_refine, nn_refine
from repro.core.ida import IDASolver
from repro.core.matching import Matching, SolverStats
from repro.core.problem import CCAProblem, Customer
from repro.experiments.config import PAPER_DEFAULTS
from repro.geometry.point import Point
from repro.rtree.backend import resolve_index_backend

DEFAULT_CA_DELTA = PAPER_DEFAULTS["ca_delta"]

_REFINERS = {"nn": nn_refine, "exclusive": exclusive_nn_refine}


class CAApproxSolver:
    """Approximate CCA by grouping the customers."""

    def __init__(
        self,
        problem: CCAProblem,
        delta: float = DEFAULT_CA_DELTA,
        refinement: str = "nn",
        cold_start: bool = True,
        backend="dict",
        index_backend=None,
    ):
        if refinement not in _REFINERS:
            raise ValueError(
                f"unknown refinement {refinement!r}; use 'nn' or 'exclusive'"
            )
        self.problem = problem
        self.delta = float(delta)
        self.refinement = refinement
        self.cold_start = cold_start
        self.backend = backend
        self.index_backend = index_backend
        self.method = "ca" + ("n" if refinement == "nn" else "e")
        self.stats = SolverStats(method=self.method, gamma=problem.gamma)

    # ------------------------------------------------------------------
    def solve(self) -> Matching:
        problem = self.problem
        tree = problem.rtree(index_backend=self.index_backend)
        if self.cold_start:
            tree.cold()
        io_before = tree.stats.snapshot()
        started = time.perf_counter()

        # Phase 1: δ-partition of P via the R-tree (charged I/O).
        groups = rtree_customer_partition(tree, self.delta)

        # Phase 2: concise matching Q ↔ P' in main memory.  The
        # representative tree is tiny; a buffer covering it entirely
        # models the paper's "performed in main memory".
        representatives = [
            Customer(Point(m, g.representative_xy), g.weight)
            for m, g in enumerate(groups)
        ]
        # The concise subproblem inherits the resolved index backend, so
        # its (tiny) representative tree runs on the same kernel as the
        # partition phase ("None follows the problem's default").
        concise_problem = CCAProblem(
            problem.providers,
            representatives,
            page_size=problem.page_size,
            buffer_fraction=1.0,
            index_backend=resolve_index_backend(problem, self.index_backend),
        )
        concise_solver = IDASolver(concise_problem, use_pua=True, backend=self.backend)
        concise_solver.solve()
        self.stats.extra["concise"] = concise_solver.stats
        self.stats.esub_edges = concise_solver.stats.esub_edges
        self.stats.dijkstra_runs = concise_solver.stats.dijkstra_runs

        # Phase 3: per-group refinement using the member points collected
        # during partitioning (no further I/O).
        flows: Dict[int, List[Tuple[int, int]]] = {}
        for provider_id, rep_id, _, units in (concise_solver.net.matching_flows()):
            flows.setdefault(rep_id, []).append((provider_id, units))
        refine = _REFINERS[self.refinement]
        pairs: List[Tuple[int, int, float]] = []
        for rep_id, provider_units in flows.items():
            group = groups[rep_id]
            quotas = [
                (problem.providers[i].point, units) for i, units in provider_units
            ]
            pairs.extend(refine(quotas, group.members))

        self.stats.cpu_s = time.perf_counter() - started
        self.stats.io = tree.stats.diff(io_before)
        self.stats.extra["num_groups"] = len(groups)
        self.stats.extra["delta"] = self.delta
        return Matching(pairs, stats=self.stats)
