"""Refinement phase heuristics (Section 4.3).

Both SA and CA reduce to many small sub-problems: assign a customer set
``P''`` to providers ``Q''`` where each provider has a known number of
instances (quota).  Running an exact solver per sub-problem would negate the
approximation speedup, so the paper proposes two cheap heuristics; both
operate purely in memory on the (small) group members.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from repro.geometry.distance import dist
from repro.geometry.point import Point


def nn_refine(
    providers: Sequence[Tuple[Point, int]],
    customers: Sequence[Point],
) -> List[Tuple[int, int, float]]:
    """NN-based refinement: providers take turns (round-robin), each
    claiming its nearest remaining customer until its quota is exhausted.

    ``providers`` are (point, quota) pairs.  Returns (q_pid, p_pid, dist)
    triples; ``min(Σ quota, |customers|)`` pairs are produced.
    """
    pairs: List[Tuple[int, int, float]] = []
    remaining = {p.pid: p for p in customers}
    # Per-provider candidate streams: lazily sorted distance lists.
    streams = []
    for q_point, quota in providers:
        if quota <= 0:
            continue
        candidates = sorted(
            ((dist(q_point, p), p.pid) for p in customers),
            key=lambda t: (t[0], t[1]),
        )
        streams.append([q_point, quota, candidates, 0])

    progressed = True
    while remaining and progressed:
        progressed = False
        for stream in streams:
            q_point, quota, candidates, cursor = stream
            if quota == 0:
                continue
            while cursor < len(candidates):
                d, pid = candidates[cursor]
                cursor += 1
                if pid in remaining:
                    pairs.append((q_point.pid, pid, d))
                    del remaining[pid]
                    stream[1] = quota - 1
                    progressed = True
                    break
            stream[3] = cursor
    return pairs


def exclusive_nn_refine(
    providers: Sequence[Tuple[Point, int]],
    customers: Sequence[Point],
) -> List[Tuple[int, int, float]]:
    """Exclusive-NN refinement: repeatedly commit the globally closest
    (provider-with-quota, unassigned-customer) pair."""
    quotas = {}
    points = {}
    heap: List[Tuple[float, int, int]] = []
    for q_point, quota in providers:
        if quota <= 0:
            continue
        quotas[q_point.pid] = quota
        points[q_point.pid] = q_point
        for p in customers:
            heapq.heappush(heap, (dist(q_point, p), q_point.pid, p.pid))
    taken = set()
    pairs: List[Tuple[int, int, float]] = []
    while heap:
        d, q_pid, p_pid = heapq.heappop(heap)
        if p_pid in taken or quotas.get(q_pid, 0) == 0:
            continue
        pairs.append((q_pid, p_pid, d))
        taken.add(p_pid)
        quotas[q_pid] -= 1
    return pairs
