"""Supervised execution of shard tasks — deadlines, retries, requeue.

:func:`~repro.core.shard.solve_sharded` used to drive its worker pool
with a bare ``pool.map``: one crashed, hung, or lying worker and the
whole solve died (or worse, returned silently wrong pairs).  This module
wraps that seam with the supervision loop ROADMAP item 5's multi-node
coordinator will inherit:

* **Per-task deadlines** — each submitted task carries a deadline from
  its *submission* time (wave scheduling keeps at most ``workers`` tasks
  in flight, so a deadline never starts ticking while the task is only
  queued).  A blown deadline kills the worker processes outright —
  ``ProcessPoolExecutor`` cannot cancel a running future — and the pool
  is rebuilt; in-flight tasks that were merely collateral are requeued
  at the *same* attempt (their failure was not their fault).
* **Bounded retry with exponential backoff + deterministic jitter** — a
  failed attempt is retried up to ``max_retries`` times; the backoff for
  (shard, attempt) is a pure function of the policy seed, so a replay of
  the same fault plan schedules identically.
* **Requeue-cold fallback** — when retries are exhausted the shard is
  re-solved *in the coordinator process* via the caller's ``fallback``
  (the same solve, stripped of fault injection).  The per-shard solver is
  deterministic, so the fallback result is bit-identical to what a
  healthy worker would have produced: certify-or-fall-back, never silent
  degradation.
* **Result verification** — an optional ``verify`` hook runs on every
  result (worker or fallback).  A worker result that fails verification
  is treated as a *poisoned* failure and retried; a fallback result that
  fails verification is a genuine bug and raises.

Every observed failure and the action taken is recorded on a
:class:`~repro.core.faults.FaultLedger`, which ``solve_sharded`` surfaces
on ``SolverStats.faults``.
"""

# repro-lint: disable-file=RPR006 -- the supervision loop IS the scheduling
# layer: deadlines, retry backoff and wakeups are wall-clock by nature.
# Result determinism is preserved independently of timing: the ledger
# drains completed futures in task-position order and every retry is
# replayed from an immutable ShardTask.

from __future__ import annotations

import hashlib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.core.faults import FaultInjected, FaultLedger


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor reacts to failures.

    ``task_timeout_s=None`` disables deadlines (the production default:
    a healthy shard solve has no natural wall-clock bound, and killing
    workers on a guess would turn slow instances into fault storms).
    Chaos runs and tests set it explicitly.
    """

    max_retries: int = 2
    task_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.25
    requeue_cold: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive (or None)")

    def backoff_s(self, shard: int, attempt: int) -> float:
        """Deterministic exponential backoff with per-(shard, attempt)
        jitter — a pure function, so replays schedule identically."""
        base = self.backoff_base_s * (self.backoff_multiplier ** max(0, attempt))
        if self.backoff_jitter <= 0:
            return base
        digest = hashlib.sha256(f"{self.seed}:{shard}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.backoff_jitter * unit)


class ShardTimeoutError(RuntimeError):
    """A task blew its per-task deadline and its worker was killed."""


def _classify(exc: BaseException) -> str:
    if isinstance(exc, BrokenProcessPool):
        return "crash"
    if isinstance(exc, ShardTimeoutError):
        return "timeout"
    if isinstance(exc, FaultInjected):
        return "error"
    return "error"


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard, leaving no orphan worker processes.

    The executor cannot cancel a *running* future, so deadline
    enforcement means killing the workers themselves; the private
    ``_processes`` map is the only handle CPython offers, hence the
    getattr guard (a stdlib that drops it degrades to plain shutdown).
    """
    procs_map = getattr(pool, "_processes", None)
    procs = list(procs_map.values()) if isinstance(procs_map, dict) else []
    for proc in procs:
        try:
            proc.terminate()
        # repro-lint: disable=RPR008 -- last-resort teardown of an already
        # condemned worker; the solve outcome was decided before this point
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        # repro-lint: disable=RPR008 -- ditto: join/kill on a dying process
        # may race process exit; there is nothing left to signal
        except Exception:
            pass


def run_supervised(
    tasks: Sequence,
    *,
    solve: Callable,
    fallback: Callable,
    verify: Optional[Callable] = None,
    workers: Optional[int] = None,
    mp_context=None,
    policy: Optional[RetryPolicy] = None,
    ledger: Optional[FaultLedger] = None,
) -> List:
    """Run ``solve(task)`` for every task under supervision.

    Returns results in task order.  ``tasks`` must expose ``.index``
    (ledger shard id) and ``.attempt`` (restamped via
    ``dataclasses.replace`` on retry).  ``fallback(task)`` re-solves a
    task in the calling process after retries are exhausted (only
    consulted when ``policy.requeue_cold``); ``verify(task, result)``
    returns an error string for an implausible result, ``None`` when it
    certifies.
    """
    policy = policy or RetryPolicy()
    ledger = ledger if ledger is not None else FaultLedger()
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return _run_inline(tasks, solve, fallback, verify, policy, ledger)
    return _run_pool(
        tasks,
        solve,
        fallback,
        verify,
        policy,
        ledger,
        min(workers, len(tasks)),
        mp_context,
    )


def _verified(task, result, verify, *, cold: bool):
    if verify is None:
        return result
    problem = verify(task, result)
    if problem is None:
        return result
    if cold:
        # The fallback runs fault-free in this very process: a result it
        # produces that still fails verification is a real solver bug,
        # not an injected hazard — surface it, never mask it.
        raise RuntimeError(
            f"cold requeue of shard {task.index} failed verification: " f"{problem}"
        )
    raise FaultInjected(
        f"injected shard worker fault (shard {task.index}): poisoned "
        f"result — {problem}"
    )


def _fail(
    task,
    attempt,
    exc,
    kind,
    *,
    policy,
    ledger,
    now,
    pending,
    pos,
    results,
    fallback,
    verify,
):
    """Shared failure policy: retry → requeue-cold → raise."""
    detail = f"{type(exc).__name__}: {exc}"
    if attempt < policy.max_retries:
        backoff = policy.backoff_s(task.index, attempt)
        ledger.record(task.index, attempt, kind, "retry", detail, backoff)
        pending.append((pos, attempt + 1, now + backoff))
        return
    if policy.requeue_cold:
        ledger.record(task.index, attempt, kind, "requeue_cold", detail)
        results[pos] = _verified(task, fallback(task), verify, cold=True)
        return
    ledger.record(task.index, attempt, kind, "raise", detail)
    raise exc


def _run_inline(tasks, solve, fallback, verify, policy, ledger):
    """Serial supervision (workers<=1): same retry/requeue policy, no
    deadline enforcement — a hang in this process cannot be preempted,
    which is exactly why chaos runs use worker processes."""
    results = [None] * len(tasks)
    for pos, task in enumerate(tasks):
        attempt = getattr(task, "attempt", 0)
        while True:
            try:
                results[pos] = _verified(
                    task,
                    solve(replace(task, attempt=attempt)),
                    verify,
                    cold=False,
                )
                break
            except Exception as exc:
                kind = "poison" if "poisoned result" in str(exc) else (_classify(exc))
                if attempt < policy.max_retries:
                    backoff = policy.backoff_s(task.index, attempt)
                    ledger.record(
                        task.index,
                        attempt,
                        kind,
                        "retry",
                        f"{type(exc).__name__}: {exc}",
                        backoff,
                    )
                    time.sleep(min(backoff, 0.25))  # bounded: same process
                    attempt += 1
                    continue
                if policy.requeue_cold:
                    ledger.record(
                        task.index,
                        attempt,
                        kind,
                        "requeue_cold",
                        f"{type(exc).__name__}: {exc}",
                    )
                    results[pos] = _verified(task, fallback(task), verify, cold=True)
                    break
                ledger.record(
                    task.index,
                    attempt,
                    kind,
                    "raise",
                    f"{type(exc).__name__}: {exc}",
                )
                raise
    return results


def _drain_order(finished, in_flight):
    """Completed futures in task-position order.

    ``wait()`` hands back a *set* of futures; iterating it directly
    would drain in heap-address order, making ledger event order (and
    retry budgets under racing deadlines) differ run to run.
    """
    return sorted(finished, key=lambda future: in_flight[future][0])


def _run_pool(tasks, solve, fallback, verify, policy, ledger, max_workers, mp_context):
    results = [None] * len(tasks)
    done = [False] * len(tasks)
    # (pos, attempt, ready_at): ready_at gates backoff re-submission.
    pending = [(pos, getattr(t, "attempt", 0), 0.0) for pos, t in enumerate(tasks)]
    in_flight = {}  # future -> (pos, attempt, deadline)
    pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=mp_context)
    pool_broken = False
    try:
        while pending or in_flight:
            now = time.monotonic()
            if pool_broken:
                _kill_pool(pool)
                pool = ProcessPoolExecutor(
                    max_workers=max_workers, mp_context=mp_context
                )
                pool_broken = False
            # Submit every ready task while worker slots are free — wave
            # scheduling: a deadline starts at submission, never while
            # the task is still queued behind others.
            still_waiting = []
            for pos, attempt, ready_at in sorted(pending):
                if (
                    ready_at <= now and len(in_flight) < max_workers and not pool_broken
                ):
                    try:
                        future = pool.submit(
                            solve, replace(tasks[pos], attempt=attempt)
                        )
                    except (BrokenProcessPool, RuntimeError):
                        pool_broken = True  # rebuild next iteration
                        still_waiting.append((pos, attempt, ready_at))
                        continue
                    deadline = (
                        now + policy.task_timeout_s
                        if policy.task_timeout_s is not None
                        else None
                    )
                    in_flight[future] = (pos, attempt, deadline)
                else:
                    still_waiting.append((pos, attempt, ready_at))
            pending = still_waiting

            # Sleep until something completes, a deadline expires, or a
            # backed-off task becomes ready.
            wake_at = [
                d for (_, _, d) in in_flight.values() if d is not None
            ] + [r for (_, _, r) in pending if r > now]
            timeout = max(0.0, min(wake_at) - now) if wake_at else None
            if in_flight:
                finished, _ = wait(
                    in_flight,
                    timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
            else:
                finished = set()
                if timeout:
                    time.sleep(min(timeout, 0.05))
            now = time.monotonic()

            for future in _drain_order(finished, in_flight):
                pos, attempt, _deadline = in_flight.pop(future)
                task = tasks[pos]
                exc = future.exception()
                if isinstance(exc, BrokenProcessPool):
                    pool_broken = True
                if exc is None:
                    try:
                        results[pos] = _verified(
                            task, future.result(), verify, cold=False
                        )
                        done[pos] = True
                        continue
                    except FaultInjected as poisoned:
                        _fail(
                            task,
                            attempt,
                            poisoned,
                            "poison",
                            policy=policy,
                            ledger=ledger,
                            now=now,
                            pending=pending,
                            pos=pos,
                            results=results,
                            fallback=fallback,
                            verify=verify,
                        )
                        if results[pos] is not None:
                            done[pos] = True
                        continue
                _fail(
                    task,
                    attempt,
                    exc,
                    _classify(exc),
                    policy=policy,
                    ledger=ledger,
                    now=now,
                    pending=pending,
                    pos=pos,
                    results=results,
                    fallback=fallback,
                    verify=verify,
                )
                if results[pos] is not None:
                    done[pos] = True

            # Deadline sweep: any in-flight task past its deadline means
            # killing the pool (running futures cannot be cancelled).
            expired = [
                (future, meta)
                for future, meta in in_flight.items()
                if meta[2] is not None and now >= meta[2]
            ]
            if expired:
                expired_futures = {future for future, _ in expired}
                collateral = [
                    meta for future, meta in in_flight.items()
                    if future not in expired_futures
                ]
                in_flight.clear()
                _kill_pool(pool)
                pool = ProcessPoolExecutor(
                    max_workers=max_workers, mp_context=mp_context
                )
                pool_broken = False
                for _future, (pos, attempt, _deadline) in expired:
                    task = tasks[pos]
                    exc = ShardTimeoutError(
                        f"shard {task.index} attempt {attempt} exceeded "
                        f"{policy.task_timeout_s:.3f}s deadline"
                    )
                    _fail(
                        task,
                        attempt,
                        exc,
                        "timeout",
                        policy=policy,
                        ledger=ledger,
                        now=now,
                        pending=pending,
                        pos=pos,
                        results=results,
                        fallback=fallback,
                        verify=verify,
                    )
                    if results[pos] is not None:
                        done[pos] = True
                for pos, attempt, _deadline in collateral:
                    # Killed alongside the offender through no fault of
                    # its own: requeue at the SAME attempt, no penalty.
                    ledger.record(
                        tasks[pos].index,
                        attempt,
                        "collateral",
                        "requeue",
                        "worker pool killed by a sibling's deadline",
                    )
                    pending.append((pos, attempt, now))
    finally:
        _kill_pool(pool)
    missing = [pos for pos, ok in enumerate(done) if not ok]
    if missing:  # unreachable by construction; guard against None results
        raise RuntimeError(f"supervised run lost results for task positions {missing}")
    return results


__all__ = [
    "RetryPolicy",
    "ShardTimeoutError",
    "run_supervised",
]
