"""Shared machinery of the incremental exact solvers (Section 3).

All three exact algorithms (RIA, NIA, IDA) are successive-shortest-path
solvers that operate on a growing, distance-bounded subgraph ``Esub`` and
augment a path only when **Theorem 1** certifies it:

    ``sp cost ≤ φ(E − Esub) − τmax``

where ``φ(E − Esub)`` is a lower bound on the length of every edge still
outside the subgraph (the expansion radius ``T`` for RIA, the heap top for
NIA/IDA) and ``τmax`` the largest provider potential.  The algorithms differ
only in how they *supply* edges, so this module hosts the common loop
skeleton, timing/IO bookkeeping, and the augmentation step.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.core.matching import Matching, SolverStats
from repro.core.problem import CCAProblem
from repro.flow.backend import DEFAULT_BACKEND, BackendLike, get_backend
from repro.flow.dijkstra import INF, DijkstraState
from repro.flow.graph import CCAFlowNetwork
from repro.rtree.backend import IndexBackendLike, resolve_index_backend

CERT_EPS = 1e-9


class IncrementalCCASolver:
    """Base class: owns the network, the R-tree, stats, and the solve loop.

    Subclasses implement :meth:`_initialize` (seed ``Esub``) and
    :meth:`_iteration` (produce and augment one certified shortest path).

    ``backend`` selects the flow kernel (see :mod:`repro.flow.backend`);
    ``index_backend`` the spatial-index kernel (see
    :mod:`repro.rtree.backend`; ``None`` follows the problem's default).
    ``net`` optionally seeds the solver with an existing residual network —
    the warm-start hook used by :class:`repro.core.session.Matcher`: the
    solver then continues augmenting from the seeded flow and potentials
    instead of starting from zero.
    """

    method = "base"

    def __init__(
        self,
        problem: CCAProblem,
        use_pua: bool = True,
        cold_start: bool = True,
        backend: BackendLike = DEFAULT_BACKEND,
        net: Optional[CCAFlowNetwork] = None,
        index_backend: Optional[IndexBackendLike] = None,
    ):
        self.problem = problem
        self.use_pua = use_pua
        self.cold_start = cold_start
        self.backend = get_backend(backend)
        self.index = resolve_index_backend(problem, index_backend)
        if net is None:
            self.net = self.backend.network(problem.capacities, problem.weights)
            self.warm_start = False
        else:
            if net.nq != len(problem.providers) or net.np != len(problem.customers):
                raise ValueError(
                    "seeded network shape does not match the problem "
                    f"({net.nq}x{net.np} vs {len(problem.providers)}x"
                    f"{len(problem.customers)})"
                )
            self.net = net
            self.warm_start = True
        self.tree = problem.rtree(index_backend=self.index.name)
        self.stats = SolverStats(method=self.method, gamma=self.net.gamma)
        # Provenance for multi-backend setups (the sharded engine selects
        # a kernel per shard; per-shard stats must say which one ran).
        self.stats.extra["backend"] = self.backend.name
        self.stats.extra["index_backend"] = self.index.name
        self.stats.extra["warm_start"] = self.warm_start

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def solve(self) -> Matching:
        """Run to completion and return the optimal matching."""
        if self.cold_start:
            # Measured starting state: empty buffer, zero I/O counters.
            self.tree.cold()
        io_before = self.tree.stats.snapshot()
        started = time.perf_counter()
        self._initialize()
        gamma = self.net.gamma
        while self.net.matched < gamma:
            self._iteration()
        self.stats.cpu_s = time.perf_counter() - started
        self.stats.esub_edges = self.net.edge_count
        # Charged I/O is not wall-clock: faults cost no real time in the
        # simulator, so cpu_s is pure compute and io_s is accounted apart.
        self.stats.io = self.tree.stats.diff(io_before)
        return Matching(self.net.matching_pairs(), stats=self.stats)

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        raise NotImplementedError

    def _iteration(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared steps
    # ------------------------------------------------------------------
    def _fresh_state(self) -> DijkstraState:
        self.stats.dijkstra_runs += 1
        return self.backend.dijkstra(self.net)

    def _certified(self, state: DijkstraState, bound: float) -> bool:
        """Theorem 1 test: is the found path provably globally shortest?"""
        if state.sp_cost == INF:
            return False
        if bound == INF:
            return True
        return state.sp_cost <= bound - self.net.tau_max + CERT_EPS

    def _augment(self, state: DijkstraState) -> None:
        """Reverse the certified path and advance the potentials."""
        started = time.perf_counter()
        self.net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        self.stats.add_stage("augment", time.perf_counter() - started)
        self.stats.dijkstra_pops += state.pops

    def _finish_matching(self) -> List[Tuple[int, int, float]]:
        return self.net.matching_pairs()
