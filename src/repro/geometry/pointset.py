"""Columnar point storage and batch distance kernels.

The object-per-point :class:`~repro.geometry.point.Point` is the right
currency at API boundaries, but the spatial hot paths (R-tree construction,
ANN streams, shard routing) iterate over *datasets*, where per-object tuple
arithmetic dominates.  :class:`PointSet` stores a dataset as two NumPy
columns — ``ids`` and an ``(n, d)`` float64 coordinate matrix — and
materializes :class:`Point` views only on demand.

Every batch kernel below accumulates per-axis in the same order as its
scalar counterpart in :mod:`repro.geometry.distance` (``0.0 + d0² + d1² +
…`` then one square root), so results are **bit-identical** to the scalar
functions, element for element.  That exactness is what lets the packed
index backend promise bit-identical matchings (see
:mod:`repro.rtree.backend`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.point import Point


class PointSet:
    """An id-carrying columnar point collection.

    Parameters
    ----------
    coords:
        ``(n, d)`` array-like of float coordinates.  A flat ``(n,)`` input
        is treated as ``n`` one-dimensional points.
    ids:
        Integer identities, one per row; defaults to ``0..n-1``.
    """

    __slots__ = ("ids", "coords")

    def __init__(self, coords, ids: Optional[Sequence[int]] = None):
        arr = np.asarray(coords, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValueError(f"coords must be (n, d), got shape {arr.shape}")
        if arr.shape[0] and arr.shape[1] == 0:
            raise ValueError("points need at least one coordinate")
        self.coords: np.ndarray = arr
        if ids is None:
            self.ids: np.ndarray = np.arange(arr.shape[0], dtype=np.int64)
        else:
            self.ids = np.asarray(ids, dtype=np.int64)
            if self.ids.shape != (arr.shape[0],):
                raise ValueError(
                    f"ids shape {self.ids.shape} does not match "
                    f"{arr.shape[0]} points"
                )

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "PointSet":
        """Columnarize an iterable of :class:`Point` objects."""
        points = list(points)
        if not points:
            return cls(np.empty((0, 2), dtype=np.float64), ids=[])
        dim = points[0].dim
        coords = np.empty((len(points), dim), dtype=np.float64)
        ids = np.empty(len(points), dtype=np.int64)
        for row, p in enumerate(points):
            coords[row] = p.coords
            ids[row] = p.pid
        return cls(coords, ids=ids)

    def point(self, row: int) -> Point:
        """Materialize one row as a :class:`Point` view."""
        return Point(int(self.ids[row]), self.coords[row])

    def to_points(self) -> List[Point]:
        """Materialize every row (boundary/compat use only)."""
        return [self.point(row) for row in range(len(self))]

    def take(self, rows) -> "PointSet":
        """A new PointSet of the selected rows (ids preserved)."""
        rows = np.asarray(rows, dtype=np.int64)
        return PointSet(self.coords[rows], ids=self.ids[rows])

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.coords.shape[1]

    def bounds(self):
        """Tight (lo, hi) coordinate arrays (the columnar MBR)."""
        if not len(self):
            raise ValueError("cannot bound an empty point set")
        return self.coords.min(axis=0), self.coords.max(axis=0)

    def mbr(self) -> MBR:
        lo, hi = self.bounds()
        return MBR(lo, hi)

    def dists_to(self, xy) -> np.ndarray:
        """Euclidean distance from every row to one coordinate vector.

        Bit-identical to ``[dist(p, q) for p in rows]``.
        """
        return batch_dists(self.coords, np.asarray(xy, dtype=np.float64))

    def __len__(self) -> int:
        return self.coords.shape[0]

    def __repr__(self) -> str:
        return f"PointSet(n={len(self)}, d={self.coords.shape[1]})"


# ----------------------------------------------------------------------
# batch kernels (bit-identical to repro.geometry.distance scalars)
# ----------------------------------------------------------------------
def batch_dists(coords: np.ndarray, q: np.ndarray) -> np.ndarray:
    """``dist(row, q)`` for every row of an ``(n, d)`` matrix."""
    acc = np.zeros(coords.shape[0], dtype=np.float64)
    for axis in range(coords.shape[1]):
        diff = coords[:, axis] - q[axis]
        acc += diff * diff
    return np.sqrt(acc)


def cross_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(m, n)`` distance matrix between ``(m, d)`` and ``(n, d)`` rows."""
    acc = np.zeros((a.shape[0], b.shape[0]), dtype=np.float64)
    for axis in range(a.shape[1]):
        diff = a[:, axis, None] - b[None, :, axis]
        acc += diff * diff
    return np.sqrt(acc)


def mindist_point_to_boxes(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """``mindist_point_mbr(q, box)`` for every row of ``(n, d)`` boxes."""
    acc = np.zeros(lo.shape[0], dtype=np.float64)
    for axis in range(lo.shape[1]):
        below = lo[:, axis] - q[axis]
        above = q[axis] - hi[:, axis]
        gap = np.maximum(np.maximum(below, above), 0.0)
        acc += gap * gap
    return np.sqrt(acc)


def maxdist_point_to_boxes(q: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """``maxdist_point_mbr(q, box)`` for every row of ``(n, d)`` boxes."""
    acc = np.zeros(lo.shape[0], dtype=np.float64)
    for axis in range(lo.shape[1]):
        gap = np.maximum(np.abs(q[axis] - lo[:, axis]), np.abs(q[axis] - hi[:, axis]))
        acc += gap * gap
    return np.sqrt(acc)


def mindist_box_to_boxes(
    qlo: np.ndarray, qhi: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """``mindist_mbr_mbr(qbox, box)`` for every row of ``(n, d)`` boxes."""
    acc = np.zeros(lo.shape[0], dtype=np.float64)
    for axis in range(lo.shape[1]):
        gap = np.maximum(
            np.maximum(lo[:, axis] - qhi[axis], qlo[axis] - hi[:, axis]), 0.0
        )
        acc += gap * gap
    return np.sqrt(acc)


def mindist_box_to_points(
    qlo: np.ndarray, qhi: np.ndarray, coords: np.ndarray
) -> np.ndarray:
    """``mindist_mbr_mbr(qbox, MBR.from_point(p))`` for every point row.

    A point is a degenerate box, so this is the key Algorithm 6 assigns to
    de-heaped points — computed here without materializing any MBR.
    """
    acc = np.zeros(coords.shape[0], dtype=np.float64)
    for axis in range(coords.shape[1]):
        gap = np.maximum(
            np.maximum(coords[:, axis] - qhi[axis], qlo[axis] - coords[:, axis]),
            0.0,
        )
        acc += gap * gap
    return np.sqrt(acc)
