"""Immutable spatial points with identity.

A :class:`Point` carries an integer id so that datasets can be stored as
plain coordinate arrays while algorithms refer to points by id.  Points are
hashable on their id, which the matching structures rely on.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence, Tuple


class Point:
    """A point in d-dimensional Euclidean space with an integer identity.

    Parameters
    ----------
    pid:
        Integer identifier, unique within its dataset.
    coords:
        Coordinate tuple; any sequence of floats is accepted.
    """

    __slots__ = ("pid", "coords")

    def __init__(self, pid: int, coords: Sequence[float]):
        self.pid = int(pid)
        self.coords: Tuple[float, ...] = tuple(float(c) for c in coords)
        if not self.coords:
            raise ValueError("a point needs at least one coordinate")

    @property
    def x(self) -> float:
        """First coordinate (convenience for the 2-D case)."""
        return self.coords[0]

    @property
    def y(self) -> float:
        """Second coordinate (convenience for the 2-D case)."""
        return self.coords[1]

    @property
    def dim(self) -> int:
        """Dimensionality of the point."""
        return len(self.coords)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` (same float ops as
        :func:`repro.geometry.distance.dist`)."""
        total = 0.0
        for a, b in zip(self.coords, other.coords, strict=False):
            diff = a - b
            total += diff * diff
        return math.sqrt(total)

    def __iter__(self) -> Iterator[float]:
        return iter(self.coords)

    def __len__(self) -> int:
        return len(self.coords)

    def __getitem__(self, i: int) -> float:
        return self.coords[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        return self.pid == other.pid and self.coords == other.coords

    def __hash__(self) -> int:
        return hash((self.pid, self.coords))

    def __repr__(self) -> str:
        coord_text = ", ".join(f"{c:g}" for c in self.coords)
        return f"Point(id={self.pid}, ({coord_text}))"
