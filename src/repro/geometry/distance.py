"""Distance functions.

``mindist`` between a query point (or a group MBR) and an R-tree entry MBR is
the pruning key of best-first nearest-neighbor search [Hjaltason & Samet] and
of the incremental all-nearest-neighbor procedure (Algorithm 6).
"""

from __future__ import annotations

import math

from repro.geometry.mbr import MBR
from repro.geometry.point import Point


def dist(a: Point, b: Point) -> float:
    """Euclidean distance between two points (Ψ's per-pair cost, Eq. 1).

    Squares via explicit multiplication, not ``** 2``: libm ``pow`` can be
    one ulp off a plain product, and the columnar batch kernels in
    :mod:`repro.geometry.pointset` (which multiply) must stay bit-identical
    to this scalar reference.
    """
    total = 0.0
    for x, y in zip(a.coords, b.coords, strict=False):
        diff = x - y
        total += diff * diff
    return math.sqrt(total)


def dist_squared(a: Point, b: Point) -> float:
    """Squared Euclidean distance (cheaper comparator for ties/sorting)."""
    total = 0.0
    for x, y in zip(a.coords, b.coords, strict=False):
        diff = x - y
        total += diff * diff
    return total


def mindist_point_mbr(point: Point, mbr: MBR) -> float:
    """Smallest possible distance from ``point`` to any point inside ``mbr``."""
    total = 0.0
    for c, lo, hi in zip(point.coords, mbr.lo, mbr.hi, strict=False):
        if c < lo:
            d = lo - c
        elif c > hi:
            d = c - hi
        else:
            d = 0.0
        total += d * d
    return math.sqrt(total)


def maxdist_point_mbr(point: Point, mbr: MBR) -> float:
    """Largest possible distance from ``point`` to any point inside ``mbr``.

    Used by the annular range search of RIA to skip subtrees that lie
    entirely inside the inner radius.
    """
    total = 0.0
    for c, lo, hi in zip(point.coords, mbr.lo, mbr.hi, strict=False):
        d = max(abs(c - lo), abs(c - hi))
        total += d * d
    return math.sqrt(total)


def mindist_mbr_point(mbr: MBR, point: Point) -> float:
    """``mindist_mbr_mbr(mbr, MBR.from_point(point))`` without building
    the degenerate point-MBR (Algorithm 6 keys one entry per de-heaped
    leaf point, so this runs once per candidate).  Same per-axis
    accumulation order as :func:`mindist_mbr_mbr` — bit-identical keys.
    """
    total = 0.0
    for lo, hi, c in zip(mbr.lo, mbr.hi, point.coords, strict=False):
        if hi < c:
            d = c - hi
        elif c < lo:
            d = lo - c
        else:
            d = 0.0
        total += d * d
    return math.sqrt(total)


def mindist_mbr_mbr(a: MBR, b: MBR) -> float:
    """Smallest distance between any two points of two MBRs (Algorithm 6)."""
    total = 0.0
    for alo, ahi, blo, bhi in zip(a.lo, a.hi, b.lo, b.hi, strict=False):
        if ahi < blo:
            d = blo - ahi
        elif bhi < alo:
            d = alo - bhi
        else:
            d = 0.0
        total += d * d
    return math.sqrt(total)
