"""Geometry primitives used across the CCA reproduction.

The paper works with two-dimensional Euclidean points, minimum bounding
rectangles (MBRs, the R-tree building block), and a handful of distance
functions (point-point, point-rectangle ``mindist``/``maxdist``, and
rectangle-rectangle ``mindist``).  Everything here is dimension-generic but
optimized for the 2-D case the paper evaluates.
"""

from repro.geometry.distance import (
    dist,
    dist_squared,
    maxdist_point_mbr,
    mindist_mbr_mbr,
    mindist_point_mbr,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.pointset import (
    PointSet,
    batch_dists,
    cross_dists,
    maxdist_point_to_boxes,
    mindist_box_to_boxes,
    mindist_box_to_points,
    mindist_point_to_boxes,
)

__all__ = [
    "Point",
    "MBR",
    "dist",
    "dist_squared",
    "mindist_point_mbr",
    "maxdist_point_mbr",
    "mindist_mbr_mbr",
    "PointSet",
    "batch_dists",
    "cross_dists",
    "mindist_point_to_boxes",
    "maxdist_point_to_boxes",
    "mindist_box_to_boxes",
    "mindist_box_to_points",
]
