"""Minimum bounding rectangles.

MBRs are the unit of grouping in the R-tree (Section 2.3 of the paper) and in
the approximate algorithms' partitioning phases (Section 4), where the group
*diagonal* is compared against the quality knob ``δ``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

from repro.geometry.point import Point


class MBR:
    """An axis-aligned minimum bounding (hyper-)rectangle.

    Stored as ``lo`` and ``hi`` coordinate tuples with ``lo[i] <= hi[i]``.
    MBRs are immutable; combination operations return new rectangles.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo_t = tuple(float(c) for c in lo)
        hi_t = tuple(float(c) for c in hi)
        if len(lo_t) != len(hi_t):
            raise ValueError("lo/hi dimensionality mismatch")
        if any(low > high for low, high in zip(lo_t, hi_t, strict=False)):
            raise ValueError(f"inverted MBR bounds: lo={lo_t} hi={hi_t}")
        self.lo: Tuple[float, ...] = lo_t
        self.hi: Tuple[float, ...] = hi_t

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Point) -> "MBR":
        """Degenerate MBR covering a single point."""
        return cls(point.coords, point.coords)

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "MBR":
        """Tight MBR of a non-empty point collection."""
        points = list(points)
        if not points:
            raise ValueError("cannot bound an empty point set")
        dim = points[0].dim
        lo = [min(p[i] for p in points) for i in range(dim)]
        hi = [max(p[i] for p in points) for i in range(dim)]
        return cls(lo, hi)

    @classmethod
    def union_all(cls, mbrs: Iterable["MBR"]) -> "MBR":
        """Tight MBR of a non-empty MBR collection."""
        mbrs = list(mbrs)
        if not mbrs:
            raise ValueError("cannot union an empty MBR set")
        dim = len(mbrs[0].lo)
        lo = [min(m.lo[i] for m in mbrs) for i in range(dim)]
        hi = [max(m.hi[i] for m in mbrs) for i in range(dim)]
        return cls(lo, hi)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self.lo)

    @property
    def diagonal(self) -> float:
        """Length of the main diagonal (the δ criterion of Section 4)."""
        # Explicit product, not `** 2`: CPython lowers float ** 2 to libm
        # pow, which may be 1 ulp off the exact multiply — enough to flip
        # a δ-threshold tie against the packed backend's arithmetic.
        return math.sqrt(
            sum((h - low) * (h - low) for low, h in zip(self.lo, self.hi, strict=False))
        )

    @property
    def center(self) -> Tuple[float, ...]:
        return tuple((low + h) / 2.0 for low, h in zip(self.lo, self.hi, strict=False))

    @property
    def area(self) -> float:
        product = 1.0
        for low, h in zip(self.lo, self.hi, strict=False):
            product *= h - low
        return product

    @property
    def margin(self) -> float:
        """Sum of side lengths (used by split heuristics)."""
        return sum(h - low for low, h in zip(self.lo, self.hi, strict=False))

    def side(self, axis: int) -> float:
        return self.hi[axis] - self.lo[axis]

    def longest_axis(self) -> int:
        """Axis with the largest extent (CA leaf splitting, Section 4.2)."""
        return max(range(self.dim), key=self.side)

    # ------------------------------------------------------------------
    # predicates and combinators
    # ------------------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        return all(
            low <= c <= h
            for low, c, h in zip(self.lo, point.coords, self.hi, strict=False)
        )

    def contains_mbr(self, other: "MBR") -> bool:
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(
                self.lo, self.hi, other.lo, other.hi, strict=False
            )
        )

    def intersects(self, other: "MBR") -> bool:
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(
                self.lo, self.hi, other.lo, other.hi, strict=False
            )
        )

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo, strict=False)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi, strict=False)),
        )

    def enlargement(self, other: "MBR") -> float:
        """Area increase if ``other`` were merged in (Guttman's criterion)."""
        return self.union(other).area - self.area

    def split_halves(self, axis: int) -> Tuple["MBR", "MBR"]:
        """Split into two equal halves along ``axis`` (CA leaf handling)."""
        mid = (self.lo[axis] + self.hi[axis]) / 2.0
        lo_hi = list(self.hi)
        lo_hi[axis] = mid
        hi_lo = list(self.lo)
        hi_lo[axis] = mid
        return MBR(self.lo, lo_hi), MBR(hi_lo, self.hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"MBR(lo={self.lo}, hi={self.hi})"
