"""Solver-agnostic spatial partitioning primitives.

The paper's approximation algorithms (Section 4) and the sharded parallel
engine (:mod:`repro.core.shard`) decompose the plane the same way: walk
items along the Hilbert curve and greedily grow groups whose MBR diagonal
stays within a quality knob ``δ``, then optionally bundle adjacent groups
into coarser units.  This module hosts those primitives so SA/CA and the
shard planner share one implementation instead of re-deriving it.

Everything here is pure geometry over :class:`~repro.geometry.point.Point`
sequences — no solver, R-tree, or I/O dependencies — which keeps the
functions safe to call from worker processes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.hilbert.curve import hilbert_key

# Greedy placement only looks back this many groups along the Hilbert walk.
# Curve locality makes farther groups near-certain misses; the window keeps
# partitioning O(n·W) instead of O(n²) and never violates the δ bound.
SCAN_WINDOW = 32


def hilbert_sorted(
    points: Sequence[Point],
    world_lo: Sequence[float],
    world_hi: Sequence[float],
) -> List[Point]:
    """Points ordered along the Hilbert curve (ties broken by pid)."""
    return sorted(
        points,
        key=lambda p: (hilbert_key(p.coords, world_lo, world_hi), p.pid),
    )


def hilbert_greedy_groups(
    points: Sequence[Point],
    delta: float,
    world_lo: Sequence[float],
    world_hi: Sequence[float],
) -> List[List[Point]]:
    """SA's partitioning (Section 4.1): walk points in Hilbert order and
    append each to the first (most recent) existing group whose MBR stays
    within diagonal δ; open a new group otherwise."""
    if delta < 0:
        raise ValueError("delta must be non-negative")
    ordered = hilbert_sorted(points, world_lo, world_hi)
    groups: List[List[Point]] = []
    mbrs: List[MBR] = []
    for point in ordered:
        point_mbr = MBR.from_point(point)
        placed = False
        # Most-recent-first: Hilbert neighbors cluster at the tail.
        for idx in range(len(groups) - 1, max(len(groups) - SCAN_WINDOW, 0) - 1, -1):
            candidate = mbrs[idx].union(point_mbr)
            if candidate.diagonal <= delta:
                groups[idx].append(point)
                mbrs[idx] = candidate
                placed = True
                break
        if not placed:
            groups.append([point])
            mbrs.append(point_mbr)
    return groups


def balanced_bundles(
    weights: Sequence[float], num_bundles: int
) -> List[Tuple[int, int]]:
    """Split a sequence into ≤ ``num_bundles`` contiguous runs of roughly
    equal total weight.

    Returns half-open index ranges ``(start, end)``.  The greedy sweep
    closes a run once its cumulative weight reaches the ideal prefix
    quota, which keeps every run non-empty and the heaviest run within
    one item of optimal for the contiguous-partition problem — good
    enough for load-balancing shard capacities along the Hilbert walk.
    """
    if num_bundles < 1:
        raise ValueError("num_bundles must be positive")
    n = len(weights)
    if n == 0:
        return []
    num_bundles = min(num_bundles, n)
    total = float(sum(weights))
    ranges: List[Tuple[int, int]] = []
    start = 0
    acc = 0.0
    for idx, weight in enumerate(weights):
        acc += float(weight)
        bundles_left = num_bundles - len(ranges)
        items_left = n - idx - 1
        # Close the run at the ideal prefix quota, but never strand more
        # runs than there are items left to seed them with.
        quota = total * (len(ranges) + 1) / num_bundles
        if (acc >= quota and bundles_left > 1) or items_left < bundles_left - 1:
            ranges.append((start, idx + 1))
            start = idx + 1
    if start < n:
        ranges.append((start, n))
    return ranges


def capacity_weighted_centroid(
    points: Sequence[Point], capacities: Sequence[int]
) -> Tuple[float, float]:
    """The capacity-weighted centroid used for SA group representatives
    (plain centroid when the group's total capacity is zero)."""
    if not points:
        raise ValueError("centroid of an empty group is undefined")
    total = sum(capacities)
    if total > 0:
        x = sum(p.x * k for p, k in zip(points, capacities, strict=False)) / total
        y = sum(p.y * k for p, k in zip(points, capacities, strict=False)) / total
    else:
        x = sum(p.x for p in points) / len(points)
        y = sum(p.y for p in points) / len(points)
    return x, y
