"""R-tree node structure (one node == one disk page)."""

from __future__ import annotations

from typing import List, Optional

from repro.geometry.mbr import MBR
from repro.geometry.point import Point


class RTreeNode:
    """A leaf (points) or directory node (child page ids + child MBRs)."""

    __slots__ = ("page_id", "is_leaf", "points", "children_ids", "child_mbrs")

    def __init__(self, page_id: int, is_leaf: bool):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.points: List[Point] = []
        self.children_ids: List[int] = []
        self.child_mbrs: List[MBR] = []

    @property
    def entry_count(self) -> int:
        return len(self.points) if self.is_leaf else len(self.children_ids)

    def mbr(self) -> Optional[MBR]:
        """Tight bounding rectangle of this node's entries (None if empty)."""
        if self.is_leaf:
            if not self.points:
                return None
            return MBR.from_points(self.points)
        if not self.child_mbrs:
            return None
        return MBR.union_all(self.child_mbrs)

    def add_point(self, point: Point) -> None:
        if not self.is_leaf:
            raise TypeError("cannot add a point to a directory node")
        self.points.append(point)

    def add_child(self, child_id: int, child_mbr: MBR) -> None:
        if self.is_leaf:
            raise TypeError("cannot add a child to a leaf node")
        self.children_ids.append(child_id)
        self.child_mbrs.append(child_mbr)

    def remove_child(self, child_id: int) -> None:
        idx = self.children_ids.index(child_id)
        del self.children_ids[idx]
        del self.child_mbrs[idx]

    def set_child_mbr(self, child_id: int, child_mbr: MBR) -> None:
        idx = self.children_ids.index(child_id)
        self.child_mbrs[idx] = child_mbr

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "dir"
        return f"RTreeNode(page={self.page_id}, {kind}, n={self.entry_count})"
