"""Spatial queries over the R-tree.

* :func:`range_search` / :func:`annular_range_search` — RIA's bulk edge
  supply (Algorithm 2 lines 3 and 14).  The ``*_columns`` variants report
  the hits as ``(ids, distances)`` arrays — the distances are computed by
  the filter anyway, and handing them out as columns lets RIA stream the
  result straight into ``CCAFlowNetwork.add_edges`` without materializing
  :class:`Point` objects or re-deriving distances.
* :func:`knn_search` — best-first K nearest neighbors [7].
* :class:`IncrementalNN` — a resumable best-first NN stream: each call to
  :meth:`IncrementalNN.next` returns the next closest customer, the primitive
  NIA and IDA consume (Algorithm 3 lines 4/9).
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.distance import dist, maxdist_point_mbr, mindist_point_mbr
from repro.geometry.point import Point
from repro.rtree.tree import RTree


def _range_scan(tree: RTree, query: Point, inner: float, outer: float):
    """The one pointer-tree range traversal behind all four public
    range-search variants: hits ``inner < dist <= outer`` in DFS order,
    returned as parallel (points, distances) lists.

    ``inner < 0`` means "no inner ring": the leaf filter is vacuous on
    the left (distances are non-negative) and the ``maxdist`` prune is
    skipped, which makes the scan behave — and visit pages — exactly
    like a plain radius search.
    """
    points: List[Point] = []
    dists: List[float] = []
    if tree.root_id is None:
        return points, dists
    annular = inner >= 0.0
    stack = [tree.root_id]
    while stack:
        node = tree.node(stack.pop())
        if node.is_leaf:
            for p in node.points:
                d = dist(query, p)
                if inner < d <= outer:
                    points.append(p)
                    dists.append(d)
        else:
            for child_id, child_mbr in zip(
                node.children_ids, node.child_mbrs, strict=False
            ):
                if mindist_point_mbr(query, child_mbr) > outer:
                    continue
                if annular and maxdist_point_mbr(query, child_mbr) <= inner:
                    continue
                stack.append(child_id)
    return points, dists


def _as_columns(points, dists) -> Tuple[np.ndarray, np.ndarray]:
    return (
        np.asarray([p.pid for p in points], dtype=np.int64),
        np.asarray(dists, dtype=np.float64),
    )


def range_search(tree: RTree, query: Point, radius: float) -> List[Point]:
    """All indexed points within ``radius`` of ``query`` (inclusive).

    Packed trees carry their own vectorized traversal (same visit order,
    batch arithmetic); dispatch to it so RIA's bulk supply stays columnar
    on the packed backend.
    """
    if getattr(tree, "is_packed", False):
        return tree.range_search(query, radius)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return _range_scan(tree, query, -1.0, radius)[0]


def annular_range_search(
    tree: RTree, query: Point, inner: float, outer: float
) -> List[Point]:
    """Points ``p`` with ``inner < dist(query, p) <= outer``.

    This is RIA's ring expansion: after growing ``T`` by ``θ`` it fetches
    only the new ring, pruning subtrees that lie entirely inside the inner
    radius (``maxdist <= inner``) or entirely outside the outer one.
    """
    if getattr(tree, "is_packed", False):
        return tree.annular_range_search(query, inner, outer)
    if inner < 0 or outer < inner:
        raise ValueError("need 0 <= inner <= outer")
    return _range_scan(tree, query, inner, outer)[0]


def range_search_columns(
    tree: RTree, query: Point, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`range_search` as ``(ids, distances)`` columns.

    Identical traversal and hit order; the distances are the very values
    the radius filter computed (scalar kernel on the pointer tree, batch
    kernel on the packed tree — bit-identical by construction).
    """
    if getattr(tree, "is_packed", False):
        return tree.range_search_columns(query, radius)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return _as_columns(*_range_scan(tree, query, -1.0, radius))


def annular_range_search_columns(
    tree: RTree, query: Point, inner: float, outer: float
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`annular_range_search` as ``(ids, distances)`` columns (see
    :func:`range_search_columns`)."""
    if getattr(tree, "is_packed", False):
        return tree.annular_range_search_columns(query, inner, outer)
    if inner < 0 or outer < inner:
        raise ValueError("need 0 <= inner <= outer")
    return _as_columns(*_range_scan(tree, query, inner, outer))


def knn_search(tree: RTree, query: Point, k: int) -> List[Point]:
    """The ``k`` nearest indexed points, closest first."""
    if k < 0:
        raise ValueError("k must be non-negative")
    stream = IncrementalNN(tree, query)
    out: List[Point] = []
    while len(out) < k:
        nxt = stream.next()
        if nxt is None:
            break
        out.append(nxt)
    return out


class IncrementalNN:
    """Best-first incremental nearest-neighbor iterator [7].

    Maintains a min-heap of R-tree entries keyed by ``mindist`` (points keyed
    by their exact distance); every :meth:`next` call pops heap entries,
    expanding directory nodes, until a point surfaces.  Guarantees points are
    reported in non-decreasing distance order.
    """

    _NODE, _POINT = 0, 1

    def __init__(self, tree: RTree, query: Point):
        self.tree = tree
        self.query = query
        self._counter = itertools.count()
        self._heap: list = []
        self.reported = 0
        if tree.root_id is not None:
            root_mbr = tree.root_mbr()
            if root_mbr is not None:
                self._push(
                    mindist_point_mbr(query, root_mbr),
                    self._NODE,
                    tree.root_id,
                )

    def _push(self, key: float, kind: int, obj) -> None:
        heapq.heappush(self._heap, (key, kind, next(self._counter), obj))

    def peek_key(self) -> Optional[float]:
        """Lower bound on the distance of the next unreported point."""
        return self._heap[0][0] if self._heap else None

    def next(self) -> Optional[Point]:
        """The next nearest point, or None when the stream is exhausted."""
        while self._heap:
            key, kind, _, obj = heapq.heappop(self._heap)
            if kind == self._POINT:
                self.reported += 1
                return obj
            node = self.tree.node(obj)
            if node.is_leaf:
                for p in node.points:
                    self._push(dist(self.query, p), self._POINT, p)
            else:
                for child_id, child_mbr in zip(
                    node.children_ids, node.child_mbrs, strict=False
                ):
                    self._push(
                        mindist_point_mbr(self.query, child_mbr),
                        self._NODE,
                        child_id,
                    )
        return None

    def __iter__(self):
        while True:
            p = self.next()
            if p is None:
                return
            yield p
