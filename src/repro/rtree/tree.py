"""The R-tree proper: page-backed structure with Guttman maintenance.

All node accesses on the *query* path go through the LRU buffer pool so page
faults are charged exactly as in the paper's setup.  Construction (bulk load
or repeated inserts) happens before measurements; call :meth:`RTree.cold`
or :meth:`RTree.reset_io` before a measured workload.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.rtree.bulk import str_bulk_load
from repro.rtree.node import RTreeNode
from repro.storage.buffer import LRUBufferPool
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, PageManager

MIN_FILL_FRACTION = 0.4


class RTree:
    """A disk-simulated R-tree over 2-D points.

    Parameters
    ----------
    page_size:
        Bytes per page (paper: 1024); determines node fan-out.
    buffer_fraction:
        LRU buffer capacity as a fraction of the tree's page count
        (paper: 0.01).  The buffer is resized on :meth:`cold`.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
        buffer_capacity: Optional[int] = None,
    ):
        self.manager = PageManager(page_size=page_size)
        self.buffer_fraction = buffer_fraction
        self._fixed_buffer_capacity = buffer_capacity
        self.stats = IOStats()
        self.buffer = LRUBufferPool(
            self.manager, capacity=buffer_capacity or 64, stats=self.stats
        )
        self.root_id: Optional[int] = None
        self.height = 0
        self.size = 0
        self.leaf_cap = self.manager.leaf_capacity()
        self.dir_cap = self.manager.dir_capacity()
        self.min_leaf = max(1, int(self.leaf_cap * MIN_FILL_FRACTION))
        self.min_dir = max(2, int(self.dir_cap * MIN_FILL_FRACTION))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: Sequence[Point],
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
        buffer_capacity: Optional[int] = None,
    ) -> "RTree":
        """Bulk-load a tree (STR) and start it cold (empty buffer)."""
        tree = cls(
            page_size=page_size,
            buffer_fraction=buffer_fraction,
            buffer_capacity=buffer_capacity,
        )
        if points:
            tree.root_id, tree.height, _ = str_bulk_load(tree.manager, points)
            tree.size = len(points)
        tree.cold()
        return tree

    def cold(self) -> None:
        """Empty the buffer, resize it to the configured fraction of the
        tree, and zero the I/O counters — the measured starting state."""
        capacity = self._fixed_buffer_capacity
        if capacity is None:
            capacity = LRUBufferPool.capacity_for_tree(
                max(len(self.manager), 1), self.buffer_fraction
            )
        self.buffer = LRUBufferPool(self.manager, capacity, stats=self.stats)
        self.stats.reset()

    def reset_io(self) -> None:
        """Zero the I/O counters without evicting the buffer."""
        self.stats.reset()

    @property
    def num_pages(self) -> int:
        return len(self.manager)

    # ------------------------------------------------------------------
    # node access (the charged path)
    # ------------------------------------------------------------------
    def node(self, page_id: int) -> RTreeNode:
        """Read a node through the buffer pool (counts faults)."""
        return self.buffer.access(page_id).payload

    def root(self) -> Optional[RTreeNode]:
        if self.root_id is None:
            return None
        return self.node(self.root_id)

    def root_mbr(self) -> Optional[MBR]:
        root = self.root()
        return None if root is None else root.mbr()

    # ------------------------------------------------------------------
    # insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def insert(self, point: Point) -> None:
        """Insert one point (quadratic-split Guttman R-tree)."""
        if self.root_id is None:
            page = self.manager.allocate()
            node = RTreeNode(page.page_id, is_leaf=True)
            node.add_point(point)
            page.payload = node
            self.root_id = page.page_id
            self.height = 1
            self.size = 1
            return

        path = self._descend_for_insert(point)
        leaf = path[-1][0]
        leaf.add_point(point)
        self.size += 1
        self._handle_overflow_and_adjust(path)

    def _descend_for_insert(self, point: Point) -> List[Tuple[RTreeNode, int]]:
        """Path of (node, child-index-taken); leaf has child index -1."""
        path: List[Tuple[RTreeNode, int]] = []
        node = self.node(self.root_id)
        while not node.is_leaf:
            idx = self._choose_subtree(node, point)
            path.append((node, idx))
            node = self.node(node.children_ids[idx])
        path.append((node, -1))
        return path

    @staticmethod
    def _choose_subtree(node: RTreeNode, point: Point) -> int:
        """Least-enlargement child, ties by smaller area (Guttman)."""
        point_mbr = MBR.from_point(point)
        best_idx = 0
        best = (float("inf"), float("inf"))
        for i, child_mbr in enumerate(node.child_mbrs):
            candidate = (child_mbr.enlargement(point_mbr), child_mbr.area)
            if candidate < best:
                best = candidate
                best_idx = i
        return best_idx

    def _handle_overflow_and_adjust(self, path: List[Tuple[RTreeNode, int]]) -> None:
        """Split overflowing nodes bottom-up and refresh ancestor MBRs."""
        split_result: Optional[Tuple[int, MBR]] = None
        for depth in range(len(path) - 1, -1, -1):
            node, _ = path[depth]
            if split_result is not None:
                node.add_child(*split_result)
                split_result = None
            cap = self.leaf_cap if node.is_leaf else self.dir_cap
            if node.entry_count > cap:
                split_result = self._split(node)
            if depth > 0:
                parent, _ = path[depth - 1]
                parent.set_child_mbr(node.page_id, node.mbr())
        if split_result is not None:
            self._grow_root(split_result)

    def _grow_root(self, split_result: Tuple[int, MBR]) -> None:
        old_root = self.node(self.root_id)
        page = self.manager.allocate()
        new_root = RTreeNode(page.page_id, is_leaf=False)
        new_root.add_child(old_root.page_id, old_root.mbr())
        new_root.add_child(*split_result)
        page.payload = new_root
        self.root_id = page.page_id
        self.height += 1

    def _split(self, node: RTreeNode) -> Tuple[int, MBR]:
        """Quadratic split; mutates ``node`` and returns the new sibling."""
        if node.is_leaf:
            entries = [(MBR.from_point(p), p) for p in node.points]
        else:
            entries = list(zip(node.child_mbrs, node.children_ids, strict=False))
        group_a, group_b = _quadratic_split(
            entries, self.min_leaf if node.is_leaf else self.min_dir
        )

        page = self.manager.allocate()
        sibling = RTreeNode(page.page_id, is_leaf=node.is_leaf)
        page.payload = sibling
        if node.is_leaf:
            node.points = [item for _, item in group_a]
            sibling.points = [item for _, item in group_b]
        else:
            node.children_ids = [item for _, item in group_a]
            node.child_mbrs = [m for m, _ in group_a]
            sibling.children_ids = [item for _, item in group_b]
            sibling.child_mbrs = [m for m, _ in group_b]
        return sibling.page_id, sibling.mbr()

    # ------------------------------------------------------------------
    # deletion (Guttman condense-tree with reinsertion)
    # ------------------------------------------------------------------
    def delete(self, point: Point) -> bool:
        """Remove one point; returns False if it was not found."""
        if self.root_id is None:
            return False
        path = self._find_leaf(self.root_id, point, [])
        if path is None:
            return False
        leaf = path[-1]
        leaf.points = [
            p
            for p in leaf.points
            if not (p.pid == point.pid and p.coords == point.coords)
        ]
        self.size -= 1
        self._condense(path)
        return True

    def _find_leaf(
        self, page_id: int, point: Point, path: List[RTreeNode]
    ) -> Optional[List[RTreeNode]]:
        node = self.node(page_id)
        path = path + [node]
        if node.is_leaf:
            for p in node.points:
                if p.pid == point.pid and p.coords == point.coords:
                    return path
            return None
        point_mbr = MBR.from_point(point)
        for child_id, child_mbr in zip(
            node.children_ids, node.child_mbrs, strict=False
        ):
            if child_mbr.contains_mbr(point_mbr):
                found = self._find_leaf(child_id, point, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: List[RTreeNode]) -> None:
        orphans: List[Point] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            min_fill = self.min_leaf if node.is_leaf else self.min_dir
            if node.entry_count < min_fill:
                parent.remove_child(node.page_id)
                orphans.extend(self._collect_points(node))
                self.manager.free(node.page_id)
                self.buffer.invalidate(node.page_id)
            else:
                parent.set_child_mbr(node.page_id, node.mbr())
        root = path[0]
        if not root.is_leaf and root.entry_count == 1:
            old_id = self.root_id
            self.root_id = root.children_ids[0]
            self.height -= 1
            self.manager.free(old_id)
            self.buffer.invalidate(old_id)
        elif root.entry_count == 0 and root.is_leaf:
            self.manager.free(root.page_id)
            self.buffer.invalidate(root.page_id)
            self.root_id = None
            self.height = 0
        self.size -= len(orphans)
        for orphan in orphans:
            self.insert(orphan)

    def _collect_points(self, node: RTreeNode) -> List[Point]:
        if node.is_leaf:
            return list(node.points)
        out: List[Point] = []
        for child_id in node.children_ids:
            child = self.node(child_id)
            out.extend(self._collect_points(child))
            self.manager.free(child_id)
            self.buffer.invalidate(child_id)
        return out

    # ------------------------------------------------------------------
    # iteration / integrity
    # ------------------------------------------------------------------
    def all_points(self) -> List[Point]:
        """Every indexed point (goes through the buffer; test helper)."""
        if self.root_id is None:
            return []
        out: List[Point] = []
        stack = [self.root_id]
        while stack:
            node = self.node(stack.pop())
            if node.is_leaf:
                out.extend(node.points)
            else:
                stack.extend(node.children_ids)
        return out

    def check_integrity(self, strict_fill: bool = False) -> None:
        """Validate MBR containment, capacities, and uniform leaf depth.

        ``strict_fill`` additionally enforces the Guttman minimum fill on
        non-root nodes — guaranteed for insert/delete-built trees, but not
        for STR bulk loads (their trailing groups may be small).
        """
        if self.root_id is None:
            if self.size != 0:
                raise AssertionError("empty tree with non-zero size")
            return
        leaf_depths = set()
        count = self._check_node(self.root_id, None, 1, leaf_depths, True, strict_fill)
        if count != self.size:
            raise AssertionError(f"size mismatch: {count} vs {self.size}")
        if len(leaf_depths) != 1:
            raise AssertionError(f"leaves at different depths: {leaf_depths}")
        if leaf_depths.pop() != self.height:
            raise AssertionError("height bookkeeping out of date")

    def _check_node(
        self, page_id, expected_mbr, depth, leaf_depths, is_root, strict_fill
    ):
        node = self.node(page_id)
        mbr = node.mbr()
        if expected_mbr is not None and mbr != expected_mbr:
            raise AssertionError(
                f"stored child MBR differs from actual at page {page_id}"
            )
        cap = self.leaf_cap if node.is_leaf else self.dir_cap
        if node.entry_count > cap:
            raise AssertionError(f"page {page_id} overflows ({node})")
        if not is_root:
            min_fill = self.min_leaf if node.is_leaf else self.min_dir
            if strict_fill and node.entry_count < min_fill:
                raise AssertionError(f"page {page_id} underflows ({node})")
            if node.entry_count < 1:
                raise AssertionError(f"page {page_id} is empty ({node})")
        if node.is_leaf:
            leaf_depths.add(depth)
            return len(node.points)
        total = 0
        for child_id, child_mbr in zip(
            node.children_ids, node.child_mbrs, strict=False
        ):
            total += self._check_node(
                child_id,
                child_mbr,
                depth + 1,
                leaf_depths,
                False,
                strict_fill,
            )
        return total

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"RTree(n={self.size}, pages={self.num_pages}, "
            f"height={self.height}, leaf_cap={self.leaf_cap})"
        )


def _quadratic_split(entries, min_fill: int):
    """Guttman's quadratic split of (mbr, item) pairs into two groups."""
    if len(entries) < 2:
        raise ValueError("cannot split fewer than two entries")

    # Seed pair: the two entries wasting the most area together.
    worst = -1.0
    seed_a = 0
    seed_b = 1
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            waste = (
                entries[i][0].union(entries[j][0]).area
                - entries[i][0].area
                - entries[j][0].area
            )
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j

    group_a = [entries[seed_a]]
    group_b = [entries[seed_b]]
    mbr_a = entries[seed_a][0]
    mbr_b = entries[seed_b][0]
    remaining = [e for idx, e in enumerate(entries) if idx not in (seed_a, seed_b)]

    while remaining:
        # Force-assign to satisfy minimum fill.
        if len(group_a) + len(remaining) == min_fill:
            for e in remaining:
                group_a.append(e)
                mbr_a = mbr_a.union(e[0])
            break
        if len(group_b) + len(remaining) == min_fill:
            for e in remaining:
                group_b.append(e)
                mbr_b = mbr_b.union(e[0])
            break
        # Pick the entry with the strongest preference.
        best_idx = 0
        best_diff = -1.0
        for idx, (mbr, _) in enumerate(remaining):
            d1 = mbr_a.union(mbr).area - mbr_a.area
            d2 = mbr_b.union(mbr).area - mbr_b.area
            if abs(d1 - d2) > best_diff:
                best_diff = abs(d1 - d2)
                best_idx = idx
        entry = remaining.pop(best_idx)
        d1 = mbr_a.union(entry[0]).area - mbr_a.area
        d2 = mbr_b.union(entry[0]).area - mbr_b.area
        if (d1, mbr_a.area, len(group_a)) <= (d2, mbr_b.area, len(group_b)):
            group_a.append(entry)
            mbr_a = mbr_a.union(entry[0])
        else:
            group_b.append(entry)
            mbr_b = mbr_b.union(entry[0])
    return group_a, group_b
