"""Sort-Tile-Recursive (STR) bulk loading.

STR produces well-clustered leaves in O(n log n): sort by x, cut into
vertical slabs, sort each slab by y, and tile into leaves; repeat on the
resulting nodes' MBR centers for the upper levels.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.rtree.node import RTreeNode
from repro.storage.page import PageManager


def _even_chunks(items: Sequence, capacity: int) -> List[List]:
    """Split into ≤-capacity chunks of near-equal size (avoids a tiny
    trailing chunk, keeping leaves reasonably filled)."""
    n = len(items)
    num = math.ceil(n / capacity)
    base = n // num
    extra = n % num
    out = []
    start = 0
    for g in range(num):
        size = base + (1 if g < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


def _tile(items: Sequence, key_x, key_y, capacity: int) -> List[List]:
    """Partition ``items`` into groups of ≤ capacity via STR tiling."""
    n = len(items)
    num_groups = math.ceil(n / capacity)
    num_slabs = math.ceil(math.sqrt(num_groups))
    slab_size = num_slabs * capacity

    by_x = sorted(items, key=key_x)
    groups: List[List] = []
    for s in range(0, n, slab_size):
        slab = sorted(by_x[s : s + slab_size], key=key_y)
        groups.extend(_even_chunks(slab, capacity))
    return groups


def str_bulk_load(
    manager: PageManager, points: Sequence[Point]
) -> Tuple[int, int, List[int]]:
    """Build a packed R-tree; returns (root_page_id, height, all_page_ids).

    Height is 1 for a tree that is a single leaf.
    """
    if not points:
        raise ValueError("cannot bulk-load an empty point set")
    leaf_cap = manager.leaf_capacity()
    dir_cap = manager.dir_capacity()
    page_ids: List[int] = []

    groups = _tile(
        list(points),
        key_x=lambda p: (p.coords[0], p.coords[1], p.pid),
        key_y=lambda p: (p.coords[1], p.coords[0], p.pid),
        capacity=leaf_cap,
    )
    level: List[Tuple[int, MBR]] = []
    for group in groups:
        page = manager.allocate()
        node = RTreeNode(page.page_id, is_leaf=True)
        node.points = list(group)
        page.payload = node
        page_ids.append(page.page_id)
        level.append((page.page_id, node.mbr()))

    height = 1
    while len(level) > 1:
        centers = {pid: m.center for pid, m in level}
        groups = _tile(
            level,
            key_x=lambda e: (centers[e[0]][0], centers[e[0]][1], e[0]),
            key_y=lambda e: (centers[e[0]][1], centers[e[0]][0], e[0]),
            capacity=dir_cap,
        )
        next_level: List[Tuple[int, MBR]] = []
        for group in groups:
            page = manager.allocate()
            node = RTreeNode(page.page_id, is_leaf=False)
            for child_id, child_mbr in group:
                node.add_child(child_id, child_mbr)
            page.payload = node
            page_ids.append(page.page_id)
            next_level.append((page.page_id, node.mbr()))
        level = next_level
        height += 1

    root_id = level[0][0]
    return root_id, height, page_ids
