"""Disk-based R-tree over the customer set ``P``.

The paper assumes ``P`` is indexed by an R-tree (Section 2.3) stored on disk
with 1 KB pages behind an LRU buffer.  This package provides:

* :class:`~repro.rtree.tree.RTree` — Guttman insert/delete plus STR bulk
  loading, page-backed via :mod:`repro.storage`;
* range / annular-range search (RIA's edge supply);
* best-first kNN and an incremental NN iterator [Hjaltason & Samet 1999]
  (NIA/IDA's edge supply);
* the grouped incremental all-nearest-neighbor search of Algorithm 6.
"""

from repro.rtree.ann import ANNGroup, GroupedANN, PackedANNGroup, PackedGroupedANN
from repro.rtree.backend import (
    DEFAULT_INDEX_BACKEND,
    INDEX_BACKENDS,
    IndexBackend,
    get_index_backend,
    index_info,
)
from repro.rtree.node import RTreeNode
from repro.rtree.packed import PackedNodeView, PackedRTree
from repro.rtree.queries import (
    IncrementalNN,
    annular_range_search,
    knn_search,
    range_search,
)
from repro.rtree.tree import RTree

__all__ = [
    "RTreeNode",
    "RTree",
    "PackedRTree",
    "PackedNodeView",
    "range_search",
    "annular_range_search",
    "knn_search",
    "IncrementalNN",
    "ANNGroup",
    "GroupedANN",
    "PackedANNGroup",
    "PackedGroupedANN",
    "IndexBackend",
    "INDEX_BACKENDS",
    "DEFAULT_INDEX_BACKEND",
    "get_index_backend",
    "index_info",
]
