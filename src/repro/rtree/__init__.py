"""Disk-based R-tree over the customer set ``P``.

The paper assumes ``P`` is indexed by an R-tree (Section 2.3) stored on disk
with 1 KB pages behind an LRU buffer.  This package provides:

* :class:`~repro.rtree.tree.RTree` — Guttman insert/delete plus STR bulk
  loading, page-backed via :mod:`repro.storage`;
* range / annular-range search (RIA's edge supply);
* best-first kNN and an incremental NN iterator [Hjaltason & Samet 1999]
  (NIA/IDA's edge supply);
* the grouped incremental all-nearest-neighbor search of Algorithm 6.
"""

from repro.rtree.node import RTreeNode
from repro.rtree.tree import RTree
from repro.rtree.queries import (
    range_search,
    annular_range_search,
    knn_search,
    IncrementalNN,
)
from repro.rtree.ann import ANNGroup, GroupedANN

__all__ = [
    "RTreeNode",
    "RTree",
    "range_search",
    "annular_range_search",
    "knn_search",
    "IncrementalNN",
    "ANNGroup",
    "GroupedANN",
]
