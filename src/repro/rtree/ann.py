"""Incremental all-nearest-neighbor (ANN) search — Algorithm 6.

NIA/IDA issue many interleaved incremental-NN streams, one per service
provider.  Running them independently re-reads the same R-tree pages over
and over.  Algorithm 6 groups nearby providers (by Hilbert order), keeps a
*single* shared heap ``Hm`` of R-tree entries per group — keyed by
``mindist(MBR(Gm), MBR(e))`` — and fans every de-heaped point out into each
member's candidate heap ``res_i``.  A provider's next NN is its ``res_i``
top once that candidate is at least as close as every unexplored entry.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence

from repro.geometry.distance import dist, mindist_mbr_mbr
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.hilbert.curve import hilbert_key
from repro.rtree.tree import RTree


class ANNGroup:
    """One provider group with its shared entry heap and candidate heaps."""

    _NODE, _POINT = 0, 1

    def __init__(self, tree: RTree, providers: Sequence[Point]):
        if not providers:
            raise ValueError("an ANN group needs at least one provider")
        self.tree = tree
        self.providers = list(providers)
        self.mbr = MBR.from_points(self.providers)
        self._counter = itertools.count()
        self._heap: list = []  # Hm: (mindist, kind, tiebreak, obj)
        self._res: Dict[int, list] = {
            q.pid: [] for q in self.providers
        }  # per-provider candidate heaps: (dist, tiebreak, point)
        if tree.root_id is not None:
            root_mbr = tree.root_mbr()
            if root_mbr is not None:
                self._push_entry(
                    mindist_mbr_mbr(self.mbr, root_mbr),
                    self._NODE,
                    tree.root_id,
                )

    def _push_entry(self, key: float, kind: int, obj) -> None:
        heapq.heappush(self._heap, (key, kind, next(self._counter), obj))

    def _expand_once(self) -> None:
        """De-heap the top Hm entry (Algorithm 6 lines 2-7)."""
        key, kind, _, obj = heapq.heappop(self._heap)
        if kind == self._POINT:
            for q in self.providers:
                heapq.heappush(
                    self._res[q.pid],
                    (dist(q, obj), next(self._counter), obj),
                )
            return
        node = self.tree.node(obj)
        if node.is_leaf:
            for p in node.points:
                self._push_entry(
                    mindist_mbr_mbr(self.mbr, MBR.from_point(p)),
                    self._POINT,
                    p,
                )
        else:
            for child_id, child_mbr in zip(
                node.children_ids, node.child_mbrs
            ):
                self._push_entry(
                    mindist_mbr_mbr(self.mbr, child_mbr),
                    self._NODE,
                    child_id,
                )

    def next_nn(self, provider_pid: int) -> Optional[Point]:
        """The next unreported NN of one member, or None when exhausted."""
        res = self._res[provider_pid]
        while True:
            candidate_key = res[0][0] if res else float("inf")
            frontier_key = self._heap[0][0] if self._heap else float("inf")
            if candidate_key <= frontier_key:
                break
            if not self._heap:
                break
            self._expand_once()
        if not res:
            return None
        _, _, point = heapq.heappop(res)
        return point


def group_providers_by_hilbert(
    providers: Sequence[Point],
    world_lo: Sequence[float],
    world_hi: Sequence[float],
    group_size: int,
) -> List[List[Point]]:
    """Chunk providers into groups of ``group_size`` along the Hilbert curve
    (Section 3.4.2: "we form service provider groups based on their Hilbert
    space-filling curve ordering")."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    ordered = sorted(
        providers,
        key=lambda q: (hilbert_key(q.coords, world_lo, world_hi), q.pid),
    )
    return [
        ordered[i : i + group_size]
        for i in range(0, len(ordered), group_size)
    ]


class GroupedANN:
    """Facade NIA/IDA use: ``next_nn(pid)`` with group-shared I/O.

    With ``group_size=1`` this degenerates to independent incremental NN
    streams (the un-optimized variant, kept for ablation benches).
    """

    def __init__(
        self,
        tree: RTree,
        providers: Sequence[Point],
        group_size: int = 8,
    ):
        self.tree = tree
        root_mbr = tree.root_mbr()
        if root_mbr is not None and providers:
            world = MBR.from_points(list(providers)).union(root_mbr)
        elif providers:
            world = MBR.from_points(list(providers))
        else:
            world = MBR((0.0, 0.0), (1.0, 1.0))
        groups = group_providers_by_hilbert(
            providers, world.lo, world.hi, group_size
        )
        self._group_of: Dict[int, ANNGroup] = {}
        self.groups: List[ANNGroup] = []
        for member_points in groups:
            group = ANNGroup(tree, member_points)
            self.groups.append(group)
            for q in member_points:
                self._group_of[q.pid] = group

    def next_nn(self, provider_pid: int) -> Optional[Point]:
        return self._group_of[provider_pid].next_nn(provider_pid)
