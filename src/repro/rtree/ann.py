"""Incremental all-nearest-neighbor (ANN) search — Algorithm 6.

NIA/IDA issue many interleaved incremental-NN streams, one per service
provider.  Running them independently re-reads the same R-tree pages over
and over.  Algorithm 6 groups nearby providers (by Hilbert order), keeps a
*single* shared heap ``Hm`` of R-tree entries per group — keyed by
``mindist(MBR(Gm), MBR(e))`` — and fans every de-heaped point out into each
member's candidate heap ``res_i``.  A provider's next NN is its ``res_i``
top once that candidate is at least as close as every unexplored entry.

Two implementations share that contract:

* :class:`GroupedANN` — the reference, walking the pointer
  :class:`~repro.rtree.tree.RTree` one entry at a time;
* :class:`PackedGroupedANN` — the columnar rewrite over
  :class:`~repro.rtree.packed.PackedRTree`: group→entry mindists and the
  member fan-out distances are computed in vectorized batches per visited
  node (one NumPy call per node instead of one ``math.sqrt`` per entry),
  and the heaps carry point *row indices*, materializing
  :class:`~repro.geometry.point.Point` views only for reported NNs.

Because the packed tree mirrors the pointer structure and every batch
kernel is bit-identical to its scalar counterpart, both implementations
report the **same NN sequence and charge the same page accesses** — the
property suite in ``tests/property/test_index_equivalence.py`` enforces
it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.distance import dist, mindist_mbr_mbr, mindist_mbr_point
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.pointset import (
    cross_dists,
    mindist_box_to_boxes,
    mindist_box_to_points,
)
from repro.hilbert.curve import hilbert_key
from repro.rtree.packed import PackedRTree
from repro.rtree.tree import RTree


class ANNGroup:
    """One provider group with its shared entry heap and candidate heaps."""

    _NODE, _POINT = 0, 1

    def __init__(self, tree: RTree, providers: Sequence[Point]):
        if not providers:
            raise ValueError("an ANN group needs at least one provider")
        self.tree = tree
        self.providers = list(providers)
        self.mbr = MBR.from_points(self.providers)
        self._counter = itertools.count()
        self._heap: list = []  # Hm: (mindist, kind, tiebreak, obj)
        self._res: Dict[int, list] = {
            q.pid: [] for q in self.providers
        }  # per-provider candidate heaps: (dist, tiebreak, point)
        if tree.root_id is not None:
            root_mbr = tree.root_mbr()
            if root_mbr is not None:
                self._push_entry(
                    mindist_mbr_mbr(self.mbr, root_mbr),
                    self._NODE,
                    tree.root_id,
                )

    def _push_entry(self, key: float, kind: int, obj) -> None:
        heapq.heappush(self._heap, (key, kind, next(self._counter), obj))

    def _expand_once(self) -> None:
        """De-heap the top Hm entry (Algorithm 6 lines 2-7)."""
        key, kind, _, obj = heapq.heappop(self._heap)
        if kind == self._POINT:
            for q in self.providers:
                heapq.heappush(
                    self._res[q.pid],
                    (dist(q, obj), next(self._counter), obj),
                )
            return
        node = self.tree.node(obj)
        if node.is_leaf:
            for p in node.points:
                self._push_entry(
                    mindist_mbr_point(self.mbr, p),
                    self._POINT,
                    p,
                )
        else:
            for child_id, child_mbr in zip(
                node.children_ids, node.child_mbrs, strict=False
            ):
                self._push_entry(
                    mindist_mbr_mbr(self.mbr, child_mbr),
                    self._NODE,
                    child_id,
                )

    def _settle_top(self, provider_pid: int) -> list:
        """Expand Hm until the member's best candidate is certainly its
        next NN; returns the member's candidate heap."""
        res = self._res[provider_pid]
        while True:
            candidate_key = res[0][0] if res else float("inf")
            frontier_key = self._heap[0][0] if self._heap else float("inf")
            if candidate_key <= frontier_key:
                break
            if not self._heap:
                break
            self._expand_once()
        return res

    def next_nn(self, provider_pid: int) -> Optional[Point]:
        """The next unreported NN of one member, or None when exhausted."""
        res = self._settle_top(provider_pid)
        if not res:
            return None
        _, _, point = heapq.heappop(res)
        return point

    def next_nn_ids(self, provider_pid: int) -> Optional[Tuple[int, float]]:
        """Column variant of :meth:`next_nn`: ``(customer_id, distance)``.

        The distance is the member-specific candidate key the group heap
        already computed (``dist(q, p)`` with the scalar kernel), so
        consumers stream edges straight into the flow network without
        re-deriving it from a materialized :class:`Point`.
        """
        res = self._settle_top(provider_pid)
        if not res:
            return None
        d, _, point = heapq.heappop(res)
        return point.pid, d


def group_providers_by_hilbert(
    providers: Sequence[Point],
    world_lo: Sequence[float],
    world_hi: Sequence[float],
    group_size: int,
) -> List[List[Point]]:
    """Chunk providers into groups of ``group_size`` along the Hilbert curve
    (Section 3.4.2: "we form service provider groups based on their Hilbert
    space-filling curve ordering")."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    ordered = sorted(
        providers,
        key=lambda q: (hilbert_key(q.coords, world_lo, world_hi), q.pid),
    )
    return [ordered[i : i + group_size] for i in range(0, len(ordered), group_size)]


class _GroupedANNBase:
    """Shared facade machinery: Hilbert grouping + per-group dispatch.

    Subclasses name the per-group Algorithm 6 implementation via
    ``group_cls``; everything else — the world MBR, the grouping, the
    pid→group registry — must stay common or the backends' NN sequences
    diverge.
    """

    group_cls = None  # set by subclasses

    def __init__(self, tree, providers: Sequence[Point], group_size: int = 8):
        self.tree = tree
        root_mbr = tree.root_mbr()
        if root_mbr is not None and providers:
            world = MBR.from_points(list(providers)).union(root_mbr)
        elif providers:
            world = MBR.from_points(list(providers))
        else:
            world = MBR((0.0, 0.0), (1.0, 1.0))
        groups = group_providers_by_hilbert(providers, world.lo, world.hi, group_size)
        self._group_of: Dict[int, object] = {}
        self.groups: List[object] = []
        for member_points in groups:
            group = self.group_cls(tree, member_points)
            self.groups.append(group)
            for q in member_points:
                self._group_of[q.pid] = group

    def next_nn(self, provider_pid: int) -> Optional[Point]:
        return self._group_of[provider_pid].next_nn(provider_pid)

    def next_nn_ids(self, provider_pid: int) -> Optional[Tuple[int, float]]:
        """The member's next NN as an ``(id, distance)`` column pair —
        the fused-pipeline supply NIA/IDA/SM consume (no Point views)."""
        return self._group_of[provider_pid].next_nn_ids(provider_pid)


class GroupedANN(_GroupedANNBase):
    """Facade NIA/IDA use: ``next_nn(pid)`` with group-shared I/O.

    With ``group_size=1`` this degenerates to independent incremental NN
    streams (the un-optimized variant, kept for ablation benches).
    """

    group_cls = ANNGroup


class PackedANNGroup:
    """Algorithm 6 over the packed layout: batch keys, index-typed heaps.

    Node expansion computes every child key (directory) or every point key
    *and* the full member×point fan-out distance matrix (leaf) in one
    vectorized call; de-heaping a point then just replays its cached
    distance column into the members' candidate heaps.  Heap discipline —
    entry order, keys, tie-break counters — mirrors :class:`ANNGroup`
    exactly, so the reported NN order and the page-access sequence are
    identical to the pointer implementation's.
    """

    _NODE, _POINT = 0, 1

    def __init__(self, tree: PackedRTree, providers: Sequence[Point]):
        if not providers:
            raise ValueError("an ANN group needs at least one provider")
        self.tree = tree
        self.providers = list(providers)
        self.member_pids = [q.pid for q in self.providers]
        self.member_coords = np.asarray(
            [q.coords for q in self.providers], dtype=np.float64
        )
        self._lo = self.member_coords.min(axis=0)
        self._hi = self.member_coords.max(axis=0)
        self.mbr = MBR(self._lo, self._hi)
        self._counter = itertools.count()
        # Hm entries: (mindist, kind, tiebreak, node/row, fan column).
        # Carrying the leaf-batch fan-out column inside the entry (None
        # for directory nodes) avoids a side-table lookup per de-heaped
        # point; the unique tiebreak guarantees columns never compare.
        self._heap: list = []
        self._res_heaps: List[list] = [[] for _ in self.member_pids]
        self._res: Dict[
            int, list
        ] = dict(zip(self.member_pids, self._res_heaps, strict=False))
        if tree.root_id is not None:
            # The pointer ANNGroup reads the root MBR through the buffer;
            # charge the same access before keying the root entry.
            tree.visit(tree.root_id)
            key = mindist_box_to_boxes(
                self._lo,
                self._hi,
                tree.node_lo[tree.root_id][None, :],
                tree.node_hi[tree.root_id][None, :],
            )[0]
            heapq.heappush(
                self._heap,
                (float(key), self._NODE, next(self._counter), tree.root_id, None),
            )

    def _expand_once(self) -> None:
        """De-heap the top Hm entry (Algorithm 6 lines 2-7)."""
        heap = self._heap
        key, kind, _, obj, column = heapq.heappop(heap)
        counter = self._counter
        if kind == self._POINT:
            for member, res in enumerate(self._res_heaps):
                heapq.heappush(res, (column[member], next(counter), obj))
            return
        tree = self.tree
        nid = tree.visit(obj)
        start, end = tree.leaf_slice(nid)
        if tree.node_is_leaf[nid]:
            coords = tree.point_coords[start:end]
            keys = mindist_box_to_points(self._lo, self._hi, coords).tolist()
            columns = cross_dists(self.member_coords, coords).T.tolist()
            point = self._POINT
            for offset, point_key in enumerate(keys):
                heapq.heappush(
                    heap,
                    (point_key, point, next(counter), start + offset, columns[offset]),
                )
        else:
            kids = tree.child_ids[start:end]
            keys = mindist_box_to_boxes(
                self._lo, self._hi, tree.node_lo[kids], tree.node_hi[kids]
            ).tolist()
            node = self._NODE
            for child, child_key in zip(kids.tolist(), keys, strict=False):
                heapq.heappush(heap, (child_key, node, next(counter), child, None))

    def _settle_top(self, provider_pid: int) -> list:
        """Expand Hm until the member's best candidate is certainly its
        next NN; returns the member's candidate heap."""
        res = self._res[provider_pid]
        heap = self._heap
        while True:
            candidate_key = res[0][0] if res else float("inf")
            frontier_key = heap[0][0] if heap else float("inf")
            if candidate_key <= frontier_key:
                break
            if not heap:
                break
            self._expand_once()
        return res

    def next_nn(self, provider_pid: int) -> Optional[Point]:
        """The next unreported NN of one member, or None when exhausted."""
        res = self._settle_top(provider_pid)
        if not res:
            return None
        _, _, row = heapq.heappop(res)
        return self.tree.point(row)

    def next_nn_ids(self, provider_pid: int) -> Optional[Tuple[int, float]]:
        """Column variant of :meth:`next_nn`: ``(customer_id, distance)``.

        Reports the cached fan-out distance and the packed row's id
        without materializing a :class:`Point` view at all — the packed
        tree's point columns stay columns end to end.
        """
        res = self._settle_top(provider_pid)
        if not res:
            return None
        d, _, row = heapq.heappop(res)
        return self.tree.point_id(row), d


class PackedGroupedANN(_GroupedANNBase):
    """The :class:`GroupedANN` facade over a :class:`PackedRTree`.

    Same Hilbert grouping, same per-group Algorithm 6 state — only the
    arithmetic is columnar.  ``next_nn(pid)`` materializes the reported
    point on demand.
    """

    group_cls = PackedANNGroup
