"""The index-backend seam: pluggable spatial-index + ANN-stream kernels.

Mirror of :mod:`repro.flow.backend`, one layer down the stack: every
solver's *edge supply* bottoms out in two objects — a disk-simulated
spatial index over the customers and a grouped incremental ANN stream
over it.  This module names that seam:

* ``pointer`` — the reference backend: :class:`~repro.rtree.tree.RTree`
  (node objects, Guttman maintenance) + :class:`~repro.rtree.ann.GroupedANN`.
  Easiest to read next to the paper; the correctness anchor.
* ``packed`` — the performance backend:
  :class:`~repro.rtree.packed.PackedRTree` (flat MBR/child-offset arrays,
  STR bulk load, no node objects) +
  :class:`~repro.rtree.ann.PackedGroupedANN` (vectorized batch keys and
  fan-outs).  Bit-identical NN orders, matchings, and page-access
  sequences; multi-x faster NN streams at Figure-10 scales.

Solvers accept ``index_backend=`` as either a name from
:data:`INDEX_BACKENDS` or an :class:`IndexBackend` instance;
``tests/property/test_index_equivalence.py`` enforces the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from repro.geometry.pointset import PointSet
from repro.rtree.ann import GroupedANN, PackedGroupedANN
from repro.rtree.packed import PackedRTree
from repro.rtree.tree import RTree
from repro.storage.page import DEFAULT_PAGE_SIZE

DEFAULT_INDEX_BACKEND = "pointer"


@dataclass(frozen=True)
class IndexBackend:
    """A (tree factory, grouped-ANN factory) pair behind a stable name."""

    name: str
    tree_cls: Callable
    ann_cls: Callable

    def build(
        self,
        points,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
        buffer_capacity: Optional[int] = None,
    ):
        """Bulk-load a cold index over ``points`` (a
        :class:`~repro.geometry.pointset.PointSet` or Point sequence)."""
        if self.name == "pointer" and isinstance(points, PointSet):
            points = points.to_points()
        return self.tree_cls.from_points(
            points,
            page_size=page_size,
            buffer_fraction=buffer_fraction,
            buffer_capacity=buffer_capacity,
        )

    def grouped_ann(self, tree, providers, group_size: int):
        """Algorithm 6 grouped incremental-NN streams over ``tree``."""
        return self.ann_cls(tree, providers, group_size=group_size)

    def __repr__(self) -> str:  # keep solver reprs short
        return f"IndexBackend({self.name!r})"


INDEX_BACKENDS: Dict[str, IndexBackend] = {
    "pointer": IndexBackend("pointer", RTree, GroupedANN),
    "packed": IndexBackend("packed", PackedRTree, PackedGroupedANN),
}


IndexBackendLike = Union[str, IndexBackend]


def get_index_backend(
    backend: IndexBackendLike = DEFAULT_INDEX_BACKEND,
) -> IndexBackend:
    """Resolve a backend selector (name or instance) to an IndexBackend."""
    if isinstance(backend, IndexBackend):
        return backend
    try:
        return INDEX_BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown index backend {backend!r}; expected one of "
            f"{tuple(sorted(INDEX_BACKENDS))} or an IndexBackend instance"
        ) from None


def backend_of_tree(tree) -> IndexBackend:
    """The backend a live tree instance belongs to (for attach_rtree)."""
    if isinstance(tree, PackedRTree):
        return INDEX_BACKENDS["packed"]
    return INDEX_BACKENDS["pointer"]


def resolve_index_backend(
    problem, selector: Optional[IndexBackendLike] = None
) -> IndexBackend:
    """The shared ``None``-follows-the-problem-default resolution rule.

    Every consumer of ``index_backend=`` (solvers, sessions, the sharded
    engine) resolves selectors the same way: an explicit name/instance
    wins; ``None`` adopts the problem's configured default.
    """
    selector = problem.index_backend if selector is None else selector
    return get_index_backend(selector)


def index_info(tree) -> Dict:
    """Height / node-count / fill-factor summary for either backend.

    Walks the structure without charging buffer I/O — this is an
    introspection helper (the ``repro-cca index-info`` subcommand and the
    index benchmark), not a measured workload.
    """
    info: Dict = {
        "backend": backend_of_tree(tree).name,
        "points": len(tree),
        "height": tree.height,
        "pages": tree.num_pages,
        "leaf_capacity": tree.leaf_cap,
        "dir_capacity": tree.dir_cap,
    }
    if isinstance(tree, PackedRTree):
        tree._ensure_built()
        leaves = int(tree.node_is_leaf.sum())
        leaf_entries = int(tree.entry_count[tree.node_is_leaf].sum())
        dir_nodes = len(tree.node_is_leaf) - leaves
        dir_entries = int(tree.entry_count[~tree.node_is_leaf].sum())
    else:
        leaves = dir_nodes = leaf_entries = dir_entries = 0
        if tree.root_id is not None:
            stack = [tree.root_id]
            while stack:
                node = tree.manager.get(stack.pop()).payload
                if node.is_leaf:
                    leaves += 1
                    leaf_entries += len(node.points)
                else:
                    dir_nodes += 1
                    dir_entries += len(node.children_ids)
                    stack.extend(node.children_ids)
    info["leaves"] = leaves
    info["dir_nodes"] = dir_nodes
    info["leaf_fill"] = (leaf_entries / (leaves * tree.leaf_cap) if leaves else 0.0)
    info["dir_fill"] = (dir_entries / (dir_nodes * tree.dir_cap) if dir_nodes else 0.0)
    return info
