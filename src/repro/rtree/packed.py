"""Packed (columnar) R-tree: flat arrays instead of node objects.

The pointer tree (:class:`repro.rtree.tree.RTree`) spends its query time
chasing ``RTreeNode`` objects and re-deriving per-entry ``MBR``/``Point``
objects.  This module stores the same STR-bulk-loaded structure as flat
NumPy columns:

* ``point_ids`` / ``point_coords`` — every indexed point, packed in leaf
  order;
* ``node_lo`` / ``node_hi`` — one tight MBR row per node;
* ``entry_start`` / ``entry_count`` — each node's slice into either the
  point arrays (leaves) or the flat ``child_ids`` array (directory nodes).

**Structure parity.**  The bulk load reuses the pointer tree's STR tiling
(:func:`repro.rtree.bulk._tile`) with identical sort keys and allocates
node ids in the same order ``str_bulk_load`` allocates pages, so a packed
tree and a pointer tree built from the same points have identical node
ids, fan-outs, heights, and MBRs.  Traversals that mirror the pointer
code's visit order therefore charge **identical page-access sequences**,
which is what keeps the paper's I/O figures reproducible across index
backends (one logical page per packed node block, accounted through the
same :class:`~repro.storage.buffer.LRUBufferPool`).

Mutation: the packed layout is static, so :meth:`insert` / :meth:`delete`
stage the change and lazily rebuild on the next access — the right
trade-off for warm :class:`~repro.core.session.Matcher` sessions, whose
deltas are rare relative to the queries between them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.pointset import (
    PointSet,
    batch_dists,
    maxdist_point_to_boxes,
    mindist_point_to_boxes,
)
from repro.rtree.bulk import _tile
from repro.storage.buffer import LRUBufferPool
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, PageManager

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_DISTS = np.empty(0, dtype=np.float64)


class PackedNodeView:
    """An on-demand node view over the packed arrays.

    Materialized only for compatibility paths (CA's partition traversal,
    the generic incremental-NN iterator); the hot packed paths read the
    arrays directly and never build one of these.
    """

    __slots__ = ("_tree", "page_id")

    def __init__(self, tree: "PackedRTree", page_id: int):
        self._tree = tree
        self.page_id = page_id

    @property
    def is_leaf(self) -> bool:
        return bool(self._tree.node_is_leaf[self.page_id])

    @property
    def entry_count(self) -> int:
        return int(self._tree.entry_count[self.page_id])

    def _slice(self) -> Tuple[int, int]:
        start = int(self._tree.entry_start[self.page_id])
        return start, start + int(self._tree.entry_count[self.page_id])

    @property
    def points(self) -> List[Point]:
        if not self.is_leaf:
            return []
        start, end = self._slice()
        tree = self._tree
        return [
            Point(int(tree.point_ids[row]), tree.point_coords[row])
            for row in range(start, end)
        ]

    @property
    def children_ids(self) -> List[int]:
        if self.is_leaf:
            return []
        start, end = self._slice()
        return [int(c) for c in self._tree.child_ids[start:end]]

    @property
    def child_mbrs(self) -> List[MBR]:
        tree = self._tree
        return [MBR(tree.node_lo[c], tree.node_hi[c]) for c in self.children_ids]

    def mbr(self) -> MBR:
        tree = self._tree
        return MBR(tree.node_lo[self.page_id], tree.node_hi[self.page_id])

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "dir"
        return (
            f"PackedNodeView(page={self.page_id}, {kind}, " f"n={self.entry_count})"
        )


class PackedRTree:
    """A bulk-loaded, array-backed R-tree over d-dimensional points.

    Construction accepts either a :class:`~repro.geometry.pointset.PointSet`
    or a sequence of :class:`Point` objects; coordinates are held as one
    ``(n, d)`` float64 matrix throughout.
    """

    is_packed = True

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
        buffer_capacity: Optional[int] = None,
    ):
        self.page_size = page_size
        self.buffer_fraction = buffer_fraction
        self._fixed_buffer_capacity = buffer_capacity
        self.stats = IOStats()
        self.manager = PageManager(page_size=page_size)
        self.buffer = LRUBufferPool(
            self.manager, capacity=buffer_capacity or 64, stats=self.stats
        )
        self.leaf_cap = self.manager.leaf_capacity()
        self.dir_cap = self.manager.dir_capacity()
        self._root_id: Optional[int] = None
        self.height = 0
        self.size = 0
        # Authoritative point multiset (mutated by insert/delete); staged
        # arrivals accumulate in Python lists so each delta is O(1).
        self._ids = np.empty(0, dtype=np.int64)
        self._coords = np.empty((0, 2), dtype=np.float64)
        self._pending_ids: List[int] = []
        self._pending_coords: List[Tuple[float, ...]] = []
        self._dirty = False
        # Node columns (filled by _build).
        self.point_ids = self._ids
        self.point_coords = self._coords
        self.node_is_leaf = np.empty(0, dtype=bool)
        self.node_lo = np.empty((0, 2), dtype=np.float64)
        self.node_hi = np.empty((0, 2), dtype=np.float64)
        self.entry_start = np.empty(0, dtype=np.int64)
        self.entry_count = np.empty(0, dtype=np.int64)
        self.child_ids = np.empty(0, dtype=np.int64)
        self._row_lists = None  # lazy Python-list mirror for point()
        self._id_list = None

    @property
    def root_id(self) -> Optional[int]:
        """Root node/page id (flushes any staged deltas first)."""
        self._ensure_built()
        return self._root_id

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: Union[PointSet, Sequence[Point]],
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_fraction: float = 0.01,
        buffer_capacity: Optional[int] = None,
    ) -> "PackedRTree":
        """Bulk-load a packed tree and start it cold (empty buffer)."""
        tree = cls(
            page_size=page_size,
            buffer_fraction=buffer_fraction,
            buffer_capacity=buffer_capacity,
        )
        if not isinstance(points, PointSet):
            points = PointSet.from_points(points)
        tree._ids = points.ids.copy()
        tree._coords = points.coords.copy()
        tree._rebuild()
        tree.cold()
        return tree

    def _rebuild(self) -> None:
        """(Re)build every node column from the current point multiset."""
        self._dirty = False
        self._flush_pending()
        self._row_lists = None
        self._id_list = None
        self.manager = PageManager(page_size=self.page_size)
        self.size = len(self._ids)
        if self.size == 0:
            self._root_id = None
            self.height = 0
            self.point_ids = self._ids
            self.point_coords = self._coords
            self.node_is_leaf = np.empty(0, dtype=bool)
            self.node_lo = np.empty((0, self._coords.shape[1]), dtype=float)
            self.node_hi = np.empty((0, self._coords.shape[1]), dtype=float)
            self.entry_start = np.empty(0, dtype=np.int64)
            self.entry_count = np.empty(0, dtype=np.int64)
            self.child_ids = np.empty(0, dtype=np.int64)
            self._refresh_buffer()
            return

        # STR tiling over row indices, with the exact sort keys the
        # pointer bulk load uses — (x, y, pid) / (y, x, pid) — so the
        # leaf grouping is identical.  1-D inputs use a constant
        # secondary coordinate (the pointer loader requires 2-D).
        ids, coords = self._ids, self._coords
        dim = coords.shape[1]
        xs = coords[:, 0]
        ys = coords[:, 1] if dim > 1 else np.zeros(len(ids), dtype=float)
        groups = _tile(
            list(range(len(ids))),
            key_x=lambda r: (xs[r], ys[r], ids[r]),
            key_y=lambda r: (ys[r], xs[r], ids[r]),
            capacity=self.leaf_cap,
        )

        is_leaf: List[bool] = []
        lo_rows: List[np.ndarray] = []
        hi_rows: List[np.ndarray] = []
        starts: List[int] = []
        counts: List[int] = []
        child_ids: List[int] = []
        perm: List[int] = []

        # Leaves first, in tile order (page ids 0..L-1, mirroring
        # str_bulk_load's allocation order).
        level: List[int] = []
        packed = 0
        for group in groups:
            page = self.manager.allocate()
            node_id = page.page_id
            page.payload = node_id
            rows = np.asarray(group, dtype=np.int64)
            perm.extend(group)
            is_leaf.append(True)
            starts.append(packed)
            counts.append(len(group))
            packed += len(group)
            lo_rows.append(coords[rows].min(axis=0))
            hi_rows.append(coords[rows].max(axis=0))
            level.append(node_id)

        # Upper levels: tile (node, center) items keyed by (cx, cy, id).
        self.height = 1
        ax1 = 1 if dim > 1 else 0
        while len(level) > 1:
            centers = {nid: (lo_rows[nid] + hi_rows[nid]) / 2.0 for nid in level}
            groups = _tile(
                level,
                key_x=lambda n: (centers[n][0], centers[n][ax1], n),
                key_y=lambda n: (centers[n][ax1], centers[n][0], n),
                capacity=self.dir_cap,
            )
            next_level: List[int] = []
            for group in groups:
                page = self.manager.allocate()
                node_id = page.page_id
                page.payload = node_id
                is_leaf.append(False)
                starts.append(len(child_ids))
                counts.append(len(group))
                child_ids.extend(group)
                member_lo = np.stack([lo_rows[c] for c in group])
                member_hi = np.stack([hi_rows[c] for c in group])
                lo_rows.append(member_lo.min(axis=0))
                hi_rows.append(member_hi.max(axis=0))
                next_level.append(node_id)
            level = next_level
            self.height += 1

        self._root_id = level[0]
        order = np.asarray(perm, dtype=np.int64)
        self.point_ids = ids[order]
        self.point_coords = coords[order]
        self.node_is_leaf = np.asarray(is_leaf, dtype=bool)
        self.node_lo = np.stack(lo_rows)
        self.node_hi = np.stack(hi_rows)
        self.entry_start = np.asarray(starts, dtype=np.int64)
        self.entry_count = np.asarray(counts, dtype=np.int64)
        self.child_ids = np.asarray(child_ids, dtype=np.int64)
        self._refresh_buffer()

    def _refresh_buffer(self) -> None:
        capacity = self._fixed_buffer_capacity
        if capacity is None:
            capacity = LRUBufferPool.capacity_for_tree(
                max(len(self.manager), 1), self.buffer_fraction
            )
        self.buffer = LRUBufferPool(self.manager, capacity, stats=self.stats)

    def _ensure_built(self) -> None:
        if self._dirty:
            self._rebuild()

    # ------------------------------------------------------------------
    # measurement lifecycle (same contract as the pointer tree)
    # ------------------------------------------------------------------
    def cold(self) -> None:
        """Empty the buffer, resize it, and zero the I/O counters."""
        self._ensure_built()
        self._refresh_buffer()
        self.stats.reset()

    def reset_io(self) -> None:
        self.stats.reset()

    @property
    def num_pages(self) -> int:
        self._ensure_built()
        return len(self.manager)

    # ------------------------------------------------------------------
    # node access (the charged path)
    # ------------------------------------------------------------------
    def visit(self, node_id: int) -> int:
        """Charge one logical page access for a packed node block."""
        if self._dirty:
            self._rebuild()
        self.buffer.access(node_id)
        return node_id

    def node(self, page_id: int) -> PackedNodeView:
        """Buffer-charged access returning an on-demand node view."""
        self.visit(page_id)
        return PackedNodeView(self, page_id)

    def root_mbr(self) -> Optional[MBR]:
        self._ensure_built()
        if self.root_id is None:
            return None
        # Charged like the pointer tree's root_mbr() (a root-node read),
        # keeping cross-backend page-access sequences identical.
        self.visit(self.root_id)
        return MBR(self.node_lo[self.root_id], self.node_hi[self.root_id])

    def point(self, row: int) -> Point:
        """Materialize one packed point row as a :class:`Point` view.

        Hot path (one call per reported NN): bypasses ``Point.__init__``'s
        per-coordinate conversion by tupling a cached Python-list row —
        the stored columns are already float64.
        """
        if self._row_lists is None:
            self._row_lists = self.point_coords.tolist()
            self._id_list = self.point_ids.tolist()
        view = Point.__new__(Point)
        view.pid = self._id_list[row]
        view.coords = tuple(self._row_lists[row])
        return view

    def point_id(self, row: int) -> int:
        """The packed point row's id as a plain int (no Point view).

        Same cached Python-list read the :meth:`point` fast path uses;
        the fused ANN supply reports ``(id, distance)`` columns and never
        touches the coordinates.
        """
        if self._row_lists is None:
            self._row_lists = self.point_coords.tolist()
            self._id_list = self.point_ids.tolist()
        return self._id_list[row]

    def leaf_slice(self, node_id: int) -> Tuple[int, int]:
        start = int(self.entry_start[node_id])
        return start, start + int(self.entry_count[node_id])

    # ------------------------------------------------------------------
    # mutation (staged; rebuilt lazily on next access)
    # ------------------------------------------------------------------
    def _dim(self) -> int:
        if self._pending_coords:
            return len(self._pending_coords[0])
        return self._coords.shape[1]

    def insert(self, point: Point) -> None:
        """Stage one arrival (O(1); merged into the next lazy rebuild)."""
        if self.size and len(point.coords) != self._dim():
            raise ValueError(
                f"point dimensionality {len(point.coords)} does not match "
                f"tree dimensionality {self._dim()}"
            )
        self._pending_ids.append(point.pid)
        self._pending_coords.append(point.coords)
        self.size += 1
        self._dirty = True

    def delete(self, point: Point) -> bool:
        """Remove one point (matched on id and coordinates)."""
        if not self.size:
            return False
        coords = tuple(point.coords)
        pending = zip(self._pending_ids, self._pending_coords, strict=False)
        for slot, (pid, xy) in enumerate(pending):
            if pid == point.pid and tuple(xy) == coords:
                del self._pending_ids[slot]
                del self._pending_coords[slot]
                self.size -= 1
                self._dirty = True
                return True
        arr = np.asarray(point.coords, dtype=np.float64)
        if not len(self._ids) or arr.shape[0] != self._coords.shape[1]:
            return False
        match = (self._ids == point.pid) & np.all(
            self._coords == arr[None, :],
            axis=1,
        )
        hits = np.flatnonzero(match)
        if not len(hits):
            return False
        keep = np.ones(len(self._ids), dtype=bool)
        keep[hits[0]] = False  # remove one instance, like the pointer tree
        self._ids = self._ids[keep]
        self._coords = self._coords[keep]
        self.size -= 1
        self._dirty = True
        return True

    def _flush_pending(self) -> None:
        """Merge staged arrivals into the authoritative columns."""
        if not self._pending_ids:
            return
        fresh = np.asarray(self._pending_coords, dtype=np.float64)
        if self._coords.shape[1] != fresh.shape[1] and not len(self._ids):
            self._coords = np.empty((0, fresh.shape[1]), dtype=np.float64)
        self._ids = np.concatenate(
            [self._ids, np.asarray(self._pending_ids, dtype=np.int64)]
        )
        self._coords = np.vstack([self._coords, fresh])
        self._pending_ids = []
        self._pending_coords = []

    # ------------------------------------------------------------------
    # vectorized searches (mirror the pointer traversal order exactly)
    # ------------------------------------------------------------------
    def _range_scan(self, query: Point, inner: float, outer: float):
        """The one packed range traversal behind all four public
        range-search variants: hit rows with ``inner < dist <= outer``
        in DFS order, as per-leaf (row, distance) array blocks.

        ``inner < 0`` means "no inner ring": the left filter is vacuous
        (distances are non-negative) and the ``maxdist`` prune is
        skipped, so the scan behaves — and visits pages — exactly like a
        plain radius search.
        """
        self._ensure_built()
        row_blocks: List[np.ndarray] = []
        dist_blocks: List[np.ndarray] = []
        if self.root_id is None:
            return row_blocks, dist_blocks
        annular = inner >= 0.0
        q = np.asarray(query.coords, dtype=np.float64)
        stack = [self.root_id]
        while stack:
            nid = self.visit(stack.pop())
            start, end = self.leaf_slice(nid)
            if self.node_is_leaf[nid]:
                d = batch_dists(self.point_coords[start:end], q)
                hit = (d > inner) & (d <= outer) if annular else d <= outer
                if hit.any():
                    row_blocks.append(np.flatnonzero(hit) + start)
                    dist_blocks.append(d[hit])
            else:
                kids = self.child_ids[start:end]
                lo = self.node_lo[kids]
                hi = self.node_hi[kids]
                keep = mindist_point_to_boxes(q, lo, hi) <= outer
                if annular:
                    keep &= maxdist_point_to_boxes(q, lo, hi) > inner
                stack.extend(int(c) for c in kids[keep])
        return row_blocks, dist_blocks

    def _scan_points(self, row_blocks) -> List[Point]:
        return [self.point(int(row)) for block in row_blocks for row in block]

    def _scan_columns(self, row_blocks, dist_blocks):
        if not row_blocks:
            return _EMPTY_IDS.copy(), _EMPTY_DISTS.copy()
        rows = np.concatenate(row_blocks)
        return self.point_ids[rows], np.concatenate(dist_blocks)

    def range_search(self, query: Point, radius: float) -> List[Point]:
        """All indexed points within ``radius`` of ``query`` (inclusive)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return self._scan_points(self._range_scan(query, -1.0, radius)[0])

    def range_search_columns(
        self, query: Point, radius: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`range_search` as ``(ids, distances)`` columns.

        Same traversal, same visit/result order, same batch distance
        kernel — but the per-leaf hit blocks are concatenated as arrays
        instead of being materialized row by row as :class:`Point`
        views, so RIA can stream them straight into
        ``CCAFlowNetwork.add_edges``.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return self._scan_columns(*self._range_scan(query, -1.0, radius))

    def annular_range_search(
        self, query: Point, inner: float, outer: float
    ) -> List[Point]:
        """Points ``p`` with ``inner < dist(query, p) <= outer``."""
        if inner < 0 or outer < inner:
            raise ValueError("need 0 <= inner <= outer")
        return self._scan_points(self._range_scan(query, inner, outer)[0])

    def annular_range_search_columns(
        self, query: Point, inner: float, outer: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`annular_range_search` as ``(ids, distances)`` columns
        (RIA's ring expansion feed; see :meth:`range_search_columns`)."""
        if inner < 0 or outer < inner:
            raise ValueError("need 0 <= inner <= outer")
        return self._scan_columns(*self._range_scan(query, inner, outer))

    # ------------------------------------------------------------------
    # iteration / integrity
    # ------------------------------------------------------------------
    def all_points(self) -> List[Point]:
        """Every indexed point (through the buffer; test helper)."""
        self._ensure_built()
        if self.root_id is None:
            return []
        out: List[Point] = []
        stack = [self.root_id]
        while stack:
            nid = self.visit(stack.pop())
            start, end = self.leaf_slice(nid)
            if self.node_is_leaf[nid]:
                out.extend(self.point(row) for row in range(start, end))
            else:
                stack.extend(int(c) for c in self.child_ids[start:end])
        return out

    def check_integrity(self) -> None:
        """Validate MBR tightness/containment, capacities, leaf depths."""
        self._ensure_built()
        if self.root_id is None:
            if self.size != 0:
                raise AssertionError("empty tree with non-zero size")
            return
        leaf_depths = set()
        count = self._check_node(self.root_id, None, None, 1, leaf_depths)
        if count != self.size:
            raise AssertionError(f"size mismatch: {count} vs {self.size}")
        if len(leaf_depths) != 1:
            raise AssertionError(f"leaves at different depths: {leaf_depths}")
        if leaf_depths.pop() != self.height:
            raise AssertionError("height bookkeeping out of date")

    def _check_node(self, nid, expected_lo, expected_hi, depth, leaf_depths):
        start, end = self.leaf_slice(nid)
        if self.node_is_leaf[nid]:
            lo = self.point_coords[start:end].min(axis=0)
            hi = self.point_coords[start:end].max(axis=0)
        else:
            kids = self.child_ids[start:end]
            lo = self.node_lo[kids].min(axis=0)
            hi = self.node_hi[kids].max(axis=0)
        if not (
            np.array_equal(lo, self.node_lo[nid])
            and np.array_equal(hi, self.node_hi[nid])
        ):
            raise AssertionError(f"stale MBR at node {nid}")
        if expected_lo is not None and not (
            np.all(expected_lo <= lo) and np.all(hi <= expected_hi)
        ):
            raise AssertionError(f"child {nid} escapes its parent MBR")
        cap = self.leaf_cap if self.node_is_leaf[nid] else self.dir_cap
        if end - start > cap:
            raise AssertionError(f"node {nid} overflows")
        if end - start < 1:
            raise AssertionError(f"node {nid} is empty")
        if self.node_is_leaf[nid]:
            leaf_depths.add(depth)
            return end - start
        return sum(
            self._check_node(
                int(c),
                self.node_lo[nid],
                self.node_hi[nid],
                depth + 1,
                leaf_depths,
            )
            for c in self.child_ids[start:end]
        )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return (
            f"PackedRTree(n={self.size}, pages={self.num_pages}, "
            f"height={self.height}, leaf_cap={self.leaf_cap})"
        )
