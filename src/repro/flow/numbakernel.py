"""Compiled flow kernel: ``@njit`` Dijkstra + augment over pooled slabs.

The array backend (:mod:`repro.flow.arraykernel`) vectorizes the *wide*
relaxations but still pays CPython bytecode for the pop loop, the narrow
fans, and every heap operation — ``repro-cca profile`` shows that
interpreter tax is most of the remaining gap between the end-to-end and
kernel-replay speedups.  This module compiles the whole successive-
shortest-path inner loop (pop, relax, commit) and the Algorithm-1
potential update into nopython kernels:

* :class:`NumbaFlowNetwork` subclasses :class:`ArrayFlowNetwork` and keeps
  every parent structure authoritative for the Python-side API (sessions,
  IDA key refresh, ``out_edges``, result extraction).  What it adds are
  *pooled slab* mirrors of the hot adjacency — one flat ``(target,
  distance)`` pool for the forward-residual fans with per-provider
  ``start``/``count`` columns, the same for the backward fans, and int64
  mirrors of the capacity/usage counters — synced inside the existing
  mutation hooks (``_fwd_append``/``_fwd_remove``/``add_edges``/
  ``_push_unit``/``_pull_unit``/``apply_path`` and the session deltas), so
  a compiled kernel sees the entire residual graph as a handful of flat
  arrays.
* :class:`NumbaDijkstraState` holds labels, predecessors, the settled
  order, and an explicit array-backed binary heap in NumPy storage and
  runs :func:`_run_kernel` for the whole pop/relax/commit loop.  Heap
  entries are ``(α, node_index)`` compared lexicographically — the same
  tie-breaking contract as the reference ``heapq`` tuples — and since all
  live entries are distinct (pushes per node strictly decrease), the pop
  sequence is the unique sorted order of the surviving labels no matter
  which heap implementation produces it.  Labels are evaluated with the
  reference operation order (``(d − τ_q) + τ_p``, clamp, then ``+ base``),
  so settled orders, pop counts, matchings, and costs are *bit-identical*
  to the ``dict`` backend (the property suites assert exact equality).

``numba`` is an optional dependency (the ``perf`` extra).  Every kernel
is written in the nopython subset and decorated through
:func:`_maybe_njit`, which is a no-op passthrough when numba is absent —
the kernels then run interpreted, slower but byte-for-byte the same
results, which is how the equivalence suites exercise this backend on
environments without numba.  :data:`NUMBA_AVAILABLE` tells the registry
whether the compiled backend should be offered; absent numba,
``get_backend("numba")`` falls back to ``array`` with a warning.

JIT note: the first call into each kernel pays one-time compilation
(``cache=True`` persists it across processes).  Benchmarks exclude it by
calling :func:`warm_kernels` (or via best-of-N timing) before measuring.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.flow.arraykernel import ArrayDijkstraState, ArrayFlowNetwork
from repro.flow.dijkstra import _OFF, INF
from repro.flow.graph import NegativeReducedCostError, _is_scalar

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the default environment
    NUMBA_AVAILABLE = False

    def _njit(*args, **kwargs):
        """Identity decorator: run the kernels interpreted."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


def _maybe_njit(fn):
    """``@njit(cache=True)`` when numba is present, passthrough otherwise.

    ``fastmath`` stays off: bit-identity to the reference backend is the
    contract, so every float op must round exactly like CPython's.
    """
    if NUMBA_AVAILABLE:
        return _njit(cache=True)(fn)
    return fn


_T_IDX = 0  # T_NODE + _OFF
_S_IDX = 1  # S_NODE + _OFF
_MIN_BLOCK = 8

# _run_kernel status codes.
_STATUS_EXHAUSTED = 0  # heap drained without settling the sink
_STATUS_SINK = 1  # sink popped (and re-pushed; state resumable)
_STATUS_NEGATIVE = 2  # negative reduced source edge: corrupted residual


# ----------------------------------------------------------------------
# nopython kernels
# ----------------------------------------------------------------------
@_maybe_njit
def _hpush(heap_a, heap_i, n, a, idx):
    """Sift ``(a, idx)`` up into a heap of size ``n`` (capacity assured
    by the caller).  Lexicographic (α, index) order — the reference
    backend's tuple comparison."""
    pos = n
    while pos > 0:
        parent = (pos - 1) >> 1
        pa = heap_a[parent]
        pi = heap_i[parent]
        if a < pa or (a == pa and idx < pi):
            heap_a[pos] = pa
            heap_i[pos] = pi
            pos = parent
        else:
            break
    heap_a[pos] = a
    heap_i[pos] = idx


@_maybe_njit
def _hpop(heap_a, heap_i, n):
    """Pop the minimum from a heap of size ``n``; caller decrements."""
    a = heap_a[0]
    idx = heap_i[0]
    last = n - 1
    if last > 0:
        la = heap_a[last]
        li = heap_i[last]
        pos = 0
        while True:
            child = 2 * pos + 1
            if child >= last:
                break
            ca = heap_a[child]
            ci = heap_i[child]
            right = child + 1
            if right < last:
                ra = heap_a[right]
                ri = heap_i[right]
                if ra < ca or (ra == ca and ri < ci):
                    child = right
                    ca = ra
                    ci = ri
            if ca < la or (ca == la and ci < li):
                heap_a[pos] = ca
                heap_i[pos] = ci
                pos = child
            else:
                break
        heap_a[pos] = la
        heap_i[pos] = li
    return a, idx


@_maybe_njit
def _run_kernel(
    heap_a,
    heap_i,
    heap_n,
    alpha,
    prev,
    settled,
    order,
    order_n,
    nq,
    tau_s,
    q_tau,
    p_tau,
    q_used,
    q_cap,
    p_used,
    p_cap,
    fw_start,
    fw_n,
    pool_tgt,
    pool_dist,
    bw_start,
    bw_n,
    bw_src,
    bw_dist,
):
    """The whole pop/relax/commit loop, compiled.

    Returns the (possibly reallocated) heap and settled-order arrays plus
    their sizes, the settled-pop count, and a status code.  The reduced
    cost of every relaxed edge is evaluated with the reference operation
    order so labels match the ``dict`` backend bit for bit.
    """
    pops = 0
    status = _STATUS_EXHAUSTED
    err_i = -1
    err_w = 0.0
    while heap_n > 0:
        a, idx = _hpop(heap_a, heap_i, heap_n)
        heap_n -= 1
        if a > alpha[idx] or settled[idx] == 1:
            continue  # stale entry or already settled
        if idx == _T_IDX:
            # Leave t un-settled so a later resume can improve it.
            if heap_n + 1 > heap_a.size:
                cap = heap_a.size * 2
                na = np.empty(cap, np.float64)
                ni = np.empty(cap, np.int64)
                na[:heap_n] = heap_a[:heap_n]
                ni[:heap_n] = heap_i[:heap_n]
                heap_a = na
                heap_i = ni
            _hpush(heap_a, heap_i, heap_n, a, idx)
            heap_n += 1
            status = _STATUS_SINK
            break
        settled[idx] = 1
        if order_n >= order.size:
            no = np.empty(order.size * 2, np.int64)
            no[:order_n] = order[:order_n]
            order = no
        order[order_n] = idx
        order_n += 1
        pops += 1
        if idx == _S_IDX:
            fan = nq
        elif idx - _OFF < nq:
            fan = fw_n[idx - _OFF]
        else:
            fan = bw_n[idx - _OFF - nq] + 1
        if heap_n + fan > heap_a.size:
            cap = heap_a.size * 2
            while cap < heap_n + fan:
                cap *= 2
            na = np.empty(cap, np.float64)
            ni = np.empty(cap, np.int64)
            na[:heap_n] = heap_a[:heap_n]
            ni[:heap_n] = heap_i[:heap_n]
            heap_a = na
            heap_i = ni
        if idx == _S_IDX:
            # source relaxation: every provider with residual capacity
            for i in range(nq):
                if q_used[i] < q_cap[i]:
                    w = q_tau[i] - tau_s
                    if w < -1e-6:
                        # Corrupted residual state (see the reference
                        # kernel): fail loudly via the status code.
                        status = _STATUS_NEGATIVE
                        err_i = i
                        err_w = w
                        break
                    av = a + (w if w > 0.0 else 0.0)
                    t = i + _OFF
                    if av < alpha[t]:
                        alpha[t] = av
                        prev[t] = idx
                        settled[t] = 0
                        _hpush(heap_a, heap_i, heap_n, av, t)
                        heap_n += 1
            if status == _STATUS_NEGATIVE:
                break
        elif idx - _OFF < nq:
            # provider: forward bipartite fan off the pooled slab
            node = idx - _OFF
            base = fw_start[node]
            q_tau_i = q_tau[node]
            for k in range(fw_n[node]):
                t = pool_tgt[base + k]
                w = pool_dist[base + k] - q_tau_i + p_tau[t - _OFF - nq]
                av = a + (w if w > 0.0 else 0.0)
                if av < alpha[t]:
                    alpha[t] = av
                    prev[t] = idx
                    settled[t] = 0
                    _hpush(heap_a, heap_i, heap_n, av, t)
                    heap_n += 1
        else:
            # customer: residual reverse fan, plus the sink edge if open
            j = idx - _OFF - nq
            base = bw_start[j]
            p_tau_j = p_tau[j]
            for k in range(bw_n[j]):
                i = bw_src[base + k]
                w = q_tau[i] - bw_dist[base + k] - p_tau_j
                av = a + (w if w > 0.0 else 0.0)
                t = i + _OFF
                if av < alpha[t]:
                    alpha[t] = av
                    prev[t] = idx
                    settled[t] = 0
                    _hpush(heap_a, heap_i, heap_n, av, t)
                    heap_n += 1
            if p_used[j] < p_cap[j]:
                w = -p_tau_j
                av = a + (w if w > 0.0 else 0.0)
                if av < alpha[_T_IDX]:
                    alpha[_T_IDX] = av
                    prev[_T_IDX] = idx
                    _hpush(heap_a, heap_i, heap_n, av, _T_IDX)
                    heap_n += 1
    return heap_a, heap_i, heap_n, order, order_n, pops, status, err_i, err_w


@_maybe_njit
def _augment_kernel(
    order,
    order_n,
    alpha,
    settled,
    scratch,
    q_tau,
    p_tau,
    alpha_min,
    nq,
    tau_max,
):
    """Algorithm-1 potential update over the settled order, compiled.

    Advances ``q_tau``/``p_tau`` in place and returns the touched node
    lists so the caller can resync the Python-side scalar mirrors.
    ``scratch`` is a reusable zeroed flag array (mark-and-clear dedup —
    the settled order may hold stale duplicates of re-settled nodes);
    it is restored to all-zeros before returning.
    """
    prov = np.empty(order_n, np.int64)
    cust = np.empty(order_n, np.int64)
    n_prov = 0
    n_cust = 0
    base_c = _OFF + nq
    for k in range(order_n):
        idx = order[k]
        if settled[idx] == 0 or scratch[idx] == 1 or idx == _S_IDX:
            continue
        scratch[idx] = 1
        delta = alpha_min - alpha[idx]
        if delta <= 0:
            continue  # settled at exactly alpha_min under fp noise
        if idx >= base_c:
            j = idx - base_c
            p_tau[j] = p_tau[j] + delta
            cust[n_cust] = j
            n_cust += 1
        else:
            i = idx - _OFF
            v = q_tau[i] + delta
            q_tau[i] = v
            prov[n_prov] = i
            n_prov += 1
            if v > tau_max:
                tau_max = v
    for k in range(order_n):
        scratch[order[k]] = 0
    return prov, n_prov, cust, n_cust, tau_max


# ----------------------------------------------------------------------
# the network: pooled slab mirrors over the array backend
# ----------------------------------------------------------------------
class NumbaFlowNetwork(ArrayFlowNetwork):
    """Array network plus flat slab mirrors for the compiled kernels.

    The parent's structures stay authoritative for every Python-side
    read; the slabs exist solely so :func:`_run_kernel` can walk the
    residual adjacency without touching a Python object.  Slab positions
    coincide with the parent's compact-adjacency positions because both
    apply the same append/swap-remove operations at the same hooks.

    Relocation (a provider's block outgrowing its reservation) appends a
    doubled block at the pool tail and abandons the old one — amortized
    ≤2x pool memory for O(1) growth, same trade the parent's ``_grown``
    makes.
    """

    def __init__(
        self,
        provider_capacities: Sequence[int],
        customer_weights: Sequence[int],
    ):
        super().__init__(provider_capacities, customer_weights)
        nq, np_ = self.nq, self.np
        # int64 mirrors of the capacity/usage counters (kernel inputs).
        self._np_q_cap = np.asarray(self.q_cap, dtype=np.int64)
        self._np_q_used = np.zeros(nq, dtype=np.int64)
        self._np_p_cap = np.asarray(self.p_cap, dtype=np.int64)
        self._np_p_used = np.zeros(np_, dtype=np.int64)
        self._np_fwd_n = np.zeros(nq, dtype=np.int64)
        # Forward pool: per-provider blocks of (Dijkstra target, distance).
        self._fw_start = np.zeros(nq, dtype=np.int64)
        self._fw_cap = np.zeros(nq, dtype=np.int64)
        self._pool_tgt = np.empty(0, dtype=np.int64)
        self._pool_dist = np.empty(0, dtype=np.float64)
        self._pool_n = 0
        # Backward pool: per-customer blocks of (source provider, distance).
        self._np_bw_n = np.zeros(np_, dtype=np.int64)
        self._bw_start = np.zeros(np_, dtype=np.int64)
        self._bw_cap = np.zeros(np_, dtype=np.int64)
        self._bpool_src = np.empty(0, dtype=np.int64)
        self._bpool_dist = np.empty(0, dtype=np.float64)
        self._bpool_n = 0
        self._aug_scratch = None

    # -- pool block management -----------------------------------------
    def _fw_reserve(self, i: int, need: int, valid: int) -> None:
        """Grow provider ``i``'s forward block to hold ``need`` entries,
        relocating the ``valid`` live ones."""
        if need <= self._fw_cap[i]:
            return
        cap = max(need, int(self._fw_cap[i]) * 2, _MIN_BLOCK)
        start = self._pool_n
        if start + cap > self._pool_tgt.size:
            size = max(start + cap, self._pool_tgt.size * 2, 64)
            nt = np.empty(size, dtype=np.int64)
            nd = np.empty(size, dtype=np.float64)
            nt[:start] = self._pool_tgt[:start]
            nd[:start] = self._pool_dist[:start]
            self._pool_tgt = nt
            self._pool_dist = nd
        old = self._fw_start[i]
        if valid:
            self._pool_tgt[start : start + valid] = self._pool_tgt[old : old + valid]
            self._pool_dist[start : start + valid] = self._pool_dist[old : old + valid]
        self._fw_start[i] = start
        self._fw_cap[i] = cap
        self._pool_n = start + cap

    def _bw_reserve(self, j: int, need: int, valid: int) -> None:
        if need <= self._bw_cap[j]:
            return
        cap = max(need, int(self._bw_cap[j]) * 2, _MIN_BLOCK)
        start = self._bpool_n
        if start + cap > self._bpool_src.size:
            size = max(start + cap, self._bpool_src.size * 2, 64)
            ns = np.empty(size, dtype=np.int64)
            nd = np.empty(size, dtype=np.float64)
            ns[:start] = self._bpool_src[:start]
            nd[:start] = self._bpool_dist[:start]
            self._bpool_src = ns
            self._bpool_dist = nd
        old = self._bw_start[j]
        if valid:
            self._bpool_src[start : start + valid] = self._bpool_src[old : old + valid]
            self._bpool_dist[start : start + valid] = self._bpool_dist[
                old : old + valid
            ]
        self._bw_start[j] = start
        self._bw_cap[j] = cap
        self._bpool_n = start + cap

    # -- forward adjacency hooks ---------------------------------------
    def _fwd_append(self, i: int, eid: int, j: int, distance: float) -> None:
        super()._fwd_append(i, eid, j, distance)
        n = self._fwd_n[i]
        self._fw_reserve(i, n, n - 1)
        base = self._fw_start[i]
        self._pool_tgt[base + n - 1] = self.nq + j + _OFF
        self._pool_dist[base + n - 1] = distance
        self._np_fwd_n[i] = n

    def _fwd_remove(self, i: int, eid: int) -> None:
        pos = self._e_pos[eid]
        super()._fwd_remove(i, eid)
        if pos < 0:
            return
        n = self._fwd_n[i]  # count after the removal
        base = self._fw_start[i]
        if pos != n:
            self._pool_tgt[base + pos] = self._pool_tgt[base + n]
            self._pool_dist[base + pos] = self._pool_dist[base + n]
        self._np_fwd_n[i] = n

    def add_edges(self, providers, customers, distances) -> int:
        if not _is_scalar(providers):
            # Per-edge path: add_edge -> _fwd_append keeps the slab.
            return super().add_edges(providers, customers, distances)
        i = int(providers)
        n0 = self._fwd_n[i]
        inserted = super().add_edges(providers, customers, distances)
        n1 = self._fwd_n[i]
        if n1 > n0:
            # The bulk path block-appends into the parent's compact
            # adjacency without _fwd_append; mirror the block wholesale.
            self._fw_reserve(i, n1, n0)
            base = self._fw_start[i]
            self._pool_tgt[base + n0 : base + n1] = self._fwd_tgt[i][n0:n1]
            self._pool_dist[base + n0 : base + n1] = self._fwd_dist[i][n0:n1]
            self._np_fwd_n[i] = n1
        return inserted

    # -- backward adjacency + counter hooks ----------------------------
    def _push_unit(self, i: int, j: int) -> None:
        j = int(j)
        before = len(self._bwd[j])
        super()._push_unit(i, j)
        entries = self._bwd[j]
        if len(entries) > before:
            n = len(entries)
            self._bw_reserve(j, n, n - 1)
            base = self._bw_start[j]
            _eid, src, dist = entries[-1]
            self._bpool_src[base + n - 1] = src
            self._bpool_dist[base + n - 1] = dist
            self._np_bw_n[j] = n

    def _pull_unit(self, i: int, j: int) -> None:
        j = int(j)
        before = len(self._bwd[j])
        super()._pull_unit(i, j)
        entries = self._bwd[j]
        if len(entries) < before:
            # Ordered removal: rebuild the (tiny) block from the parent
            # list so slab order keeps tracking it exactly.
            base = self._bw_start[j]
            for k, (_eid, src, dist) in enumerate(entries):
                self._bpool_src[base + k] = src
                self._bpool_dist[base + k] = dist
            self._np_bw_n[j] = len(entries)

    def apply_path(self, path_nodes: Sequence[int]) -> None:
        super().apply_path(path_nodes)
        # Only the first provider's usage and the last customer's usage
        # move (interior hops push/pull through the hooks above).
        first = int(path_nodes[1])
        self._np_q_used[first] = self.q_used[first]
        last_j = int(path_nodes[-2]) - self.nq
        self._np_p_used[last_j] = self.p_used[last_j]

    # -- session deltas -------------------------------------------------
    def add_customer_node(self, weight: int) -> int:
        j = super().add_customer_node(weight)
        self._np_p_cap = np.append(self._np_p_cap, np.int64(weight))
        self._np_p_used = np.append(self._np_p_used, np.int64(0))
        self._np_bw_n = np.append(self._np_bw_n, np.int64(0))
        self._bw_start = np.append(self._bw_start, np.int64(0))
        self._bw_cap = np.append(self._bw_cap, np.int64(0))
        return j

    def remove_customer_node(self, j: int) -> int:
        released = super().remove_customer_node(j)
        j = int(j)
        # Released flow touches many providers; resync wholesale (session
        # deltas are rare next to kernel runs).
        self._np_q_used[:] = self.q_used
        self._np_p_used[j] = 0
        self._np_p_cap[j] = 0
        self._np_bw_n[j] = 0
        return released

    def set_provider_capacity(self, i: int, capacity: int) -> None:
        super().set_provider_capacity(i, capacity)
        self._np_q_cap[int(i)] = int(capacity)

    # -- augmentation ---------------------------------------------------
    def augment_with_state(self, path_nodes, alpha_min, state) -> None:
        if not isinstance(state, NumbaDijkstraState):
            super().augment_with_state(path_nodes, alpha_min, state)
            return
        self.apply_path(path_nodes)
        alpha_min = float(alpha_min)
        if state._settled[_S_IDX] and alpha_min > 0.0:
            # s settles at α = 0, so its delta is α_min itself.
            self.tau_s += alpha_min
        size = self.nq + self.np + _OFF
        scratch = self._aug_scratch
        if scratch is None or scratch.size < size:
            scratch = np.zeros(max(size, 64), dtype=np.uint8)
            self._aug_scratch = scratch
        prov, n_prov, cust, n_cust, tau_max = _augment_kernel(
            state._order,
            state._order_n,
            state._alpha,
            state._settled,
            scratch,
            self.q_tau,
            self.p_tau,
            alpha_min,
            self.nq,
            self._tau_max,
        )
        # Resync the scalar mirrors for exactly the touched rows.
        q_py = self._q_tau_py
        p_py = self._p_tau_py
        q_tau = self.q_tau
        p_tau = self.p_tau
        for k in range(n_prov):
            i = int(prov[k])
            q_py[i] = float(q_tau[i])
        for k in range(n_cust):
            j = int(cust[k])
            p_py[j] = float(p_tau[j])
        self._tau_max = float(tau_max)


# ----------------------------------------------------------------------
# the Dijkstra state
# ----------------------------------------------------------------------
class NumbaDijkstraState(ArrayDijkstraState):
    """Dijkstra state whose pop/relax/commit loop is one kernel call.

    Labels, predecessors, settled flags, the settled order, and the
    binary heap all live in NumPy arrays so :func:`_run_kernel` can run
    nopython.  The public API (``alpha_of``/``improve``/``run``/
    ``sp_cost``/``path_nodes``/``settled_items``) matches the reference
    state; PUA repairs go through :meth:`improve` exactly as before and
    the next :meth:`run` resumes from the live heap.
    """

    def __init__(self, net: NumbaFlowNetwork):
        self.net = net
        size = net.nq + net.np + _OFF
        self._alpha = np.full(size, INF, dtype=np.float64)
        self._prev = np.full(size, -3, dtype=np.int64)  # -3 = unreached
        self._settled = np.zeros(size, dtype=np.uint8)
        self._order = np.empty(16, dtype=np.int64)
        self._order_n = 0
        self._heap_a = np.empty(16, dtype=np.float64)
        self._heap_i = np.empty(16, dtype=np.int64)
        self._heap_n = 0
        self.pops = 0
        self._np_alpha = None  # unused; parent-slot compatibility
        self._alpha[_S_IDX] = 0.0
        self._push(0.0, _S_IDX)

    # The parent classes store the settled order as a plain list; expose
    # the array-backed one through the same attribute (tests and the
    # cross-backend augment path read it).
    @property
    def _settled_order(self) -> List[int]:
        return self._order[: self._order_n].tolist()

    def _push(self, a: float, idx: int) -> None:
        if self._heap_n >= self._heap_a.size:
            cap = self._heap_a.size * 2
            na = np.empty(cap, dtype=np.float64)
            ni = np.empty(cap, dtype=np.int64)
            na[: self._heap_n] = self._heap_a[: self._heap_n]
            ni[: self._heap_n] = self._heap_i[: self._heap_n]
            self._heap_a = na
            self._heap_i = ni
        _hpush(self._heap_a, self._heap_i, self._heap_n, a, idx)
        self._heap_n += 1

    def improve(self, node: int, alpha: float, prev: int) -> bool:
        idx = node + _OFF
        if alpha >= self._alpha[idx]:
            return False
        alpha = float(alpha)
        self._alpha[idx] = alpha
        self._prev[idx] = prev + _OFF
        self._settled[idx] = 0
        self._push(alpha, idx)
        return True

    def run(self) -> bool:
        net = self.net
        (
            self._heap_a,
            self._heap_i,
            self._heap_n,
            self._order,
            self._order_n,
            pops,
            status,
            err_i,
            err_w,
        ) = _run_kernel(
            self._heap_a,
            self._heap_i,
            self._heap_n,
            self._alpha,
            self._prev,
            self._settled,
            self._order,
            self._order_n,
            net.nq,
            net.tau_s,
            net.q_tau,
            net.p_tau,
            net._np_q_used,
            net._np_q_cap,
            net._np_p_used,
            net._np_p_cap,
            net._fw_start,
            net._np_fwd_n,
            net._pool_tgt,
            net._pool_dist,
            net._bw_start,
            net._np_bw_n,
            net._bpool_src,
            net._bpool_dist,
        )
        self.pops += int(pops)
        if status == _STATUS_NEGATIVE:
            # Corrupted residual state (see the reference kernel).
            raise NegativeReducedCostError(
                f"negative reduced cost {float(err_w)} on (s, q_{int(err_i)})"
            )
        if status == _STATUS_SINK:
            return True
        return bool(self._alpha[_T_IDX] < INF)

    @property
    def sp_cost(self) -> float:
        return float(self._alpha[_T_IDX])

    def path_nodes(self) -> List[int]:
        return [int(node) for node in super().path_nodes()]


def warm_kernels() -> bool:
    """Trigger JIT compilation of every kernel on a toy instance.

    Benchmarks call this once before timing so the one-time compile cost
    (absent with ``cache=True`` after the first process) never lands
    inside a measured region.  Returns :data:`NUMBA_AVAILABLE`.
    """
    net = NumbaFlowNetwork([1, 1], [1, 1])
    net.add_edges(0, np.array([0, 1]), np.array([1.0, 2.0]))
    net.add_edge(1, 1, 1.5)
    while net.matched < net.gamma:
        state = NumbaDijkstraState(net)
        if not state.run():
            break
        net.augment_with_state(state.path_nodes(), state.sp_cost, state)
    return NUMBA_AVAILABLE


def interpreted_backend():
    """A :class:`FlowBackend` over these kernels regardless of numba.

    With numba absent the kernels run interpreted — identical results,
    interpreter speed — which is how the equivalence suites pin the
    backend's bit-identity on environments without the ``perf`` extra.
    """
    from repro.flow.backend import FlowBackend

    return FlowBackend("numba", NumbaFlowNetwork, NumbaDijkstraState)
