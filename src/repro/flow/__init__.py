"""Min-cost-flow substrate for CCA.

Implements the flow-graph reduction of Section 2.1 (source → providers →
customers → sink), the potential-based successive-shortest-path machinery of
Section 2.2 (Algorithm 1), and reference oracles used to validate every
solver in the repository.
"""

from repro.flow.graph import CCAFlowNetwork, S_NODE, T_NODE
from repro.flow.dijkstra import DijkstraState
from repro.flow.sspa import sspa_solve
from repro.flow.reference import (
    oracle_lsa,
    oracle_networkx,
    oracle_cost,
)

__all__ = [
    "CCAFlowNetwork",
    "S_NODE",
    "T_NODE",
    "DijkstraState",
    "sspa_solve",
    "oracle_lsa",
    "oracle_networkx",
    "oracle_cost",
]
