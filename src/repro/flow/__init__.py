"""Min-cost-flow substrate for CCA.

Implements the flow-graph reduction of Section 2.1 (source → providers →
customers → sink), the potential-based successive-shortest-path machinery of
Section 2.2 (Algorithm 1), and reference oracles used to validate every
solver in the repository.

Two interchangeable kernels live behind the :mod:`repro.flow.backend` seam:
the dict-based reference implementation and the array-backed performance
kernel (:mod:`repro.flow.arraykernel`).
"""

from repro.flow.arraykernel import ArrayDijkstraState, ArrayFlowNetwork
from repro.flow.backend import BACKENDS, DEFAULT_BACKEND, FlowBackend, get_backend
from repro.flow.dijkstra import DijkstraState
from repro.flow.graph import S_NODE, T_NODE, CCAFlowNetwork, NegativeReducedCostError
from repro.flow.reference import oracle_cost, oracle_lsa, oracle_networkx
from repro.flow.sspa import sspa_solve

__all__ = [
    "CCAFlowNetwork",
    "NegativeReducedCostError",
    "S_NODE",
    "T_NODE",
    "DijkstraState",
    "ArrayFlowNetwork",
    "ArrayDijkstraState",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "FlowBackend",
    "get_backend",
    "sspa_solve",
    "oracle_lsa",
    "oracle_networkx",
    "oracle_cost",
]
