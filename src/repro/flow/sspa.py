"""Successive Shortest Path Algorithm (Algorithm 1) — the baseline.

SSPA materializes the *complete* bipartite graph and runs γ potential-aware
Dijkstra computations.  It is exact but needs O(|Q|·|P|) memory and time per
iteration, which is exactly the scalability wall the paper's incremental
algorithms remove.  We keep it as the correctness anchor and as the Figure 8
comparison subject.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.flow.backend import DEFAULT_BACKEND, BackendLike, get_backend
from repro.flow.graph import CCAFlowNetwork


class UnsolvableError(RuntimeError):
    """Raised when γ augmenting paths cannot be found (internal bug guard:
    a CCA instance always admits a γ-flow)."""


def sspa_solve(
    provider_capacities: Sequence[int],
    customer_weights: Sequence[int],
    distance_fn: Callable[[int, int], float],
    progress: Optional[Callable[[int, int], None]] = None,
    backend: BackendLike = DEFAULT_BACKEND,
    distance_rows: Optional[Callable[[int], np.ndarray]] = None,
    stage_s: Optional[Dict[str, float]] = None,
) -> Tuple[List[Tuple[int, int, float]], CCAFlowNetwork]:
    """Solve CCA exactly on the complete bipartite graph.

    Parameters
    ----------
    provider_capacities / customer_weights:
        Node capacities; customers have weight 1 in the exact problem.
    distance_fn:
        ``distance_fn(i, j)`` → Euclidean distance between provider ``i``
        and customer ``j``.
    progress:
        Optional callback ``(done, gamma)`` per augmentation.
    backend:
        Flow-kernel selector (``"dict"`` / ``"array"`` or a
        :class:`~repro.flow.backend.FlowBackend`).
    distance_rows:
        Optional columnar oracle: ``distance_rows(i)`` → the distance
        vector from provider ``i`` to *every* customer, bit-identical to
        ``[distance_fn(i, j) for j in range(np)]``.  When given, the
        complete bipartite graph is built one ``add_edges`` row at a time
        instead of |Q|·|P| scalar ``add_edge`` calls — the fused supply
        path for the baseline.
    stage_s:
        Optional dict accumulating per-stage wall time (``insert`` /
        ``dijkstra`` / ``augment``) for the profiling surface.

    Returns
    -------
    (pairs, network): matched triples and the final residual network.
    """
    kernel = get_backend(backend)
    net = kernel.network(provider_capacities, customer_weights)
    started = time.perf_counter()
    if distance_rows is not None:
        customers = np.arange(net.np, dtype=np.int64)
        for i in range(net.nq):
            net.add_edges(i, customers, distance_rows(i))
    else:
        for i in range(net.nq):
            for j in range(net.np):
                net.add_edge(i, j, distance_fn(i, j))
    if stage_s is not None:
        stage_s["insert"] = (stage_s.get("insert", 0.0) + time.perf_counter() - started)

    gamma = net.gamma
    for loop in range(gamma):
        state = kernel.dijkstra(net)
        started = time.perf_counter()
        if not state.run():
            raise UnsolvableError(f"no augmenting path at iteration {loop + 1}/{gamma}")
        mid = time.perf_counter()
        net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        if stage_s is not None:
            done = time.perf_counter()
            stage_s["dijkstra"] = stage_s.get("dijkstra", 0.0) + mid - started
            stage_s["augment"] = stage_s.get("augment", 0.0) + done - mid
        if progress is not None:
            progress(loop + 1, gamma)
    return net.matching_pairs(), net
