"""Successive Shortest Path Algorithm (Algorithm 1) — the baseline.

SSPA materializes the *complete* bipartite graph and runs γ potential-aware
Dijkstra computations.  It is exact but needs O(|Q|·|P|) memory and time per
iteration, which is exactly the scalability wall the paper's incremental
algorithms remove.  We keep it as the correctness anchor and as the Figure 8
comparison subject.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.flow.backend import BackendLike, DEFAULT_BACKEND, get_backend
from repro.flow.graph import CCAFlowNetwork


class UnsolvableError(RuntimeError):
    """Raised when γ augmenting paths cannot be found (internal bug guard:
    a CCA instance always admits a γ-flow)."""


def sspa_solve(
    provider_capacities: Sequence[int],
    customer_weights: Sequence[int],
    distance_fn: Callable[[int, int], float],
    progress: Optional[Callable[[int, int], None]] = None,
    backend: BackendLike = DEFAULT_BACKEND,
) -> Tuple[List[Tuple[int, int, float]], CCAFlowNetwork]:
    """Solve CCA exactly on the complete bipartite graph.

    Parameters
    ----------
    provider_capacities / customer_weights:
        Node capacities; customers have weight 1 in the exact problem.
    distance_fn:
        ``distance_fn(i, j)`` → Euclidean distance between provider ``i``
        and customer ``j``.
    progress:
        Optional callback ``(done, gamma)`` per augmentation.
    backend:
        Flow-kernel selector (``"dict"`` / ``"array"`` or a
        :class:`~repro.flow.backend.FlowBackend`).

    Returns
    -------
    (pairs, network): matched triples and the final residual network.
    """
    kernel = get_backend(backend)
    net = kernel.network(provider_capacities, customer_weights)
    for i in range(net.nq):
        for j in range(net.np):
            net.add_edge(i, j, distance_fn(i, j))

    gamma = net.gamma
    for loop in range(gamma):
        state = kernel.dijkstra(net)
        if not state.run():
            raise UnsolvableError(
                f"no augmenting path at iteration {loop + 1}/{gamma}"
            )
        net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        if progress is not None:
            progress(loop + 1, gamma)
    return net.matching_pairs(), net
