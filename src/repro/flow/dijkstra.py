"""Potential-aware, resumable Dijkstra over the residual network.

One :class:`DijkstraState` instance lives for one CCA *iteration* (one
attempted augmentation).  It supports:

* :meth:`run` — pop until the sink settles (early termination);
* external α decreases via :meth:`improve` — the hook the Path Update
  Algorithm (Section 3.4.1) uses after an edge insertion, followed by
  another :meth:`run` that resumes from the live heap instead of
  restarting.

Settled nodes whose α later improves are simply un-settled and re-queued,
which keeps resumption correct without any special-casing.

Storage is flat arrays indexed by ``node + 2`` (sink ``-2`` → 0, source
``-1`` → 1, providers/customers shifted up) — the innermost loop of every
solver runs here, and array indexing beats dict lookups by a large factor
in CPython.  Reduced-cost formulas from :class:`CCAFlowNetwork` are inlined
for the same reason; tiny negative reduced costs are floating-point noise
and clamp to 0 (genuinely negative ones are impossible while only
Theorem-1-certified paths are augmented, and the flow-network unit tests
assert against them).

This class is also the *tie-breaking specification* for the fused
columnar pipeline: heap entries are ``(α, node_index)`` tuples, so the
pop sequence is the unique lexicographic order of the surviving labels —
independent of push order.  That is what lets the array backend
(:mod:`repro.flow.arraykernel`) relax wide edge blocks vectorized and
push improvements in batch while staying bit-identical to this scalar
reference (``tests/property/test_bulk_edges.py`` pins the equality down
to settled orders and pop counts).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from repro.flow.graph import S_NODE, T_NODE, CCAFlowNetwork, NegativeReducedCostError

INF = float("inf")
_OFF = 2  # node id -> array index offset


class DijkstraState:
    """Shortest-path computation state for a single CCA iteration."""

    __slots__ = (
        "net",
        "_alpha",
        "_prev",
        "_settled",
        "_settled_order",
        "_heap",
        "pops",
    )

    def __init__(self, net: CCAFlowNetwork):
        self.net = net
        size = net.nq + net.np + _OFF
        self._alpha = [INF] * size
        self._prev = [-3] * size  # -3 = unreached
        self._settled = [False] * size
        self._settled_order: List[int] = []  # indices, may hold stale dups
        self._heap: List[Tuple[float, int]] = []
        self.pops = 0  # settled-pop counter (work metric)
        self._alpha[S_NODE + _OFF] = 0.0
        heapq.heappush(self._heap, (0.0, S_NODE + _OFF))

    # ------------------------------------------------------------------
    # public views (node-id addressed)
    # ------------------------------------------------------------------
    def alpha_of(self, node: int) -> float:
        """Current label of ``node`` (INF when unreached)."""
        return self._alpha[node + _OFF]

    def is_settled(self, node: int) -> bool:
        return self._settled[node + _OFF]

    def settled_alpha(self, node: int) -> Optional[float]:
        """α of ``node`` if it is currently settled, else None."""
        idx = node + _OFF
        return self._alpha[idx] if self._settled[idx] else None

    def settled_items(self) -> Iterator[Tuple[int, float]]:
        """(node, α) for every currently settled node."""
        seen = set()
        for idx in self._settled_order:
            if self._settled[idx] and idx not in seen:
                seen.add(idx)
                yield idx - _OFF, self._alpha[idx]

    # ------------------------------------------------------------------
    # relaxation primitives
    # ------------------------------------------------------------------
    def improve(self, node: int, alpha: float, prev: int) -> bool:
        """Offer a shorter path to ``node``; re-queues (and un-settles) it
        when the offer wins.  Returns True if α improved."""
        idx = node + _OFF
        if alpha >= self._alpha[idx]:
            return False
        self._alpha[idx] = alpha
        self._prev[idx] = prev + _OFF
        self._settled[idx] = False
        heapq.heappush(self._heap, (alpha, idx))
        return True

    def _relax_out(self, idx: int, base: float) -> None:
        """Relax every residual out-edge of the node at array index
        ``idx`` (the solver's innermost loop — everything inlined)."""
        net = self.net
        alpha = self._alpha
        prev = self._prev
        settled = self._settled
        heap = self._heap
        push = heapq.heappush
        nq = net.nq
        if idx == S_NODE + _OFF:
            tau_s = net.tau_s
            q_tau = net.q_tau
            q_used = net.q_used
            q_cap = net.q_cap
            for i in range(nq):
                if q_used[i] < q_cap[i]:
                    w = q_tau[i] - tau_s
                    if w < -1e-6:
                        # A genuinely negative source edge means the
                        # residual state was corrupted (e.g. an unsound
                        # warm-start delta reopened a stale edge): fail
                        # loudly instead of silently mis-routing flow.
                        raise NegativeReducedCostError(
                            f"negative reduced cost {w} on (s, q_{i})"
                        )
                    a = base + (w if w > 0.0 else 0.0)
                    t = i + _OFF
                    if a < alpha[t]:
                        alpha[t] = a
                        prev[t] = idx
                        settled[t] = False
                        push(heap, (a, t))
            return
        node = idx - _OFF
        if node < nq:  # provider: forward bipartite edges
            q_tau_i = net.q_tau[node]
            p_tau = net.p_tau
            base_off = nq + _OFF
            for j, d in net.forward[node].items():
                w = d - q_tau_i + p_tau[j]
                a = base + (w if w > 0.0 else 0.0)
                t = base_off + j
                if a < alpha[t]:
                    alpha[t] = a
                    prev[t] = idx
                    settled[t] = False
                    push(heap, (a, t))
            return
        # customer: residual reverse edges, plus the sink edge if open
        j = node - nq
        p_tau_j = net.p_tau[j]
        q_tau = net.q_tau
        for i, d in net.backward[j].items():
            w = q_tau[i] - d - p_tau_j
            a = base + (w if w > 0.0 else 0.0)
            t = i + _OFF
            if a < alpha[t]:
                alpha[t] = a
                prev[t] = idx
                settled[t] = False
                push(heap, (a, t))
        if net.p_used[j] < net.p_cap[j]:
            w = -p_tau_j
            a = base + (w if w > 0.0 else 0.0)
            t = T_NODE + _OFF
            if a < alpha[t]:
                alpha[t] = a
                prev[t] = idx
                push(heap, (a, t))

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------
    def run(self) -> bool:
        """Pop until the sink settles.  Returns False if t is unreachable
        in the current Esub (the caller then expands the subgraph)."""
        heap = self._heap
        alpha = self._alpha
        settled = self._settled
        t_idx = T_NODE + _OFF
        while heap:
            a, idx = heapq.heappop(heap)
            if a > alpha[idx] or settled[idx]:
                continue  # stale entry or already settled
            if idx == t_idx:
                # Leave t un-settled so a later resume can improve it.
                heapq.heappush(heap, (a, idx))
                return True
            settled[idx] = True
            self._settled_order.append(idx)
            self.pops += 1
            self._relax_out(idx, a)
        return alpha[t_idx] < INF

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def sp_cost(self) -> float:
        """α of the sink — the shortest path's (reduced) cost, which
        equals ``vmin.α`` in the paper since w(vmin, t) = 0."""
        return self._alpha[T_NODE + _OFF]

    def path_nodes(self) -> List[int]:
        """The s→t path found by the last successful :meth:`run`."""
        if self._alpha[T_NODE + _OFF] == INF:
            raise RuntimeError("no path to the sink has been found")
        path = [T_NODE + _OFF]
        idx = T_NODE + _OFF
        s_idx = S_NODE + _OFF
        while idx != s_idx:
            idx = self._prev[idx]
            if idx < 0:
                raise RuntimeError("broken predecessor chain")
            path.append(idx)
        path.reverse()
        return [idx - _OFF for idx in path]

    def settled_alpha_for_update(self) -> Dict[int, float]:
        """Settled nodes (plus t) and their α, for the potential update.

        Only nodes with ``α ≤ α_min`` settle before t pops, so the whole
        settled set qualifies for Algorithm 1's lines 8-9.
        """
        out = dict(self.settled_items())
        out[T_NODE] = self.sp_cost
        return out

    def provider_alpha(self, i: int) -> Optional[float]:
        """Settled α of provider ``i`` in this iteration (IDA's key
        input), or None if the provider was not settled."""
        return self.settled_alpha(i)
