"""Reference oracles.

Two independent exact solvers validate every algorithm in this repository:

* :func:`oracle_lsa` — scipy's Jonker-Volgenant rectangular assignment on a
  capacity-expanded cost matrix (each provider replicated ``k`` times, each
  customer replicated ``w`` times).  Float-exact, the primary test oracle.
* :func:`oracle_networkx` — networkx ``min_cost_flow`` on the Section 2.1
  flow graph with integer-scaled costs; a structurally different second
  opinion.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

MAX_ORACLE_CELLS = 30_000_000


def oracle_lsa(
    provider_capacities: Sequence[int],
    customer_weights: Sequence[int],
    distance_fn: Callable[[int, int], float],
) -> List[Tuple[int, int, float]]:
    """Exact optimum via rectangular linear sum assignment.

    Providers are expanded into unit slots; so are weighted customers.  The
    rectangular LSA matches ``min(rows, cols) = γ`` slots at minimum total
    cost, which is exactly the CCA optimum.
    """
    from scipy.optimize import linear_sum_assignment

    q_slots = [i for i, k in enumerate(provider_capacities) for _ in range(k)]
    p_slots = [j for j, w in enumerate(customer_weights) for _ in range(w)]
    if not q_slots or not p_slots:
        return []
    if len(q_slots) * len(p_slots) > MAX_ORACLE_CELLS:
        raise ValueError(
            "oracle instance too large "
            f"({len(q_slots)}x{len(p_slots)} expanded slots)"
        )
    cost = np.empty((len(q_slots), len(p_slots)))
    distances = {}
    for r, i in enumerate(q_slots):
        for c, j in enumerate(p_slots):
            if (i, j) not in distances:
                distances[(i, j)] = distance_fn(i, j)
            cost[r, c] = distances[(i, j)]
    rows, cols = linear_sum_assignment(cost)
    return [
        (q_slots[r], p_slots[c], float(cost[r, c]))
        for r, c in zip(rows, cols, strict=False)
    ]


def oracle_networkx(
    provider_capacities: Sequence[int],
    customer_weights: Sequence[int],
    distance_fn: Callable[[int, int], float],
    cost_scale: int = 10**6,
) -> List[Tuple[int, int, float]]:
    """Exact optimum via networkx min-cost flow (integer-scaled costs).

    Builds the Section 2.1 graph verbatim: balances ±γ on s/t, capacities on
    (s,q) and (p,t), unit capacities and scaled distances on (q,p).
    """
    import networkx as nx

    nq = len(provider_capacities)
    np_ = len(customer_weights)
    gamma = min(sum(provider_capacities), sum(customer_weights))
    graph = nx.DiGraph()
    graph.add_node("s", demand=-gamma)
    graph.add_node("t", demand=gamma)
    for i, k in enumerate(provider_capacities):
        graph.add_edge("s", ("q", i), weight=0, capacity=k)
    for j, w in enumerate(customer_weights):
        graph.add_edge(("p", j), "t", weight=0, capacity=w)
    real = {}
    for i in range(nq):
        for j in range(np_):
            d = distance_fn(i, j)
            real[(i, j)] = d
            graph.add_edge(
                ("q", i),
                ("p", j),
                weight=int(round(d * cost_scale)),
                # One unit per pair in the exact problem; a weighted
                # customer (CA representative) may take several units
                # from the same provider.
                capacity=min(provider_capacities[i], customer_weights[j]),
            )
    flow = nx.min_cost_flow(graph)
    pairs = []
    for i in range(nq):
        for j, units in flow.get(("q", i), {}).items():
            if isinstance(j, tuple) and j[0] == "p" and units > 0:
                pairs.extend([(i, j[1], real[(i, j[1])])] * units)
    return pairs


def oracle_cost(pairs: List[Tuple[int, int, float]]) -> float:
    """Ψ of an oracle matching."""
    return sum(d for _, _, d in pairs)
