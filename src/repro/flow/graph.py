"""The CCA residual flow network with node potentials.

Node encoding (integers throughout, for heap speed):

* ``S_NODE = -1`` — source ``s``; edge ``(s, q_i)`` has cost 0, capacity
  ``q_i.k`` (provider capacity).
* provider ``i`` — node id ``i`` for ``0 <= i < nq``.
* customer ``j`` — node id ``nq + j``; edge ``(p_j, t)`` has cost 0 and
  capacity ``p_j.w`` (1 in the exact problem; the representative weight in
  CA's concise matching).
* ``T_NODE = -2`` — sink ``t``.

Bipartite edges ``(q_i, p_j)`` cost ``dist(q_i, p_j)``.  In the exact
problem their capacity is 1 (a pair appears at most once in ``M``); in CA's
concise matching a provider may serve several units of one representative,
so the capacity generalizes to ``min(q_i.k, p_j.w)``.  The residual
adjacency keeps an edge in ``forward[i]`` while it has spare capacity and in
``backward[j]`` while it carries flow (both, when partially used).  The
matching is the set of positive-flow bipartite edges (Section 2.2).

Potentials follow the paper's convention: the *reduced* cost of an edge is
``w(u, v) = dist(u, v) − u.τ + v.τ``, and after augmenting a shortest path
of cost ``α_min`` every node settled with ``α ≤ α_min`` gets
``τ := τ − α + α_min``.  Because only globally-certified shortest paths are
augmented (Theorem 1), the potentials remain feasible for the *complete*
bipartite edge set, so newly discovered edges always enter with non-negative
reduced cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

S_NODE = -1
T_NODE = -2


class CCAFlowNetwork:
    """Residual network over a (sub)set of the bipartite edges.

    The network starts with *no* bipartite edges; incremental solvers add
    them via :meth:`add_edge` and SSPA adds the complete set.
    """

    def __init__(
        self,
        provider_capacities: Sequence[int],
        customer_weights: Sequence[int],
    ):
        if any(k < 0 for k in provider_capacities):
            raise ValueError("provider capacities must be non-negative")
        if any(w < 0 for w in customer_weights):
            raise ValueError("customer weights must be non-negative")
        self.nq = len(provider_capacities)
        self.np = len(customer_weights)
        self.q_cap = list(provider_capacities)
        self.p_cap = list(customer_weights)
        self.q_used = [0] * self.nq
        self.p_used = [0] * self.np
        self.q_tau = [0.0] * self.nq
        self.p_tau = [0.0] * self.np
        self.tau_s = 0.0
        # forward[i]: {j: dist} — edges with spare capacity.
        # backward[j]: {i: dist} — edges carrying flow (matched units).
        self.forward: List[Dict[int, float]] = [dict() for _ in range(self.nq)]
        self.backward: List[Dict[int, float]] = [
            dict() for _ in range(self.np)
        ]
        # Canonical edge registry: (i, j) -> [distance, capacity, flow].
        self.edges: Dict[Tuple[int, int], List] = {}
        self.matched = 0
        self.augmentations = 0

    # ------------------------------------------------------------------
    # problem-level quantities
    # ------------------------------------------------------------------
    @property
    def gamma(self) -> int:
        """Required matching size γ = min(Σ p.w, Σ q.k)."""
        return min(sum(self.p_cap), sum(self.q_cap))

    def provider_node(self, i: int) -> int:
        return i

    def customer_node(self, j: int) -> int:
        return self.nq + j

    def is_provider(self, node: int) -> bool:
        return 0 <= node < self.nq

    def is_customer(self, node: int) -> bool:
        return node >= self.nq

    def customer_index(self, node: int) -> int:
        return node - self.nq

    # ------------------------------------------------------------------
    # state predicates (Definitions 2 and 3)
    # ------------------------------------------------------------------
    def provider_full(self, i: int) -> bool:
        """Definition 2: e(s, q_i) used q_i.k times."""
        return self.q_used[i] >= self.q_cap[i]

    def customer_full(self, j: int) -> bool:
        """Definition 3 (generalized to weights): e(p_j, t) saturated."""
        return self.p_used[j] >= self.p_cap[j]

    def any_provider_full(self) -> bool:
        return any(self.q_used[i] >= self.q_cap[i] for i in range(self.nq))

    # ------------------------------------------------------------------
    # Esub maintenance
    # ------------------------------------------------------------------
    def add_edge(self, i: int, j: int, distance: float) -> bool:
        """Insert bipartite edge (q_i, p_j) into Esub.

        Capacity is ``min(q_i.k, p_j.w)``; zero-capacity edges are useless
        and rejected.  Returns False if the edge is already present.
        """
        if distance < 0:
            raise ValueError("edge length must be non-negative")
        if (i, j) in self.edges:
            return False
        capacity = min(self.q_cap[i], self.p_cap[j])
        if capacity == 0:
            return False
        self.edges[(i, j)] = [distance, capacity, 0]
        self.forward[i][j] = distance
        return True

    def has_edge(self, i: int, j: int) -> bool:
        return (i, j) in self.edges

    def edge_flow(self, i: int, j: int) -> int:
        entry = self.edges.get((i, j))
        return 0 if entry is None else entry[2]

    def edge_residual(self, i: int, j: int) -> int:
        entry = self.edges.get((i, j))
        return 0 if entry is None else entry[1] - entry[2]

    @property
    def edge_count(self) -> int:
        """|Esub| — the paper's memory metric (distinct discovered edges)."""
        return len(self.edges)

    # ------------------------------------------------------------------
    # reduced costs (the Dijkstra adjacency)
    # ------------------------------------------------------------------
    def reduced_cost_sq(self, i: int) -> float:
        """w(s, q_i) = 0 − τ_s + τ_qi."""
        return _nonneg(self.q_tau[i] - self.tau_s)

    def reduced_cost_qp(self, i: int, j: int, distance: float) -> float:
        """w(q_i, p_j) = dist − τ_qi + τ_pj."""
        return _nonneg(distance - self.q_tau[i] + self.p_tau[j])

    def reduced_cost_pq(self, j: int, i: int, distance: float) -> float:
        """w(p_j, q_i) = −dist − τ_pj + τ_qi (residual reverse edge)."""
        return _nonneg(-distance - self.p_tau[j] + self.q_tau[i])

    def reduced_cost_pt(self, j: int) -> float:
        """w(p_j, t) = 0 − τ_pj; always 0 for non-full customers."""
        return _nonneg(-self.p_tau[j])

    def out_edges(self, node: int) -> Iterable[Tuple[int, float]]:
        """Residual out-edges of ``node`` as (target, reduced_cost).

        Edges out of ``s`` and into ``t`` are produced by the Dijkstra
        driver itself (they depend on residual capacities tracked here).
        """
        if self.is_provider(node):
            i = node
            q_tau = self.q_tau[i]
            p_tau = self.p_tau
            nq = self.nq
            for j, d in self.forward[i].items():
                yield nq + j, _nonneg(d - q_tau + p_tau[j])
        else:
            j = self.customer_index(node)
            p_tau = self.p_tau[j]
            for i, d in self.backward[j].items():
                yield i, _nonneg(-d - p_tau + self.q_tau[i])

    def source_edges(self) -> Iterable[Tuple[int, float]]:
        """(q_i, w(s, q_i)) for every provider with residual capacity."""
        tau_s = self.tau_s
        for i in range(self.nq):
            if self.q_used[i] < self.q_cap[i]:
                yield i, _nonneg(self.q_tau[i] - tau_s)

    def sink_edge_open(self, j: int) -> bool:
        return self.p_used[j] < self.p_cap[j]

    # ------------------------------------------------------------------
    # augmentation (Algorithm 1 lines 4-11)
    # ------------------------------------------------------------------
    def apply_path(self, path_nodes: Sequence[int]) -> None:
        """Push one unit of flow along an s→t path (reversing residuals).

        This is the flow half of an augmentation; :meth:`augment` adds the
        potential update.  IDA's Theorem-2 fast path calls this directly
        and maintains potentials itself via lazy offsets.
        """
        if path_nodes[0] != S_NODE or path_nodes[-1] != T_NODE:
            raise ValueError("augmenting path must run from s to t")
        for u, v in zip(path_nodes, path_nodes[1:]):
            if u == S_NODE:
                self.q_used[v] += 1
                if self.q_used[v] > self.q_cap[v]:
                    raise RuntimeError(f"provider {v} over capacity")
            elif v == T_NODE:
                j = self.customer_index(u)
                self.p_used[j] += 1
                if self.p_used[j] > self.p_cap[j]:
                    raise RuntimeError(f"customer {j} over capacity")
            elif self.is_provider(u):
                self._push_unit(u, self.customer_index(v))
            else:
                self._pull_unit(v, self.customer_index(u))
        self.matched += 1
        self.augmentations += 1

    def _push_unit(self, i: int, j: int) -> None:
        entry = self.edges[(i, j)]
        d, capacity, flow = entry
        if flow >= capacity:
            raise RuntimeError(f"edge ({i},{j}) over capacity")
        entry[2] = flow + 1
        self.backward[j][i] = d
        if entry[2] >= capacity:
            self.forward[i].pop(j, None)

    def _pull_unit(self, i: int, j: int) -> None:
        entry = self.edges[(i, j)]
        d, _, flow = entry
        if flow <= 0:
            raise RuntimeError(f"edge ({i},{j}) has no flow to cancel")
        entry[2] = flow - 1
        self.forward[i][j] = d
        if entry[2] == 0:
            self.backward[j].pop(i, None)

    def augment(
        self,
        path_nodes: Sequence[int],
        alpha_min: float,
        settled_alpha: Dict[int, float],
    ) -> None:
        """Reverse the path's edges and update the potentials.

        ``path_nodes`` runs from ``S_NODE`` to ``T_NODE`` inclusive.
        ``settled_alpha`` maps every node settled by the Dijkstra run (with
        ``α ≤ alpha_min``) to its ``α``; their potentials are advanced
        (Algorithm 1 lines 8-9).
        """
        self.apply_path(path_nodes)
        for node, alpha in settled_alpha.items():
            delta = alpha_min - alpha
            if delta < 0:
                continue  # settled at exactly alpha_min under fp noise
            if node == S_NODE:
                self.tau_s += delta
            elif node == T_NODE:
                continue  # α == α_min by construction
            elif self.is_provider(node):
                self.q_tau[node] += delta
            else:
                self.p_tau[self.customer_index(node)] += delta

    @property
    def tau_max(self) -> float:
        """max{q_i.τ} — Theorem 1's certification slack.

        Only provider potentials matter: unseen edges all originate at
        providers, and customer potentials are non-negative (they only
        *help* the bound).
        """
        return max(self.q_tau) if self.q_tau else 0.0

    # ------------------------------------------------------------------
    # result extraction
    # ------------------------------------------------------------------
    def matching_flows(self) -> List[Tuple[int, int, float, int]]:
        """Positive-flow edges as (provider, customer, distance, units)."""
        return [
            (i, j, entry[0], entry[2])
            for (i, j), entry in self.edges.items()
            if entry[2] > 0
        ]

    def matching_pairs(self) -> List[Tuple[int, int, float]]:
        """Matched (provider, customer, distance) triples, one per unit."""
        out = []
        for i, j, d, units in self.matching_flows():
            out.extend([(i, j, d)] * units)
        return out

    def matching_cost(self) -> float:
        """Ψ(M): summed distances of matched units (Equation 1)."""
        return sum(
            entry[0] * entry[2] for entry in self.edges.values()
        )


def _nonneg(x: float) -> float:
    """Clamp float noise; a genuinely negative reduced cost is a bug."""
    if x < 0.0:
        if x < -1e-6:
            raise AssertionError(f"negative reduced cost {x}")
        return 0.0
    return x
