"""The CCA residual flow network with node potentials.

Node encoding (integers throughout, for heap speed):

* ``S_NODE = -1`` — source ``s``; edge ``(s, q_i)`` has cost 0, capacity
  ``q_i.k`` (provider capacity).
* provider ``i`` — node id ``i`` for ``0 <= i < nq``.
* customer ``j`` — node id ``nq + j``; edge ``(p_j, t)`` has cost 0 and
  capacity ``p_j.w`` (1 in the exact problem; the representative weight in
  CA's concise matching).
* ``T_NODE = -2`` — sink ``t``.

Bipartite edges ``(q_i, p_j)`` cost ``dist(q_i, p_j)``.  In the exact
problem their capacity is 1 (a pair appears at most once in ``M``); in CA's
concise matching a provider may serve several units of one representative,
so the capacity generalizes to ``min(q_i.k, p_j.w)``.  The residual
adjacency keeps an edge in ``forward[i]`` while it has spare capacity and in
``backward[j]`` while it carries flow (both, when partially used).  The
matching is the set of positive-flow bipartite edges (Section 2.2).

Potentials follow the paper's convention: the *reduced* cost of an edge is
``w(u, v) = dist(u, v) − u.τ + v.τ``, and after augmenting a shortest path
of cost ``α_min`` every node settled with ``α ≤ α_min`` gets
``τ := τ − α + α_min``.  Because only globally-certified shortest paths are
augmented (Theorem 1), the potentials remain feasible for the *complete*
bipartite edge set, so newly discovered edges always enter with non-negative
reduced cost.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

S_NODE = -1
T_NODE = -2


class NegativeReducedCostError(AssertionError):
    """A reduced cost came out genuinely negative.

    The potential invariant (Theorem 1) guarantees non-negative reduced
    costs as long as only certified shortest paths are augmented, so this
    error always indicates a solver bug — never bad user input (those
    raise :class:`ValueError` at construction time).  Subclasses
    ``AssertionError`` for backward compatibility with callers that treated
    the old bare assertion as the signal.
    """


class CCAFlowNetwork:
    """Residual network over a (sub)set of the bipartite edges.

    The network starts with *no* bipartite edges; incremental solvers add
    them via :meth:`add_edge` and SSPA adds the complete set.
    """

    def __init__(
        self,
        provider_capacities: Sequence[int],
        customer_weights: Sequence[int],
    ):
        if any(k < 0 for k in provider_capacities):
            raise ValueError("provider capacities must be non-negative")
        if any(w < 0 for w in customer_weights):
            raise ValueError("customer weights must be non-negative")
        self.nq = len(provider_capacities)
        self.np = len(customer_weights)
        self.q_cap = list(provider_capacities)
        self.p_cap = list(customer_weights)
        self.q_used = [0] * self.nq
        self.p_used = [0] * self.np
        self.q_tau = [0.0] * self.nq
        self.p_tau = [0.0] * self.np
        self.tau_s = 0.0
        # forward[i]: {j: dist} — edges with spare capacity.
        # backward[j]: {i: dist} — edges carrying flow (matched units).
        self.forward: List[Dict[int, float]] = [dict() for _ in range(self.nq)]
        self.backward: List[Dict[int, float]] = [dict() for _ in range(self.np)]
        # Canonical edge registry: (i, j) -> [distance, capacity, flow].
        self.edges: Dict[Tuple[int, int], List] = {}
        self.matched = 0
        self.augmentations = 0
        # Incrementally tracked aggregates (avoid O(nq) rescans on the
        # per-iteration certification path).  A zero-capacity provider is
        # full from the start.  ``full_providers`` holds their ids so
        # IDA's per-run key refresh walks only the full ones (order never
        # matters there: per-provider updates are independent and the
        # pending-edge heap orders by key, not push sequence).
        self.full_providers = {i for i, k in enumerate(self.q_cap) if k <= 0}
        self._tau_max = 0.0

    # ------------------------------------------------------------------
    # problem-level quantities
    # ------------------------------------------------------------------
    @property
    def gamma(self) -> int:
        """Required matching size γ = min(Σ p.w, Σ q.k)."""
        return min(sum(self.p_cap), sum(self.q_cap))

    def provider_node(self, i: int) -> int:
        return i

    def customer_node(self, j: int) -> int:
        return self.nq + j

    def is_provider(self, node: int) -> bool:
        return 0 <= node < self.nq

    def is_customer(self, node: int) -> bool:
        return node >= self.nq

    def customer_index(self, node: int) -> int:
        return node - self.nq

    # ------------------------------------------------------------------
    # state predicates (Definitions 2 and 3)
    # ------------------------------------------------------------------
    def provider_full(self, i: int) -> bool:
        """Definition 2: e(s, q_i) used q_i.k times."""
        return self.q_used[i] >= self.q_cap[i]

    def customer_full(self, j: int) -> bool:
        """Definition 3 (generalized to weights): e(p_j, t) saturated."""
        return self.p_used[j] >= self.p_cap[j]

    def any_provider_full(self) -> bool:
        """O(1): reads the full-provider set maintained by
        :meth:`apply_path` / :meth:`set_provider_capacity`."""
        return bool(self.full_providers)

    @property
    def saturated_providers(self) -> int:
        """How many providers are currently full (Definition 2)."""
        return len(self.full_providers)

    # ------------------------------------------------------------------
    # Esub maintenance
    # ------------------------------------------------------------------
    def add_edge(self, i: int, j: int, distance: float) -> bool:
        """Insert bipartite edge (q_i, p_j) into Esub.

        Capacity is ``min(q_i.k, p_j.w)``; zero-capacity edges are useless
        and rejected.  Returns False if the edge is already present.
        """
        if distance < 0:
            raise ValueError("edge length must be non-negative")
        if (i, j) in self.edges:
            return False
        capacity = min(self.q_cap[i], self.p_cap[j])
        if capacity == 0:
            return False
        self.edges[(i, j)] = [distance, capacity, 0]
        self.forward[i][j] = distance
        return True

    def add_edges(self, providers, customers, distances) -> int:
        """Bulk-insert bipartite edges; returns how many were new.

        The reference implementation is the literal per-edge loop, so its
        semantics — first occurrence wins on duplicates, zero-capacity
        edges rejected, insertion order preserved — *define* the contract
        the array backend's vectorized override must reproduce
        bit-identically (``tests/property/test_bulk_edges.py``).

        ``providers`` may be a scalar (one provider, many customers — the
        shape RIA's range supply and SSPA's row build produce) or a
        sequence aligned with ``customers``/``distances``.
        """
        inserted = 0
        if _is_scalar(providers):
            if len(customers) != len(distances):
                raise ValueError("edge column lengths differ")
            i = int(providers)
            for j, d in zip(customers, distances, strict=False):
                inserted += self.add_edge(i, int(j), float(d))
            return inserted
        if not (len(providers) == len(customers) == len(distances)):
            raise ValueError("edge column lengths differ")
        for i, j, d in zip(providers, customers, distances, strict=False):
            inserted += self.add_edge(int(i), int(j), float(d))
        return inserted

    def has_edge(self, i: int, j: int) -> bool:
        return (i, j) in self.edges

    def edge_flow(self, i: int, j: int) -> int:
        entry = self.edges.get((i, j))
        return 0 if entry is None else entry[2]

    def edge_residual(self, i: int, j: int) -> int:
        entry = self.edges.get((i, j))
        return 0 if entry is None else entry[1] - entry[2]

    @property
    def edge_count(self) -> int:
        """|Esub| — the paper's memory metric (distinct discovered edges)."""
        return len(self.edges)

    # ------------------------------------------------------------------
    # reduced costs (the Dijkstra adjacency)
    # ------------------------------------------------------------------
    def reduced_cost_sq(self, i: int) -> float:
        """w(s, q_i) = 0 − τ_s + τ_qi."""
        return _nonneg(self.q_tau[i] - self.tau_s)

    def reduced_cost_qp(self, i: int, j: int, distance: float) -> float:
        """w(q_i, p_j) = dist − τ_qi + τ_pj."""
        return _nonneg(distance - self.q_tau[i] + self.p_tau[j])

    def reduced_cost_pq(self, j: int, i: int, distance: float) -> float:
        """w(p_j, q_i) = −dist − τ_pj + τ_qi (residual reverse edge)."""
        return _nonneg(-distance - self.p_tau[j] + self.q_tau[i])

    def reduced_cost_pt(self, j: int) -> float:
        """w(p_j, t) = 0 − τ_pj; always 0 for non-full customers."""
        return _nonneg(-self.p_tau[j])

    def out_edges(self, node: int) -> Iterable[Tuple[int, float]]:
        """Residual out-edges of ``node`` as (target, reduced_cost).

        Edges out of ``s`` and into ``t`` are produced by the Dijkstra
        driver itself (they depend on residual capacities tracked here).
        """
        if self.is_provider(node):
            i = node
            q_tau = self.q_tau[i]
            p_tau = self.p_tau
            nq = self.nq
            for j, d in self.forward[i].items():
                yield nq + j, _nonneg(d - q_tau + p_tau[j])
        else:
            j = self.customer_index(node)
            p_tau = self.p_tau[j]
            for i, d in self.backward[j].items():
                yield i, _nonneg(-d - p_tau + self.q_tau[i])

    def source_edges(self) -> Iterable[Tuple[int, float]]:
        """(q_i, w(s, q_i)) for every provider with residual capacity."""
        tau_s = self.tau_s
        for i in range(self.nq):
            if self.q_used[i] < self.q_cap[i]:
                yield i, _nonneg(self.q_tau[i] - tau_s)

    def sink_edge_open(self, j: int) -> bool:
        return self.p_used[j] < self.p_cap[j]

    # ------------------------------------------------------------------
    # augmentation (Algorithm 1 lines 4-11)
    # ------------------------------------------------------------------
    def apply_path(self, path_nodes: Sequence[int]) -> None:
        """Push one unit of flow along an s→t path (reversing residuals).

        This is the flow half of an augmentation; :meth:`augment` adds the
        potential update.  IDA's Theorem-2 fast path calls this directly
        and maintains potentials itself via lazy offsets.
        """
        if path_nodes[0] != S_NODE or path_nodes[-1] != T_NODE:
            raise ValueError("augmenting path must run from s to t")
        for u, v in zip(path_nodes, path_nodes[1:], strict=False):
            if u == S_NODE:
                self.q_used[v] += 1
                if self.q_used[v] > self.q_cap[v]:
                    raise RuntimeError(f"provider {v} over capacity")
                if self.q_used[v] == self.q_cap[v]:
                    self.full_providers.add(v)
            elif v == T_NODE:
                j = self.customer_index(u)
                self.p_used[j] += 1
                if self.p_used[j] > self.p_cap[j]:
                    raise RuntimeError(f"customer {j} over capacity")
            elif self.is_provider(u):
                self._push_unit(u, self.customer_index(v))
            else:
                self._pull_unit(v, self.customer_index(u))
        self.matched += 1
        self.augmentations += 1

    def _push_unit(self, i: int, j: int) -> None:
        entry = self.edges[(i, j)]
        d, capacity, flow = entry
        if flow >= capacity:
            raise RuntimeError(f"edge ({i},{j}) over capacity")
        entry[2] = flow + 1
        self.backward[j][i] = d
        if entry[2] >= capacity:
            self.forward[i].pop(j, None)

    def _pull_unit(self, i: int, j: int) -> None:
        entry = self.edges[(i, j)]
        d, _, flow = entry
        if flow <= 0:
            raise RuntimeError(f"edge ({i},{j}) has no flow to cancel")
        entry[2] = flow - 1
        self.forward[i][j] = d
        if entry[2] == 0:
            self.backward[j].pop(i, None)

    def augment(
        self,
        path_nodes: Sequence[int],
        alpha_min: float,
        settled_alpha: Dict[int, float],
    ) -> None:
        """Reverse the path's edges and update the potentials.

        ``path_nodes`` runs from ``S_NODE`` to ``T_NODE`` inclusive.
        ``settled_alpha`` maps every node settled by the Dijkstra run (with
        ``α ≤ alpha_min``) to its ``α``; their potentials are advanced
        (Algorithm 1 lines 8-9).
        """
        self.apply_path(path_nodes)
        for node, alpha in settled_alpha.items():
            delta = alpha_min - alpha
            if delta < 0:
                continue  # settled at exactly alpha_min under fp noise
            if node == S_NODE:
                self.tau_s += delta
            elif node == T_NODE:
                continue  # α == α_min by construction
            elif self.is_provider(node):
                tau = self.q_tau[node] + delta
                self.q_tau[node] = tau
                if tau > self._tau_max:
                    self._tau_max = tau
            else:
                self.p_tau[self.customer_index(node)] += delta

    def augment_with_state(self, path_nodes, alpha_min, state) -> None:
        """Augment using a Dijkstra state's settled set directly.

        Functionally identical to ``augment(path, α_min,
        state.settled_alpha_for_update())``; the array backend overrides
        this with a vectorized potential update, which is why the engine
        calls this seam instead of building the settled dict itself.
        """
        self.augment(path_nodes, alpha_min, state.settled_alpha_for_update())

    @property
    def tau_max(self) -> float:
        """max{q_i.τ} — Theorem 1's certification slack.

        Only provider potentials matter: unseen edges all originate at
        providers, and customer potentials are non-negative (they only
        *help* the bound).  Tracked incrementally (potentials only move
        through :meth:`augment`, :meth:`advance_source_and_providers`, and
        :meth:`admit_customer`, all of which maintain the cache) instead
        of rescanning ``q_tau`` on every certification check.
        """
        return self._tau_max

    def advance_source_and_providers(self, offset: float) -> None:
        """Uniformly advance τ_s and every provider potential by
        ``offset`` ≥ 0 (IDA's fast-phase materialization)."""
        if offset == 0.0:
            return
        self.tau_s += offset
        q_tau = self.q_tau
        for i in range(self.nq):
            q_tau[i] += offset
        self._tau_max += offset

    def advance_customer_potentials(self, offsets) -> None:
        """Advance selected customer potentials by per-customer deltas
        (``{j: delta}``) — the second half of IDA's fast-phase
        materialization.  Going through this method (instead of writing
        ``p_tau`` directly) lets the array backend keep its scalar-path
        potential mirrors coherent."""
        for j, delta in offsets.items():
            self.p_tau[j] += delta

    def tau_lists(self):
        """(q_tau, p_tau) as cheap positionally-indexable sequences.

        The reference backend already stores potentials in Python lists;
        the array backend overrides this to return its list mirrors so
        scalar consumers (IDA's key refresh, narrow relaxations) avoid
        per-element NumPy scalar reads.
        """
        return self.q_tau, self.p_tau

    # ------------------------------------------------------------------
    # session deltas (warm-start support; see repro.core.session)
    # ------------------------------------------------------------------
    def provider_potential_floors(self) -> List[float]:
        """Per-provider lower bound on τ_q imposed by flow-carrying edges.

        A residual backward edge (p → q) for flow on (q, p) has reduced
        cost ``−d − τ_p + τ_q``, so feasibility pins ``τ_q ≥ d + τ_p``
        over q's matched customers.  Providers with no flow are unpinned
        (floor 0; τ values below 0 are never needed since distances are
        non-negative).
        """
        floors = [0.0] * self.nq
        for (i, j), entry in self.edges.items():
            if entry[2] > 0:
                pin = entry[0] + self.p_tau[j]
                if pin > floors[i]:
                    floors[i] = pin
        return floors

    def admit_customer(self, weight, provider_distances):
        """Warm-admit a new customer; returns its node id, or None when
        the current matching can no longer be proven optimal.

        The new node enters at τ = 0, so every future edge (q_i, p_new)
        must satisfy ``d_i − τ_qi ≥ 0``.  Providers with ``τ_q > d_i``
        get lowered to exactly ``d_i`` — legal only while no flow-carrying
        edge pins τ_q above it (:meth:`provider_potential_floors`).  A
        pinned provider means the residual graph would contain a negative
        cycle through the new customer (the provider should be serving it
        instead of a farther matched customer): the existing flow is no
        longer minimum-cost for its value and the caller must re-solve
        from scratch.
        """
        if weight < 0:
            raise ValueError("customer weight must be non-negative")
        need = [i for i in range(self.nq) if self.q_tau[i] > provider_distances[i]]
        if need:
            floors = self.provider_potential_floors()
            for i in need:
                if floors[i] > provider_distances[i] + 1e-9:
                    return None  # negative cycle: warm start unsound
            for i in need:
                # float() keeps the potential list homogeneous when the
                # caller hands a NumPy distance column (same value).
                self.q_tau[i] = float(provider_distances[i])
            self._tau_max = max(self.q_tau) if self.q_tau else 0.0
            if self.q_tau:
                self.tau_s = min(self.tau_s, min(self.q_tau))
        return self.add_customer_node(weight)

    def add_customer_node(self, weight: int) -> int:
        """Append a customer node with τ = 0 and no edges; returns its id.

        Callers must ensure the zero potential is feasible against every
        provider first (see :meth:`admit_customer`).
        """
        if weight < 0:
            raise ValueError("customer weight must be non-negative")
        j = self.np
        self.np += 1
        self.p_cap.append(weight)
        self.p_used.append(0)
        self.p_tau.append(0.0)
        self.backward.append(dict())
        return j

    def can_remove_customer_warm(self, j: int) -> bool:
        """Is removing customer ``j`` warm-start safe?

        Releasing flow reopens the residual (s, q_i) edge of every
        saturated provider that served ``j``.  A provider that saturated
        early has a *stale* potential (τ_q stops advancing with τ_s once
        the source edge closes), so the reopened edge would carry reduced
        cost ``τ_q − τ_s < 0`` — a negative-cycle certificate violation:
        the remaining flow may no longer be minimum-cost for its value
        and the caller must re-solve from scratch.
        """
        for (i, _j), entry in self.edges.items():
            if _j != j or entry[2] <= 0:
                continue
            if (self.q_used[i] >= self.q_cap[i] and self.q_tau[i] < self.tau_s - 1e-9):
                return False
        return True

    def remove_customer_node(self, j: int) -> int:
        """Cancel customer ``j``'s flow, drop its edges, zero its weight.

        The node id stays allocated (a tombstone) so provider/customer ids
        remain positional.  Callers wanting warm-start semantics must
        check :meth:`can_remove_customer_warm` first — releasing flow can
        reopen source edges with negative reduced cost (see there).
        Returns the number of matched units released.
        """
        released = 0
        incident = [key for key in self.edges if key[1] == j]
        for key in incident:
            i, _ = key
            flow = self.edges[key][2]
            if flow > 0:
                if self.q_used[i] == self.q_cap[i]:
                    self.full_providers.discard(i)
                self.q_used[i] -= flow
                self.matched -= flow
                released += flow
            del self.edges[key]
            self.forward[i].pop(j, None)
        self.backward[j].clear()
        self.p_used[j] = 0
        self.p_cap[j] = 0
        return released

    def can_widen_provider_warm(self, i: int, capacity: int) -> bool:
        """Is raising provider ``i``'s capacity warm-start safe?

        Widening *reopens* residual edges, and a reopened edge is only
        safe while its reduced cost is still non-negative:

        * the (s, q_i) edge, if ``i`` is currently saturated — unsafe
          when τ_qi went stale (``τ_qi < τ_s``; potentials stop tracking
          the source once the edge closes);
        * any saturated flow-carrying bipartite edge whose ``min(k, w)``
          cap lifts (weighted customers only) — unsafe when
          ``d − τ_q + τ_p < 0``, which is common for matched edges.

        When this returns False the existing matching may no longer be
        optimal for its value and the caller must re-solve from scratch.
        """
        if capacity <= self.q_cap[i]:
            return True  # shrinking closes edges; never breaks feasibility
        if (self.q_used[i] >= self.q_cap[i] and self.q_tau[i] < self.tau_s - 1e-9):
            return False
        for (qi, j), entry in self.edges.items():
            if qi != i:
                continue
            d, cap, flow = entry
            if (
                flow > 0
                and flow >= cap
                and min(capacity, self.p_cap[j]) > cap
                and d - self.q_tau[i] + self.p_tau[j] < -1e-9
            ):
                return False
        return True

    def set_provider_capacity(self, i: int, capacity: int) -> None:
        """Change provider ``i``'s capacity to ``capacity`` ≥ ``q_used[i]``.

        Increases widen the residual (s, q_i) edge and lift the per-edge
        capacities ``min(k, w)`` of ``i``'s bipartite edges; callers
        wanting warm-start semantics must check
        :meth:`can_widen_provider_warm` first (reopened edges can carry
        negative reduced cost).  Decreases below current usage would
        require cancelling flow along min-cost paths; callers must
        re-solve from scratch instead (the Matcher falls back to a cold
        solve).
        """
        if capacity < self.q_used[i]:
            raise ValueError(
                f"capacity {capacity} below current usage {self.q_used[i]}; "
                "cold re-solve required"
            )
        self.q_cap[i] = capacity
        now_saturated = self.q_used[i] >= capacity
        if now_saturated:
            self.full_providers.add(i)
        else:
            self.full_providers.discard(i)
        # Re-derive per-edge capacities; a lifted cap can resurrect a
        # saturated edge into the forward residual adjacency.
        for (qi, j), entry in self.edges.items():
            if qi != i:
                continue
            new_cap = max(entry[2], min(capacity, self.p_cap[j]))
            entry[1] = new_cap
            if entry[2] < new_cap:
                self.forward[i].setdefault(j, entry[0])
            else:
                self.forward[i].pop(j, None)

    # ------------------------------------------------------------------
    # result extraction
    # ------------------------------------------------------------------
    def edge_triples(self) -> List[Tuple[int, int, float]]:
        """Every Esub edge as (provider, customer, distance), in insertion
        order — the input a kernel replay needs to rebuild the subgraph."""
        return [(i, j, entry[0]) for (i, j), entry in self.edges.items()]

    def matching_flows(self) -> List[Tuple[int, int, float, int]]:
        """Positive-flow edges as (provider, customer, distance, units)."""
        return [
            (i, j, entry[0], entry[2])
            for (i, j), entry in self.edges.items()
            if entry[2] > 0
        ]

    def matching_pairs(self) -> List[Tuple[int, int, float]]:
        """Matched (provider, customer, distance) triples, one per unit."""
        out = []
        for i, j, d, units in self.matching_flows():
            out.extend([(i, j, d)] * units)
        return out

    def matching_cost(self) -> float:
        """Ψ(M): summed distances of matched units (Equation 1)."""
        return sum(entry[0] * entry[2] for entry in self.edges.values())

    def spare_capacity(self) -> int:
        """Total unused provider capacity Σ (q.k − used) — the headroom the
        sharded engine's reconciliation pass checks before moving a
        customer into this network's shard."""
        return sum(self.q_cap) - sum(self.q_used)


def _nonneg(x: float) -> float:
    """Clamp float noise; a genuinely negative reduced cost is a bug."""
    if x < 0.0:
        if x < -1e-6:
            raise NegativeReducedCostError(f"negative reduced cost {x}")
        return 0.0
    return x


def _is_scalar(value) -> bool:
    """One provider id (broadcast over the customer column) or a column?"""
    return not hasattr(value, "__len__")
