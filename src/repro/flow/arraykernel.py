"""Array-backed flow kernel: columnar residual network + vectorized
Dijkstra relaxation.

The reference backend (:mod:`repro.flow.graph` + :mod:`repro.flow.dijkstra`)
stores the residual bipartite graph as dict-of-dicts adjacency and relaxes
edges one Python bytecode loop iteration at a time.  That is the right
substrate for tracing the paper's algorithms, but the wrong one for the
solver's innermost loop: at Figure-10 scales a single Dijkstra run touches
thousands of edges, and per-edge interpreter overhead dominates.

This module keeps the exact same *semantics* behind the backend seam
(:mod:`repro.flow.backend`) while putting the hot data in flat typed
arrays:

* node potentials ``q_tau``/``p_tau`` are ``float64`` vectors, so a whole
  adjacency's reduced costs evaluate as a handful of vector operations;
* each provider's forward-residual adjacency lives in *compact* parallel
  arrays (Dijkstra target index + distance) holding exactly the open
  (``flow < cap``) edges — saturation swap-removes an edge, cancellation
  re-appends it, mirroring the reference backend's dict membership — so
  a wide relaxation is one masked compare-and-update over contiguous
  memory;
* :class:`ArrayDijkstraState` keeps labels in NumPy vectors; the
  potential update after an augmentation
  (:meth:`ArrayFlowNetwork.augment_with_state`) is applied straight off
  the settled-label arrays, without a per-node Python loop.

Two deliberate hybrid choices keep the kernel fast where arrays lose:
scalar indexing into NumPy arrays costs ~4x a CPython list access, so
(1) narrow adjacencies (fewer than :data:`SCALAR_FAN_LIMIT` edges — e.g.
customers' backward fans, or provider fans late in an incremental solve)
are relaxed by a plain Python loop over a tuple mirror of the same
compact adjacency, and (2) cold columnar data (edge ``src``/``dst``/
``dist``/``cap``/``flow``, node capacities and usage counters) stays in
Python lists.

Floating-point note: every reduced cost is evaluated with the same
operation order as the reference backend (``(d − τ_q) + τ_p``, clamp,
then ``+ base``), so labels — and therefore matchings, costs, and |Esub| —
are bit-identical between backends.  The equivalence suite asserts this.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

import numpy as np

from repro.flow.dijkstra import DijkstraState, INF, _OFF
from repro.flow.graph import (
    CCAFlowNetwork,
    NegativeReducedCostError,
    S_NODE,
)

_INITIAL_FAN = 8

# Below this fan-out the Python-loop relaxation beats NumPy's fixed
# per-call overhead (measured crossover ~30-60 edges on CPython 3.11).
SCALAR_FAN_LIMIT = 48


def _grown(arr: np.ndarray, needed: int) -> np.ndarray:
    """Return ``arr`` or a doubled-capacity copy that fits ``needed``."""
    if needed <= arr.size:
        return arr
    new_size = max(needed, arr.size * 2, _INITIAL_FAN)
    out = np.empty(new_size, dtype=arr.dtype)
    out[: arr.size] = arr
    return out


class ArrayFlowNetwork(CCAFlowNetwork):
    """Columnar drop-in for :class:`CCAFlowNetwork`.

    Shares all pure graph logic (node addressing, augmentation paths,
    result extraction) with the reference network and overrides only the
    storage-touching primitives.
    """

    def __init__(
        self,
        provider_capacities: Sequence[int],
        customer_weights: Sequence[int],
    ):
        q_cap = [int(k) for k in provider_capacities]
        p_cap = [int(w) for w in customer_weights]
        if any(k < 0 for k in q_cap):
            raise ValueError("provider capacities must be non-negative")
        if any(w < 0 for w in p_cap):
            raise ValueError("customer weights must be non-negative")
        self.nq = len(q_cap)
        self.np = len(p_cap)
        self.q_cap = q_cap
        self.p_cap = p_cap
        self.q_used = [0] * self.nq
        self.p_used = [0] * self.np
        # Hot node data: potentials as vectors (bulk-read by relaxation),
        # plus the providers-with-residual-capacity mask for the source
        # relaxation (maintained incrementally).
        self.q_tau = np.zeros(self.nq, dtype=np.float64)
        self.p_tau = np.zeros(self.np, dtype=np.float64)
        self.q_open = np.array([k > 0 for k in q_cap], dtype=bool)
        self.tau_s = 0.0
        # Edge columns: append-only Python lists (touched one edge at a
        # time; ids are stable, removed edges become tombstones).
        self.e_src: List[int] = []
        self.e_dst: List[int] = []
        self.e_dist: List[float] = []
        self.e_cap: List[int] = []
        self.e_flow: List[int] = []
        self.e_dead: List[bool] = []
        # Compact per-provider forward-residual adjacency: parallel
        # (target, distance) arrays + a Python tuple mirror
        # (target, customer, distance, eid) for the scalar path.
        # Membership ⇔ the edge is open (flow < cap), exactly like the
        # reference backend's forward dicts; _e_pos[eid] is the edge's
        # position in its provider's adjacency (-1 when saturated/dead).
        self._fwd_tgt: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(self.nq)
        ]
        self._fwd_dist: List[np.ndarray] = [
            np.empty(0, dtype=np.float64) for _ in range(self.nq)
        ]
        self._fwd_py: List[List[Tuple[int, int, float, int]]] = [
            [] for _ in range(self.nq)
        ]
        self._fwd_n: List[int] = [0] * self.nq
        self._e_pos: List[int] = []
        # Per-customer backward adjacency mirrored as Python-native
        # [eid, provider, distance] entries (flow-carrying edges only,
        # like the reference backend's dicts): backward fans are tiny.
        self._bwd: List[List[List]] = [[] for _ in range(self.np)]
        self._eid = {}  # (i, j) -> edge id
        self._live = 0
        self.matched = 0
        self.augmentations = 0
        self._saturated = sum(1 for k in q_cap if k <= 0)
        self._tau_max = 0.0

    # ------------------------------------------------------------------
    # compact forward adjacency maintenance
    # ------------------------------------------------------------------
    def _fwd_append(self, i: int, eid: int, j: int, distance: float) -> None:
        n = self._fwd_n[i]
        if n >= self._fwd_tgt[i].size:
            self._fwd_tgt[i] = _grown(self._fwd_tgt[i], n + 1)
            self._fwd_dist[i] = _grown(self._fwd_dist[i], n + 1)
        tgt = self.nq + j + _OFF
        self._fwd_tgt[i][n] = tgt
        self._fwd_dist[i][n] = distance
        self._fwd_py[i].append((tgt, j, distance, eid))
        self._e_pos[eid] = n
        self._fwd_n[i] = n + 1

    def _fwd_remove(self, i: int, eid: int) -> None:
        pos = self._e_pos[eid]
        if pos < 0:
            return
        n = self._fwd_n[i] - 1
        py = self._fwd_py[i]
        if pos != n:
            moved = py[n]
            py[pos] = moved
            self._e_pos[moved[3]] = pos
            self._fwd_tgt[i][pos] = self._fwd_tgt[i][n]
            self._fwd_dist[i][pos] = self._fwd_dist[i][n]
        py.pop()
        self._fwd_n[i] = n
        self._e_pos[eid] = -1

    # ------------------------------------------------------------------
    # Esub maintenance
    # ------------------------------------------------------------------
    def add_edge(self, i: int, j: int, distance: float) -> bool:
        if distance < 0:
            raise ValueError("edge length must be non-negative")
        i = int(i)
        j = int(j)
        if (i, j) in self._eid:
            return False
        capacity = min(self.q_cap[i], self.p_cap[j])
        if capacity == 0:
            return False
        distance = float(distance)
        eid = len(self.e_src)
        self.e_src.append(i)
        self.e_dst.append(j)
        self.e_dist.append(distance)
        self.e_cap.append(capacity)
        self.e_flow.append(0)
        self.e_dead.append(False)
        self._e_pos.append(-1)
        self._eid[(i, j)] = eid
        self._live += 1
        self._fwd_append(i, eid, j, distance)
        return True

    @property
    def n_edges(self) -> int:
        """Total edge slots ever allocated (including dead tombstones)."""
        return len(self.e_src)

    def has_edge(self, i: int, j: int) -> bool:
        return (int(i), int(j)) in self._eid

    def edge_flow(self, i: int, j: int) -> int:
        eid = self._eid.get((int(i), int(j)))
        return 0 if eid is None else self.e_flow[eid]

    def edge_residual(self, i: int, j: int) -> int:
        eid = self._eid.get((int(i), int(j)))
        if eid is None:
            return 0
        return self.e_cap[eid] - self.e_flow[eid]

    @property
    def edge_count(self) -> int:
        return self._live

    def out_edges(self, node: int):
        """Residual out-edges as (target, reduced_cost) — API parity with
        the reference network (the array Dijkstra inlines this)."""
        from repro.flow.graph import _nonneg

        if self.is_provider(node):
            i = int(node)
            q_tau = float(self.q_tau[i])
            for tgt, j, d, _eid in self._fwd_py[i]:
                yield tgt - _OFF, _nonneg(d - q_tau + float(self.p_tau[j]))
        else:
            j = self.customer_index(node)
            p_tau = float(self.p_tau[j])
            for _, i, d in self._bwd[j]:
                yield i, _nonneg(-d - p_tau + float(self.q_tau[i]))

    # ------------------------------------------------------------------
    # flow pushes (called from the inherited apply_path)
    # ------------------------------------------------------------------
    def apply_path(self, path_nodes: Sequence[int]) -> None:
        # Same as the reference implementation, plus q_open maintenance
        # for the vectorized source relaxation.
        super().apply_path(path_nodes)
        first = int(path_nodes[1])
        if self.q_used[first] >= self.q_cap[first]:
            self.q_open[first] = False

    def _push_unit(self, i: int, j: int) -> None:
        i = int(i)
        j = int(j)
        eid = self._eid[(i, j)]
        flow = self.e_flow[eid] + 1
        if flow > self.e_cap[eid]:
            raise RuntimeError(f"edge ({i},{j}) over capacity")
        self.e_flow[eid] = flow
        if flow >= self.e_cap[eid]:
            self._fwd_remove(i, eid)
        if flow == 1:
            self._bwd[j].append([eid, i, self.e_dist[eid]])

    def _pull_unit(self, i: int, j: int) -> None:
        i = int(i)
        j = int(j)
        eid = self._eid[(i, j)]
        flow = self.e_flow[eid] - 1
        if flow < 0:
            raise RuntimeError(f"edge ({i},{j}) has no flow to cancel")
        self.e_flow[eid] = flow
        if self._e_pos[eid] < 0:
            self._fwd_append(i, eid, j, self.e_dist[eid])
        if flow == 0:
            entries = self._bwd[j]
            for k, entry in enumerate(entries):
                if entry[0] == eid:
                    del entries[k]
                    break

    # ------------------------------------------------------------------
    # potentials (vectorized overrides)
    # ------------------------------------------------------------------
    def augment_with_state(self, path_nodes, alpha_min, state) -> None:
        """Vectorized Algorithm-1 potential update straight off the
        Dijkstra state's label arrays (no per-node Python loop)."""
        if not isinstance(state, ArrayDijkstraState):
            self.augment(
                path_nodes, alpha_min, state.settled_alpha_for_update()
            )
            return
        self.apply_path(path_nodes)
        idxs = np.nonzero(state._settled)[0]
        deltas = alpha_min - state._alpha[idxs]
        keep = deltas > 0.0
        idxs = idxs[keep]
        deltas = deltas[keep]
        if state._settled[S_NODE + _OFF] and alpha_min > 0.0:
            # s settles at α = 0, so its delta is α_min itself.
            self.tau_s += alpha_min
        nq = self.nq
        prov = (idxs >= _OFF) & (idxs < _OFF + nq)
        if prov.any():
            pids = idxs[prov] - _OFF
            self.q_tau[pids] += deltas[prov]
            top = float(self.q_tau[pids].max())
            if top > self._tau_max:
                self._tau_max = top
        cust = idxs >= _OFF + nq
        if cust.any():
            self.p_tau[idxs[cust] - (_OFF + nq)] += deltas[cust]

    def advance_source_and_providers(self, offset: float) -> None:
        if offset == 0.0:
            return
        self.tau_s += offset
        self.q_tau += offset
        self._tau_max += offset

    # ------------------------------------------------------------------
    # session deltas
    # ------------------------------------------------------------------
    def provider_potential_floors(self) -> List[float]:
        floors = [0.0] * self.nq
        p_tau = self.p_tau
        for eid, flow in enumerate(self.e_flow):
            if flow > 0:
                pin = self.e_dist[eid] + float(p_tau[self.e_dst[eid]])
                i = self.e_src[eid]
                if pin > floors[i]:
                    floors[i] = pin
        return floors

    def admit_customer(self, weight, provider_distances):
        if weight < 0:
            raise ValueError("customer weight must be non-negative")
        d = np.asarray(provider_distances, dtype=np.float64)
        need = self.q_tau > d
        if need.any():
            floors = np.asarray(self.provider_potential_floors())
            if (floors[need] > d[need] + 1e-9).any():
                return None  # negative cycle: warm start unsound
            self.q_tau[need] = d[need]
            self._tau_max = float(self.q_tau.max()) if self.nq else 0.0
            if self.nq:
                self.tau_s = min(self.tau_s, float(self.q_tau.min()))
        return self.add_customer_node(weight)

    def add_customer_node(self, weight: int) -> int:
        if weight < 0:
            raise ValueError("customer weight must be non-negative")
        j = self.np
        self.np += 1
        self.p_cap.append(int(weight))
        self.p_used.append(0)
        self.p_tau = np.append(self.p_tau, 0.0)
        self._bwd.append([])
        return j

    def can_remove_customer_warm(self, j: int) -> bool:
        j = int(j)
        tau_s = self.tau_s - 1e-9
        for eid, _i, _d in self._bwd[j]:
            i = self.e_src[eid]
            if self.q_used[i] >= self.q_cap[i] and self.q_tau[i] < tau_s:
                return False
        return True

    def remove_customer_node(self, j: int) -> int:
        j = int(j)
        released = 0
        for eid, dst in enumerate(self.e_dst):
            if dst != j or self.e_dead[eid]:
                continue
            i = self.e_src[eid]
            flow = self.e_flow[eid]
            if flow > 0:
                if self.q_used[i] == self.q_cap[i]:
                    self._saturated -= 1
                    self.q_open[i] = True
                self.q_used[i] -= flow
                self.matched -= flow
                released += flow
            self._fwd_remove(i, eid)
            self.e_flow[eid] = 0
            self.e_cap[eid] = 0
            self.e_dead[eid] = True
            del self._eid[(i, j)]
            self._live -= 1
        self._bwd[j] = []
        self.p_used[j] = 0
        self.p_cap[j] = 0
        return released

    def can_widen_provider_warm(self, i: int, capacity: int) -> bool:
        i = int(i)
        capacity = int(capacity)
        if capacity <= self.q_cap[i]:
            return True  # shrinking closes edges; never breaks feasibility
        if self.q_used[i] >= self.q_cap[i] and float(
            self.q_tau[i]
        ) < self.tau_s - 1e-9:
            return False
        q_tau_i = float(self.q_tau[i])
        for eid, src in enumerate(self.e_src):
            if src != i or self.e_dead[eid]:
                continue
            flow = self.e_flow[eid]
            cap = self.e_cap[eid]
            j = self.e_dst[eid]
            if (
                flow > 0
                and flow >= cap
                and min(capacity, self.p_cap[j]) > cap
                and self.e_dist[eid] - q_tau_i + float(self.p_tau[j])
                < -1e-9
            ):
                return False
        return True

    def set_provider_capacity(self, i: int, capacity: int) -> None:
        i = int(i)
        capacity = int(capacity)
        if capacity < self.q_used[i]:
            raise ValueError(
                f"capacity {capacity} below current usage "
                f"{self.q_used[i]}; cold re-solve required"
            )
        was_saturated = self.q_used[i] >= self.q_cap[i]
        self.q_cap[i] = capacity
        now_saturated = self.q_used[i] >= capacity
        self._saturated += int(now_saturated) - int(was_saturated)
        self.q_open[i] = not now_saturated
        for eid, src in enumerate(self.e_src):
            if src != i or self.e_dead[eid]:
                continue
            flow = self.e_flow[eid]
            new_cap = max(flow, min(capacity, self.p_cap[self.e_dst[eid]]))
            self.e_cap[eid] = new_cap
            if flow < new_cap:
                if self._e_pos[eid] < 0:
                    self._fwd_append(i, eid, self.e_dst[eid], self.e_dist[eid])
            elif self._e_pos[eid] >= 0:
                self._fwd_remove(i, eid)

    # ------------------------------------------------------------------
    # result extraction
    # ------------------------------------------------------------------
    def edge_triples(self) -> List[Tuple[int, int, float]]:
        return [
            (self.e_src[eid], self.e_dst[eid], self.e_dist[eid])
            for eid in range(len(self.e_src))
            if not self.e_dead[eid]
        ]

    def matching_flows(self) -> List[Tuple[int, int, float, int]]:
        return [
            (self.e_src[eid], self.e_dst[eid], self.e_dist[eid], flow)
            for eid, flow in enumerate(self.e_flow)
            if flow > 0
        ]

    def matching_cost(self) -> float:
        # Sequential sum in edge-insertion order so the float result is
        # bit-identical to the reference backend's.
        total = 0.0
        for eid, flow in enumerate(self.e_flow):
            total += self.e_dist[eid] * flow
        return total

    # spare_capacity() is inherited from CCAFlowNetwork: q_cap/q_used are
    # plain lists in both kernels, so the base accounting applies as-is.


class ArrayDijkstraState(DijkstraState):
    """Vectorized Dijkstra over :class:`ArrayFlowNetwork` columns.

    Inherits path extraction and resumption semantics from
    :class:`DijkstraState`; replaces wide relaxations with masked array
    updates (narrow ones stay scalar — see the module docstring).

    Labels are kept in *two* synchronized representations: NumPy vectors
    ``_alpha``/``_settled`` for the gathers in the vectorized relaxation
    and the vectorized potential update, and Python lists
    ``_alpha_py``/``_settled_py`` for the scalar hot spots (the pop loop
    and narrow relaxations), where a list read is ~4x cheaper than a
    NumPy scalar read.  Every write goes through both; the improvement
    loops already iterate per improved node for the heap pushes, so the
    mirror writes ride along at negligible cost.
    """

    __slots__ = ("_alpha_py", "_settled_py")

    def __init__(self, net: ArrayFlowNetwork):
        self.net = net
        size = net.nq + net.np + _OFF
        self._alpha = np.full(size, INF, dtype=np.float64)
        self._alpha_py = [INF] * size
        self._prev = [-3] * size
        self._settled = np.zeros(size, dtype=bool)
        self._settled_py = [False] * size
        self._settled_order = []
        self._heap = []
        self.pops = 0
        self._alpha[S_NODE + _OFF] = 0.0
        self._alpha_py[S_NODE + _OFF] = 0.0
        heapq.heappush(self._heap, (0.0, S_NODE + _OFF))

    # ------------------------------------------------------------------
    # label views (mirror-backed)
    # ------------------------------------------------------------------
    def alpha_of(self, node: int) -> float:
        return self._alpha_py[node + _OFF]

    def is_settled(self, node: int) -> bool:
        return self._settled_py[node + _OFF]

    def settled_alpha(self, node: int):
        idx = node + _OFF
        return self._alpha_py[idx] if self._settled_py[idx] else None

    def settled_items(self):
        seen = set()
        for idx in self._settled_order:
            if self._settled_py[idx] and idx not in seen:
                seen.add(idx)
                yield idx - _OFF, self._alpha_py[idx]

    def improve(self, node: int, alpha: float, prev: int) -> bool:
        idx = node + _OFF
        if alpha >= self._alpha_py[idx]:
            return False
        alpha = float(alpha)
        self._alpha[idx] = alpha
        self._alpha_py[idx] = alpha
        self._prev[idx] = prev + _OFF
        self._settled[idx] = False
        self._settled_py[idx] = False
        heapq.heappush(self._heap, (alpha, idx))
        return True

    # ------------------------------------------------------------------
    # the main loop (identical to the reference, over the list mirrors)
    # ------------------------------------------------------------------
    def run(self) -> bool:
        heap = self._heap
        alpha = self._alpha_py
        settled = self._settled_py
        settled_np = self._settled
        t_idx = 0  # T_NODE + _OFF
        while heap:
            a, idx = heapq.heappop(heap)
            if a > alpha[idx] or settled[idx]:
                continue  # stale entry or already settled
            if idx == t_idx:
                # Leave t un-settled so a later resume can improve it.
                heapq.heappush(heap, (a, idx))
                return True
            settled[idx] = True
            settled_np[idx] = True
            self._settled_order.append(idx)
            self.pops += 1
            self._relax_out(idx, a)
        return alpha[t_idx] < INF

    @property
    def sp_cost(self) -> float:
        return self._alpha_py[0]  # T_NODE + _OFF == 0

    def _relax_out(self, idx: int, base: float) -> None:
        net = self.net
        alpha = self._alpha
        alpha_py = self._alpha_py
        prev = self._prev
        settled = self._settled
        settled_py = self._settled_py
        heap = self._heap
        push = heapq.heappush
        nq = net.nq
        if idx == S_NODE + _OFF:
            if not nq:
                return
            # Same op order as the reference: w, clamp, then + base.
            w = net.q_tau - net.tau_s
            if (w < -1e-6).any() and (net.q_open & (w < -1e-6)).any():
                i = int(np.nonzero(net.q_open & (w < -1e-6))[0][0])
                # Corrupted residual state (see the reference kernel).
                raise NegativeReducedCostError(
                    f"negative reduced cost {float(w[i])} on (s, q_{i})"
                )
            np.maximum(w, 0.0, out=w)
            w += base
            ok = net.q_open & (w < alpha[_OFF : _OFF + nq])
            upd = np.nonzero(ok)[0]
            if upd.size:
                targets = upd + _OFF
                values = w[upd]
                alpha[targets] = values
                settled[targets] = False
                for av, tv in zip(values.tolist(), targets.tolist()):
                    alpha_py[tv] = av
                    settled_py[tv] = False
                    prev[tv] = idx
                    push(heap, (av, tv))
            return
        node = idx - _OFF
        if node < nq:  # provider: forward relaxation
            n = net._fwd_n[node]
            if not n:
                return
            if n < SCALAR_FAN_LIMIT:
                q_tau_i = float(net.q_tau[node])
                p_tau = net.p_tau
                for tgt, j, d, _eid in net._fwd_py[node]:
                    # Reference op order: (d − τ_q) + τ_p, clamp, + base.
                    w = d - q_tau_i + p_tau[j]
                    a = base + (w if w > 0.0 else 0.0)
                    if a < alpha_py[tgt]:
                        a = float(a)
                        alpha[tgt] = a
                        alpha_py[tgt] = a
                        prev[tgt] = idx
                        settled[tgt] = False
                        settled_py[tgt] = False
                        push(heap, (a, tgt))
                return
            w = net._fwd_dist[node][:n] - net.q_tau[node]
            targets = net._fwd_tgt[node][:n]
            w += net.p_tau[targets - (nq + _OFF)]
            np.maximum(w, 0.0, out=w)
            w += base
            ok = w < alpha[targets]
            upd_t = targets[ok]
            if upd_t.size:
                upd_a = w[ok]
                alpha[upd_t] = upd_a
                settled[upd_t] = False
                for av, tv in zip(upd_a.tolist(), upd_t.tolist()):
                    alpha_py[tv] = av
                    settled_py[tv] = False
                    prev[tv] = idx
                    push(heap, (av, tv))
            return
        # Customer: backward fans are tiny (≤ weight flow edges) and
        # mirrored as Python floats, so the scalar loop always wins.
        j = node - nq
        p_tau_j = float(net.p_tau[j])
        q_tau = net.q_tau
        for _, i, d in net._bwd[j]:
            w = q_tau[i] - d - p_tau_j
            a = base + (w if w > 0.0 else 0.0)
            t = i + _OFF
            if a < alpha_py[t]:
                a = float(a)
                alpha[t] = a
                alpha_py[t] = a
                prev[t] = idx
                settled[t] = False
                settled_py[t] = False
                push(heap, (a, t))
        if net.p_used[j] < net.p_cap[j]:
            w = -p_tau_j
            a = base + (w if w > 0.0 else 0.0)
            if a < alpha_py[0]:  # T_NODE + _OFF == 0
                a = float(a)
                alpha[0] = a
                alpha_py[0] = a
                prev[0] = idx
                push(heap, (a, 0))
