"""Array-backed flow kernel: columnar residual network + vectorized
Dijkstra relaxation.

The reference backend (:mod:`repro.flow.graph` + :mod:`repro.flow.dijkstra`)
stores the residual bipartite graph as dict-of-dicts adjacency and relaxes
edges one Python bytecode loop iteration at a time.  That is the right
substrate for tracing the paper's algorithms, but the wrong one for the
solver's innermost loop: at Figure-10 scales a single Dijkstra run touches
thousands of edges, and per-edge interpreter overhead dominates.

This module keeps the exact same *semantics* behind the backend seam
(:mod:`repro.flow.backend`) while putting the hot data in flat typed
arrays:

* node potentials ``q_tau``/``p_tau`` are ``float64`` vectors, so a whole
  adjacency's reduced costs evaluate as a handful of vector operations;
* edges arrive in bulk: :meth:`ArrayFlowNetwork.add_edges` filters,
  dedups, and appends a whole ``(provider, customers, distances)`` column
  batch — the shape the fused supply pipeline (columnar range searches,
  ANN id/distance streaming, SSPA row oracles) produces — with array
  operations instead of one ``add_edge`` call per edge;
* each provider's forward-residual adjacency lives in *compact* parallel
  arrays (Dijkstra target index + distance) holding exactly the open
  (``flow < cap``) edges — saturation swap-removes an edge, cancellation
  re-appends it, mirroring the reference backend's dict membership — so
  a wide relaxation is one masked compare-and-update over contiguous
  memory;
* :class:`ArrayDijkstraState` relaxes a wide forward block with NumPy
  slice arithmetic and batched heap pushes, against a lazily-maintained
  NumPy label shadow (see its docstring).

Two deliberate hybrid choices keep the kernel fast where arrays lose:
scalar indexing into NumPy arrays costs ~4x a CPython list access, so
(1) narrow adjacencies (fewer than :data:`SCALAR_FAN_LIMIT` edges — e.g.
customers' backward fans, or provider fans early in an incremental
solve) are relaxed by a plain Python loop over a tuple mirror of the
same compact adjacency, and (2) cold columnar data (edge ``src``/
``dst``/``dist``/``cap``/``flow``, node capacities and usage counters)
stays in Python lists.

Floating-point note: every reduced cost is evaluated with the same
operation order as the reference backend (``(d − τ_q) + τ_p``, clamp,
then ``+ base``), so labels — and therefore matchings, costs, and |Esub| —
are bit-identical between backends.  The equivalence suite asserts this.

Potentials are additionally mirrored into Python lists (``tau_lists``):
a NumPy scalar read costs ~4x a list read, and the narrow relaxations,
``out_edges``, and IDA's per-provider key refresh are exactly such scalar
consumers.  Every potential mutation goes through a network method that
keeps the mirrors coherent (the mirrors hold the very same float64
values, read back from the arrays, so nothing can drift); writing the
``q_tau`` / ``p_tau`` arrays directly from outside bypasses that and is
unsupported on this backend.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

import numpy as np

from repro.flow.dijkstra import _OFF, INF, DijkstraState
from repro.flow.graph import (
    S_NODE,
    CCAFlowNetwork,
    NegativeReducedCostError,
    _is_scalar,
    _nonneg,
)

_INITIAL_FAN = 8

# Below this fan-out the Python-loop relaxation beats NumPy's fixed
# per-call overhead.  The list-first label/potential mirrors made the
# scalar loop ~2x cheaper per edge, which pushed the measured crossover
# from ~50 up to ~200-300 edges on CPython 3.11 (re-tuned on the Fig. 10
# |Q| ∈ {250, 500, 1000} end-to-end sweep).
SCALAR_FAN_LIMIT = 256


def _grown(arr: np.ndarray, needed: int) -> np.ndarray:
    """Return ``arr`` or a doubled-capacity copy that fits ``needed``."""
    if needed <= arr.size:
        return arr
    new_size = max(needed, arr.size * 2, _INITIAL_FAN)
    out = np.empty(new_size, dtype=arr.dtype)
    out[: arr.size] = arr
    return out


class ArrayFlowNetwork(CCAFlowNetwork):
    """Columnar drop-in for :class:`CCAFlowNetwork`.

    Shares all pure graph logic (node addressing, augmentation paths,
    result extraction) with the reference network and overrides only the
    storage-touching primitives.
    """

    def __init__(
        self,
        provider_capacities: Sequence[int],
        customer_weights: Sequence[int],
    ):
        q_cap = [int(k) for k in provider_capacities]
        p_cap = [int(w) for w in customer_weights]
        if any(k < 0 for k in q_cap):
            raise ValueError("provider capacities must be non-negative")
        if any(w < 0 for w in p_cap):
            raise ValueError("customer weights must be non-negative")
        self.nq = len(q_cap)
        self.np = len(p_cap)
        self.q_cap = q_cap
        self.p_cap = p_cap
        self.q_used = [0] * self.nq
        self.p_used = [0] * self.np
        # Hot node data: potentials as vectors (bulk-read by relaxation),
        # plus the providers-with-residual-capacity mask for the source
        # relaxation (maintained incrementally).
        self.q_tau = np.zeros(self.nq, dtype=np.float64)
        self.p_tau = np.zeros(self.np, dtype=np.float64)
        # Python-list mirrors of the potentials for the scalar hot spots
        # (see the module docstring); every mutator below resyncs them.
        self._q_tau_py: List[float] = [0.0] * self.nq
        self._p_tau_py: List[float] = [0.0] * self.np
        self.q_open = np.array([k > 0 for k in q_cap], dtype=bool)
        self.tau_s = 0.0
        # Edge columns: append-only Python lists (touched one edge at a
        # time; ids are stable, removed edges become tombstones).
        self.e_src: List[int] = []
        self.e_dst: List[int] = []
        self.e_dist: List[float] = []
        self.e_cap: List[int] = []
        self.e_flow: List[int] = []
        self.e_dead: List[bool] = []
        # Compact per-provider forward-residual adjacency: parallel
        # (target, distance) arrays + a Python tuple mirror
        # (target, customer, distance, eid) for the scalar path.
        # Membership ⇔ the edge is open (flow < cap), exactly like the
        # reference backend's forward dicts; _e_pos[eid] is the edge's
        # position in its provider's adjacency (-1 when saturated/dead).
        self._fwd_tgt: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(self.nq)
        ]
        self._fwd_dist: List[np.ndarray] = [
            np.empty(0, dtype=np.float64) for _ in range(self.nq)
        ]
        self._fwd_py: List[List[Tuple[int, int, float, int]]] = [
            [] for _ in range(self.nq)
        ]
        self._fwd_n: List[int] = [0] * self.nq
        self._e_pos: List[int] = []
        # Per-customer backward adjacency mirrored as Python-native
        # [eid, provider, distance] entries (flow-carrying edges only,
        # like the reference backend's dicts): backward fans are tiny.
        self._bwd: List[List[List]] = [[] for _ in range(self.np)]
        # (i << 32) | j -> edge id.  A packed int key hashes ~2x faster
        # than a tuple and lets the bulk path dedup without building one
        # tuple per candidate edge.
        self._eid = {}
        self._live = 0
        self.matched = 0
        self.augmentations = 0
        self.full_providers = {i for i, k in enumerate(q_cap) if k <= 0}
        self._tau_max = 0.0

    # ------------------------------------------------------------------
    # compact forward adjacency maintenance
    # ------------------------------------------------------------------
    def _fwd_append(self, i: int, eid: int, j: int, distance: float) -> None:
        n = self._fwd_n[i]
        if n >= self._fwd_tgt[i].size:
            self._fwd_tgt[i] = _grown(self._fwd_tgt[i], n + 1)
            self._fwd_dist[i] = _grown(self._fwd_dist[i], n + 1)
        tgt = self.nq + j + _OFF
        self._fwd_tgt[i][n] = tgt
        self._fwd_dist[i][n] = distance
        self._fwd_py[i].append((tgt, j, distance, eid))
        self._e_pos[eid] = n
        self._fwd_n[i] = n + 1

    def _fwd_remove(self, i: int, eid: int) -> None:
        pos = self._e_pos[eid]
        if pos < 0:
            return
        n = self._fwd_n[i] - 1
        py = self._fwd_py[i]
        if pos != n:
            moved = py[n]
            py[pos] = moved
            self._e_pos[moved[3]] = pos
            self._fwd_tgt[i][pos] = self._fwd_tgt[i][n]
            self._fwd_dist[i][pos] = self._fwd_dist[i][n]
        py.pop()
        self._fwd_n[i] = n
        self._e_pos[eid] = -1

    # ------------------------------------------------------------------
    # Esub maintenance
    # ------------------------------------------------------------------
    def add_edge(self, i: int, j: int, distance: float) -> bool:
        if distance < 0:
            raise ValueError("edge length must be non-negative")
        i = int(i)
        j = int(j)
        if (i << 32) | j in self._eid:
            return False
        capacity = min(self.q_cap[i], self.p_cap[j])
        if capacity == 0:
            return False
        distance = float(distance)
        eid = len(self.e_src)
        self.e_src.append(i)
        self.e_dst.append(j)
        self.e_dist.append(distance)
        self.e_cap.append(capacity)
        self.e_flow.append(0)
        self.e_dead.append(False)
        self._e_pos.append(-1)
        self._eid[(i << 32) | j] = eid
        self._live += 1
        self._fwd_append(i, eid, j, distance)
        return True

    def add_edges(self, providers, customers, distances) -> int:
        """Vectorized bulk insert — semantics identical to the per-edge
        loop (:meth:`CCAFlowNetwork.add_edges` is the specification).

        The hot shape is one provider against a customer/distance column
        (RIA range supply, SSPA row build): candidate filtering — batch
        first-occurrence dedup, duplicate masking against Esub, the
        ``min(k, w) > 0`` capacity gate — and the CSR-block append into
        the provider's forward adjacency all run as array operations.
        Multi-provider columns take the generic per-edge path.
        """
        if not _is_scalar(providers):
            return super().add_edges(providers, customers, distances)
        i = int(providers)
        j_arr = np.asarray(customers, dtype=np.int64)
        d_arr = np.asarray(distances, dtype=np.float64)
        if j_arr.shape != d_arr.shape:
            raise ValueError("edge column lengths differ")
        if j_arr.size == 0:
            return 0
        if d_arr.min() < 0:
            raise ValueError("edge length must be non-negative")
        cap_i = self.q_cap[i]
        if cap_i == 0:
            return 0
        if j_arr.size == 1:
            return int(self.add_edge(i, int(j_arr[0]), float(d_arr[0])))
        # First occurrence wins within the batch (np.unique returns the
        # index of each value's first appearance; re-sorting those
        # indices restores the original insertion order).
        _, first = np.unique(j_arr, return_index=True)
        if first.size != j_arr.size:
            first.sort()
            j_arr = j_arr[first]
            d_arr = d_arr[first]
        # Zero-capacity customers can never carry flow: same gate as the
        # scalar path's min(k, w) == 0 rejection.
        p_cap = np.asarray(self.p_cap, dtype=np.int64)
        caps = np.minimum(cap_i, p_cap[j_arr])
        keep = caps > 0
        if not keep.all():
            j_arr = j_arr[keep]
            d_arr = d_arr[keep]
            caps = caps[keep]
        if not j_arr.size:
            return 0
        # Duplicate masking against the edges already in Esub.
        keys = ((i << 32) | j_arr).tolist()
        eid_map = self._eid
        if self._fwd_n[i] or self.q_used[i]:
            fresh = [key not in eid_map for key in keys]
            if not all(fresh):
                mask = np.asarray(fresh, dtype=bool)
                j_arr = j_arr[mask]
                d_arr = d_arr[mask]
                caps = caps[mask]
                keys = [k for k, f in zip(keys, fresh, strict=False) if f]
        n = j_arr.size
        if not n:
            return 0
        # Columnar append: edge registry...
        base = len(self.e_src)
        j_list = j_arr.tolist()
        d_list = d_arr.tolist()
        eids = range(base, base + n)
        self.e_src.extend([i] * n)
        self.e_dst.extend(j_list)
        self.e_dist.extend(d_list)
        self.e_cap.extend(caps.tolist())
        self.e_flow.extend([0] * n)
        self.e_dead.extend([False] * n)
        for key, eid in zip(keys, eids, strict=False):
            eid_map[key] = eid
        self._live += n
        # ...and the CSR-style block append into provider i's compact
        # forward adjacency (one slice assignment per column).
        n0 = self._fwd_n[i]
        if n0 + n > self._fwd_tgt[i].size:
            self._fwd_tgt[i] = _grown(self._fwd_tgt[i], n0 + n)
            self._fwd_dist[i] = _grown(self._fwd_dist[i], n0 + n)
        tgt_arr = j_arr + (self.nq + _OFF)
        self._fwd_tgt[i][n0 : n0 + n] = tgt_arr
        self._fwd_dist[i][n0 : n0 + n] = d_arr
        self._fwd_py[
            i
        ].extend(zip(tgt_arr.tolist(), j_list, d_list, eids, strict=False))
        self._e_pos.extend(range(n0, n0 + n))
        self._fwd_n[i] = n0 + n
        return n

    @property
    def n_edges(self) -> int:
        """Total edge slots ever allocated (including dead tombstones)."""
        return len(self.e_src)

    def has_edge(self, i: int, j: int) -> bool:
        return (int(i) << 32) | int(j) in self._eid

    def edge_flow(self, i: int, j: int) -> int:
        eid = self._eid.get((int(i) << 32) | int(j))
        return 0 if eid is None else self.e_flow[eid]

    def edge_residual(self, i: int, j: int) -> int:
        eid = self._eid.get((int(i) << 32) | int(j))
        if eid is None:
            return 0
        return self.e_cap[eid] - self.e_flow[eid]

    @property
    def edge_count(self) -> int:
        return self._live

    def out_edges(self, node: int):
        """Residual out-edges as (target, reduced_cost) — API parity with
        the reference network (the array Dijkstra inlines this)."""
        if self.is_provider(node):
            i = int(node)
            q_tau = self._q_tau_py[i]
            p_tau = self._p_tau_py
            for tgt, j, d, _eid in self._fwd_py[i]:
                yield tgt - _OFF, _nonneg(d - q_tau + p_tau[j])
        else:
            j = self.customer_index(node)
            p_tau = self._p_tau_py[j]
            q_tau = self._q_tau_py
            for _, i, d in self._bwd[j]:
                yield i, _nonneg(-d - p_tau + q_tau[i])

    # ------------------------------------------------------------------
    # flow pushes (called from the inherited apply_path)
    # ------------------------------------------------------------------
    def apply_path(self, path_nodes: Sequence[int]) -> None:
        # Same as the reference implementation, plus q_open maintenance
        # for the vectorized source relaxation.
        super().apply_path(path_nodes)
        first = int(path_nodes[1])
        if self.q_used[first] >= self.q_cap[first]:
            self.q_open[first] = False

    def _push_unit(self, i: int, j: int) -> None:
        i = int(i)
        j = int(j)
        eid = self._eid[(i << 32) | j]
        flow = self.e_flow[eid] + 1
        if flow > self.e_cap[eid]:
            raise RuntimeError(f"edge ({i},{j}) over capacity")
        self.e_flow[eid] = flow
        if flow >= self.e_cap[eid]:
            self._fwd_remove(i, eid)
        if flow == 1:
            self._bwd[j].append([eid, i, self.e_dist[eid]])

    def _pull_unit(self, i: int, j: int) -> None:
        i = int(i)
        j = int(j)
        eid = self._eid[(i << 32) | j]
        flow = self.e_flow[eid] - 1
        if flow < 0:
            raise RuntimeError(f"edge ({i},{j}) has no flow to cancel")
        self.e_flow[eid] = flow
        if self._e_pos[eid] < 0:
            self._fwd_append(i, eid, j, self.e_dist[eid])
        if flow == 0:
            entries = self._bwd[j]
            for k, entry in enumerate(entries):
                if entry[0] == eid:
                    del entries[k]
                    break

    # ------------------------------------------------------------------
    # potentials (vectorized overrides)
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # reduced costs over the list mirrors (PUA repairs call these once
    # per insert; a NumPy scalar read per call is pure overhead)
    # ------------------------------------------------------------------
    def reduced_cost_sq(self, i: int) -> float:
        return _nonneg(self._q_tau_py[i] - self.tau_s)

    def reduced_cost_qp(self, i: int, j: int, distance: float) -> float:
        return _nonneg(distance - self._q_tau_py[i] + self._p_tau_py[j])

    def reduced_cost_pq(self, j: int, i: int, distance: float) -> float:
        return _nonneg(-distance - self._p_tau_py[j] + self._q_tau_py[i])

    def reduced_cost_pt(self, j: int) -> float:
        return _nonneg(-self._p_tau_py[j])

    def augment(self, path_nodes, alpha_min, settled_alpha) -> None:
        # The base implementation writes the potential arrays elementwise
        # (cross-backend states, unit tests); resync the mirrors after.
        super().augment(path_nodes, alpha_min, settled_alpha)
        self._q_tau_py = self.q_tau.tolist()
        self._p_tau_py = self.p_tau.tolist()

    def augment_with_state(self, path_nodes, alpha_min, state) -> None:
        """Algorithm-1 potential update straight off the Dijkstra state.

        Walks the settled order once (same dedup the reference backend's
        ``settled_items`` applies), advances the *list mirrors* with plain
        float arithmetic, and commits the touched rows to the NumPy
        potential vectors as two fancy-index scatters — no per-node NumPy
        scalar traffic in either direction.
        """
        if not isinstance(state, ArrayDijkstraState):
            self.augment(path_nodes, alpha_min, state.settled_alpha_for_update())
            return
        self.apply_path(path_nodes)
        alpha = state._alpha
        settled = state._settled
        s_idx = S_NODE + _OFF
        if settled[s_idx] and alpha_min > 0.0:
            # s settles at α = 0, so its delta is α_min itself.
            self.tau_s += alpha_min
        base_c = _OFF + self.nq
        q_py = self._q_tau_py
        p_py = self._p_tau_py
        prov_t: List[int] = []
        prov_v: List[float] = []
        cust_t: List[int] = []
        cust_v: List[float] = []
        top = self._tau_max
        seen = set()
        for idx in state._settled_order:
            if not settled[idx] or idx in seen or idx == s_idx:
                continue
            seen.add(idx)
            delta = alpha_min - alpha[idx]
            if delta <= 0:
                continue  # settled at exactly alpha_min under fp noise
            if idx >= base_c:
                j = idx - base_c
                v = p_py[j] + delta
                p_py[j] = v
                cust_t.append(j)
                cust_v.append(v)
            else:
                i = idx - _OFF
                v = q_py[i] + delta
                q_py[i] = v
                prov_t.append(i)
                prov_v.append(v)
                if v > top:
                    top = v
        if prov_t:
            self.q_tau[prov_t] = prov_v
            self._tau_max = top
        if cust_t:
            self.p_tau[cust_t] = cust_v

    def advance_source_and_providers(self, offset: float) -> None:
        if offset == 0.0:
            return
        self.tau_s += offset
        self.q_tau += offset
        self._q_tau_py = self.q_tau.tolist()
        self._tau_max += offset

    def advance_customer_potentials(self, offsets) -> None:
        p_tau = self.p_tau
        p_py = self._p_tau_py
        for j, delta in offsets.items():
            p_tau[j] += delta
            p_py[j] = p_tau[j].item()

    def tau_lists(self):
        return self._q_tau_py, self._p_tau_py

    # ------------------------------------------------------------------
    # session deltas
    # ------------------------------------------------------------------
    def provider_potential_floors(self) -> List[float]:
        floors = [0.0] * self.nq
        p_tau = self.p_tau
        for eid, flow in enumerate(self.e_flow):
            if flow > 0:
                pin = self.e_dist[eid] + float(p_tau[self.e_dst[eid]])
                i = self.e_src[eid]
                if pin > floors[i]:
                    floors[i] = pin
        return floors

    def admit_customer(self, weight, provider_distances):
        if weight < 0:
            raise ValueError("customer weight must be non-negative")
        d = np.asarray(provider_distances, dtype=np.float64)
        need = self.q_tau > d
        if need.any():
            floors = np.asarray(self.provider_potential_floors())
            if (floors[need] > d[need] + 1e-9).any():
                return None  # negative cycle: warm start unsound
            self.q_tau[need] = d[need]
            self._q_tau_py = self.q_tau.tolist()
            self._tau_max = float(self.q_tau.max()) if self.nq else 0.0
            if self.nq:
                self.tau_s = min(self.tau_s, float(self.q_tau.min()))
        return self.add_customer_node(weight)

    def add_customer_node(self, weight: int) -> int:
        if weight < 0:
            raise ValueError("customer weight must be non-negative")
        j = self.np
        self.np += 1
        self.p_cap.append(int(weight))
        self.p_used.append(0)
        self.p_tau = np.append(self.p_tau, 0.0)
        self._p_tau_py.append(0.0)
        self._bwd.append([])
        return j

    def can_remove_customer_warm(self, j: int) -> bool:
        j = int(j)
        tau_s = self.tau_s - 1e-9
        for eid, _i, _d in self._bwd[j]:
            i = self.e_src[eid]
            if self.q_used[i] >= self.q_cap[i] and self.q_tau[i] < tau_s:
                return False
        return True

    def remove_customer_node(self, j: int) -> int:
        j = int(j)
        released = 0
        for eid, dst in enumerate(self.e_dst):
            if dst != j or self.e_dead[eid]:
                continue
            i = self.e_src[eid]
            flow = self.e_flow[eid]
            if flow > 0:
                if self.q_used[i] == self.q_cap[i]:
                    self.full_providers.discard(i)
                    self.q_open[i] = True
                self.q_used[i] -= flow
                self.matched -= flow
                released += flow
            self._fwd_remove(i, eid)
            self.e_flow[eid] = 0
            self.e_cap[eid] = 0
            self.e_dead[eid] = True
            del self._eid[(i << 32) | j]
            self._live -= 1
        self._bwd[j] = []
        self.p_used[j] = 0
        self.p_cap[j] = 0
        return released

    def can_widen_provider_warm(self, i: int, capacity: int) -> bool:
        i = int(i)
        capacity = int(capacity)
        if capacity <= self.q_cap[i]:
            return True  # shrinking closes edges; never breaks feasibility
        if self.q_used[i] >= self.q_cap[i] and float(self.q_tau[i]) < self.tau_s - 1e-9:
            return False
        q_tau_i = float(self.q_tau[i])
        for eid, src in enumerate(self.e_src):
            if src != i or self.e_dead[eid]:
                continue
            flow = self.e_flow[eid]
            cap = self.e_cap[eid]
            j = self.e_dst[eid]
            if (
                flow > 0
                and flow >= cap
                and min(capacity, self.p_cap[j]) > cap
                and self.e_dist[eid] - q_tau_i + float(self.p_tau[j])
                < -1e-9
            ):
                return False
        return True

    def set_provider_capacity(self, i: int, capacity: int) -> None:
        i = int(i)
        capacity = int(capacity)
        if capacity < self.q_used[i]:
            raise ValueError(
                f"capacity {capacity} below current usage "
                f"{self.q_used[i]}; cold re-solve required"
            )
        self.q_cap[i] = capacity
        now_saturated = self.q_used[i] >= capacity
        if now_saturated:
            self.full_providers.add(i)
        else:
            self.full_providers.discard(i)
        self.q_open[i] = not now_saturated
        for eid, src in enumerate(self.e_src):
            if src != i or self.e_dead[eid]:
                continue
            flow = self.e_flow[eid]
            new_cap = max(flow, min(capacity, self.p_cap[self.e_dst[eid]]))
            self.e_cap[eid] = new_cap
            if flow < new_cap:
                if self._e_pos[eid] < 0:
                    self._fwd_append(i, eid, self.e_dst[eid], self.e_dist[eid])
            elif self._e_pos[eid] >= 0:
                self._fwd_remove(i, eid)

    # ------------------------------------------------------------------
    # result extraction
    # ------------------------------------------------------------------
    def edge_triples(self) -> List[Tuple[int, int, float]]:
        return [
            (self.e_src[eid], self.e_dst[eid], self.e_dist[eid])
            for eid in range(len(self.e_src))
            if not self.e_dead[eid]
        ]

    def matching_flows(self) -> List[Tuple[int, int, float, int]]:
        return [
            (self.e_src[eid], self.e_dst[eid], self.e_dist[eid], flow)
            for eid, flow in enumerate(self.e_flow)
            if flow > 0
        ]

    def matching_cost(self) -> float:
        # Sequential sum in edge-insertion order so the float result is
        # bit-identical to the reference backend's.
        total = 0.0
        for eid, flow in enumerate(self.e_flow):
            total += self.e_dist[eid] * flow
        return total

    # spare_capacity() is inherited from CCAFlowNetwork: q_cap/q_used are
    # plain lists in both kernels, so the base accounting applies as-is.


class ArrayDijkstraState(DijkstraState):
    """Dijkstra over :class:`ArrayFlowNetwork` columns, wide fans
    vectorized.

    Labels live in the same Python lists as the reference
    :class:`DijkstraState` (the pop loop, narrow relaxations, and path
    extraction are scalar code, where list reads beat NumPy scalar reads
    ~4x), so all of the parent's machinery is inherited unchanged.  What
    the subclass adds is a NumPy *shadow* of the label vector for the
    wide relaxations: a node's whole forward block is relaxed as slice
    arithmetic (reduced costs, improvement mask against the shadow,
    batched writes) instead of a per-edge loop.

    The shadow is deliberately *stale*: scalar-path improvements never
    write it (that bookkeeping would cost two list appends per
    improvement to serve a handful of wide relaxations), so it is merely
    an upper bound on the true labels — labels only decrease, and only
    wide relaxations write the shadow down.  The vectorized improvement
    mask filtered against an upper bound admits false positives but
    never drops a real improvement, and the per-candidate commit loop
    re-checks against the true label list, so results are bit-identical
    to the reference.  Spurious candidates cost one scalar compare each
    and stay rare (exactly the fan targets scalar paths improved since
    the provider's last wide relaxation).
    """

    __slots__ = ("_np_alpha",)

    def __init__(self, net: ArrayFlowNetwork):
        self.net = net
        size = net.nq + net.np + _OFF
        self._alpha = [INF] * size
        self._prev = [-3] * size
        self._settled = [False] * size
        self._settled_order = []
        self._heap = []
        self.pops = 0
        self._alpha[S_NODE + _OFF] = 0.0
        # Allocated on first wide relaxation (all-INF is a valid upper
        # bound); searches that never go wide skip the allocation.
        self._np_alpha = None
        heapq.heappush(self._heap, (0.0, S_NODE + _OFF))

    def improve(self, node: int, alpha: float, prev: int) -> bool:
        idx = node + _OFF
        if alpha >= self._alpha[idx]:
            return False
        # float() keeps heap entries and labels homogeneous when the
        # offered value came from NumPy scalar arithmetic (PUA repairs).
        alpha = float(alpha)
        self._alpha[idx] = alpha
        self._prev[idx] = prev + _OFF
        self._settled[idx] = False
        heapq.heappush(self._heap, (alpha, idx))
        return True

    def run(self) -> bool:
        """The reference pop loop with the customer relaxation inlined.

        ~90% of pops settle customers, whose relaxation is one tiny
        backward fan plus the sink edge; at that call frequency the
        method-dispatch and local-binding overhead of ``_relax_out`` is
        the dominant cost, so the customer case runs inline and only
        source/provider pops (the wide fans) pay the dispatch.  Identical
        pop order, labels, and predecessors to :class:`DijkstraState`.
        """
        heap = self._heap
        alpha = self._alpha
        settled = self._settled
        order = self._settled_order
        prev = self._prev
        net = self.net
        nq = net.nq
        bwd = net._bwd
        p_used = net.p_used
        p_cap = net.p_cap
        # Potentials are frozen while an iteration's search is live (they
        # only move in augment), so binding the mirrors once per run is
        # safe — including across PUA resumes.
        p_tau = net._p_tau_py
        q_tau = net._q_tau_py
        push = heapq.heappush
        pop = heapq.heappop
        pops = 0
        while heap:
            a, idx = pop(heap)
            if a > alpha[idx] or settled[idx]:
                continue  # stale entry or already settled
            if idx == 0:  # T_NODE + _OFF
                # Leave t un-settled so a later resume can improve it.
                push(heap, (a, idx))
                self.pops += pops
                return True
            settled[idx] = True
            order.append(idx)
            pops += 1
            node = idx - _OFF
            if node >= nq:  # customer: inline relaxation
                j = node - nq
                p_tau_j = p_tau[j]
                for _, i, d in bwd[j]:
                    w = q_tau[i] - d - p_tau_j
                    av = a + (w if w > 0.0 else 0.0)
                    t = i + _OFF
                    if av < alpha[t]:
                        alpha[t] = av
                        prev[t] = idx
                        settled[t] = False
                        push(heap, (av, t))
                if p_used[j] < p_cap[j]:
                    w = -p_tau_j
                    av = a + (w if w > 0.0 else 0.0)
                    if av < alpha[0]:
                        alpha[0] = av
                        prev[0] = idx
                        push(heap, (av, 0))
            else:
                self._relax_out(idx, a)
        self.pops += pops
        return alpha[0] < INF

    def _shadow(self) -> np.ndarray:
        """The stale label upper bound, allocated on first use."""
        np_alpha = self._np_alpha
        if np_alpha is None:
            np_alpha = np.full(len(self._alpha), INF, dtype=np.float64)
            np_alpha[S_NODE + _OFF] = 0.0
            self._np_alpha = np_alpha
        return np_alpha

    def _relax_out(self, idx: int, base: float) -> None:
        net = self.net
        alpha = self._alpha
        prev = self._prev
        settled = self._settled
        heap = self._heap
        push = heapq.heappush
        nq = net.nq
        if idx == S_NODE + _OFF:
            if not nq:
                return
            if nq < SCALAR_FAN_LIMIT:
                # Narrow provider set: the reference backend's scalar
                # source loop, over the potential list mirrors.
                tau_s = net.tau_s
                q_tau = net._q_tau_py
                q_used = net.q_used
                q_cap = net.q_cap
                for i in range(nq):
                    if q_used[i] < q_cap[i]:
                        w = q_tau[i] - tau_s
                        if w < -1e-6:
                            # Corrupted residual state (see the reference
                            # kernel).
                            raise NegativeReducedCostError(
                                f"negative reduced cost {w} on (s, q_{i})"
                            )
                        a = base + (w if w > 0.0 else 0.0)
                        t = i + _OFF
                        if a < alpha[t]:
                            alpha[t] = a
                            prev[t] = idx
                            settled[t] = False
                            push(heap, (a, t))
                return
            # Same op order as the reference: w, clamp, then + base.
            w = net.q_tau - net.tau_s
            if (w < -1e-6).any() and (net.q_open & (w < -1e-6)).any():
                i = int(np.nonzero(net.q_open & (w < -1e-6))[0][0])
                # Corrupted residual state (see the reference kernel).
                raise NegativeReducedCostError(
                    f"negative reduced cost {float(w[i])} on (s, q_{i})"
                )
            np.maximum(w, 0.0, out=w)
            w += base
            np_alpha = self._shadow()
            ok = net.q_open & (w < np_alpha[_OFF : _OFF + nq])
            upd = np.nonzero(ok)[0]
            if upd.size:
                targets = upd + _OFF
                values = w[upd]
                np_alpha[targets] = values
                for av, tv in zip(values.tolist(), targets.tolist(), strict=False):
                    # Re-check against the true labels: the shadow is an
                    # upper bound, so the mask can admit false positives.
                    if av < alpha[tv]:
                        alpha[tv] = av
                        settled[tv] = False
                        prev[tv] = idx
                        push(heap, (av, tv))
            return
        node = idx - _OFF
        if node < nq:  # provider: forward relaxation
            n = net._fwd_n[node]
            if not n:
                return
            if n < SCALAR_FAN_LIMIT:
                q_tau_i = net._q_tau_py[node]
                p_tau = net._p_tau_py
                for tgt, j, d, _eid in net._fwd_py[node]:
                    # Reference op order: (d − τ_q) + τ_p, clamp, + base.
                    w = d - q_tau_i + p_tau[j]
                    a = base + (w if w > 0.0 else 0.0)
                    if a < alpha[tgt]:
                        alpha[tgt] = a
                        prev[tgt] = idx
                        settled[tgt] = False
                        push(heap, (a, tgt))
                return
            # Wide block: one masked compare-and-update over the
            # provider's contiguous (target, distance) columns.
            w = net._fwd_dist[node][:n] - net._q_tau_py[node]
            targets = net._fwd_tgt[node][:n]
            w += net.p_tau[targets - (nq + _OFF)]
            np.maximum(w, 0.0, out=w)
            w += base
            np_alpha = self._shadow()
            ok = w < np_alpha[targets]
            upd_t = targets[ok]
            if upd_t.size:
                upd_a = w[ok]
                np_alpha[upd_t] = upd_a
                for av, tv in zip(upd_a.tolist(), upd_t.tolist(), strict=False):
                    # Re-check against the true labels: the shadow is an
                    # upper bound, so the mask can admit false positives.
                    if av < alpha[tv]:
                        alpha[tv] = av
                        settled[tv] = False
                        prev[tv] = idx
                        push(heap, (av, tv))
            return
        # Customer: backward fans are tiny (≤ weight flow edges) and
        # mirrored as Python floats, so the scalar loop always wins.
        j = node - nq
        p_tau_j = net._p_tau_py[j]
        q_tau = net._q_tau_py
        for _, i, d in net._bwd[j]:
            w = q_tau[i] - d - p_tau_j
            a = base + (w if w > 0.0 else 0.0)
            t = i + _OFF
            if a < alpha[t]:
                alpha[t] = a
                prev[t] = idx
                settled[t] = False
                push(heap, (a, t))
        if net.p_used[j] < net.p_cap[j]:
            w = -p_tau_j
            a = base + (w if w > 0.0 else 0.0)
            if a < alpha[0]:  # T_NODE + _OFF == 0
                alpha[0] = a
                prev[0] = idx
                push(heap, (a, 0))
