"""The flow-backend seam: pluggable residual-network + Dijkstra kernels.

Every solver in the repository (SSPA, RIA, NIA, IDA, and the SA/CA concise
matchings that run IDA internally) bottoms out in two objects: a residual
CCA flow network and a potential-aware Dijkstra state over it.  This module
names that seam so the substrate can be swapped without touching solver
logic:

* ``dict`` — the reference backend: :class:`~repro.flow.graph.CCAFlowNetwork`
  (dict-of-dicts adjacency) + :class:`~repro.flow.dijkstra.DijkstraState`.
  Easiest to read next to the paper; the correctness anchor.
* ``array`` — the performance backend:
  :class:`~repro.flow.arraykernel.ArrayFlowNetwork` (flat columnar edge
  storage) + :class:`~repro.flow.arraykernel.ArrayDijkstraState`
  (vectorized relaxation).  Bit-identical results, multi-x faster inner
  loop at Figure-10 scales.
* ``numba`` — the compiled backend:
  :class:`~repro.flow.numbakernel.NumbaFlowNetwork` (array backend plus
  pooled-slab adjacency mirrors) +
  :class:`~repro.flow.numbakernel.NumbaDijkstraState` (the whole
  pop/relax/commit loop as one ``@njit`` kernel).  Registered only when
  the optional ``numba`` dependency imports (the ``perf`` extra);
  :func:`get_backend` falls back to ``array`` with a warning otherwise.

All produce identical matchings, costs, and |Esub| on every instance —
``tests/property/test_backend_equivalence.py`` and the integration
equivalence suite enforce it.  Solvers accept ``backend=`` as either a
name from :data:`BACKENDS` or a :class:`FlowBackend` instance.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Union

from repro.flow.dijkstra import DijkstraState
from repro.flow.graph import CCAFlowNetwork

DEFAULT_BACKEND = "dict"

# Every backend name a CLI may offer, including optional ones that need
# an extra installed.  ``BACKENDS`` holds what is actually usable here.
BACKEND_CHOICES = ("array", "dict", "numba")


@dataclass(frozen=True)
class FlowBackend:
    """A (network factory, Dijkstra factory) pair behind a stable name."""

    name: str
    network_cls: Callable[..., CCAFlowNetwork]
    dijkstra_cls: Callable[..., DijkstraState]

    def network(
        self,
        provider_capacities: Sequence[int],
        customer_weights: Sequence[int],
    ) -> CCAFlowNetwork:
        """Build an empty residual network for the given node capacities."""
        return self.network_cls(provider_capacities, customer_weights)

    def dijkstra(self, net: CCAFlowNetwork) -> DijkstraState:
        """Build a one-iteration Dijkstra state bound to ``net``."""
        return self.dijkstra_cls(net)

    def __repr__(self) -> str:  # keep solver reprs short
        return f"FlowBackend({self.name!r})"


def _build_registry() -> Dict[str, FlowBackend]:
    from repro.flow.arraykernel import ArrayDijkstraState, ArrayFlowNetwork

    registry = {
        "dict": FlowBackend("dict", CCAFlowNetwork, DijkstraState),
        "array": FlowBackend("array", ArrayFlowNetwork, ArrayDijkstraState),
    }
    from repro.flow.numbakernel import (
        NUMBA_AVAILABLE,
        NumbaDijkstraState,
        NumbaFlowNetwork,
    )

    if NUMBA_AVAILABLE:
        registry["numba"] = FlowBackend("numba", NumbaFlowNetwork, NumbaDijkstraState)
    return registry


BACKENDS: Dict[str, FlowBackend] = _build_registry()


BackendLike = Union[str, FlowBackend]


def get_backend(backend: BackendLike = DEFAULT_BACKEND) -> FlowBackend:
    """Resolve a backend selector (name or instance) to a FlowBackend.

    ``"numba"`` without the optional dependency installed resolves to
    ``array`` (the closest substrate, identical results) with a
    :class:`RuntimeWarning` rather than failing the run.
    """
    if isinstance(backend, FlowBackend):
        return backend
    try:
        return BACKENDS[backend]
    except (KeyError, TypeError):
        if backend == "numba":
            warnings.warn(
                "flow backend 'numba' requires the optional 'perf' extra "
                "(pip install .[perf] from a checkout, or "
                "pip install repro-cca[perf]); falling back to the "
                "interpreted 'array' backend — identical results, slower "
                "inner loop",
                RuntimeWarning,
                stacklevel=2,
            )
            return BACKENDS["array"]
        raise ValueError(
            f"unknown flow backend {backend!r}; expected one of "
            f"{tuple(sorted(BACKENDS))} or a FlowBackend instance"
        ) from None
