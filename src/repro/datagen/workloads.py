"""Ready-made CCA instances for the Section 5 experiments."""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple, Union

import numpy as np

from repro.core.problem import CCAProblem
from repro.datagen.generator import generate_points
from repro.datagen.network import RoadNetwork, build_road_network

WORLD_LO = (0.0, 0.0)
WORLD_HI = (1000.0, 1000.0)

KSpec = Union[int, Tuple[int, int]]


@lru_cache(maxsize=4)
def _shared_network(grid: int, seed: int) -> RoadNetwork:
    return build_road_network(grid=grid, seed=seed)


def make_capacities(
    nq: int, k: KSpec, rng: np.random.Generator
) -> Sequence[int]:
    """Fixed capacity ``k`` or per-provider uniform draw from ``(lo, hi)``
    (the Figure 12 "mixed k" setting)."""
    if isinstance(k, tuple):
        lo, hi = k
        if lo < 0 or hi < lo:
            raise ValueError("capacity range must satisfy 0 <= lo <= hi")
        return rng.integers(lo, hi + 1, size=nq).tolist()
    if k < 0:
        raise ValueError("capacity must be non-negative")
    return [int(k)] * nq


def make_problem(
    nq: int,
    np_: int,
    k: KSpec = 80,
    dist_q: str = "clustered",
    dist_p: str = "clustered",
    seed: int = 0,
    network_grid: int = 24,
    network_seed: int = 7,
    page_size: int = 1024,
    buffer_fraction: float = 0.01,
) -> CCAProblem:
    """Build a Section-5-style CCA instance.

    ``dist_q``/``dist_p`` choose the provider/customer distributions
    ('uniform'/'clustered'), reproducing the UvsU..CvsC grid of Figures 13
    and 18.  The road network is cached across calls (same grid/seed).
    """
    network = _shared_network(network_grid, network_seed)
    rng = np.random.default_rng(seed)
    # Both sets cluster over the SAME dense districts (Section 5.1 places
    # Q and P on one map): one shared center draw per instance.
    centers_rng = np.random.default_rng((seed, network_seed, 77))
    centers = network.node_xy[
        centers_rng.choice(network.num_nodes, size=10, replace=False)
    ]

    def points_for(count, distribution):
        if distribution.lower() in ("c", "clustered"):
            return generate_points(
                network, count, distribution, rng=rng, centers=centers
            )
        return generate_points(network, count, distribution, rng=rng)

    provider_xy = points_for(nq, dist_q)
    customer_xy = points_for(np_, dist_p)
    capacities = make_capacities(nq, k, rng)
    return CCAProblem.from_arrays(
        provider_xy,
        capacities,
        customer_xy,
        page_size=page_size,
        buffer_fraction=buffer_fraction,
    )
