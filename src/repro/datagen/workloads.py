"""Ready-made CCA instances for the Section 5 experiments."""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.problem import CCAProblem
from repro.datagen.generator import derive_rng, generate_points
from repro.datagen.network import RoadNetwork, build_road_network

WORLD_LO = (0.0, 0.0)
WORLD_HI = (1000.0, 1000.0)

KSpec = Union[int, Tuple[int, int]]


@lru_cache(maxsize=4)
def _shared_network(grid: int, seed: int) -> RoadNetwork:
    return build_road_network(grid=grid, seed=seed)


def make_capacities(nq: int, k: KSpec, rng: np.random.Generator) -> Sequence[int]:
    """Fixed capacity ``k`` or per-provider uniform draw from ``(lo, hi)``
    (the Figure 12 "mixed k" setting)."""
    if isinstance(k, tuple):
        lo, hi = k
        if lo < 0 or hi < lo:
            raise ValueError("capacity range must satisfy 0 <= lo <= hi")
        return rng.integers(lo, hi + 1, size=nq).tolist()
    if k < 0:
        raise ValueError("capacity must be non-negative")
    return [int(k)] * nq


def make_problem(
    nq: int,
    np_: int,
    k: KSpec = 80,
    dist_q: str = "clustered",
    dist_p: str = "clustered",
    seed: int = 0,
    network_grid: int = 24,
    network_seed: int = 7,
    page_size: int = 1024,
    buffer_fraction: float = 0.01,
    rng: Optional[np.random.Generator] = None,
) -> CCAProblem:
    """Build a Section-5-style CCA instance.

    ``dist_q``/``dist_p`` choose the provider/customer distributions
    ('uniform'/'clustered'), reproducing the UvsU..CvsC grid of Figures 13
    and 18.  The road network is cached across calls (same grid/seed; the
    cache is per-process but deterministic in its arguments, so worker
    processes rebuild identical networks).

    All randomness flows through an explicit ``numpy.random.Generator``
    (pass ``rng`` to supply your own stream, e.g. one spawned per shard
    worker via :func:`repro.datagen.generator.spawn_rngs`); with the
    default ``rng=None`` the instance is a pure function of ``seed``.
    """
    network = _shared_network(network_grid, network_seed)
    if rng is None:
        rng = np.random.default_rng(seed)
    # Both sets cluster over the SAME dense districts (Section 5.1 places
    # Q and P on one map): one shared center draw per instance.
    centers_rng = np.random.default_rng((seed, network_seed, 77))
    centers = network.node_xy[
        centers_rng.choice(network.num_nodes, size=10, replace=False)
    ]

    def points_for(count, distribution):
        if distribution.lower() in ("c", "clustered"):
            return generate_points(
                network, count, distribution, rng=rng, centers=centers
            )
        return generate_points(network, count, distribution, rng=rng)

    provider_xy = points_for(nq, dist_q)
    customer_xy = points_for(np_, dist_p)
    capacities = make_capacities(nq, k, rng)
    return CCAProblem.from_arrays(
        provider_xy,
        capacities,
        customer_xy,
        page_size=page_size,
        buffer_fraction=buffer_fraction,
    )


def make_separated_problem(
    clusters: int = 4,
    nq_per: int = 12,
    np_per: int = 250,
    k: int = 80,
    spread: float = 25.0,
    separation: float = 500.0,
    seed: int = 0,
    page_size: int = 1024,
    buffer_fraction: float = 0.01,
) -> CCAProblem:
    """A provider-disjoint shardable workload: well-separated clusters.

    Each cluster holds ``nq_per`` providers and ``np_per`` customers drawn
    Gaussian around a grid center, with per-cluster capacity covering the
    whole per-cluster demand (``k·nq_per ≥ np_per``) and inter-cluster
    ``separation`` dwarfing the intra-cluster ``spread``.  Under those two
    conditions the global optimum never matches across clusters, so the
    sharded engine with ``shards=clusters`` must reproduce the serial
    optimum exactly — the correctness gate ``benchmarks/bench_shard.py``
    asserts in CI.

    Per-cluster points come from independently spawned SeedSequence
    streams (:func:`~repro.datagen.generator.derive_rng`), so the instance
    is reproducible from ``seed`` alone in any process.
    """
    if clusters < 1:
        raise ValueError("clusters must be positive")
    if k * nq_per < np_per:
        raise ValueError(
            "per-cluster capacity must cover per-cluster demand "
            f"(k*nq_per = {k * nq_per} < np_per = {np_per}); the "
            "separated workload's exactness argument requires it"
        )
    cols = int(math.ceil(math.sqrt(clusters)))
    provider_parts = []
    customer_parts = []
    for c in range(clusters):
        center = np.array(
            [
                (c % cols) * separation + separation / 2.0,
                (c // cols) * separation + separation / 2.0,
            ]
        )
        q_rng = derive_rng(seed, "separated-providers", c)
        p_rng = derive_rng(seed, "separated-customers", c)
        provider_parts.append(center + q_rng.normal(0.0, spread, (nq_per, 2)))
        customer_parts.append(center + p_rng.normal(0.0, spread, (np_per, 2)))
    return CCAProblem.from_arrays(
        np.concatenate(provider_parts, axis=0),
        [int(k)] * (clusters * nq_per),
        np.concatenate(customer_parts, axis=0),
        page_size=page_size,
        buffer_fraction=buffer_fraction,
    )
