"""Seeded event-stream workloads for the online assignment service.

The paper's solvers are batch algorithms; the serving layer
(:mod:`repro.serve`) replays *streams* of timestamped deltas against
long-lived warm sessions instead.  This module generates those streams —
customer arrivals and departures plus provider capacity churn — as a pure
function of ``(problem, spec, seed)``:

* **Arrival times** follow a non-homogeneous Poisson process thinned
  against one of three rate profiles (``steady`` — constant λ;
  ``burst`` — a constant base with periodic multiplicative bursts;
  ``diurnal`` — a sinusoidal day/night swing).  Thinning draws only from
  the explicit :class:`numpy.random.Generator`, so streams are
  deterministic and process-safe exactly like the rest of ``datagen``
  (see :func:`repro.datagen.generator.derive_rng`).
* **Event kinds** are mixed by configurable probabilities.  Departures
  always reference a customer that is live *at that point of the stream*
  (a base customer of the seeding problem or an earlier arrival that has
  not departed), so every generated stream replays cleanly.
* **Arrival placement** mirrors the Section 5.1 workloads: a configurable
  fraction of arrivals lands Gaussian-spread around a random provider
  (demand clusters where supply is), the rest uniform in the instance's
  world MBR.

Customer references use one shared id space with the serving engine:
refs ``0 .. |P|-1`` are the seeding problem's customers, and the ``i``-th
arrival of the stream gets ref ``|P| + i`` — the exact positional ids the
engine (and a cold re-solve of the final state) assigns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.problem import CCAProblem
from repro.datagen.generator import derive_rng

PROFILES = ("steady", "burst", "diurnal")
EVENT_KINDS = ("arrive", "depart", "capacity")


@dataclass(frozen=True)
class Event:
    """One timestamped delta against the live instance.

    ``kind`` selects which optional fields are meaningful:

    * ``"arrive"`` — ``xy`` (coordinates) and ``weight``; ``ref`` is the
      customer id the arrival will occupy (positional, see module doc).
    * ``"depart"`` — ``ref`` names the departing customer.
    * ``"capacity"`` — ``provider_id`` and the new ``capacity``.
    """

    seq: int
    time: float
    kind: str
    xy: Optional[Tuple[float, float]] = None
    ref: Optional[int] = None
    provider_id: Optional[int] = None
    capacity: Optional[int] = None
    weight: int = 1


@dataclass(frozen=True)
class EventStreamSpec:
    """Shape of a generated stream (everything but the seed).

    ``rate`` is the *mean* arrival-process intensity in events per time
    unit; the profile modulates the instantaneous rate around it.  The
    kind mix is ``p_depart`` / ``p_capacity`` with the remainder
    arrivals; departures fall through to arrivals while no customer is
    live, so short streams stay well-formed.
    """

    n_events: int = 1000
    profile: str = "steady"
    rate: float = 50.0
    p_depart: float = 0.25
    p_capacity: float = 0.05
    # burst profile: lambda(t) = rate * burst_factor inside the first
    # burst_width of every burst_period, rate outside.
    burst_factor: float = 4.0
    burst_period: float = 10.0
    burst_width: float = 2.0
    # diurnal profile: lambda(t) = rate * (1 + diurnal_amplitude *
    # sin(2 pi t / diurnal_period)), clipped at >= 5% of rate.
    diurnal_amplitude: float = 0.8
    diurnal_period: float = 40.0
    # arrival placement: cluster_fraction lands Gaussian(sigma) around a
    # random provider, the rest uniform in the world MBR.
    cluster_fraction: float = 0.8
    cluster_sigma: float = 25.0
    # capacity churn draws the new capacity uniformly from
    # [k * cap_lo_factor, k * cap_hi_factor] of the provider's *initial*
    # capacity (floors at 0); factors straddling 1.0 exercise both the
    # warm widening path and the cold decrease-below-usage fallback.
    cap_lo_factor: float = 0.5
    cap_hi_factor: float = 1.5

    def __post_init__(self):
        if self.n_events < 0:
            raise ValueError("n_events must be non-negative")
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; expected one of " f"{PROFILES}"
            )
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.p_depart < 0 or self.p_capacity < 0 or (
            self.p_depart + self.p_capacity > 1.0
        ):
            raise ValueError(
                "p_depart and p_capacity must be non-negative and sum " "to at most 1"
            )
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must lie in [0, 1]")
        if self.cap_lo_factor < 0 or self.cap_hi_factor < self.cap_lo_factor:
            raise ValueError("capacity factors must satisfy 0 <= lo <= hi")


def rate_at(spec: EventStreamSpec, t: float) -> float:
    """Instantaneous event rate lambda(t) of the spec's profile."""
    if spec.profile == "steady":
        return spec.rate
    if spec.profile == "burst":
        if (t % spec.burst_period) < spec.burst_width:
            return spec.rate * spec.burst_factor
        return spec.rate
    # diurnal
    swing = 1.0 + spec.diurnal_amplitude * math.sin(
        2.0 * math.pi * t / spec.diurnal_period
    )
    return max(spec.rate * 0.05, spec.rate * swing)


def _rate_ceiling(spec: EventStreamSpec) -> float:
    """A tight upper bound on lambda(t) for Poisson thinning."""
    if spec.profile == "steady":
        return spec.rate
    if spec.profile == "burst":
        return spec.rate * max(1.0, spec.burst_factor)
    return spec.rate * (1.0 + abs(spec.diurnal_amplitude))


def generate_events(
    problem: CCAProblem,
    spec: EventStreamSpec,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> List[Event]:
    """Generate a replayable event stream against ``problem``.

    Deterministic: with ``rng=None`` the stream is a pure function of the
    problem's provider/customer layout, the spec, and ``seed`` (via
    :func:`~repro.datagen.generator.derive_rng`), bit-identical in any
    process.  Pass an explicit ``rng`` to thread your own stream.
    """
    if rng is None:
        rng = derive_rng(seed, "events", spec.profile)
    qxy = np.array(
        [q.point.coords for q in problem.providers], dtype=float
    ).reshape(len(problem.providers), 2)
    base_caps = [q.capacity for q in problem.providers]
    world = problem.world_mbr()
    lo = np.asarray(world.lo, dtype=float)
    hi = np.asarray(world.hi, dtype=float)

    # Live customer refs: base customers first, arrivals appended.  A
    # Python list keeps the uniform "pick a live customer" draw stable
    # (index into the list) and removal cheap via swap-with-last.
    live: List[int] = [j for j, p in enumerate(problem.customers) if p.weight > 0]
    next_ref = len(problem.customers)

    lam_max = _rate_ceiling(spec)
    events: List[Event] = []
    t = 0.0
    while len(events) < spec.n_events:
        # Thinned non-homogeneous Poisson: candidate points at the
        # ceiling rate, accepted with probability lambda(t)/lam_max.
        t += rng.exponential(1.0 / lam_max)
        if rng.random() > rate_at(spec, t) / lam_max:
            continue
        u = rng.random()
        seq = len(events)
        if u < spec.p_depart and live:
            idx = int(rng.integers(0, len(live)))
            ref = live[idx]
            live[idx] = live[-1]
            live.pop()
            events.append(Event(seq=seq, time=t, kind="depart", ref=ref))
        elif u < spec.p_depart + spec.p_capacity and len(qxy):
            i = int(rng.integers(0, len(qxy)))
            k0 = base_caps[i]
            cap_lo = int(math.floor(k0 * spec.cap_lo_factor))
            cap_hi = max(cap_lo, int(math.ceil(k0 * spec.cap_hi_factor)))
            capacity = int(rng.integers(cap_lo, cap_hi + 1))
            events.append(
                Event(
                    seq=seq,
                    time=t,
                    kind="capacity",
                    provider_id=i,
                    capacity=capacity,
                )
            )
        else:
            if len(qxy) and rng.random() < spec.cluster_fraction:
                center = qxy[int(rng.integers(0, len(qxy)))]
                xy = center + rng.normal(0.0, spec.cluster_sigma, 2)
            else:
                xy = lo + rng.random(2) * (hi - lo)
            events.append(
                Event(
                    seq=seq,
                    time=t,
                    kind="arrive",
                    xy=(float(xy[0]), float(xy[1])),
                    ref=next_ref,
                )
            )
            live.append(next_ref)
            next_ref += 1
    return events


def group_events(events: List[Event], window: float) -> List[List[Event]]:
    """Coalesce a stream into delta groups under a batching window.

    Events within ``window`` time units of the group's first event join
    that group (the serving engine applies a group's deltas together and
    re-assigns each touched shard once).  ``window <= 0`` degenerates to
    one event per group.  Order is preserved exactly.
    """
    groups: List[List[Event]] = []
    current: List[Event] = []
    start = 0.0
    for event in events:
        if current and (window <= 0 or event.time >= start + window):
            groups.append(current)
            current = []
        if not current:
            start = event.time
        current.append(event)
    if current:
        groups.append(current)
    return groups


@dataclass
class StreamSummary:
    """Kind counts of a stream (handy for tests and bench reports)."""

    arrivals: int = 0
    departures: int = 0
    capacity_changes: int = 0
    duration: float = 0.0
    extra: dict = field(default_factory=dict)


def summarize_events(events: List[Event]) -> StreamSummary:
    summary = StreamSummary()
    for event in events:
        if event.kind == "arrive":
            summary.arrivals += 1
        elif event.kind == "depart":
            summary.departures += 1
        else:
            summary.capacity_changes += 1
    if events:
        summary.duration = events[-1].time - events[0].time
    return summary
