"""Workload generation (Section 5.1).

The paper generates both point sets on the San Francisco road map with the
Brinkhoff moving-objects generator: points lie on network edges, 80% of them
concentrated in 10 dense clusters and 20% spread uniformly, normalized to a
``[0, 1000]²`` space.  Neither the map nor the generator binary is
redistributable here, so :mod:`repro.datagen.network` synthesizes a road
network with the same role (a connected, locally-structured edge set) and
:mod:`repro.datagen.generator` reproduces the point-placement protocol on
top of it.  All randomness is seeded.
"""

from repro.datagen.network import RoadNetwork, build_road_network
from repro.datagen.generator import (
    generate_points,
    clustered_points,
    uniform_points,
)
from repro.datagen.workloads import (
    make_problem,
    make_capacities,
    WORLD_LO,
    WORLD_HI,
)

__all__ = [
    "RoadNetwork",
    "build_road_network",
    "generate_points",
    "clustered_points",
    "uniform_points",
    "make_problem",
    "make_capacities",
    "WORLD_LO",
    "WORLD_HI",
]
