"""Workload generation (Section 5.1).

The paper generates both point sets on the San Francisco road map with the
Brinkhoff moving-objects generator: points lie on network edges, 80% of them
concentrated in 10 dense clusters and 20% spread uniformly, normalized to a
``[0, 1000]²`` space.  Neither the map nor the generator binary is
redistributable here, so :mod:`repro.datagen.network` synthesizes a road
network with the same role (a connected, locally-structured edge set) and
:mod:`repro.datagen.generator` reproduces the point-placement protocol on
top of it.

All randomness flows through explicit ``numpy.random.Generator`` streams
derived with SeedSequence (:func:`~repro.datagen.generator.derive_rng`,
:func:`~repro.datagen.generator.spawn_rngs`) — no module-level RNG state —
so generation is deterministic per call and safe under multiprocessing.
"""

from repro.datagen.events import (
    EVENT_KINDS,
    PROFILES,
    Event,
    EventStreamSpec,
    generate_events,
    group_events,
    summarize_events,
)
from repro.datagen.generator import (
    clustered_points,
    derive_rng,
    generate_points,
    spawn_rngs,
    uniform_points,
)
from repro.datagen.network import RoadNetwork, build_road_network
from repro.datagen.workloads import (
    WORLD_HI,
    WORLD_LO,
    make_capacities,
    make_problem,
    make_separated_problem,
)

__all__ = [
    "Event",
    "EventStreamSpec",
    "EVENT_KINDS",
    "PROFILES",
    "generate_events",
    "group_events",
    "summarize_events",
    "RoadNetwork",
    "build_road_network",
    "generate_points",
    "clustered_points",
    "uniform_points",
    "derive_rng",
    "spawn_rngs",
    "make_problem",
    "make_capacities",
    "make_separated_problem",
    "WORLD_LO",
    "WORLD_HI",
]
