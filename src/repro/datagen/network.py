"""Synthetic road network (substitute for the San Francisco map [3]).

The network is a jittered grid over ``[0, 1000]²`` with random edge
deletions (dead ends, irregular blocks) and a sprinkle of diagonal
shortcuts (arterials).  What the CCA workload needs from a road map is (a)
points constrained to a 1-D edge skeleton and (b) spatial density that can
be locally skewed; both survive this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

WORLD_SIZE = 1000.0


@dataclass
class RoadNetwork:
    """Node coordinates plus an edge list with cached lengths."""

    node_xy: np.ndarray  # shape (n, 2)
    edges: np.ndarray  # shape (m, 2) int node indices
    edge_lengths: np.ndarray  # shape (m,)
    edge_midpoints: np.ndarray  # shape (m, 2)

    @property
    def num_nodes(self) -> int:
        return len(self.node_xy)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def total_length(self) -> float:
        return float(self.edge_lengths.sum())

    def point_on_edge(self, edge_index: int, fraction: float) -> Tuple[float, float]:
        """Coordinates at ``fraction`` ∈ [0, 1] along an edge."""
        a, b = self.edges[edge_index]
        xy = self.node_xy[a] + fraction * (self.node_xy[b] - self.node_xy[a])
        return float(xy[0]), float(xy[1])

    def to_networkx(self):
        """Export as a networkx graph (weights = Euclidean lengths)."""
        import networkx as nx

        graph = nx.Graph()
        for idx, (x, y) in enumerate(self.node_xy):
            graph.add_node(idx, x=float(x), y=float(y))
        for (a, b), length in zip(self.edges, self.edge_lengths, strict=False):
            graph.add_edge(int(a), int(b), weight=float(length))
        return graph


def build_road_network(
    grid: int = 24,
    seed: int = 7,
    jitter: float = 0.25,
    drop_fraction: float = 0.12,
    shortcut_fraction: float = 0.05,
    world_size: float = WORLD_SIZE,
) -> RoadNetwork:
    """Build the synthetic network.

    Parameters
    ----------
    grid:
        Nodes per side (``grid²`` intersections).
    jitter:
        Node displacement as a fraction of the cell size.
    drop_fraction:
        Fraction of grid edges removed (keeping the graph connected).
    shortcut_fraction:
        Extra diagonal edges, as a fraction of the grid edge count.
    """
    if grid < 2:
        raise ValueError("grid must be at least 2")
    rng = np.random.default_rng(seed)
    cell = world_size / (grid - 1)

    xs, ys = np.meshgrid(np.arange(grid), np.arange(grid))
    node_xy = np.stack([xs.ravel() * cell, ys.ravel() * cell], axis=1)
    node_xy = node_xy + rng.normal(0.0, jitter * cell, node_xy.shape)
    node_xy = np.clip(node_xy, 0.0, world_size)

    def node_id(col: int, row: int) -> int:
        return row * grid + col

    edge_set: List[Tuple[int, int]] = []
    for row in range(grid):
        for col in range(grid):
            if col + 1 < grid:
                edge_set.append((node_id(col, row), node_id(col + 1, row)))
            if row + 1 < grid:
                edge_set.append((node_id(col, row), node_id(col, row + 1)))

    # Random deletions, keeping connectivity via a spanning-tree check.
    edges = _drop_edges_keep_connected(edge_set, grid * grid, drop_fraction, rng)

    # Diagonal shortcuts.
    num_shortcuts = int(len(edge_set) * shortcut_fraction)
    existing = set(map(tuple, edges))
    for _ in range(num_shortcuts):
        row = rng.integers(0, grid - 1)
        col = rng.integers(0, grid - 1)
        a = node_id(col, row)
        b = node_id(col + 1, row + 1)
        if (a, b) not in existing:
            edges.append((a, b))
            existing.add((a, b))

    edge_arr = np.asarray(edges, dtype=int)
    vec = node_xy[edge_arr[:, 1]] - node_xy[edge_arr[:, 0]]
    lengths = np.hypot(vec[:, 0], vec[:, 1])
    midpoints = (node_xy[edge_arr[:, 0]] + node_xy[edge_arr[:, 1]]) / 2.0
    return RoadNetwork(node_xy, edge_arr, lengths, midpoints)


def _drop_edges_keep_connected(
    edge_set: List[Tuple[int, int]],
    num_nodes: int,
    drop_fraction: float,
    rng: np.random.Generator,
) -> List[Tuple[int, int]]:
    """Remove ~drop_fraction of edges but never disconnect the graph.

    A union-find over a random edge order selects a spanning skeleton that
    must stay; the remainder is eligible for deletion.
    """
    parent = list(range(num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    order = rng.permutation(len(edge_set))
    skeleton = set()
    for idx in order:
        a, b = edge_set[idx]
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
            skeleton.add(idx)

    deletable = [i for i in range(len(edge_set)) if i not in skeleton]
    num_drop = min(int(len(edge_set) * drop_fraction), len(deletable))
    drop = set(
        rng.choice(deletable, size=num_drop, replace=False).tolist() if num_drop else []
    )
    return [e for i, e in enumerate(edge_set) if i not in drop]
