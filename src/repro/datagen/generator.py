"""Point placement on the road network (the [15]-style generator).

Two distributions, as in Section 5.1:

* ``uniform`` (U) — points uniformly along the network's edges (edge picked
  proportionally to its length, position uniform along it);
* ``clustered`` (C) — 80% of the points in 10 dense clusters around random
  network nodes (Gaussian spread, snapped to the nearest edge), the
  remaining 20% uniform.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Union

import numpy as np
from scipy.spatial import cKDTree

from repro.datagen.network import RoadNetwork

DEFAULT_CLUSTERS = 10
DEFAULT_CLUSTER_FRACTION = 0.8
DEFAULT_CLUSTER_SIGMA = 30.0


# ----------------------------------------------------------------------
# process-safe RNG derivation
# ----------------------------------------------------------------------
# Every function in this package threads an explicit
# ``numpy.random.Generator``; nothing reads or mutates NumPy's legacy
# global RNG state.  That makes generation deterministic *per call* and
# therefore safe under multiprocessing: a shard worker that rebuilds an
# instance from ``(seed, key)`` gets bit-identical coordinates to the
# parent, regardless of fork/spawn start method or scheduling order.


def derive_rng(seed: int, *key: Union[int, str]) -> np.random.Generator:
    """A deterministic, collision-resistant generator for ``(seed, *key)``.

    Distinct keys give statistically independent streams (SeedSequence
    spawn-key semantics); string keys are hashed stably so call sites can
    name their streams (``derive_rng(seed, "providers", shard)``).
    """
    spawn_key = tuple(
        int.from_bytes(
            hashlib.sha256(part.encode("utf-8")).digest()[:8], "big"
        )
        if isinstance(part, str)
        else int(part)
        for part in key
    )
    return np.random.default_rng(
        np.random.SeedSequence(entropy=int(seed), spawn_key=spawn_key)
    )


def spawn_rngs(seed: int, n: int) -> List[np.random.Generator]:
    """``n`` independent child generators of ``seed`` (one per shard
    worker), via ``SeedSequence.spawn`` — the NumPy-recommended way to
    seed parallel workers without stream overlap."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(int(seed)).spawn(n)
    ]


def uniform_points(
    network: RoadNetwork, n: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` points uniformly distributed over the network's edges."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return np.empty((0, 2))
    probabilities = network.edge_lengths / network.edge_lengths.sum()
    edge_idx = rng.choice(network.num_edges, size=n, p=probabilities)
    fractions = rng.random(n)
    a = network.node_xy[network.edges[edge_idx, 0]]
    b = network.node_xy[network.edges[edge_idx, 1]]
    return a + fractions[:, None] * (b - a)


def clustered_points(
    network: RoadNetwork,
    n: int,
    rng: np.random.Generator,
    clusters: int = DEFAULT_CLUSTERS,
    cluster_fraction: float = DEFAULT_CLUSTER_FRACTION,
    sigma: float = DEFAULT_CLUSTER_SIGMA,
    centers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """80/20 clustered placement snapped to the nearest network edge.

    ``centers`` pins the cluster centers; the Section 5.1 protocol draws
    *both* point sets over the same dense districts of the map, so the
    workload factory passes one shared center set for Q and P.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= cluster_fraction <= 1.0:
        raise ValueError("cluster_fraction must lie in [0, 1]")
    if n == 0:
        return np.empty((0, 2))
    n_clustered = int(round(n * cluster_fraction))
    n_uniform = n - n_clustered

    parts = []
    if n_clustered:
        if centers is None:
            centers = network.node_xy[
                rng.choice(network.num_nodes, size=clusters, replace=False)
            ]
        else:
            centers = np.asarray(centers, dtype=float)
            clusters = len(centers)
        assignment = rng.integers(0, clusters, size=n_clustered)
        targets = centers[assignment] + rng.normal(0.0, sigma, (n_clustered, 2))
        # Snap each Gaussian draw onto the road skeleton: nearest edge
        # midpoint, then a uniform position on that edge.
        tree = cKDTree(network.edge_midpoints)
        _, nearest_edge = tree.query(targets)
        fractions = rng.random(n_clustered)
        a = network.node_xy[network.edges[nearest_edge, 0]]
        b = network.node_xy[network.edges[nearest_edge, 1]]
        parts.append(a + fractions[:, None] * (b - a))
    if n_uniform:
        parts.append(uniform_points(network, n_uniform, rng))
    out = np.concatenate(parts, axis=0)
    rng.shuffle(out)
    return out


def generate_points(
    network: RoadNetwork,
    n: int,
    distribution: str = "clustered",
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> np.ndarray:
    """Dispatch on distribution code: 'uniform'/'U' or 'clustered'/'C'."""
    if rng is None:
        rng = np.random.default_rng(seed)
    dist = distribution.lower()
    if dist in ("u", "uniform"):
        return uniform_points(network, n, rng)
    if dist in ("c", "clustered"):
        return clustered_points(network, n, rng, **kwargs)
    raise ValueError(
        f"unknown distribution {distribution!r}; use 'uniform' or 'clustered'"
    )
