"""The Section 5 evaluation suite.

Every table and figure of the paper's experimental section maps to a
:class:`~repro.experiments.figures.FigureSpec`; the harness sweeps the
figure's parameter, runs the figure's methods, and prints the same series
the paper plots (subgraph size, CPU time, charged I/O time, matching
quality).  Paper-scale inputs (|P| = 100K) are impractical in pure Python,
so specs are evaluated at a documented linear ``scale`` that preserves the
``k·|Q| ⋚ |P|`` regime driving every reported trend.
"""

from repro.experiments.config import (
    BENCH_SCALE,
    DEFAULT_SCALE,
    PAPER_DEFAULTS,
    PARAMETER_TABLE,
    default_theta,
)
from repro.experiments.figures import FIGURES, FigureSpec, run_figure
from repro.experiments.harness import run_method, run_sweep
from repro.experiments.metrics import MethodResult
from repro.experiments.report import format_figure_report, format_table2

__all__ = [
    "PAPER_DEFAULTS",
    "PARAMETER_TABLE",
    "DEFAULT_SCALE",
    "BENCH_SCALE",
    "default_theta",
    "MethodResult",
    "run_method",
    "run_sweep",
    "FIGURES",
    "FigureSpec",
    "run_figure",
    "format_figure_report",
    "format_table2",
]
