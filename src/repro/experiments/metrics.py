"""Per-run measurement records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class MethodResult:
    """One (method, sweep-value) cell of a figure.

    Mirrors exactly what Section 5 plots: subgraph size (``esub``),
    CPU seconds, charged I/O seconds (faults × 10 ms), their sum, plus the
    matching cost and — when an exact reference is available — the quality
    ratio Ψ(M)/Ψ(M_CCA).
    """

    figure: str
    sweep_label: str
    method: str
    esub: int = 0
    cpu_s: float = 0.0
    io_faults: int = 0
    io_s: float = 0.0
    cost: float = 0.0
    matched: int = 0
    gamma: int = 0
    quality: Optional[float] = None
    extra: Dict = field(default_factory=dict)
    # Supervised (sharded) runs only: the FaultLedger roll-up — every
    # retry/requeue/timeout the run absorbed while still producing the
    # fault-free matching.  None when the run saw no faults.
    faults: Optional[Dict] = None

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.io_s

    def as_row(self) -> Dict:
        row = {
            "figure": self.figure,
            "sweep": self.sweep_label,
            "method": self.method,
            "esub": self.esub,
            "cpu_s": round(self.cpu_s, 4),
            "io_faults": self.io_faults,
            "io_s": round(self.io_s, 4),
            "total_s": round(self.total_s, 4),
            "cost": round(self.cost, 2),
            "matched": self.matched,
            "gamma": self.gamma,
        }
        if self.quality is not None:
            row["quality"] = round(self.quality, 4)
        if self.faults is not None:
            row["faults"] = self.faults
        return row
