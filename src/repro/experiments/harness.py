"""Run solvers on workloads and collect the paper's metrics."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.problem import CCAProblem
from repro.experiments.config import PAPER_DEFAULTS, default_theta
from repro.experiments.metrics import MethodResult


def run_method(
    problem: CCAProblem,
    method: str,
    figure: str = "",
    sweep_label: str = "",
    optimal_cost: Optional[float] = None,
    theta: Optional[float] = None,
    delta: Optional[float] = None,
    io_penalty_s: float = PAPER_DEFAULTS["io_penalty_s"],
    backend: str = "dict",
    index_backend: Optional[str] = None,
    ann_group_size: Optional[int] = None,
    shards: int = 1,
    workers: Optional[int] = None,
    router: str = "nearest",
) -> MethodResult:
    """Solve ``problem`` with ``method`` and record a result row.

    ``shards > 1`` routes exact methods through the sharded parallel
    engine (``workers`` processes, ``router`` customer routing).
    """
    # Imported here, not at module level: repro.core.solve pulls its
    # SA/CA delta defaults from experiments.config, so a module-level
    # import would be circular through the package __init__.
    from repro.core.solve import solve

    if theta is None:
        theta = default_theta(len(problem.customers))
    matching = solve(
        problem,
        method,
        theta=theta,
        delta=delta,
        backend=backend,
        index_backend=index_backend,
        ann_group_size=ann_group_size,
        shards=shards,
        workers=workers,
        router=router,
    )
    stats = matching.stats
    stats.io.io_penalty_s = io_penalty_s
    result = MethodResult(
        figure=figure,
        sweep_label=sweep_label,
        method=method,
        esub=stats.esub_edges,
        cpu_s=stats.cpu_s,
        io_faults=stats.io.faults,
        io_s=stats.io.io_time_s,
        cost=matching.cost,
        matched=matching.size,
        gamma=stats.gamma,
        extra=dict(stats.extra),
    )
    if stats.stage_s:
        # Per-stage pipeline wall times (the `repro-cca profile` surface).
        result.extra["stage_s"] = dict(stats.stage_s)
    ledger = getattr(stats, "faults", None)
    if ledger is not None and len(ledger):
        # Faults the supervised sharded run absorbed (retries, cold
        # requeues, timeouts) on its way to the fault-free matching.
        result.faults = ledger.summary()
    if optimal_cost is not None and optimal_cost > 0:
        result.quality = matching.cost / optimal_cost
    return result


def run_sweep(
    problems: Dict[str, CCAProblem],
    methods: Iterable[str],
    figure: str = "",
    quality_reference: Optional[str] = None,
    theta: Optional[float] = None,
    deltas: Optional[Dict[str, float]] = None,
    io_penalty_s: float = PAPER_DEFAULTS["io_penalty_s"],
) -> List[MethodResult]:
    """Run every method on every sweep point.

    ``quality_reference`` names an exact method whose cost becomes the
    Ψ(M_CCA) denominator for the other methods' quality ratios (the
    Section 5.3 protocol: quality is always measured against IDA's
    optimum).
    """
    deltas = deltas or {}
    results: List[MethodResult] = []
    for sweep_label, problem in problems.items():
        optimal_cost: Optional[float] = None
        if quality_reference is not None:
            ref = run_method(
                problem,
                quality_reference,
                figure=figure,
                sweep_label=sweep_label,
                theta=theta,
                io_penalty_s=io_penalty_s,
            )
            optimal_cost = ref.cost
            ref.quality = 1.0
            results.append(ref)
        for method in methods:
            if method == quality_reference:
                continue
            results.append(
                run_method(
                    problem,
                    method,
                    figure=figure,
                    sweep_label=sweep_label,
                    optimal_cost=optimal_cost,
                    theta=theta,
                    delta=deltas.get(method),
                    io_penalty_s=io_penalty_s,
                )
            )
    return results
