"""ASCII/markdown rendering of experiment results."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.config import PARAMETER_TABLE
from repro.experiments.figures import FIGURES
from repro.experiments.metrics import MethodResult


def _unique_in_order(values: Sequence[str]) -> List[str]:
    seen = {}
    for v in values:
        seen.setdefault(v, None)
    return list(seen)


def _pivot(results: List[MethodResult], metric: str) -> Dict[str, Dict[str, str]]:
    """sweep label -> method -> formatted metric."""
    table: Dict[str, Dict[str, str]] = {}
    for r in results:
        value = getattr(r, metric)
        if value is None:
            text = "-"
        elif metric == "esub":
            text = str(value)
        elif metric == "quality":
            text = f"{value:.4f}"
        else:
            text = f"{value:.3f}"
        table.setdefault(r.sweep_label, {})[r.method] = text
    return table


def _render_pivot(title: str, results: List[MethodResult], metric: str) -> str:
    table = _pivot(results, metric)
    sweeps = _unique_in_order([r.sweep_label for r in results])
    methods = _unique_in_order([r.method for r in results])
    header = ["sweep"] + methods
    rows = [[s] + [table.get(s, {}).get(m, "-") for m in methods] for s in sweeps]
    widths = [
        max(len(header[c]), *(len(row[c]) for row in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths, strict=False)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=False))
        )
    return "\n".join(lines)


def format_figure_report(
    fig_id: str,
    results: List[MethodResult],
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """Render a figure's series as stacked pivot tables (one per metric)."""
    spec = FIGURES[fig_id.lower()]
    if metrics is None:
        has_quality = any(r.quality is not None for r in results)
        metrics = ["esub", "cpu_s", "io_s", "total_s"]
        if has_quality:
            metrics = ["quality"] + metrics
    blocks = [
        f"== {spec.fig_id}: {spec.title} ==",
        f"paper setup   : {spec.paper_setup}",
        f"expected shape: {spec.expected_shape}",
        "",
    ]
    for metric in metrics:
        blocks.append(_render_pivot(f"-- {metric} --", results, metric))
        blocks.append("")
    return "\n".join(blocks)


def format_table2() -> str:
    """Render the paper's Table 2 (system parameters)."""
    header = ("Parameter", "Default", "Range")
    rows = [header] + [tuple(r) for r in PARAMETER_TABLE]
    widths = [max(len(r[c]) for r in rows) for c in range(3)]
    lines = ["== Table 2: system parameters =="]
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=False))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def figure_to_markdown(fig_id: str, results: List[MethodResult]) -> str:
    """A figure's full markdown section (all metrics) for EXPERIMENTS.md."""
    spec = FIGURES[fig_id.lower()]
    has_quality = any(r.quality is not None for r in results)
    metrics = ["esub", "cpu_s", "io_s", "total_s"]
    if has_quality:
        metrics = ["quality"] + metrics
    parts = [
        f"### {spec.fig_id}: {spec.title}",
        "",
        f"*Paper setup*: {spec.paper_setup}",
        "",
        f"*Expected shape (paper)*: {spec.expected_shape}",
        "",
    ]
    for metric in metrics:
        parts.append(f"**{metric}**")
        parts.append("")
        parts.append(results_to_markdown(fig_id, results, metric))
        parts.append("")
    return "\n".join(parts)


def results_to_markdown(fig_id: str, results: List[MethodResult], metric: str) -> str:
    """One metric as a GitHub-markdown table (EXPERIMENTS.md fodder)."""
    table = _pivot(results, metric)
    sweeps = _unique_in_order([r.sweep_label for r in results])
    methods = _unique_in_order([r.method for r in results])
    lines = [
        "| sweep | " + " | ".join(methods) + " |",
        "|---" * (len(methods) + 1) + "|",
    ]
    for s in sweeps:
        cells = [table.get(s, {}).get(m, "-") for m in methods]
        lines.append("| " + s + " | " + " | ".join(cells) + " |")
    return "\n".join(lines)
