"""Experiment configuration (Table 2 and scaling rules)."""

from __future__ import annotations

import math
from typing import Dict

# Paper defaults (Section 5.1 / Table 2), in paper units.
PAPER_DEFAULTS: Dict = {
    "nq": 1000,
    "np": 100_000,
    "k": 80,
    "theta": 0.8,  # fine-tuned for |P| = 100K
    "sa_delta": 40.0,
    "ca_delta": 10.0,
    "ann_group_size": 8,  # Section 3.4.2 provider-group size (Algorithm 6)
    "page_size": 1024,
    "buffer_fraction": 0.01,
    "io_penalty_s": 0.010,
}

# Table 2 verbatim: parameter, default, investigated range.
PARAMETER_TABLE = [
    ("|Q| (in thousands)", "1", "0.25, 0.5, 1, 2.5, 5"),
    ("|P| (in thousands)", "100", "25, 50, 100, 150, 200"),
    ("Capacity k", "80", "20, 40, 80, 160, 320"),
    ("Diagonal delta", "SA: 40, CA: 10", "10, 20, 40, 80, 160"),
]

# Linear scale-down applied to |Q| and |P| (k, θ-equivalents, and δ are
# left in paper units).  0.05 ⇒ |Q| = 50, |P| = 5000.
DEFAULT_SCALE = 0.05
# Benches run at a further reduced scale so the suite finishes in minutes
# on a single core (|Q| = 10, |P| = 1000 at the paper defaults).
BENCH_SCALE = 0.01


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a paper-size cardinality, with a floor."""
    return max(minimum, int(round(value * scale)))


def default_theta(np_actual: int) -> float:
    """RIA's θ, re-tuned to the actual customer density.

    The paper fine-tunes θ = 0.8 at |P| = 100K in a 1000² world.  Expected
    NN distance scales as |P|^-1/2, so we keep θ at the same *fraction* of
    it: θ(|P|) = 250 / sqrt(|P|), which reproduces 0.79 at 100K.
    """
    if np_actual <= 0:
        raise ValueError("customer count must be positive")
    return 250.0 / math.sqrt(np_actual)
