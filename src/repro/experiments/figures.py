"""The catalog of Section 5 figures and their runners.

Each :class:`FigureSpec` documents the paper's setup (in paper units) and
produces the measured rows at a chosen scale.  ``run_figure("fig9")`` is the
single entry point used by the CLI and the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.problem import CCAProblem
from repro.datagen.workloads import make_problem
from repro.experiments.config import DEFAULT_SCALE, PAPER_DEFAULTS, scaled
from repro.experiments.harness import run_method, run_sweep
from repro.experiments.metrics import MethodResult

EXACT_TRIO = ("ria", "nia", "ida")
APPROX_QUAD = ("san", "sae", "can", "cae")
K_SWEEP = (20, 40, 80, 160, 320)
NQ_SWEEP = (250, 500, 1000, 2500, 5000)
NP_SWEEP = (25_000, 50_000, 100_000, 150_000, 200_000)
MIXED_K_SWEEP = ((10, 30), (20, 60), (40, 120), (80, 240), (160, 480))
DELTA_SWEEP = (10.0, 20.0, 40.0, 80.0, 160.0)
DISTRIBUTION_SWEEP = (
    ("UvsU", "uniform", "uniform"),
    ("UvsC", "uniform", "clustered"),
    ("CvsU", "clustered", "uniform"),
    ("CvsC", "clustered", "clustered"),
)
# Figure 8 runs SSPA on the complete bipartite graph; the paper already
# shrinks it to |Q|=250, |P|=25K, and we shrink further relative to the
# other figures so the baseline stays tractable in pure Python.
FIG8_EXTRA = 0.4
APPROX_DELTAS = {
    "san": PAPER_DEFAULTS["sa_delta"],
    "sae": PAPER_DEFAULTS["sa_delta"],
    "can": PAPER_DEFAULTS["ca_delta"],
    "cae": PAPER_DEFAULTS["ca_delta"],
}


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible experiment from Section 5."""

    fig_id: str
    title: str
    paper_setup: str
    expected_shape: str
    runner: Callable[[float, int], List[MethodResult]]

    def run(self, scale: float = DEFAULT_SCALE, seed: int = 0) -> List[MethodResult]:
        return self.runner(scale, seed)


# ----------------------------------------------------------------------
# workload builders
# ----------------------------------------------------------------------
def _default_problem(scale: float, seed: int, **overrides) -> CCAProblem:
    params = dict(
        nq=scaled(PAPER_DEFAULTS["nq"], scale),
        np_=scaled(PAPER_DEFAULTS["np"], scale),
        k=PAPER_DEFAULTS["k"],
        seed=seed,
    )
    params.update(overrides)
    return make_problem(**params)


def _k_sweep_problems(scale: float, seed: int, **overrides):
    return {f"k={k}": _default_problem(scale, seed, k=k, **overrides) for k in K_SWEEP}


# ----------------------------------------------------------------------
# figure runners
# ----------------------------------------------------------------------
def _run_fig8(scale: float, seed: int) -> List[MethodResult]:
    sub_scale = scale * FIG8_EXTRA
    problems = {
        f"k={k}": make_problem(
            nq=scaled(250, sub_scale, minimum=2),
            np_=scaled(25_000, sub_scale, minimum=50),
            k=k,
            seed=seed,
        )
        for k in K_SWEEP
    }
    return run_sweep(problems, ("sspa",) + EXACT_TRIO, figure="fig8")


def _run_fig9(scale: float, seed: int) -> List[MethodResult]:
    return run_sweep(_k_sweep_problems(scale, seed), EXACT_TRIO, figure="fig9")


def _run_fig10(scale: float, seed: int) -> List[MethodResult]:
    problems = {
        f"|Q|={nq_paper}": _default_problem(
            scale, seed, nq=scaled(nq_paper, scale, minimum=2)
        )
        for nq_paper in NQ_SWEEP
    }
    return run_sweep(problems, EXACT_TRIO, figure="fig10")


def _run_fig11(scale: float, seed: int) -> List[MethodResult]:
    problems = {
        f"|P|={np_paper}": _default_problem(
            scale, seed, np_=scaled(np_paper, scale, minimum=50)
        )
        for np_paper in NP_SWEEP
    }
    return run_sweep(problems, EXACT_TRIO, figure="fig11")


def _run_fig12(scale: float, seed: int) -> List[MethodResult]:
    problems = {
        f"k={lo}~{hi}": _default_problem(scale, seed, k=(lo, hi))
        for lo, hi in MIXED_K_SWEEP
    }
    return run_sweep(problems, EXACT_TRIO, figure="fig12")


def _run_fig13(scale: float, seed: int) -> List[MethodResult]:
    problems = {
        label: _default_problem(scale, seed, dist_q=dq, dist_p=dp)
        for label, dq, dp in DISTRIBUTION_SWEEP
    }
    return run_sweep(problems, EXACT_TRIO, figure="fig13")


def _run_fig14(scale: float, seed: int) -> List[MethodResult]:
    """Quality/time vs δ: one default workload, δ swept per method."""
    problem = _default_problem(scale, seed)
    reference = run_method(problem, "ida", figure="fig14", sweep_label="-")
    reference.quality = 1.0
    results = [reference]
    for delta in DELTA_SWEEP:
        for method in APPROX_QUAD:
            results.append(
                run_method(
                    problem,
                    method,
                    figure="fig14",
                    sweep_label=f"d={delta:g}",
                    optimal_cost=reference.cost,
                    delta=delta,
                )
            )
    return results


def _run_approx_sweep(
    problems: Dict[str, CCAProblem], figure: str
) -> List[MethodResult]:
    return run_sweep(
        problems,
        ("ida",) + APPROX_QUAD,
        figure=figure,
        quality_reference="ida",
        deltas=APPROX_DELTAS,
    )


def _run_fig15(scale: float, seed: int) -> List[MethodResult]:
    return _run_approx_sweep(_k_sweep_problems(scale, seed), "fig15")


def _run_fig16(scale: float, seed: int) -> List[MethodResult]:
    problems = {
        f"|Q|={nq_paper}": _default_problem(
            scale, seed, nq=scaled(nq_paper, scale, minimum=2)
        )
        for nq_paper in NQ_SWEEP
    }
    return _run_approx_sweep(problems, "fig16")


def _run_fig17(scale: float, seed: int) -> List[MethodResult]:
    problems = {
        f"|P|={np_paper}": _default_problem(
            scale, seed, np_=scaled(np_paper, scale, minimum=50)
        )
        for np_paper in NP_SWEEP
    }
    return _run_approx_sweep(problems, "fig17")


def _run_fig18(scale: float, seed: int) -> List[MethodResult]:
    problems = {
        label: _default_problem(scale, seed, dist_q=dq, dist_p=dp)
        for label, dq, dp in DISTRIBUTION_SWEEP
    }
    return _run_approx_sweep(problems, "fig18")


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
FIGURES: Dict[str, FigureSpec] = {
    spec.fig_id: spec
    for spec in (
        FigureSpec(
            "fig8",
            "CPU time vs k (small instance incl. SSPA)",
            "|Q|=250, |P|=25K, k in {20..320}; SSPA vs RIA/NIA/IDA",
            "incremental methods 1-3 orders of magnitude faster than SSPA",
            _run_fig8,
        ),
        FigureSpec(
            "fig9",
            "|Esub| and total time vs capacity k",
            "|Q|=1K, |P|=100K, k in {20..320}",
            "Esub << full graph; IDA smallest while k|Q| < |P|; "
            "costs rise with k",
            _run_fig9,
        ),
        FigureSpec(
            "fig10",
            "|Esub| and total time vs |Q|",
            "k=80, |P|=100K, |Q| in {0.25K..5K}",
            "cost grows with |Q| then saturates once k|Q| > |P|",
            _run_fig10,
        ),
        FigureSpec(
            "fig11",
            "|Esub| and total time vs |P|",
            "k=80, |Q|=1K, |P| in {25K..200K}",
            "subgraph shrinks as P densifies (NNs get closer)",
            _run_fig11,
        ),
        FigureSpec(
            "fig12",
            "mixed capacities",
            "k ~ U[10,30] .. U[160,480], |Q|=1K, |P|=100K",
            "same trends as uniform k (Figure 9)",
            _run_fig12,
        ),
        FigureSpec(
            "fig13",
            "distribution combinations (exact)",
            "UvsU / UvsC / CvsU / CvsC at defaults",
            "mismatched distributions are much costlier; NIA can trail RIA",
            _run_fig13,
        ),
        FigureSpec(
            "fig14",
            "approximation quality and time vs delta",
            "delta in {10..160}; SAN/SAE/CAN/CAE vs IDA",
            "error and cost drop with delta; CA dominates SA except tiny "
            "delta",
            _run_fig14,
        ),
        FigureSpec(
            "fig15",
            "approximation vs capacity k",
            "k in {20..320}; delta SA:40 CA:10",
            "quality ratio improves with k; CA more robust than SA",
            _run_fig15,
        ),
        FigureSpec(
            "fig16",
            "approximation vs |Q|",
            "|Q| in {0.25K..5K}",
            "CA beats SA; CA quality degrades mildly with |Q|",
            _run_fig16,
        ),
        FigureSpec(
            "fig17",
            "approximation vs |P|",
            "|P| in {25K..200K}",
            "SA degrades with |P|; CA only mildly affected",
            _run_fig17,
        ),
        FigureSpec(
            "fig18",
            "approximation across distributions",
            "UvsU / UvsC / CvsU / CvsC at defaults",
            "CA fastest everywhere; near-optimal quality",
            _run_fig18,
        ),
    )
}


def run_figure(
    fig_id: str, scale: float = DEFAULT_SCALE, seed: int = 0
) -> List[MethodResult]:
    """Regenerate one figure's data series at the given scale."""
    key = fig_id.lower()
    if key not in FIGURES:
        raise KeyError(f"unknown figure {fig_id!r}; available: {sorted(FIGURES)}")
    return FIGURES[key].run(scale=scale, seed=seed)
