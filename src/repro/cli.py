"""Command-line interface.

Examples::

    repro-cca list
    repro-cca table2
    repro-cca figure fig9 --scale 0.05 --seed 0
    repro-cca solve --nq 50 --np 5000 --k 80 --method ida
    repro-cca serve --nq 50 --np 5000 --events 200 --shards 4
    repro-cca index-info --np 5000 --index-backend packed
    repro-cca generate --n 1000 --distribution clustered --out points.csv
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from repro.core.shard import ROUTERS
from repro.datagen.events import PROFILES as EVENT_PROFILES
from repro.datagen.generator import generate_points
from repro.datagen.network import build_road_network
from repro.datagen.workloads import make_problem
from repro.experiments.config import DEFAULT_SCALE, PAPER_DEFAULTS
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.harness import run_method
from repro.experiments.report import format_figure_report, format_table2
from repro.flow.backend import BACKEND_CHOICES, get_backend
from repro.rtree.backend import INDEX_BACKENDS, index_info


def _cmd_lint(args) -> int:
    from repro.lint import all_rules, lint_paths

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0
    try:
        diags = lint_paths(args.paths, strict=args.strict)
    except OSError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    for diag in diags:
        print(diag.render())
    if diags:
        files = len({d.path for d in diags})
        print(f"repro-lint: {len(diags)} finding(s) in {files} file(s)")
        return 1
    return 0


def _cmd_list(_args) -> int:
    print("Available figures (run with: repro-cca figure <id>):")
    for fig_id, spec in sorted(FIGURES.items()):
        print(f"  {fig_id:<6} {spec.title}")
        print(f"         setup: {spec.paper_setup}")
    return 0


def _cmd_table2(_args) -> int:
    print(format_table2())
    return 0


def _cmd_figure(args) -> int:
    started = time.perf_counter()
    results = run_figure(args.figure_id, scale=args.scale, seed=args.seed)
    report = format_figure_report(args.figure_id, results)
    print(report)
    print(
        f"(regenerated in {time.perf_counter() - started:.1f}s wall, "
        f"scale={args.scale}, seed={args.seed})"
    )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        print(f"written to {args.out}")
    return 0


def _cmd_all(args) -> int:
    """Regenerate every figure; write one text + one markdown report."""
    from repro.experiments.report import figure_to_markdown

    import os

    order = sorted(FIGURES, key=lambda f: int(f.replace("fig", "")))
    out_dir = None
    if args.out:
        out_dir = os.path.dirname(os.path.abspath(args.out)) or "."
    text_blocks = [format_table2(), ""]
    md_blocks = []
    for fig_id in order:
        started = time.perf_counter()
        print(f"[{fig_id}] running at scale={args.scale} ...", flush=True)
        results = run_figure(fig_id, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        print(f"[{fig_id}] done in {elapsed:.1f}s", flush=True)
        text_blocks.append(format_figure_report(fig_id, results))
        md_blocks.append(figure_to_markdown(fig_id, results))
        if out_dir:
            # Incremental per-figure dumps survive interruption.
            with open(os.path.join(out_dir, f"{fig_id}.md"), "w") as fh:
                fh.write(md_blocks[-1] + "\n")
    text = "\n".join(text_blocks)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        with open(args.out.rsplit(".", 1)[0] + ".md", "w") as fh:
            fh.write("\n".join(md_blocks) + "\n")
        print(f"reports written to {args.out} (+ .md)")
    else:
        print(text)
    return 0


def _cmd_solve(args) -> int:
    problem = make_problem(
        nq=args.nq,
        np_=args.np,
        k=args.k,
        dist_q=args.dist_q,
        dist_p=args.dist_p,
        seed=args.seed,
    )
    backend = get_backend(args.backend)  # warns + falls back for 'numba'
    result = run_method(
        problem,
        args.method,
        sweep_label="cli",
        backend=backend,
        index_backend=args.index_backend,
        ann_group_size=args.ann_group_size,
        shards=args.shards,
        workers=args.workers,
        router=args.router,
    )
    sharding = (
        f" shards={args.shards} workers={args.workers or 1} "
        f"router={args.router}"
        if args.shards > 1
        else ""
    )
    print(
        f"method={args.method} backend={backend.name} "
        f"index={args.index_backend} "
        f"|Q|={args.nq} |P|={args.np} k={args.k} gamma={result.gamma}"
        f"{sharding}"
    )
    print(
        f"cost={result.cost:.2f} matched={result.matched} "
        f"esub={result.esub} cpu={result.cpu_s:.3f}s "
        f"io={result.io_s:.3f}s ({result.io_faults} faults) "
        f"total={result.total_s:.3f}s"
    )
    if args.shards > 1:
        extra = result.extra
        print(
            f"sharding: plan={extra['plan_s']:.3f}s "
            f"route={extra['route_s']:.3f}s "
            f"solve={extra['solve_s']:.3f}s "
            f"reconcile={extra['reconcile_s']:.3f}s "
            f"(moves={extra['reconcile_moves']}, "
            f"residual={extra['residual']['matched']})"
        )
    return 0


def _cmd_profile(args) -> int:
    """Per-stage wall-time breakdown of one solve — where the fused
    pipeline spends its time for a given method/backend combo.

    Stages (collected in ``SolverStats.stage_s`` by the solvers
    themselves): ``supply`` (index/ANN retrieval), ``insert`` (edge
    insertion into the flow network), ``dijkstra`` (shortest-path
    search), ``augment`` (path reversal + potential update); the
    remainder is certification, heap upkeep, and bookkeeping.
    """
    problem = make_problem(
        nq=args.nq,
        np_=args.np,
        k=args.k,
        dist_q=args.dist_q,
        dist_p=args.dist_p,
        seed=args.seed,
    )
    backend = get_backend(args.backend)  # warns + falls back for 'numba'
    result = run_method(
        problem,
        args.method,
        sweep_label="profile",
        backend=backend,
        index_backend=args.index_backend,
        ann_group_size=args.ann_group_size,
    )
    ran = backend.name
    if ran != args.backend:
        # The numba->array fallback emits a RuntimeWarning, but a profile
        # is exactly where silently reading the wrong backend's numbers
        # hurts — say which kernel actually produced them.
        ran = f"{ran} (requested {args.backend!r}, ran {ran!r})"
    print(
        f"method={args.method} backend={ran} "
        f"index={args.index_backend} |Q|={args.nq} |P|={args.np} "
        f"k={args.k} gamma={result.gamma}"
    )
    print(
        f"cost={result.cost:.2f} esub={result.esub} "
        f"cpu={result.cpu_s:.3f}s io={result.io_s:.3f}s "
        f"({result.io_faults} faults)"
    )
    stage_s = result.extra.get("stage_s", {})
    total_s = result.cpu_s
    if not stage_s and "concise" in result.extra:
        # SA/CA run IDA internally on a concise instance; surface that
        # solve's breakdown, against *its* cpu time (the outer partition
        # build and refinement phases are untimed and reported apart).
        inner = result.extra["concise"]
        stage_s = getattr(inner, "stage_s", {})
        total_s = getattr(inner, "cpu_s", result.cpu_s)
        print(
            f"(stage breakdown of the internal concise-matching solve: "
            f"{total_s:.3f}s of {result.cpu_s:.3f}s total; the remainder "
            f"is partitioning + refinement)"
        )
    if not stage_s:
        print("no stage timings recorded for this method")
        return 0
    timed = sum(stage_s.values())
    other = max(0.0, total_s - timed)
    width = max(len(s) for s in list(stage_s) + ["other"])
    for stage in ("supply", "insert", "dijkstra", "augment"):
        if stage in stage_s:
            seconds = stage_s[stage]
            share = 100.0 * seconds / total_s if total_s else 0.0
            print(f"  {stage:<{width}}  {seconds:8.3f}s  {share:5.1f}%")
    for stage in sorted(set(stage_s) - {"supply", "insert", "dijkstra", "augment"}):
        seconds = stage_s[stage]
        share = 100.0 * seconds / total_s if total_s else 0.0
        print(f"  {stage:<{width}}  {seconds:8.3f}s  {share:5.1f}%")
    share = 100.0 * other / total_s if total_s else 0.0
    print(f"  {'other':<{width}}  {other:8.3f}s  {share:5.1f}%")
    return 0


def _cmd_serve(args) -> int:
    """Replay a seeded event stream against warm shard sessions and
    report per-delta latency, throughput, and the warm/cold ledger."""
    from repro.datagen.events import (
        EventStreamSpec,
        generate_events,
        summarize_events,
    )
    from repro.serve.engine import OnlineAssignmentService

    problem = make_problem(
        nq=args.nq,
        np_=args.np,
        k=args.k,
        dist_q=args.dist_q,
        dist_p=args.dist_p,
        seed=args.seed,
    )
    spec = EventStreamSpec(n_events=args.events, profile=args.profile, rate=args.rate)
    events = generate_events(problem, spec, seed=args.stream_seed)
    stream = summarize_events(events)
    service = OnlineAssignmentService(
        problem,
        shards=args.shards,
        backend=args.backend,
        index_backend=args.index_backend,
        reconcile_every=args.reconcile_every,
    )
    stats = service.run(events, window=args.window)
    summary = stats.summary()
    print(
        f"profile={args.profile} |Q|={args.nq} |P|={args.np} k={args.k} "
        f"shards={args.shards} backend={service.backend.name} "
        f"index={service.index_backend.name}"
    )
    print(
        f"stream: {stream.arrivals} arrivals, {stream.departures} "
        f"departures, {stream.capacity_changes} capacity changes over "
        f"{stream.duration:.2f} stream-time units "
        f"(window={args.window} -> {stats.groups} delta groups)"
    )
    print(
        f"latency: p50={summary['latency_p50_ms']:.1f}ms "
        f"p99={summary['latency_p99_ms']:.1f}ms  "
        f"throughput: {summary['events_per_sec']:.0f} events/sec "
        f"(startup cold solve {stats.startup_s:.3f}s, reported apart)"
    )
    print(
        f"assigns: {stats.assigns} ({stats.warm_assigns} warm / "
        f"{stats.cold_assigns} cold; {stats.hazard_colds} hazard, "
        f"{stats.repair_fallbacks} mid-assign repair fallbacks), "
        f"warm rate {summary['warm_rate']:.2f}, "
        f"{stats.rejected} events rejected"
    )
    print(
        f"degraded ops: {stats.quarantines} quarantines "
        f"({stats.quarantine_s:.3f}s rebuilding cold), "
        f"{stats.shed} requests shed, {stats.timeouts} request timeouts"
    )
    if args.shards > 1:
        print(
            f"reconcile: {stats.reconcile_passes} passes, "
            f"{stats.reconcile_moves} session moves, "
            f"{stats.reconcile_rebalanced} unmatched rebalanced "
            f"({stats.reconcile_s:.3f}s total)"
        )
    if args.verify:
        report = service.verify_against_cold()
        if args.shards > 1:
            # Sharded matchings are boundary-approximate by design; the
            # bit-identity contract holds at shards=1.  Report quality
            # against the cold optimum instead of pass/fail.
            ratio = report["live_cost"] / max(report["cold_cost"], 1e-12)
            print(
                f"verify vs cold solve of final state: sharded run — "
                f"live {report['live_size']} pairs / cost "
                f"{report['live_cost']:.2f} vs optimal "
                f"{report['cold_size']} pairs / cost "
                f"{report['cold_cost']:.2f} (ratio {ratio:.4f}; "
                f"bit-identity is the shards=1 contract)"
            )
            return 0
        verdict = "bit-identical" if report["identical"] else "DIVERGED"
        print(
            f"verify vs cold solve of final state: {verdict} "
            f"(live {report['live_size']} pairs / cost "
            f"{report['live_cost']:.2f}, cold {report['cold_size']} "
            f"pairs / cost {report['cold_cost']:.2f})"
        )
        if not report["identical"]:
            return 1
    return 0


def _cmd_chaos(args) -> int:
    """Reproducible chaos runs: sweep seeded fault plans through the
    supervised sharded engine (and, optionally, the serving layer's
    quarantine path) and gate on the reliability contract — every faulted
    run bit-identical to the fault-free one, zero leaked shm segments,
    zero orphaned worker processes.  Exit 1 on any violation.
    """
    import glob
    import multiprocessing

    from repro.core.faults import FaultPlan
    from repro.core.shard import plan_shards, solve_sharded
    from repro.core.supervisor import RetryPolicy

    problem = make_problem(
        nq=args.nq,
        np_=args.np,
        k=args.k,
        dist_q=args.dist_q,
        dist_p=args.dist_p,
        seed=args.seed,
    )
    num_shards = plan_shards(problem, args.shards).num_shards
    policy = RetryPolicy(max_retries=args.max_retries, task_timeout_s=args.task_timeout)
    solve_kwargs = dict(
        workers=args.workers,
        backend=args.backend,
        index_backend=args.index_backend,
        retry_policy=policy,
    )
    segments_before = set(glob.glob("/dev/shm/repro_cca_*"))
    baseline = solve_sharded(
        problem, args.shards, fault_plan=FaultPlan.none(), **solve_kwargs
    )
    reference = sorted(baseline.pairs)
    print(
        f"chaos: |Q|={args.nq} |P|={args.np} k={args.k} "
        f"shards={num_shards} workers={args.workers or 1} "
        f"backend={args.backend} retries={policy.max_retries} "
        f"timeout={policy.task_timeout_s}s"
    )
    print(f"fault-free baseline: {len(reference)} pairs, " f"cost {baseline.cost:.2f}")
    failures = 0
    for plan_seed in range(args.plan_seed, args.plan_seed + args.plans):
        plan = FaultPlan.from_seed(plan_seed, num_shards, hang_s=args.hang_s)
        matching = solve_sharded(problem, args.shards, fault_plan=plan, **solve_kwargs)
        identical = sorted(matching.pairs) == reference
        ledger = matching.stats.faults
        verdict = "ok" if identical else "DIVERGED"
        if not identical:
            failures += 1
        print(f"plan seed {plan_seed}: {verdict}")
        print(f"  {plan.describe()}")
        print(f"  ledger: {ledger.summary()}")
    if args.serve_groups > 0:
        from repro.datagen.events import EventStreamSpec, generate_events
        from repro.serve.engine import OnlineAssignmentService

        def service(fault_plan=None):
            instance = make_problem(
                nq=args.nq,
                np_=args.np,
                k=args.k,
                dist_q=args.dist_q,
                dist_p=args.dist_p,
                seed=args.seed,
            )
            return OnlineAssignmentService(
                instance,
                shards=1,
                backend=args.backend,
                index_backend=args.index_backend,
                fault_plan=fault_plan,
            )

        spec = EventStreamSpec(n_events=args.events)
        events = generate_events(problem, spec, seed=args.stream_seed)
        clean = service()
        clean.run(events, window=0.25)
        # Kill the (single) warm session every --serve-crash-every groups.
        kill_groups = list(
            range(1, clean.stats.groups, max(1, args.serve_crash_every))
        )[: args.serve_groups]
        chaotic = service(
            fault_plan=FaultPlan.session_faults(kill_groups, num_shards=1)
        )
        chaotic.run(events, window=0.25)
        replay_identical = sorted(chaotic.live_pairs()) == sorted(clean.live_pairs())
        cold = chaotic.verify_against_cold()
        if not (replay_identical and cold["identical"]):
            failures += 1
        print(
            f"serve replay (shards=1, {chaotic.stats.quarantines} "
            f"quarantines over {chaotic.stats.groups} groups): "
            f"{'ok' if replay_identical and cold['identical'] else 'DIVERGED'}"
            f" — identical to clean replay: {replay_identical}, "
            f"bit-identical to cold solve: {cold['identical']}"
        )
    leaked = sorted(set(glob.glob("/dev/shm/repro_cca_*")) - segments_before)
    orphans = [
        p for p in multiprocessing.active_children()
        if "resource_tracker" not in repr(p)
    ]
    if leaked:
        failures += 1
        print(f"LEAKED shm segments: {leaked}")
    if orphans:
        failures += 1
        print(f"ORPHANED worker processes: {orphans}")
    print(
        f"chaos gates: bit-identity "
        f"{'pass' if failures == 0 else 'FAIL'}, "
        f"shm leaks {len(leaked)}, orphan workers {len(orphans)}"
    )
    return 1 if failures else 0


def _cmd_index_info(args) -> int:
    """Build the customer index for one synthetic instance and describe it
    (tree height, node counts, fill factors) — handy when sizing shard
    plans or comparing the pointer and packed backends."""
    problem = make_problem(
        nq=args.nq,
        np_=args.np,
        k=args.k,
        dist_q=args.dist_q,
        dist_p=args.dist_p,
        seed=args.seed,
    )
    started = time.perf_counter()
    tree = problem.rtree(index_backend=args.index_backend)
    build_s = time.perf_counter() - started
    info = index_info(tree)
    # The flow backend doesn't shape the tree, but index-info is the
    # cheapest place to check what a selection resolves to on this
    # install (e.g. whether 'numba' is actually available).
    flow = get_backend(args.backend)
    print(
        f"backend={info['backend']} flow_backend={flow.name} "
        f"points={info['points']} built in {build_s:.3f}s"
    )
    print(
        f"height={info['height']} pages={info['pages']} "
        f"(leaves={info['leaves']}, dir={info['dir_nodes']})"
    )
    print(f"capacity: leaf={info['leaf_capacity']} dir={info['dir_capacity']}")
    print(f"fill factor: leaf={info['leaf_fill']:.3f} " f"dir={info['dir_fill']:.3f}")
    return 0


def _cmd_generate(args) -> int:
    network = build_road_network(seed=args.network_seed)
    points = generate_points(network, args.n, args.distribution, seed=args.seed)
    header = "x,y"
    if args.out:
        np.savetxt(args.out, points, delimiter=",", header=header, comments="")
        print(f"{len(points)} points -> {args.out}")
    else:
        sys.stdout.write(header + "\n")
        np.savetxt(sys.stdout, points, delimiter=",")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cca",
        description=(
            "Capacity Constrained Assignment in Spatial Databases "
            "(SIGMOD 2008) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible figures").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("table2", help="print Table 2").set_defaults(func=_cmd_table2)

    fig = sub.add_parser("figure", help="regenerate a figure's data series")
    fig.add_argument("figure_id", choices=sorted(FIGURES))
    fig.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help="linear scale on |Q| and |P| (default %(default)s)",
    )
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument(
        "--out", type=str, default=None, help="also write the report to this file"
    )
    fig.set_defaults(func=_cmd_figure)

    allf = sub.add_parser("all", help="regenerate every figure")
    allf.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    allf.add_argument("--seed", type=int, default=0)
    allf.add_argument("--out", type=str, default=None)
    allf.set_defaults(func=_cmd_all)

    slv = sub.add_parser("solve", help="solve one synthetic instance")
    slv.add_argument("--nq", type=int, default=50)
    slv.add_argument("--np", type=int, default=5000)
    slv.add_argument("--k", type=int, default=80)
    slv.add_argument("--method", type=str, default="ida")
    slv.add_argument(
        "--backend",
        type=str,
        default="dict",
        choices=sorted(BACKEND_CHOICES),
        help="flow-kernel backend: 'dict' is the readable reference "
        "implementation, 'array' the columnar NumPy kernel, "
        "'numba' the JIT-compiled kernel (requires the optional "
        "perf extra; falls back to 'array' with a warning when "
        "numba is absent) — identical results on all of them; "
        "default %(default)s",
    )
    slv.add_argument(
        "--index-backend",
        type=str,
        default="pointer",
        choices=sorted(INDEX_BACKENDS),
        help="spatial-index backend: 'pointer' is the node-object "
        "reference R-tree, 'packed' the columnar array tree with "
        "vectorized NN streams (bit-identical matchings and page "
        "accounting; default %(default)s)",
    )
    slv.add_argument(
        "--ann-group-size",
        type=int,
        default=PAPER_DEFAULTS["ann_group_size"],
        help="Algorithm 6 provider-group size for the shared NN streams "
        "(paper default %(default)s)",
    )
    slv.add_argument(
        "--shards",
        type=int,
        default=1,
        help="split the instance into N provider-disjoint spatial shards "
        "solved independently and reconciled (default %(default)s = "
        "plain serial solve; exact methods only)",
    )
    slv.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the per-shard solves (default: solve "
        "shards inline in one process)",
    )
    slv.add_argument(
        "--router",
        type=str,
        default="nearest",
        choices=sorted(ROUTERS),
        help="customer->shard routing: 'nearest' follows the nearest "
        "provider, 'concise' follows SA's concise matching at the "
        "planning delta (capacity-respecting; objective provably <= "
        "serial SA)",
    )
    slv.add_argument("--dist-q", type=str, default="clustered")
    slv.add_argument("--dist-p", type=str, default="clustered")
    slv.add_argument("--seed", type=int, default=0)
    slv.set_defaults(func=_cmd_solve)

    prof = sub.add_parser(
        "profile",
        help="per-stage wall-time breakdown of one solve "
        "(supply/insert/dijkstra/augment)",
    )
    prof.add_argument("--nq", type=int, default=50)
    prof.add_argument("--np", type=int, default=5000)
    prof.add_argument("--k", type=int, default=80)
    prof.add_argument("--method", type=str, default="ida")
    prof.add_argument(
        "--backend",
        type=str,
        default="dict",
        choices=sorted(BACKEND_CHOICES),
        help="flow-kernel backend to profile ('numba' needs the perf "
        "extra and falls back to 'array' otherwise; default "
        "%(default)s)",
    )
    prof.add_argument(
        "--index-backend",
        type=str,
        default="pointer",
        choices=sorted(INDEX_BACKENDS),
        help="spatial-index backend to profile (default %(default)s)",
    )
    prof.add_argument(
        "--ann-group-size",
        type=int,
        default=PAPER_DEFAULTS["ann_group_size"],
        help="Algorithm 6 provider-group size (paper default %(default)s)",
    )
    prof.add_argument("--dist-q", type=str, default="clustered")
    prof.add_argument("--dist-p", type=str, default="clustered")
    prof.add_argument("--seed", type=int, default=0)
    prof.set_defaults(func=_cmd_profile)

    srv = sub.add_parser(
        "serve",
        help="replay a seeded event stream against warm shard sessions "
        "(online assignment service)",
    )
    srv.add_argument("--nq", type=int, default=50)
    srv.add_argument("--np", type=int, default=5000)
    srv.add_argument("--k", type=int, default=80)
    srv.add_argument(
        "--events",
        type=int,
        default=200,
        help="stream length (default %(default)s)",
    )
    srv.add_argument(
        "--profile",
        type=str,
        default="steady",
        choices=sorted(EVENT_PROFILES),
        help="arrival-rate profile: constant-rate 'steady', on/off "
        "'burst', sinusoidal 'diurnal' (default %(default)s)",
    )
    srv.add_argument(
        "--rate",
        type=float,
        default=40.0,
        help="mean stream intensity, events per stream-time unit "
        "(default %(default)s)",
    )
    srv.add_argument(
        "--window",
        type=float,
        default=0.25,
        help="batching window in stream-time units; events closer "
        "together land in one delta group (default %(default)s)",
    )
    srv.add_argument(
        "--shards",
        type=int,
        default=1,
        help="provider-disjoint shards, each holding one warm session "
        "(default %(default)s; >1 adds periodic reconciliation)",
    )
    srv.add_argument(
        "--reconcile-every",
        type=int,
        default=8,
        help="reconcile boundaries after every N delta groups when "
        "sharded (default %(default)s)",
    )
    srv.add_argument(
        "--backend",
        type=str,
        default="array",
        choices=sorted(BACKEND_CHOICES),
        help="flow-kernel backend for the warm sessions (default " "%(default)s)",
    )
    srv.add_argument(
        "--index-backend",
        type=str,
        default="pointer",
        choices=sorted(INDEX_BACKENDS),
        help="spatial-index backend (default %(default)s)",
    )
    srv.add_argument(
        "--verify",
        action="store_true",
        help="after replay, check the live matching is bit-identical to "
        "a cold solve of the final state (exit 1 on divergence)",
    )
    srv.add_argument("--dist-q", type=str, default="clustered")
    srv.add_argument("--dist-p", type=str, default="clustered")
    srv.add_argument("--seed", type=int, default=0, help="problem-instance seed")
    srv.add_argument(
        "--stream-seed",
        type=int,
        default=0,
        help="event-stream seed (independent of --seed)",
    )
    srv.set_defaults(func=_cmd_serve)

    cha = sub.add_parser(
        "chaos",
        help="sweep seeded fault plans through the supervised sharded "
        "engine and gate on bit-identity / zero leaks / zero "
        "orphans (reproducible chaos runs)",
    )
    cha.add_argument("--nq", type=int, default=30)
    cha.add_argument("--np", type=int, default=600)
    cha.add_argument("--k", type=int, default=40)
    cha.add_argument(
        "--shards",
        type=int,
        default=3,
        help="requested shard count (default %(default)s)",
    )
    cha.add_argument(
        "--workers",
        type=int,
        default=3,
        help="worker processes — >1 exercises real crash/kill paths "
        "(default %(default)s)",
    )
    cha.add_argument(
        "--plans",
        type=int,
        default=5,
        help="how many seeded FaultPlans to sweep (default %(default)s)",
    )
    cha.add_argument(
        "--plan-seed",
        type=int,
        default=0,
        help="first FaultPlan seed; plans use seed..seed+plans-1 "
        "(default %(default)s)",
    )
    cha.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="supervisor retry budget per shard (default %(default)s)",
    )
    cha.add_argument(
        "--task-timeout",
        type=float,
        default=30.0,
        help="per-task deadline in seconds; hung workers are killed and "
        "their shard retried (default %(default)s)",
    )
    cha.add_argument(
        "--hang-s",
        type=float,
        default=60.0,
        help="sleep injected by generated hang faults — keep it above "
        "--task-timeout so hangs are killed, not waited out "
        "(default %(default)s)",
    )
    cha.add_argument(
        "--serve-groups",
        type=int,
        default=3,
        help="also chaos the serving layer: kill the warm session on N "
        "delta groups of a shards=1 replay and require bit-identity "
        "(0 disables; default %(default)s)",
    )
    cha.add_argument(
        "--serve-crash-every",
        type=int,
        default=4,
        help="kill the warm session every Nth delta group during the "
        "serve chaos replay (default %(default)s)",
    )
    cha.add_argument(
        "--events",
        type=int,
        default=120,
        help="serve chaos stream length (default %(default)s)",
    )
    cha.add_argument("--stream-seed", type=int, default=0)
    cha.add_argument(
        "--backend",
        type=str,
        default="array",
        choices=sorted(BACKEND_CHOICES),
        help="flow-kernel backend (default %(default)s)",
    )
    cha.add_argument(
        "--index-backend",
        type=str,
        default="pointer",
        choices=sorted(INDEX_BACKENDS),
        help="spatial-index backend (default %(default)s)",
    )
    cha.add_argument("--dist-q", type=str, default="clustered")
    cha.add_argument("--dist-p", type=str, default="clustered")
    cha.add_argument("--seed", type=int, default=0)
    cha.set_defaults(func=_cmd_chaos)

    idx = sub.add_parser(
        "index-info",
        help="build one instance's customer index and describe it",
    )
    idx.add_argument("--nq", type=int, default=50)
    idx.add_argument("--np", type=int, default=5000)
    idx.add_argument("--k", type=int, default=80)
    idx.add_argument(
        "--backend",
        type=str,
        default="dict",
        choices=sorted(BACKEND_CHOICES),
        help="flow-kernel backend to resolve and report (checks the "
        "optional 'numba' install; default %(default)s)",
    )
    idx.add_argument(
        "--index-backend",
        type=str,
        default="pointer",
        choices=sorted(INDEX_BACKENDS),
        help="which index backend to build (default %(default)s)",
    )
    idx.add_argument("--dist-q", type=str, default="clustered")
    idx.add_argument("--dist-p", type=str, default="clustered")
    idx.add_argument("--seed", type=int, default=0)
    idx.set_defaults(func=_cmd_index_info)

    gen = sub.add_parser("generate", help="emit a synthetic point set (CSV)")
    gen.add_argument("--n", type=int, default=1000)
    gen.add_argument("--distribution", type=str, default="clustered")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--network-seed", type=int, default=7)
    gen.add_argument("--out", type=str, default=None)
    gen.set_defaults(func=_cmd_generate)

    lnt = sub.add_parser(
        "lint",
        help="run the repro-lint determinism/reliability checks (RPR001-8)",
    )
    lnt.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lnt.add_argument(
        "--strict",
        action="store_true",
        help="also report unused suppressions (nightly sweep mode)",
    )
    lnt.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lnt.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
