"""Merge the per-seam BENCH_*.json reports into one trajectory artifact.

Each benchmark (flow kernel, spatial index, sharded engine, serving
layer) writes its own JSON; comparing performance *across PRs* means
diffing four files with four shapes.  This script validates each report against a small
schema (so a bench refactor that silently drops a headline metric fails
loudly in CI) and folds the headline numbers into a single
``BENCH_trajectory.json``, which the nightly workflow uploads as an
artifact — one file to diff between any two commits.

Usage::

    python scripts/bench_trajectory.py \
        [--kernel BENCH_kernel.json] [--index BENCH_index.json] \
        [--shard BENCH_shard.json] [--serve BENCH_serve.json] \
        [--out BENCH_trajectory.json] [--allow-missing]

Exit status is non-zero when a required input is missing or fails its
schema check.
"""

from __future__ import annotations

import argparse
import json
import os

SCHEMA_VERSION = 1

# Per-bench schema: {field: type or (types,)} — presence + type checks on
# the headline metrics the trajectory extracts (not the full report).
_NUM = (int, float)
SCHEMAS = {
    "kernel": {
        "workload": str,
        "scale": _NUM,
        "seed": int,
        "sweep_paper_nq": list,
        "sweep_dropped": list,
        "points": list,
        # Three-way backend block: {"status": "ok", ...metrics} when the
        # optional numba dependency was measured, {"status": "skipped",
        # "reason": ...} otherwise — always present either way.
        "numba": dict,
        "kernel_speedup_geomean": _NUM,
        "kernel_speedup_max": _NUM,
        "end_to_end_geomean": _NUM,
        "end_to_end_speedup_min": _NUM,
    },
    "index": {
        "workload": str,
        "scale": _NUM,
        "seed": int,
        "build_speedup": _NUM,
        "ann_stream_speedup_geomean": _NUM,
        "end_to_end": dict,
    },
    "shard": {
        "workload": str,
        "scale": _NUM,
        "seed": int,
        "shards": int,
        "workers": int,
        "cpu_count": int,
        "headline_speedup": _NUM,
        "speedup_geomean": _NUM,
        "scaling_efficiency_geomean": _NUM,
        "cost_ratio_worst": _NUM,
        "provider_disjoint_exactness": dict,
        "concise_vs_sa": dict,
    },
    "serve": {
        "workload": str,
        "scale": _NUM,
        "seed": int,
        "events": int,
        "shards": int,
        "cpu_count": int,
        "profiles": list,
        "per_profile": list,
        "latency_p50_ms": _NUM,
        "latency_p99_ms": _NUM,
        "events_per_sec": _NUM,
        "warm_rate": _NUM,
        "bit_identity": dict,
        # Degraded-mode point: {"status": "pass", degraded p99,
        # recovery overhead, ...} or {"status": "skipped"}.
        "faulted": dict,
        "degraded_latency_p99_ms": _NUM,
    },
}

# What each bench contributes to the trajectory's flat metric dict.
HEADLINES = {
    "kernel": (
        "kernel_speedup_geomean",
        "kernel_speedup_max",
        "end_to_end_geomean",
        "end_to_end_speedup_min",
    ),
    "index": ("build_speedup", "ann_stream_speedup_geomean"),
    "shard": (
        "headline_speedup",
        "speedup_geomean",
        "scaling_efficiency_geomean",
        "cost_ratio_worst",
    ),
    "serve": (
        "latency_p50_ms",
        "latency_p99_ms",
        "events_per_sec",
        "warm_rate",
        "degraded_latency_p99_ms",
    ),
}


def check_schema(name: str, report: dict) -> list:
    """Return a list of human-readable schema violations (empty = ok)."""
    problems = []
    for field, expected in SCHEMAS[name].items():
        if field not in report:
            problems.append(f"{name}: missing field {field!r}")
        elif not isinstance(report[field], expected):
            problems.append(
                f"{name}: field {field!r} has type "
                f"{type(report[field]).__name__}, expected "
                f"{getattr(expected, '__name__', expected)}"
            )
    # bool is an int subclass; a True slipping into a numeric metric is a
    # bench bug, not a number.
    for field in HEADLINES[name]:
        if isinstance(report.get(field), bool):
            problems.append(f"{name}: field {field!r} is a bool")
    return problems


def fold(name: str, path: str, report: dict) -> dict:
    entry = {
        "source": os.path.basename(path),
        "workload": report["workload"],
        "scale": report["scale"],
        "seed": report["seed"],
        "metrics": {field: report[field] for field in HEADLINES[name]},
    }
    if name == "kernel":
        entry["metrics"]["end_to_end_per_point"] = {
            str(p["nq_paper"]): p["end_to_end_speedup"] for p in report["points"]
        }
        entry["sweep_dropped"] = report["sweep_dropped"]
        numba = report["numba"]
        entry["numba"] = {"status": numba.get("status", "skipped")}
        if numba.get("status") == "ok":
            entry["numba"].update(
                {
                    "end_to_end_geomean": numba["end_to_end_geomean"],
                    "vs_array_geomean": numba["vs_array_geomean"],
                    "vs_array_min": numba["vs_array_min"],
                    "kernel_speedup_geomean": (
                        numba["kernel_speedup_geomean"]
                    ),
                    "vs_array_per_point": {
                        str(p["nq_paper"]): p["numba_vs_array"]
                        for p in report["points"]
                    },
                }
            )
        else:
            entry["numba"]["reason"] = numba.get("reason", "unknown")
    if name == "index":
        entry["metrics"]["end_to_end_speedup"] = (report["end_to_end"]["speedup"])
    if name == "shard":
        entry["cpu_count"] = report["cpu_count"]
        entry["gates"] = {
            "provider_disjoint_exactness": (
                report["provider_disjoint_exactness"]["status"]
            ),
            "concise_vs_sa": report["concise_vs_sa"]["status"],
        }
    if name == "serve":
        entry["cpu_count"] = report["cpu_count"]
        entry["shards"] = report["shards"]
        entry["metrics"]["per_profile"] = {
            row["profile"]: {
                "latency_p50_ms": row["latency_p50_ms"],
                "latency_p99_ms": row["latency_p99_ms"],
                "events_per_sec": row["events_per_sec"],
            }
            for row in report["per_profile"]
        }
        faulted = report["faulted"]
        entry["gates"] = {
            "bit_identity": report["bit_identity"]["status"],
            "faulted_identity": faulted.get("status", "skipped"),
        }
        if faulted.get("status") == "pass":
            entry["faulted"] = {
                "session_kills": faulted["session_kills"],
                "p99_inflation": faulted["p99_inflation"],
                "recovery_overhead": faulted["recovery_overhead"],
                "quarantines": faulted["quarantines"],
            }
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel", default="BENCH_kernel.json")
    parser.add_argument("--index", default="BENCH_index.json")
    parser.add_argument("--shard", default="BENCH_shard.json")
    parser.add_argument("--serve", default="BENCH_serve.json")
    parser.add_argument("--out", default="BENCH_trajectory.json")
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="skip absent input files instead of failing",
    )
    args = parser.parse_args(argv)

    inputs = {
        "kernel": args.kernel,
        "index": args.index,
        "shard": args.shard,
        "serve": args.serve,
    }
    benches = {}
    problems = []
    for name, path in inputs.items():
        if not os.path.exists(path):
            if args.allow_missing:
                print(f"[bench_trajectory] skipping absent {path}")
                continue
            problems.append(f"{name}: input file {path} not found")
            continue
        with open(path) as fh:
            report = json.load(fh)
        bench_problems = check_schema(name, report)
        if bench_problems:
            problems.extend(bench_problems)
            continue
        benches[name] = fold(name, path, report)

    if problems:
        for problem in problems:
            print(f"[bench_trajectory] SCHEMA: {problem}")
        return 1
    if not benches:
        print("[bench_trajectory] no inputs found")
        return 1

    trajectory = {"schema_version": SCHEMA_VERSION, "benches": benches}
    with open(args.out, "w") as fh:
        json.dump(trajectory, fh, indent=2)
    parts = []
    for name in sorted(benches):
        metrics = benches[name]["metrics"]
        joined = "/".join(f"{metrics[m]:.2f}" for m in HEADLINES[name])
        parts.append(f"{name}:{joined}")
    summary = ", ".join(parts)
    print(f"[bench_trajectory] {len(benches)} benches -> {args.out} " f"({summary})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
