"""Assemble EXPERIMENTS.md from the per-figure markdown dumps in results/.

Run after ``repro-cca all --out results/experiments_scale<g>.txt`` which
leaves one ``results/figN.md`` per figure.
"""

from __future__ import annotations

import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")
OUT = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of Section 5 of *Capacity Constrained Assignment in
Spatial Databases* (SIGMOD 2008), regenerated with this repository.

**Setup.** Measurements below were produced by `repro-cca all --scale 0.03
--seed 0` on a single CPU core: |Q| and |P| are scaled to 3% of the paper's
cardinalities (defaults become |Q| = 30, |P| = 3000) while capacities k,
the δ diagonals, the 1 KB page size, the 1% LRU buffer, and the 10 ms/fault
I/O charge stay in paper units. RIA's θ is re-tuned to the scaled customer
density by the published rule θ(|P|) = 250/√|P| (≈ 0.8 at the paper's
100K). The scale preserves the regime boundary k·|Q| ⋚ |P| that drives
every qualitative claim; absolute numbers differ (pure Python vs C++ and a
400× smaller input), so the comparison targets *shape*: who wins, by
roughly what factor, and where the crossovers sit. Each figure below can be
regenerated individually with `repro-cca figure <id> [--scale S]`, and a
reduced-scale timing of every cell lives in `pytest benchmarks/
--benchmark-only`.

**Scoreboard.** 11/11 figures reproduce the paper's qualitative shape.
Notes on the two visible scale artifacts are given inline (fig8's SSPA gap
is smaller than 1-3 orders of magnitude at 400× smaller inputs; fig11's
R-tree-height step moves because the tree is shallower).

## Table 2 — system parameters

Encoded verbatim in `repro.experiments.config.PARAMETER_TABLE`; print with
`repro-cca table2`. Defaults: |Q| = 1K, |P| = 100K, k = 80, θ = 0.8,
δ = 40 (SA) / 10 (CA).
"""

COMMENTARY = {
    "fig8": """\
**Paper:** on a small instance (|Q|=250, |P|=25K) where the complete
bipartite graph fits in memory, RIA/NIA/IDA beat SSPA by 1-3 orders of
magnitude in CPU time.

**Measured:** SSPA is consistently the slowest and the gap widens with k
(IDA wins by ~40x at k=320 where its Theorem-2 fast path covers the whole
run). The gap is smaller than the paper's because the instance is ~400x
smaller — SSPA's disadvantage grows with |E| = |Q|·|P|, which is exactly
the scaling wall the paper describes. Shape: reproduced.""",
    "fig9": """\
**Paper:** |Esub| is a small fraction of the full graph; IDA explores the
fewest edges while k·|Q| < |P| and the three methods converge once
k·|Q| > |P|; CPU and I/O time grow with k, with a drop at the slack end.

**Measured:** full graph at this scale is |Q|·|P| = 9·10^6; all methods
stay below ~7·10^4 edges. IDA's subgraph is ~40% smaller than NIA/RIA at
k=80 and converges to them at k=320 (k·|Q| = 9600 > |P| = 3000 — the
crossover sits between k=160 and k=320 exactly as the regime predicts, and
all costs fall at k=320 as the problem loosens). RIA pays far more charged
I/O (range queries re-read pages; NIA/IDA share traversal via the grouped
ANN). Shape: reproduced.""",
    "fig10": """\
**Paper:** problem cost rises with |Q| but the growth saturates once
k·|Q| > |P| (the assignment completes before long edges are examined).

**Measured:** |Esub| and time rise steeply up to |Q|=1K·s, then the
growth breaks exactly at the regime flip (the 2.5K·s point *dips* below
1K·s in |Esub| and grows only mildly in time despite 2.5x the providers)
before resuming at 5K·s where sheer provider count dominates. IDA ≤ NIA ≤
RIA everywhere. Shape: reproduced (crossover in the predicted place).""",
    "fig11": """\
**Paper:** growing |P| *shrinks* the explored subgraph (denser customers ⇒
closer NNs ⇒ less competition), except for an R-tree height step at 200K
that raises I/O.

**Measured:** beyond the regime boundary (|P| > k·|Q|·s, i.e. from the
100K·s point on) |Esub| and time fall as |P| grows — the paper's
competition effect. Left of the boundary the required flow γ = |P| itself
is small, which keeps the subgraph small too; at 400x reduction this
γ effect outweighs the competition effect at the 25K·s point (a scale
artifact: the paper's smallest |P| is still 25x its γ per provider).
Shape: reproduced in the regime the paper's claim addresses.""",
    "fig12": """\
**Paper:** randomized capacities k ~ U[lo, hi] behave like fixed k of the
same mean — the pruning is unaffected by capacity variance.

**Measured:** the five ranges track the corresponding fixed-k columns of
fig9 closely (compare k=20 with 10~30, etc.); IDA keeps its advantage in
the tight regimes. Shape: reproduced.""",
    "fig13": """\
**Paper:** mismatched distributions (uniform providers vs clustered
customers and vice versa) are much more expensive than matched ones;
NIA's one-edge-at-a-time supply can fall behind RIA's bulk ranges there.

**Measured:** UvsC is the most expensive combination (~2.6x UvsU's edges)
and CvsU second, with both matched combinations cheaper — the paper's
ordering. IDA's full-provider pruning is *most* valuable on the mismatched
inputs (UvsC: 33K vs NIA's 56K edges). One scale artifact: RIA's charged
I/O dwarfs NIA's here (the paper has NIA trailing RIA on mismatched
inputs), because at 3% scale the buffer is at its 4-page floor and RIA's
repeated annuli re-fault pages that at paper scale would amortize.
Shape: reproduced for the cost ordering across distributions.""",
    "fig14": """\
**Paper:** both the error and the runtime of SA/CA fall as δ shrinks/grows
respectively; CA dominates SA on time for every δ, while at the smallest
δ SA's quality approaches exact (each provider its own group) at a cost
comparable to IDA.

**Measured:** quality degrades monotonically with δ for all four variants
(1.0001 → ~1.03); CA variants are 2-4x faster than SA and IDA throughout,
and SA at δ=10 is essentially exact but costs nearly as much as IDA — the
paper's exception case verbatim. Shape: reproduced.""",
    "fig15": """\
**Paper:** the quality ratio improves as k grows (absolute costs grow while
the fixed-δ grouping error stays constant); CA is more robust than SA.

**Measured:** CA's ratio falls from 1.0015 (k=20) to 1.0002 (k=320) and
stays below SA's at every k; runtimes track IDA's (concise matching
dominates) with CA cheapest. Shape: reproduced.""",
    "fig16": """\
**Paper:** CA beats SA across |Q|; CA quality drifts down as more
providers compete around each customer group; SA quality is non-monotone
in group density.

**Measured:** SA degrades clearly with |Q| (1.000 at 0.25K·s to ~1.02 at
5K·s) and is non-monotone in between; CA stays within 1.0005 of optimal
at every |Q| — its paper-predicted mild degradation sits below noise at
this scale. CA ≤ SA from 0.5K·s on. Shape: reproduced.""",
    "fig17": """\
**Paper:** SA's quality degrades as |P| grows (denser customers around
every provider group mean more suboptimal pairings); CA is only mildly
affected (slightly coarser partitions).

**Measured:** SA is consistently worse than CA and noisier; CA's error
rises gently with |P| (1.0002 → 1.0012 — the paper's coarser-partitioning
effect). Total times fall with |P| for all methods (the fig11 effect).
Shape: reproduced.""",
    "fig18": """\
**Paper:** CA is the fastest on all four distribution combinations and the
most accurate on matched ones; on mismatched combinations SA and CA are
comparable and both near-optimal.

**Measured:** CA variants take the time lead everywhere and stay within
0.12% of optimal on every combination; on UvsC the two schemes are
essentially tied near optimal (the paper's "comparable" case), while SA's
weakest point is CvsC (~1.5% — dense provider groups yield the coarsest
weighted centroids). Shape: reproduced.""",
}

FOOTER = """\

## Reproducing

```bash
repro-cca all --scale 0.03 --out results/experiments.txt   # everything
repro-cca figure fig13 --scale 0.05                        # one figure
pytest benchmarks/ --benchmark-only                        # timed cells
```

Figures 1-7 carry no measurements; their scenarios are encoded as tests
and examples (see the experiment index in DESIGN.md).
"""


def main() -> int:
    order = [f"fig{i}" for i in range(8, 19)]
    blocks = [PREAMBLE]
    missing = []
    for fig_id in order:
        path = os.path.join(RESULTS, f"{fig_id}.md")
        if not os.path.exists(path):
            missing.append(fig_id)
            continue
        with open(path) as fh:
            measured = fh.read().strip()
        blocks.append(measured)
        blocks.append(COMMENTARY.get(fig_id, ""))
    blocks.append(FOOTER)
    with open(OUT, "w") as fh:
        fh.write("\n\n".join(b for b in blocks if b) + "\n")
    print(f"wrote {OUT}" + (f" (missing: {missing})" if missing else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
