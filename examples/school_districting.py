"""School districting: assign children to schools of limited capacity.

The paper's motivating municipal scenario: children (customers) spread over
a synthetic road network, schools (providers) with fixed seat counts.  We
compare the exact assignment (IDA) against the greedy nearest-school policy
(SM) and report how much average travel distance optimality saves, and how
the exact methods' costs coincide.

Run:  python examples/school_districting.py
"""

import numpy as np

from repro import CCAProblem, solve
from repro.datagen import build_road_network, generate_points


def main() -> None:
    network = build_road_network(grid=20, seed=3)
    rng = np.random.default_rng(42)

    # 1200 children clustered in residential areas, 12 schools spread
    # uniformly, 110 seats each (Σ seats = 1320 > 1200: everyone enrolls).
    children = generate_points(network, 1200, "clustered", rng=rng)
    schools = generate_points(network, 12, "uniform", rng=rng)
    seats = [110] * 12

    problem = CCAProblem.from_arrays(schools, seats, children)
    print(f"{len(children)} children, {len(schools)} schools x 110 seats, "
          f"gamma = {problem.gamma}")

    optimal = solve(problem, method="ida")
    greedy = solve(problem, method="sm")

    avg_opt = optimal.cost / optimal.size
    avg_greedy = greedy.cost / greedy.size
    print(f"optimal (IDA)   : total {optimal.cost:10.1f}  "
          f"avg walk {avg_opt:6.2f}")
    print(f"greedy nearest  : total {greedy.cost:10.1f}  "
          f"avg walk {avg_greedy:6.2f}")
    print(f"greedy overpays : {100 * (greedy.cost / optimal.cost - 1):.1f}%")

    # Seat utilization under the optimal plan.
    from collections import Counter

    loads = Counter(q for q, _, _ in optimal.pairs)
    print("school loads    :",
          " ".join(f"{loads.get(i, 0):3d}" for i in range(12)))

    stats = optimal.stats
    print(f"solver stats    : |Esub| = {stats.esub_edges} edges "
          f"(full graph would be {12 * 1200}), "
          f"{stats.io.faults} page faults, "
          f"{stats.cpu_s:.2f}s CPU + {stats.io_s:.2f}s charged I/O")


if __name__ == "__main__":
    main()
