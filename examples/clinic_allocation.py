"""Clinic allocation with a live quality/latency dial.

Public clinics have fixed daily patient quotas; residents must be allocated
to clinics.  Exact optimization (IDA) can take a while at city scale, so the
planner exposes the paper's δ dial: the CA approximation guarantees
``Ψ ≤ Ψ* + γ·δ`` (Theorem 4) and runs much faster.  This example sweeps δ
and prints cost, guaranteed bound, and runtime so an operator can pick the
trade-off.

Run:  python examples/clinic_allocation.py
"""

import time

import numpy as np

from repro import CCAProblem, solve
from repro.core.approx.bounds import ca_error_bound
from repro.datagen import build_road_network, generate_points


def main() -> None:
    network = build_road_network(grid=22, seed=9)
    rng = np.random.default_rng(7)

    residents = generate_points(network, 2500, "clustered", rng=rng)
    clinics = generate_points(network, 15, "clustered", rng=rng)
    quotas = rng.integers(120, 200, size=15).tolist()

    problem = CCAProblem.from_arrays(clinics, quotas, residents)
    print(f"{len(residents)} residents, {len(clinics)} clinics, "
          f"total quota {sum(quotas)}, gamma = {problem.gamma}")

    started = time.perf_counter()
    exact = solve(problem, method="ida")
    exact_s = time.perf_counter() - started
    print(f"\nexact IDA: cost {exact.cost:10.1f}   wall {exact_s:6.2f}s")

    print(f"\n{'delta':>6} {'cost':>12} {'vs opt':>8} {'bound':>12} "
          f"{'wall':>8}")
    for delta in (5.0, 10.0, 20.0, 40.0, 80.0):
        started = time.perf_counter()
        approx = solve(problem, method="can", delta=delta)
        wall = time.perf_counter() - started
        bound = ca_error_bound(problem.gamma, delta)
        print(f"{delta:6.0f} {approx.cost:12.1f} "
              f"{approx.cost / exact.cost:8.4f} "
              f"{exact.cost + bound:12.1f} {wall:7.2f}s")

    print("\n'bound' is the certified worst case Ψ* + γ·δ — the measured "
          "cost always sits far below it.")


if __name__ == "__main__":
    main()
