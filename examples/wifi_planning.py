"""WiFi capacity planning: how many radios does each access point need?

Inverse use of CCA: given candidate access-point sites and a measured
client distribution, sweep the per-AP capacity k and watch coverage and
mean link distance.  Small k leaves clients unserved; large k lets distant
APs absorb overflow at the cost of longer links.  The |Esub| column shows
how little of the full bipartite graph the incremental solver touches.

Run:  python examples/wifi_planning.py
"""

import numpy as np

from repro import CCAProblem, solve
from repro.datagen import build_road_network, generate_points


def main() -> None:
    network = build_road_network(grid=18, seed=5)
    rng = np.random.default_rng(123)

    clients = generate_points(network, 1600, "clustered", rng=rng)
    sites = generate_points(network, 10, "uniform", rng=rng)

    print(f"{len(clients)} clients, {len(sites)} candidate AP sites\n")
    print(f"{'k':>4} {'served':>7} {'coverage':>9} {'mean link':>10} "
          f"{'|Esub|':>8} {'full graph':>11}")
    full = len(clients) * len(sites)
    for k in (40, 80, 160, 240):
        problem = CCAProblem.from_arrays(sites, [k] * len(sites), clients)
        matching = solve(problem, method="ida")
        mean_link = matching.cost / matching.size if matching.size else 0.0
        print(f"{k:4d} {matching.size:7d} "
              f"{matching.size / len(clients):9.1%} {mean_link:10.2f} "
              f"{matching.stats.esub_edges:8d} {full:11d}")

    print("\nCoverage saturates once k x |sites| exceeds the client count;"
          "\nbeyond that, extra capacity no longer changes the assignment.")


if __name__ == "__main__":
    main()
