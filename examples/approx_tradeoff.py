"""SA vs CA: which approximation fits which workload?

Reproduces the Section 5.3 narrative on one instance: SA groups the
providers (cheap partitioning, concise matching still scans all of P),
CA groups the customers (partitioning does the disk work once, concise
matching runs in memory).  CA typically dominates on both quality and
time — except at tiny δ where SA degenerates gracefully to exact.

Run:  python examples/approx_tradeoff.py
"""

import time

from repro import solve
from repro.datagen import make_problem


def run(problem, method, delta):
    started = time.perf_counter()
    matching = solve(problem, method=method, delta=delta)
    wall = time.perf_counter() - started
    return matching, wall


def main() -> None:
    problem = make_problem(nq=40, np_=3000, k=60, seed=17)
    print(f"workload: |Q|=40, |P|=3000, k=60, gamma={problem.gamma}\n")

    exact, exact_wall = None, None
    started = time.perf_counter()
    exact = solve(problem, method="ida")
    exact_wall = time.perf_counter() - started
    print(f"exact IDA : cost {exact.cost:9.0f}  wall {exact_wall:5.2f}s  "
          f"faults {exact.stats.io.faults}")

    print(f"\n{'method':>7} {'delta':>6} {'quality':>8} {'wall':>7} "
          f"{'faults':>7} {'groups':>7}")
    for method, deltas in (
        ("san", (40.0, 80.0)),
        ("sae", (40.0, 80.0)),
        ("can", (10.0, 40.0)),
        ("cae", (10.0, 40.0)),
    ):
        for delta in deltas:
            m, wall = run(problem, method, delta)
            print(f"{method:>7} {delta:6.0f} {m.cost / exact.cost:8.4f} "
                  f"{wall:6.2f}s {m.stats.io.faults:7d} "
                  f"{m.stats.extra.get('num_groups', '-'):>7}")

    print("\nCA variants reach ~1.0x quality at a fraction of the exact "
          "cost;\nSA needs small deltas (many groups) to compete.")


if __name__ == "__main__":
    main()
