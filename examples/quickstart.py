"""Quickstart: the Figure 1 scenario of the paper.

Three wireless access points with capacities 3 / 5 / 3 must serve twelve
WiFi receivers.  Assigning every receiver to its *nearest* access point (the
Voronoi assignment) overloads two of them; the capacity-constrained
assignment (CCA) respects the capacities while minimizing the total
distance, leaving exactly one receiver unserved (Σk = 11 < 12).

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro import CCAProblem, solve


def main() -> None:
    access_points = [(20.0, 70.0), (50.0, 35.0), (80.0, 75.0)]
    capacities = [3, 5, 3]
    receivers = [
        (5.0, 95.0), (15.0, 75.0), (25.0, 80.0), (22.0, 62.0),
        (40.0, 40.0), (45.0, 25.0), (55.0, 30.0), (60.0, 42.0),
        (52.0, 48.0), (75.0, 70.0), (85.0, 68.0), (82.0, 85.0),
    ]
    problem = CCAProblem.from_arrays(access_points, capacities, receivers)

    # The nearest-AP (Voronoi) assignment ignores capacities:
    voronoi = Counter(
        min(range(3), key=lambda i: problem.distance(i, j))
        for j in range(len(receivers))
    )
    print("Voronoi loads   :", dict(sorted(voronoi.items())),
          " (capacities are", capacities, "— overloaded!)")

    # The optimal capacity-constrained assignment:
    matching = solve(problem, method="ida")
    loads = Counter(q for q, _, _ in matching.pairs)
    print("CCA loads       :", dict(sorted(loads.items())))
    print(f"CCA cost        : {matching.cost:.2f} over {matching.size} pairs "
          f"(gamma = {problem.gamma})")
    unserved = set(range(len(receivers))) - {p for _, p, _ in matching.pairs}
    print("Unserved        :", sorted(unserved))

    for q, p, d in sorted(matching.pairs):
        print(f"  receiver {p:2d} -> access point {q} (distance {d:5.2f})")


if __name__ == "__main__":
    main()
