"""CLI tests (argument parsing and end-to-end micro runs)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "fig18" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestEndToEnd:
    def test_solve_command(self, capsys):
        rc = main([
            "solve", "--nq", "3", "--np", "80", "--k", "4",
            "--method", "ida", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost=" in out and "gamma=12" in out

    def test_figure_command_micro(self, capsys, tmp_path):
        out_file = tmp_path / "fig9.txt"
        rc = main([
            "figure", "fig9", "--scale", "0.002", "--seed", "0",
            "--out", str(out_file),
        ])
        assert rc == 0
        assert out_file.exists()
        assert "esub" in out_file.read_text()

    def test_generate_to_csv(self, capsys, tmp_path):
        out_file = tmp_path / "pts.csv"
        rc = main([
            "generate", "--n", "25", "--distribution", "uniform",
            "--seed", "3", "--out", str(out_file),
        ])
        assert rc == 0
        lines = out_file.read_text().strip().splitlines()
        assert lines[0] == "x,y"
        assert len(lines) == 26

    def test_generate_stdout(self, capsys):
        rc = main(["generate", "--n", "5", "--distribution", "clustered"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("x,y")
