"""Figure catalog smoke tests at micro scale."""

import pytest

from repro.experiments.figures import FIGURES, run_figure

MICRO = 0.002  # |Q|=2, |P|=200 — just exercises the machinery


class TestCatalog:
    def test_all_eleven_figures_present(self):
        assert sorted(FIGURES) == [f"fig{i}" for i in range(10, 19)] + [
            "fig8",
            "fig9",
        ]

    def test_specs_documented(self):
        for spec in FIGURES.values():
            assert spec.title
            assert spec.paper_setup
            assert spec.expected_shape

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("fig99")


class TestMicroRuns:
    @pytest.mark.parametrize("fig_id", ["fig9", "fig13"])
    def test_exact_figures_produce_full_grid(self, fig_id):
        results = run_figure(fig_id, scale=MICRO, seed=0)
        methods = {r.method for r in results}
        assert methods == {"ria", "nia", "ida"}
        sweeps = {r.sweep_label for r in results}
        assert len(sweeps) in (4, 5)
        # Exact methods must agree on cost per sweep point.
        by_sweep = {}
        for r in results:
            by_sweep.setdefault(r.sweep_label, []).append(r.cost)
        for label, costs in by_sweep.items():
            assert max(costs) - min(costs) < 1e-6, label

    def test_fig8_includes_sspa(self):
        results = run_figure("fig8", scale=0.01, seed=0)
        assert "sspa" in {r.method for r in results}

    def test_fig14_delta_sweep(self):
        results = run_figure("fig14", scale=MICRO, seed=0)
        labels = {r.sweep_label for r in results}
        assert "d=10" in labels and "d=160" in labels
        approx = [r for r in results if r.method != "ida"]
        assert all(r.quality is not None for r in approx)
        assert all(r.quality >= 1.0 - 1e-9 for r in approx)

    def test_fig15_quality_reference(self):
        results = run_figure("fig15", scale=MICRO, seed=0)
        ida_rows = [r for r in results if r.method == "ida"]
        assert all(r.quality == 1.0 for r in ida_rows)
