"""Report rendering tests."""

from repro.experiments.metrics import MethodResult
from repro.experiments.report import (
    figure_to_markdown,
    format_figure_report,
    format_table2,
    results_to_markdown,
)


def sample_results():
    rows = []
    for sweep in ("k=20", "k=40"):
        for method in ("ria", "nia", "ida"):
            rows.append(
                MethodResult(
                    figure="fig9",
                    sweep_label=sweep,
                    method=method,
                    esub=100,
                    cpu_s=0.5,
                    io_faults=10,
                    io_s=0.1,
                    cost=42.0,
                    matched=5,
                    gamma=5,
                )
            )
    return rows


class TestTextReport:
    def test_table2_renders(self):
        text = format_table2()
        assert "Capacity k" in text
        assert "20, 40, 80, 160, 320" in text

    def test_figure_report_contains_metrics_and_methods(self):
        text = format_figure_report("fig9", sample_results())
        assert "fig9" in text
        for token in (
            "esub", "cpu_s", "io_s", "total_s", "ria", "nia", "ida", "k=20", "k=40"
        ):
            assert token in text

    def test_quality_metric_included_when_present(self):
        rows = sample_results()
        for r in rows:
            r.quality = 1.25
        text = format_figure_report("fig9", rows)
        assert "quality" in text
        assert "1.2500" in text

    def test_missing_cells_render_dash(self):
        rows = sample_results()[:5]  # drop one cell
        text = format_figure_report("fig9", rows)
        assert "-" in text


class TestMarkdown:
    def test_metric_table_shape(self):
        md = results_to_markdown("fig9", sample_results(), "esub")
        lines = md.splitlines()
        assert lines[0].startswith("| sweep |")
        assert len(lines) == 2 + 2  # header, separator, two sweeps

    def test_full_figure_markdown(self):
        md = figure_to_markdown("fig9", sample_results())
        assert md.startswith("### fig9")
        assert "**esub**" in md
        assert "*Expected shape (paper)*" in md
