"""Harness tests on miniature workloads."""

import pytest

from repro.datagen.workloads import make_problem
from repro.experiments.harness import run_method, run_sweep


@pytest.fixture(scope="module")
def tiny_problem():
    return make_problem(nq=3, np_=60, k=5, seed=0)


class TestRunMethod:
    def test_exact_row(self, tiny_problem):
        r = run_method(tiny_problem, "ida", figure="t", sweep_label="x")
        assert r.method == "ida"
        assert r.matched == r.gamma == tiny_problem.gamma
        assert r.esub > 0
        assert r.cost > 0
        assert r.total_s == pytest.approx(r.cpu_s + r.io_s)

    def test_quality_computed_against_reference(self, tiny_problem):
        ref = run_method(tiny_problem, "ida")
        approx = run_method(tiny_problem, "can", optimal_cost=ref.cost, delta=20.0)
        assert approx.quality is not None
        assert approx.quality >= 1.0 - 1e-9

    def test_io_penalty_configurable(self, tiny_problem):
        r = run_method(tiny_problem, "ria", io_penalty_s=0.5)
        assert r.io_s == pytest.approx(r.io_faults * 0.5)

    def test_as_row_keys(self, tiny_problem):
        row = run_method(tiny_problem, "nia").as_row()
        for key in ("method", "esub", "cpu_s", "io_s", "total_s", "cost"):
            assert key in row


class TestRunSweep:
    def test_sweep_shape(self):
        problems = {
            "a": make_problem(nq=2, np_=40, k=4, seed=1),
            "b": make_problem(nq=2, np_=40, k=8, seed=1),
        }
        results = run_sweep(problems, ("ria", "nia"), figure="t")
        assert len(results) == 4
        assert {r.sweep_label for r in results} == {"a", "b"}

    def test_quality_reference_inserted_once(self):
        problems = {"a": make_problem(nq=2, np_=40, k=4, seed=2)}
        results = run_sweep(
            problems,
            ("ida", "can"),
            figure="t",
            quality_reference="ida",
            deltas={"can": 30.0},
        )
        methods = [r.method for r in results]
        assert methods.count("ida") == 1
        ida = next(r for r in results if r.method == "ida")
        can = next(r for r in results if r.method == "can")
        assert ida.quality == 1.0
        assert can.quality >= 1.0 - 1e-9
