"""Experiment configuration tests."""

import pytest

from repro.experiments.config import (
    PAPER_DEFAULTS,
    PARAMETER_TABLE,
    default_theta,
    scaled,
)


class TestPaperDefaults:
    def test_table2_values(self):
        # The canonical Section 5.1 settings.
        assert PAPER_DEFAULTS["nq"] == 1000
        assert PAPER_DEFAULTS["np"] == 100_000
        assert PAPER_DEFAULTS["k"] == 80
        assert PAPER_DEFAULTS["theta"] == 0.8
        assert PAPER_DEFAULTS["sa_delta"] == 40.0
        assert PAPER_DEFAULTS["ca_delta"] == 10.0
        assert PAPER_DEFAULTS["io_penalty_s"] == 0.010

    def test_parameter_table_rows(self):
        assert len(PARAMETER_TABLE) == 4
        names = [row[0] for row in PARAMETER_TABLE]
        assert any("|Q|" in n for n in names)
        assert any("|P|" in n for n in names)


class TestScaling:
    def test_scaled_rounds_and_floors(self):
        assert scaled(1000, 0.05) == 50
        assert scaled(250, 0.001) == 1
        assert scaled(250, 0.001, minimum=5) == 5

    def test_theta_matches_paper_at_full_scale(self):
        # 250/sqrt(100000) ≈ 0.79 — the paper's fine-tuned 0.8.
        assert default_theta(100_000) == pytest.approx(0.8, abs=0.02)

    def test_theta_grows_for_sparser_data(self):
        assert default_theta(1000) > default_theta(100_000)

    def test_theta_invalid(self):
        with pytest.raises(ValueError):
            default_theta(0)
