"""Shared fixtures and instance factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import CCAProblem
from repro.geometry.point import Point


def random_problem(
    rng: np.random.Generator,
    nq: int = None,
    np_: int = None,
    cap_hi: int = 5,
    world: float = 100.0,
    weights_hi: int = 1,
) -> CCAProblem:
    """A random CCA instance small enough for the scipy oracle."""
    if nq is None:
        nq = int(rng.integers(2, 7))
    if np_ is None:
        np_ = int(rng.integers(5, 40))
    caps = rng.integers(0, cap_hi + 1, nq).tolist()
    if sum(caps) == 0:
        caps[0] = 1
    weights = (
        [1] * np_ if weights_hi <= 1 else rng.integers(1, weights_hi + 1, np_).tolist()
    )
    qxy = rng.random((nq, 2)) * world
    pxy = rng.random((np_, 2)) * world
    return CCAProblem.from_arrays(qxy, caps, pxy, customer_weights=weights)


def grid_points(n: int, spacing: float = 10.0, start_id: int = 0):
    """Deterministic n×n grid of points (brute-force query baselines)."""
    pts = []
    pid = start_id
    for row in range(n):
        for col in range(n):
            pts.append(Point(pid, (col * spacing, row * spacing)))
            pid += 1
    return pts


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_problem():
    """The running example of Figure 1-ish: 3 providers, 12 customers."""
    provider_xy = [(20.0, 70.0), (50.0, 35.0), (80.0, 75.0)]
    capacities = [3, 5, 3]
    customer_xy = [
        (5.0, 95.0),
        (15.0, 75.0),
        (25.0, 80.0),
        (22.0, 62.0),
        (40.0, 40.0),
        (45.0, 25.0),
        (55.0, 30.0),
        (60.0, 42.0),
        (52.0, 48.0),
        (75.0, 70.0),
        (85.0, 68.0),
        (82.0, 85.0),
    ]
    return CCAProblem.from_arrays(provider_xy, capacities, customer_xy)


@pytest.fixture
def paper_figure2_problem():
    """The exact worked example of Figures 2-3.

    q1.k = 1, q2.k = 2; dist(q1,p1)=7, dist(q1,p2)=3, dist(q2,p1)=10,
    dist(q2,p2)=4.  Placement solving those four distance constraints:
    q1=(0,0), p1=(-7,0), p2=(3,0), q2=(2.2, sqrt(15.36)).

    The optimal matching is {(q1,p1), (q2,p2)} with Ψ = 11 (the paper's
    SSPA trace ends with exactly those reversed edges).
    """
    provider_xy = [(0.0, 0.0), (2.2, 15.36 ** 0.5)]
    capacities = [1, 2]
    customer_xy = [(-7.0, 0.0), (3.0, 0.0)]
    return CCAProblem.from_arrays(provider_xy, capacities, customer_xy)
