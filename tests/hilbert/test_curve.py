"""Unit tests for the Hilbert curve implementation."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.hilbert.curve import hilbert_d2xy, hilbert_key, hilbert_sort, hilbert_xy2d


class TestBijection:
    def test_order2_full_roundtrip(self):
        n = 1 << 2
        seen = set()
        for x in range(n):
            for y in range(n):
                d = hilbert_xy2d(2, x, y)
                assert hilbert_d2xy(2, d) == (x, y)
                seen.add(d)
        assert seen == set(range(n * n))

    def test_order1_is_the_canonical_u(self):
        # Order-1 curve visits (0,0), (0,1), (1,1), (1,0).
        cells = [hilbert_d2xy(1, d) for d in range(4)]
        assert cells == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_adjacent_indices_are_grid_neighbors(self):
        # The defining Hilbert property: consecutive curve positions are
        # unit steps on the grid.
        order = 4
        prev = hilbert_d2xy(order, 0)
        for d in range(1, (1 << order) ** 2):
            cur = hilbert_d2xy(order, d)
            assert abs(cur[0] - prev[0]) + abs(cur[1] - prev[1]) == 1
            prev = cur

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_xy2d(2, 4, 0)
        with pytest.raises(ValueError):
            hilbert_d2xy(2, 16)


class TestRealValuedKeys:
    def test_clamping_outside_world(self):
        k_inside = hilbert_key((0.0, 0.0), (0.0, 0.0), (1.0, 1.0))
        k_outside = hilbert_key((-5.0, -5.0), (0.0, 0.0), (1.0, 1.0))
        assert k_inside == k_outside

    def test_degenerate_world_is_total(self):
        # Zero-span world: every point maps to cell 0 (no crash).
        assert hilbert_key((3.0, 3.0), (3.0, 3.0), (3.0, 3.0)) == 0

    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            hilbert_key((1.0,), (0.0,), (2.0,))

    def test_locality_beats_row_major_on_average(self):
        # Nearby points should receive nearby keys more often than under
        # row-major ordering — a sanity check, not a theorem.
        rng = np.random.default_rng(0)
        pts = rng.random((200, 2)) * 1000
        keys = [hilbert_key(p, (0, 0), (1000, 1000), order=8) for p in pts]
        ordered = np.argsort(keys)
        jumps = [
            np.hypot(*(pts[a] - pts[b]))
            for a, b in zip(ordered, ordered[1:], strict=False)
        ]
        assert np.median(jumps) < 200.0


class TestSort:
    def test_sort_is_deterministic_and_complete(self):
        rng = np.random.default_rng(1)
        pts = [Point(i, rng.random(2) * 100) for i in range(50)]
        a = hilbert_sort(pts, (0, 0), (100, 100))
        b = hilbert_sort(list(reversed(pts)), (0, 0), (100, 100))
        assert a == b
        assert sorted(p.pid for p in a) == list(range(50))

    def test_ties_broken_by_id(self):
        pts = [Point(3, (5.0, 5.0)), Point(1, (5.0, 5.0)), Point(2, (5.0, 5.0))]
        out = hilbert_sort(pts, (0, 0), (10, 10))
        assert [p.pid for p in out] == [1, 2, 3]
