"""Property tests for the sharded engine's contracts.

Three guarantees, fuzzed over random small instances:

* ``shards=1`` is bit-identical to the serial solver (same pairs list).
* K-shard solves are always valid, capacity-feasible, and maximal
  (|M| = γ), for both routers.
* With the concise router the objective never exceeds serial SA at the
  same δ: sharded per-shard *exact* solves can only improve on SA's
  per-group refinement of the identical concise matching, and the
  reconciliation pass only ever lowers the cost (losing moves revert).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import CCAProblem
from repro.core.shard import solve_sharded
from repro.core.solve import solve


def build_instance(seed, max_nq=6, max_np=24):
    rng = np.random.default_rng(seed)
    nq = int(rng.integers(2, max_nq + 1))
    np_ = int(rng.integers(4, max_np + 1))
    caps = rng.integers(0, 4, nq).tolist()
    if sum(caps) == 0:
        caps[0] = 1
    qxy = rng.random((nq, 2)) * 200.0
    pxy = rng.random((np_, 2)) * 200.0
    return CCAProblem.from_arrays(qxy, caps, pxy)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_single_shard_bit_identical_to_serial(seed):
    serial = solve(build_instance(seed), "ida", backend="array")
    sharded = solve_sharded(build_instance(seed), 1, backend="array")
    assert sharded.pairs == serial.pairs


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    shards=st.integers(2, 4),
    router=st.sampled_from(["nearest", "concise"]),
)
def test_k_shard_valid_feasible_maximal(seed, shards, router):
    problem = build_instance(seed)
    matching = solve_sharded(problem, shards, router=router, backend="array")
    # validate() inside solve_sharded already asserted capacity
    # feasibility and pair distances; pin the headline invariants here.
    assert matching.size == problem.gamma
    optimal = solve(build_instance(seed), "ida", backend="array")
    assert matching.cost >= optimal.cost - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    shards=st.integers(2, 4),
    delta=st.sampled_from([15.0, 40.0, 120.0]),
)
def test_concise_router_objective_at_most_serial_sa(seed, shards, delta):
    sharded = solve_sharded(
        build_instance(seed),
        shards,
        router="concise",
        delta=delta,
        backend="array",
    )
    sa = solve(build_instance(seed), "san", delta=delta, backend="array")
    assert sharded.cost <= sa.cost * (1 + 1e-9) + 1e-9
