"""Property-based tests (hypothesis) on the core invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approx.bounds import ca_error_bound, sa_error_bound
from repro.core.approx.partition import hilbert_greedy_groups
from repro.core.problem import CCAProblem
from repro.core.solve import solve
from repro.flow.reference import oracle_cost, oracle_lsa
from repro.geometry.distance import (
    dist,
    maxdist_point_mbr,
    mindist_mbr_mbr,
    mindist_point_mbr,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.hilbert.curve import hilbert_d2xy, hilbert_xy2d

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

coord = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
xy = st.tuples(coord, coord)


# ----------------------------------------------------------------------
# geometry
# ----------------------------------------------------------------------
@FAST
@given(a=xy, b=xy, c=xy)
def test_triangle_inequality(a, b, c):
    pa, pb, pc = Point(0, a), Point(1, b), Point(2, c)
    assert dist(pa, pc) <= dist(pa, pb) + dist(pb, pc) + 1e-9


@FAST
@given(q=xy, pts=st.lists(xy, min_size=1, max_size=20))
def test_mindist_maxdist_bracket_members(q, pts):
    query = Point(99, q)
    members = [Point(i, p) for i, p in enumerate(pts)]
    box = MBR.from_points(members)
    lo = mindist_point_mbr(query, box)
    hi = maxdist_point_mbr(query, box)
    for m in members:
        d = dist(query, m)
        assert lo <= d + 1e-9
        assert d <= hi + 1e-9


@FAST
@given(a=st.lists(xy, min_size=1, max_size=10), b=st.lists(xy, min_size=1, max_size=10))
def test_mbr_mindist_lower_bounds_cross_pairs(a, b):
    pa = [Point(i, p) for i, p in enumerate(a)]
    pb = [Point(i, p) for i, p in enumerate(b)]
    bound = mindist_mbr_mbr(MBR.from_points(pa), MBR.from_points(pb))
    best = min(dist(x, y) for x in pa for y in pb)
    assert bound <= best + 1e-9


# ----------------------------------------------------------------------
# hilbert curve
# ----------------------------------------------------------------------
@FAST
@given(order=st.integers(1, 8), d=st.integers(0, 2**16 - 1))
def test_hilbert_roundtrip(order, d):
    n2 = (1 << order) ** 2
    d = d % n2
    x, y = hilbert_d2xy(order, d)
    assert hilbert_xy2d(order, x, y) == d


# ----------------------------------------------------------------------
# exact solvers vs oracle
# ----------------------------------------------------------------------
instance = st.tuples(
    st.lists(xy, min_size=1, max_size=5),                    # providers
    st.lists(st.integers(0, 4), min_size=1, max_size=5),     # capacities
    st.lists(xy, min_size=1, max_size=18),                   # customers
)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=instance, method=st.sampled_from(["ria", "nia", "ida"]))
def test_exact_solvers_match_oracle(data, method):
    q_xy, caps, p_xy = data
    caps = (caps * len(q_xy))[: len(q_xy)]
    prob = CCAProblem.from_arrays(q_xy, caps, p_xy)
    expected = oracle_cost(oracle_lsa(prob.capacities, prob.weights, prob.distance))
    m = solve(prob, method)
    m.validate(prob)
    assert math.isclose(m.cost, expected, abs_tol=1e-6)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=instance,
    weights=st.lists(st.integers(1, 3), min_size=1, max_size=18),
)
def test_weighted_instances_match_oracle(data, weights):
    q_xy, caps, p_xy = data
    caps = [max(c, 1) for c in (caps * len(q_xy))[: len(q_xy)]]
    w = (weights * len(p_xy))[: len(p_xy)]
    prob = CCAProblem.from_arrays(q_xy, caps, p_xy, customer_weights=w)
    expected = oracle_cost(oracle_lsa(prob.capacities, prob.weights, prob.distance))
    m = solve(prob, "ida")
    m.validate(prob)
    assert math.isclose(m.cost, expected, abs_tol=1e-6)


# ----------------------------------------------------------------------
# approximation guarantees
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=instance,
    delta=st.floats(min_value=1.0, max_value=300.0),
    method=st.sampled_from(["san", "sae", "can", "cae"]),
)
def test_approx_error_bounds_hold(data, delta, method):
    q_xy, caps, p_xy = data
    caps = [max(c, 1) for c in (caps * len(q_xy))[: len(q_xy)]]
    prob = CCAProblem.from_arrays(q_xy, caps, p_xy)
    optimal = solve(prob, "ida").cost
    m = solve(prob, method, delta=delta)
    m.validate(prob)
    bound_fn = sa_error_bound if method.startswith("sa") else ca_error_bound
    assert m.cost - optimal <= bound_fn(prob.gamma, delta) + 1e-6


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
@FAST
@given(
    pts=st.lists(xy, min_size=1, max_size=40),
    delta=st.floats(min_value=0.0, max_value=500.0),
)
def test_hilbert_groups_respect_delta(pts, delta):
    points = [Point(i, p) for i, p in enumerate(pts)]
    groups = hilbert_greedy_groups(points, delta, (0, 0), (1000, 1000))
    covered = sorted(p.pid for g in groups for p in g)
    assert covered == list(range(len(points)))
    for g in groups:
        assert MBR.from_points(g).diagonal <= delta + 1e-9
