"""Property tests for the index-backend seam.

The packed columnar backend must be *bit-identical* to the pointer
reference backend — identical NN report order, identical page-access
counters after every single stream request (monotone and equal), and
bit-identical matchings for every method — on every instance.  The batch
kernels use the same float operation order as the scalar reference, so
exact ``==`` comparisons are the specification here, not an
approximation.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.problem import CCAProblem
from repro.core.solve import solve
from repro.geometry.point import Point
from repro.rtree.ann import GroupedANN, PackedGroupedANN
from repro.rtree.packed import PackedRTree
from repro.rtree.tree import RTree

coord = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
xy = st.tuples(coord, coord)

instance = st.tuples(
    st.lists(xy, min_size=1, max_size=5),  # providers
    st.lists(st.integers(0, 4), min_size=1, max_size=5),  # capacities
    st.lists(xy, min_size=1, max_size=18),  # customers
)

# Integer grids force duplicate coordinates and distance ties — the cases
# where only matching tie-break discipline keeps the backends aligned.
grid_xy = st.tuples(st.integers(0, 8).map(float), st.integers(0, 8).map(float))


def _problem(q_xy, caps, p_xy, weights=None):
    caps = (caps * len(q_xy))[: len(q_xy)]
    if sum(caps) == 0:
        caps[0] = 1
    return CCAProblem.from_arrays(q_xy, caps, p_xy, customer_weights=weights)


def _drain_and_compare(customers, providers, group_size, rng_seed):
    """Interleaved full drain of both backends; asserts NN order and
    page-access parity after every request."""
    pointer = RTree.from_points(customers)
    packed = PackedRTree.from_points(customers)
    ann_pointer = GroupedANN(pointer, providers, group_size=group_size)
    ann_packed = PackedGroupedANN(packed, providers, group_size=group_size)
    rng = np.random.default_rng(rng_seed)
    budget = (len(customers) + 2) * len(providers)
    reads_before = -1
    for _ in range(budget):
        q = providers[int(rng.integers(0, len(providers)))]
        a = ann_pointer.next_nn(q.pid)
        b = ann_packed.next_nn(q.pid)
        if a is None:
            assert b is None
        else:
            assert a.pid == b.pid
            assert a.coords == b.coords
        # Identical counters, and monotone non-decreasing across requests.
        assert pointer.stats.reads == packed.stats.reads
        assert pointer.stats.faults == packed.stats.faults
        assert packed.stats.reads >= reads_before
        reads_before = packed.stats.reads


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    customer_xy=st.lists(xy, min_size=1, max_size=40),
    provider_xy=st.lists(xy, min_size=1, max_size=8),
    group_size=st.sampled_from([1, 3, 8]),
    seed=st.integers(0, 2**16),
)
def test_nn_streams_identical(customer_xy, provider_xy, group_size, seed):
    customers = [Point(j, c) for j, c in enumerate(customer_xy)]
    providers = [Point(i, c) for i, c in enumerate(provider_xy)]
    _drain_and_compare(customers, providers, group_size, seed)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    customer_xy=st.lists(grid_xy, min_size=1, max_size=40),
    provider_xy=st.lists(grid_xy, min_size=1, max_size=6),
    seed=st.integers(0, 2**16),
)
def test_nn_streams_identical_under_ties(customer_xy, provider_xy, seed):
    customers = [Point(j, c) for j, c in enumerate(customer_xy)]
    providers = [Point(i, c) for i, c in enumerate(provider_xy)]
    _drain_and_compare(customers, providers, 4, seed)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=instance, method=st.sampled_from(["sspa", "ria", "nia", "ida"]))
def test_index_backends_bit_identical_all_exact_methods(data, method):
    q_xy, caps, p_xy = data
    # Separate problem objects: solvers cache R-trees and mutate networks.
    pointer_m = solve(_problem(q_xy, caps, p_xy), method, index_backend="pointer")
    packed_m = solve(_problem(q_xy, caps, p_xy), method, index_backend="packed")
    assert packed_m.cost == pointer_m.cost  # bit-identical, not approx
    assert packed_m.stats.esub_edges == pointer_m.stats.esub_edges
    assert sorted(packed_m.pairs) == sorted(pointer_m.pairs)
    assert packed_m.stats.io.reads == pointer_m.stats.io.reads
    assert packed_m.stats.io.faults == pointer_m.stats.io.faults


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=instance,
    method=st.sampled_from(["san", "sae", "can", "cae", "sm"]),
)
def test_index_backends_bit_identical_approx_methods(data, method):
    q_xy, caps, p_xy = data
    pointer_m = solve(_problem(q_xy, caps, p_xy), method, index_backend="pointer")
    packed_m = solve(_problem(q_xy, caps, p_xy), method, index_backend="packed")
    assert packed_m.cost == pointer_m.cost
    assert sorted(packed_m.pairs) == sorted(pointer_m.pairs)
    assert packed_m.stats.io.faults == pointer_m.stats.io.faults


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    data=instance,
    weights=st.lists(st.integers(1, 3), min_size=1, max_size=18),
)
def test_index_backends_bit_identical_weighted_customers(data, weights):
    """CA's concise matching runs weighted customers through the seam."""
    q_xy, caps, p_xy = data
    caps = [max(c, 1) for c in (caps * len(q_xy))[: len(q_xy)]]
    w = (weights * len(p_xy))[: len(p_xy)]
    pointer_m = solve(
        CCAProblem.from_arrays(q_xy, caps, p_xy, customer_weights=w),
        "ida",
        index_backend="pointer",
    )
    packed_m = solve(
        CCAProblem.from_arrays(q_xy, caps, p_xy, customer_weights=w),
        "ida",
        index_backend="packed",
    )
    assert packed_m.cost == pointer_m.cost
    assert sorted(packed_m.pairs) == sorted(pointer_m.pairs)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=instance, seed=st.integers(0, 2**16))
def test_index_backends_compose_with_flow_backends(data, seed):
    """The two seams are orthogonal: (array, packed) == (dict, pointer)."""
    q_xy, caps, p_xy = data
    reference = solve(
        _problem(q_xy, caps, p_xy),
        "ida",
        backend="dict",
        index_backend="pointer",
    )
    columnar = solve(
        _problem(q_xy, caps, p_xy),
        "ida",
        backend="array",
        index_backend="packed",
    )
    assert columnar.cost == reference.cost
    assert sorted(columnar.pairs) == sorted(reference.pairs)
    assert columnar.stats.esub_edges == reference.stats.esub_edges
