"""Property tests for the bulk edge-streaming seam.

``add_edges`` is the fused pipeline's entry into the flow network: the
reference implementation is literally the per-edge ``add_edge`` loop, and
the array backend's vectorized override must reproduce it bit for bit —
same accepted edges (first occurrence wins on duplicates, zero-capacity
edges rejected), same insertion order, same forward adjacency, and
therefore the same Dijkstra heap sequences and matchings downstream.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.problem import CCAProblem
from repro.core.solve import solve
from repro.flow.backend import BACKENDS
from repro.flow.numbakernel import interpreted_backend

# Every backend axis, always including numba: the registry offers it when
# the optional dependency is installed; otherwise the kernels run
# interpreted through the same classes — identical bytes, so identical
# traces, which is exactly what these tests pin.
ALL_BACKENDS = dict(BACKENDS)
ALL_BACKENDS.setdefault("numba", interpreted_backend())

dist_f = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)

# (provider, customer, distance) triples over small node ranges, with
# plenty of collisions so duplicate masking is actually exercised.
edge_batches = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 9), dist_f),
    min_size=0,
    max_size=60,
)

caps_weights = st.tuples(
    st.lists(st.integers(0, 3), min_size=4, max_size=4),   # capacities
    st.lists(st.integers(0, 2), min_size=10, max_size=10),  # weights
)


def _net_signature(net):
    """Everything observable about Esub, including adjacency order."""
    return (
        net.edge_count,
        net.edge_triples(),
        [list(net.out_edges(i)) for i in range(net.nq)],
        [
            [net.edge_flow(i, j), net.edge_residual(i, j)]
            for i in range(net.nq)
            for j in range(net.np)
        ],
    )


def _build_loop(backend, caps, weights, triples):
    net = ALL_BACKENDS[backend].network(caps, weights)
    inserted = sum(net.add_edge(i, j, d) for i, j, d in triples)
    return net, inserted


def _build_bulk_rows(backend, caps, weights, triples):
    """One add_edges call per provider row (the RIA/SSPA shape)."""
    net = ALL_BACKENDS[backend].network(caps, weights)
    inserted = 0
    for i in range(net.nq):
        row = [(j, d) for (qi, j, d) in triples if qi == i]
        inserted += net.add_edges(
            i,
            np.asarray([j for j, _ in row], dtype=np.int64),
            np.asarray([d for _, d in row], dtype=np.float64),
        )
    return net, inserted


def _build_bulk_columns(backend, caps, weights, triples):
    """One add_edges call with full (i, j, d) columns."""
    net = ALL_BACKENDS[backend].network(caps, weights)
    inserted = net.add_edges(
        np.asarray([t[0] for t in triples], dtype=np.int64),
        np.asarray([t[1] for t in triples], dtype=np.int64),
        np.asarray([t[2] for t in triples], dtype=np.float64),
    )
    return net, inserted


@settings(max_examples=60, deadline=None)
@given(
    data=caps_weights,
    triples=edge_batches,
    backend=st.sampled_from(sorted(ALL_BACKENDS)),
)
def test_bulk_add_edges_bit_identical_networks(data, triples, backend):
    caps, weights = data
    loop_net, loop_n = _build_loop(backend, caps, weights, triples)
    cols_net, cols_n = _build_bulk_columns(backend, caps, weights, triples)
    assert cols_n == loop_n
    assert _net_signature(cols_net) == _net_signature(loop_net)


@settings(max_examples=40, deadline=None)
@given(
    data=caps_weights,
    triples=edge_batches,
    backend=st.sampled_from(sorted(ALL_BACKENDS)),
)
def test_bulk_row_shape_matches_per_provider_loops(data, triples, backend):
    """The scalar-provider broadcast form (RIA/SSPA rows) == the loop
    restricted to that provider, per provider."""
    caps, weights = data
    rows_net, rows_n = _build_bulk_rows(backend, caps, weights, triples)
    # The loop equivalent of per-provider grouping: same triples,
    # reordered provider-by-provider (order within a provider is kept).
    grouped = [(i, j, d) for i in range(len(caps)) for (qi, j, d) in triples if qi == i]
    loop_net, loop_n = _build_loop(backend, caps, weights, grouped)
    assert rows_n == loop_n
    assert _net_signature(rows_net) == _net_signature(loop_net)


def _ssp_trace(net, backend):
    """Full SSP over a prepared network: heap/settle sequences + result."""
    trace = []
    gamma = net.gamma
    guard = 0
    while net.matched < gamma:
        state = ALL_BACKENDS[backend].dijkstra(net)
        if not state.run():
            break  # Esub may not support a full matching; fine
        trace.append(
            (list(state._settled_order), state.pops, state.sp_cost, state.path_nodes(),)
        )
        net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        guard += 1
        assert guard <= gamma
    return trace, sorted(net.matching_flows()), net.matching_cost()


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=caps_weights, triples=edge_batches)
def test_bulk_vs_loop_heap_sequences_and_matchings(data, triples):
    """Networks built bulk vs loop drive *bit-identical* searches: same
    settled orders, pop counts, path nodes, and final matchings — across
    both backends (the dict loop is the specification)."""
    caps, weights = data
    traces = {}
    for backend in sorted(ALL_BACKENDS):
        loop_net, _ = _build_loop(backend, caps, weights, triples)
        bulk_net, _ = _build_bulk_columns(backend, caps, weights, triples)
        traces[(backend, "loop")] = _ssp_trace(loop_net, backend)
        traces[(backend, "bulk")] = _ssp_trace(bulk_net, backend)
    reference = traces[("dict", "loop")]
    for key, trace in traces.items():
        assert trace == reference, f"{key} diverged from dict/loop"


def test_ragged_columns_raise_on_both_backends():
    """Mismatched column lengths fail loudly (and identically) instead of
    silently zip-truncating on one backend only."""
    import pytest

    for backend in sorted(ALL_BACKENDS):
        net = ALL_BACKENDS[backend].network([2, 2], [1, 1, 1])
        with pytest.raises(ValueError):
            net.add_edges(0, [0, 1, 2], [1.0, 2.0])
        with pytest.raises(ValueError):
            net.add_edges([0, 1], [0, 1, 2], [1.0, 2.0, 3.0])
        assert net.edge_count == 0


coord = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
xy = st.tuples(coord, coord)
instance = st.tuples(
    st.lists(xy, min_size=1, max_size=4),
    st.lists(st.integers(0, 3), min_size=1, max_size=4),
    st.lists(xy, min_size=1, max_size=14),
)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=instance, method=st.sampled_from(["ria", "nia", "ida", "sspa", "sm"]))
def test_fused_supply_identical_across_backend_axes(data, method):
    """End to end through the fused supply (column range searches, ANN id
    streaming, SSPA row oracle): every flow x index backend combination
    returns the same matching."""
    q_xy, caps, p_xy = data
    caps = (caps * len(q_xy))[: len(q_xy)]
    if sum(caps) == 0:
        caps[0] = 1
    reference = None
    for flow in ("dict", "array", ALL_BACKENDS["numba"]):
        for index in ("pointer", "packed"):
            problem = CCAProblem.from_arrays(q_xy, caps, p_xy)
            m = solve(problem, method, backend=flow, index_backend=index)
            signature = (m.cost, sorted(m.pairs))
            if reference is None:
                reference = signature
            else:
                assert signature == reference, (flow, index)
