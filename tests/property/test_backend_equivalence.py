"""Property tests for the flow-backend seam.

The array and numba kernels must be *bit-identical* to the dict
reference backend — same matching cost, same |Esub|, same matched pairs
— on every instance, for every exact method.  Reduced costs are
evaluated with the same float operation order in all kernels, so exact
``==`` comparisons are the specification here, not an approximation.

The numba axis runs through :func:`interpreted_backend` when the
optional dependency is absent (the kernels execute as plain Python —
same bytes, interpreter speed); the CI ``test-numba`` job re-runs this
file with the JIT actually active.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.problem import CCAProblem
from repro.core.solve import solve
from repro.flow.backend import BACKENDS
from repro.flow.numbakernel import interpreted_backend

NUMBA_BACKEND = BACKENDS.get("numba") or interpreted_backend()
NON_REFERENCE = ("array", NUMBA_BACKEND)

coord = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
xy = st.tuples(coord, coord)

instance = st.tuples(
    st.lists(xy, min_size=1, max_size=5),                    # providers
    st.lists(st.integers(0, 4), min_size=1, max_size=5),     # capacities
    st.lists(xy, min_size=1, max_size=18),                   # customers
)


def _problem(q_xy, caps, p_xy, weights=None):
    caps = (caps * len(q_xy))[: len(q_xy)]
    if sum(caps) == 0:
        caps[0] = 1
    return CCAProblem.from_arrays(q_xy, caps, p_xy, customer_weights=weights)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=instance, method=st.sampled_from(["sspa", "ria", "nia", "ida"]))
def test_backends_bit_identical_all_exact_methods(data, method):
    q_xy, caps, p_xy = data
    # Separate problem objects: solvers cache R-trees and mutate networks.
    dict_m = solve(_problem(q_xy, caps, p_xy), method, backend="dict")
    for backend in NON_REFERENCE:
        m = solve(_problem(q_xy, caps, p_xy), method, backend=backend)
        assert m.cost == dict_m.cost            # bit-identical, not approx
        assert m.stats.esub_edges == dict_m.stats.esub_edges
        assert sorted(m.pairs) == sorted(dict_m.pairs)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    data=instance,
    weights=st.lists(st.integers(1, 3), min_size=1, max_size=18),
)
def test_backends_bit_identical_weighted_customers(data, weights):
    """CA's concise matching runs weighted customers through the seam."""
    q_xy, caps, p_xy = data
    caps = [max(c, 1) for c in (caps * len(q_xy))[: len(q_xy)]]
    w = (weights * len(p_xy))[: len(p_xy)]
    dict_m = solve(
        CCAProblem.from_arrays(q_xy, caps, p_xy, customer_weights=w),
        "ida",
        backend="dict",
    )
    for backend in NON_REFERENCE:
        m = solve(
            CCAProblem.from_arrays(q_xy, caps, p_xy, customer_weights=w),
            "ida",
            backend=backend,
        )
        assert m.cost == dict_m.cost
        assert m.stats.esub_edges == dict_m.stats.esub_edges
        assert sorted(m.pairs) == sorted(dict_m.pairs)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=instance, method=st.sampled_from(["san", "cae", "sm"]))
def test_backends_identical_through_approx_solvers(data, method):
    """SA/CA run IDA on the seam internally; SM validates the selector."""
    q_xy, caps, p_xy = data
    dict_m = solve(_problem(q_xy, caps, p_xy), method, backend="dict")
    for backend in NON_REFERENCE:
        m = solve(_problem(q_xy, caps, p_xy), method, backend=backend)
        assert m.cost == dict_m.cost
        assert sorted(m.pairs) == sorted(dict_m.pairs)
