"""Property: service replay ≡ cold solve, across flow × index backends.

For any seeding instance, any generated event stream, and any batching
window, the single-shard service's live matching after the replay must be
bit-identical to a cold solve of the final problem state — on every flow
kernel (dict / array / numba-or-interpreted) crossed with every index
backend (pointer / packed).  This is the serving layer's acceptance
contract; the bench gate re-checks one point of it in CI, this file
sweeps the space.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datagen.events import EventStreamSpec, generate_events
from repro.datagen.workloads import make_problem
from repro.flow.backend import BACKENDS
from repro.flow.numbakernel import interpreted_backend
from repro.rtree.backend import INDEX_BACKENDS
from repro.serve.engine import OnlineAssignmentService

NUMBA_BACKEND = BACKENDS.get("numba") or interpreted_backend()
FLOW_AXES = ("dict", "array", NUMBA_BACKEND)
INDEX_AXES = tuple(INDEX_BACKENDS)

stream_shape = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "stream_seed": st.integers(0, 2**16),
        "profile": st.sampled_from(("steady", "burst", "diurnal")),
        "n_events": st.integers(1, 40),
        "p_depart": st.floats(0.0, 0.6),
        "p_capacity": st.floats(0.0, 0.3),
        "window": st.sampled_from((0.0, 0.1, 1.0)),
        "k": st.integers(1, 8),
    }
)


def _replay(shape, backend, index_backend):
    problem = make_problem(
        nq=5, np_=25, k=shape["k"], seed=shape["seed"], network_grid=8
    )
    spec = EventStreamSpec(
        n_events=shape["n_events"],
        profile=shape["profile"],
        rate=20.0,
        p_depart=shape["p_depart"],
        p_capacity=shape["p_capacity"],
    )
    events = generate_events(problem, spec, seed=shape["stream_seed"])
    service = OnlineAssignmentService(
        problem, shards=1, backend=backend, index_backend=index_backend
    )
    service.run(events, window=shape["window"])
    return service


@pytest.mark.parametrize("index_backend", INDEX_AXES)
@pytest.mark.parametrize("backend", FLOW_AXES, ids=("dict", "array", "numba"))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(shape=stream_shape)
def test_replay_bit_identical_to_cold(shape, backend, index_backend):
    service = _replay(shape, backend, index_backend)
    report = service.verify_against_cold()
    assert report["identical"], report
    assert report["live_size"] == service.final_problem().gamma


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(shape=stream_shape)
def test_backends_agree_with_each_other(shape):
    """All kernel combinations must also agree pairwise on the *live*
    pairs (not just each against its own cold reference)."""
    reference = sorted(_replay(shape, "dict", "pointer").live_pairs())
    for backend, ids in (("array", "packed"), (NUMBA_BACKEND, "pointer")):
        assert (sorted(_replay(shape, backend, ids).live_pairs()) == reference)
