"""Determinism of data generation under multiprocessing.

The shard engine's workers may rebuild instances from ``(seed, key)``; the
SeedSequence-based RNG derivation must give them bit-identical coordinates
to the parent, with no reliance on inherited module or global RNG state.
The tests use the ``spawn`` start method — the strictest case: children
re-import everything from scratch.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.datagen.generator import derive_rng, spawn_rngs
from repro.datagen.workloads import make_problem, make_separated_problem


def _points_fingerprint(seed):
    problem = make_problem(nq=6, np_=80, k=10, seed=seed, network_grid=8)
    return (
        [tuple(q.point.coords) for q in problem.providers],
        [tuple(p.point.coords) for p in problem.customers],
        [q.capacity for q in problem.providers],
    )


def _separated_fingerprint(seed):
    problem = make_separated_problem(clusters=2, nq_per=3, np_per=20, k=8, seed=seed)
    return (
        [tuple(q.point.coords) for q in problem.providers],
        [tuple(p.point.coords) for p in problem.customers],
    )


def _derive_fingerprint(args):
    seed, key = args
    return derive_rng(seed, *key).random(8).tolist()


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(7, "providers", 3).random(16)
        b = derive_rng(7, "providers", 3).random(16)
        assert np.array_equal(a, b)

    def test_distinct_keys_distinct_streams(self):
        a = derive_rng(7, "providers", 0).random(16)
        b = derive_rng(7, "providers", 1).random(16)
        c = derive_rng(7, "customers", 0).random(16)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_spawn_rngs_independent_and_stable(self):
        first = [rng.random(4).tolist() for rng in spawn_rngs(11, 3)]
        second = [rng.random(4).tolist() for rng in spawn_rngs(11, 3)]
        assert first == second
        assert first[0] != first[1]

    def test_spawn_rngs_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestSubprocessDeterminism:
    """Workers must reproduce the parent's instances bit-for-bit."""

    def _pool(self):
        return ProcessPoolExecutor(
            max_workers=2,
            mp_context=multiprocessing.get_context("spawn"),
        )

    def test_make_problem_identical_across_processes(self):
        parent = [_points_fingerprint(s) for s in (0, 1)]
        with self._pool() as pool:
            children = list(pool.map(_points_fingerprint, (0, 1)))
        assert parent == children

    def test_separated_problem_identical_across_processes(self):
        parent = [_separated_fingerprint(s) for s in (0, 3)]
        with self._pool() as pool:
            children = list(pool.map(_separated_fingerprint, (0, 3)))
        assert parent == children

    def test_derive_rng_identical_across_processes(self):
        jobs = [(5, ("shard", i)) for i in range(3)]
        parent = [_derive_fingerprint(j) for j in jobs]
        with self._pool() as pool:
            children = list(pool.map(_derive_fingerprint, jobs))
        assert parent == children


class TestSeparatedWorkload:
    def test_capacity_must_cover_demand(self):
        with pytest.raises(ValueError):
            make_separated_problem(clusters=2, nq_per=2, np_per=50, k=10)

    def test_shapes_and_capacities(self):
        problem = make_separated_problem(clusters=3, nq_per=4, np_per=30, k=10, seed=2)
        assert len(problem.providers) == 12
        assert len(problem.customers) == 90
        assert all(q.capacity == 10 for q in problem.providers)

    def test_clusters_are_separated(self):
        problem = make_separated_problem(
            clusters=2,
            nq_per=3,
            np_per=20,
            k=8,
            spread=10.0,
            separation=400.0,
            seed=0,
        )
        xs = np.array([q.point.x for q in problem.providers])
        # Two tight blobs around x=200 and x=600.
        assert (np.abs(xs - 200.0) < 100.0).sum() == 3
        assert (np.abs(xs - 600.0) < 100.0).sum() == 3
