"""Point-placement generator tests (the Section 5.1 protocol)."""

import numpy as np
import pytest

from repro.datagen.generator import clustered_points, generate_points, uniform_points
from repro.datagen.network import build_road_network

NET = build_road_network(grid=12, seed=0)


def on_network(points, tol=1e-6):
    """Fraction of points lying on some network edge segment."""
    hits = 0
    a = NET.node_xy[NET.edges[:, 0]]
    b = NET.node_xy[NET.edges[:, 1]]
    ab = b - a
    ab_len2 = (ab ** 2).sum(axis=1)
    for p in points:
        ap = p[None, :] - a
        t = np.clip((ap * ab).sum(axis=1) / np.maximum(ab_len2, 1e-12), 0, 1)
        closest = a + t[:, None] * ab
        d = np.hypot(*(p[None, :] - closest).T)
        if d.min() < tol:
            hits += 1
    return hits / len(points)


class TestUniform:
    def test_count_and_bounds(self):
        rng = np.random.default_rng(1)
        pts = uniform_points(NET, 200, rng)
        assert pts.shape == (200, 2)
        assert pts.min() >= 0.0 and pts.max() <= 1000.0

    def test_points_lie_on_network(self):
        rng = np.random.default_rng(2)
        pts = uniform_points(NET, 100, rng)
        assert on_network(pts) == 1.0

    def test_zero_points(self):
        rng = np.random.default_rng(3)
        assert uniform_points(NET, 0, rng).shape == (0, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            uniform_points(NET, -1, np.random.default_rng(0))

    def test_spatial_spread(self):
        # Uniform points should cover most of the world's quadrants.
        rng = np.random.default_rng(4)
        pts = uniform_points(NET, 400, rng)
        qx = pts[:, 0] > 500
        qy = pts[:, 1] > 500
        counts = [((qx == a) & (qy == b)).sum() for a in (0, 1) for b in (0, 1)]
        assert min(counts) > 30


class TestClustered:
    def test_points_lie_on_network(self):
        rng = np.random.default_rng(5)
        pts = clustered_points(NET, 150, rng)
        assert on_network(pts) == 1.0

    def test_clustering_is_denser_than_uniform(self):
        # Average nearest-neighbor distance must be clearly smaller for
        # the clustered distribution.
        from scipy.spatial import cKDTree

        rng = np.random.default_rng(6)
        clustered = clustered_points(NET, 400, rng)
        uniform = uniform_points(NET, 400, np.random.default_rng(6))

        def mean_nn(pts):
            d, _ = cKDTree(pts).query(pts, k=2)
            return d[:, 1].mean()

        # Empirically the ratio is ~0.65; assert with safety margin.
        assert mean_nn(clustered) < 0.85 * mean_nn(uniform)

    def test_cluster_fraction_zero_is_uniform_like(self):
        rng = np.random.default_rng(7)
        pts = clustered_points(NET, 100, rng, cluster_fraction=0.0)
        assert pts.shape == (100, 2)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            clustered_points(NET, 10, np.random.default_rng(0), cluster_fraction=1.5)


class TestDispatch:
    @pytest.mark.parametrize("name", ["uniform", "U", "u"])
    def test_uniform_aliases(self, name):
        pts = generate_points(NET, 20, name, seed=0)
        assert pts.shape == (20, 2)

    @pytest.mark.parametrize("name", ["clustered", "C", "c"])
    def test_clustered_aliases(self, name):
        pts = generate_points(NET, 20, name, seed=0)
        assert pts.shape == (20, 2)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            generate_points(NET, 10, "zipf", seed=0)

    def test_seed_reproducibility(self):
        a = generate_points(NET, 50, "clustered", seed=9)
        b = generate_points(NET, 50, "clustered", seed=9)
        assert np.array_equal(a, b)
