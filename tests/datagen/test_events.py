"""Event-stream generator: determinism, well-formedness, grouping.

Streams feed the serving layer, so the contracts here are load-bearing:
the same ``(problem, spec, seed)`` must give bit-identical streams in any
process (subprocess replay = parent replay), every departure must name a
customer that is live at that point of the stream, and arrival refs must
be the exact positional ids the engine will assign.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.datagen.events import (
    EVENT_KINDS,
    PROFILES,
    Event,
    EventStreamSpec,
    _rate_ceiling,
    generate_events,
    group_events,
    rate_at,
    summarize_events,
)
from repro.datagen.workloads import make_problem


def _stream_fingerprint(args):
    seed, profile = args
    problem = make_problem(nq=5, np_=40, k=10, seed=2, network_grid=8)
    spec = EventStreamSpec(n_events=60, profile=profile, rate=20.0)
    return [
        (e.seq, e.time, e.kind, e.xy, e.ref, e.provider_id, e.capacity)
        for e in generate_events(problem, spec, seed=seed)
    ]


@pytest.fixture(scope="module")
def problem():
    return make_problem(nq=5, np_=40, k=10, seed=2, network_grid=8)


class TestDeterminism:
    def test_same_seed_same_stream(self, problem):
        spec = EventStreamSpec(n_events=80, rate=25.0)
        a = generate_events(problem, spec, seed=4)
        b = generate_events(problem, spec, seed=4)
        assert a == b  # frozen dataclasses compare field-wise

    def test_different_seeds_differ(self, problem):
        spec = EventStreamSpec(n_events=80, rate=25.0)
        assert generate_events(problem, spec, seed=4) != generate_events(
            problem, spec, seed=5
        )

    def test_profiles_draw_distinct_streams(self, problem):
        spec = {p: EventStreamSpec(n_events=40, profile=p) for p in PROFILES}
        streams = {p: generate_events(problem, spec[p], seed=1) for p in PROFILES}
        assert streams["steady"] != streams["burst"]
        assert streams["steady"] != streams["diurnal"]

    def test_identical_across_spawned_processes(self):
        jobs = [(0, "steady"), (3, "burst"), (7, "diurnal")]
        parent = [_stream_fingerprint(j) for j in jobs]
        with ProcessPoolExecutor(
            max_workers=2,
            mp_context=multiprocessing.get_context("spawn"),
        ) as pool:
            children = list(pool.map(_stream_fingerprint, jobs))
        assert parent == children


class TestWellFormedness:
    @pytest.mark.parametrize("profile", PROFILES)
    def test_replays_cleanly(self, problem, profile):
        """Departures only ever name live customers; arrival refs are the
        positional ids a replay assigns."""
        spec = EventStreamSpec(n_events=150, profile=profile, rate=30.0, p_depart=0.4)
        events = generate_events(problem, spec, seed=9)
        live = {j for j, p in enumerate(problem.customers) if p.weight > 0}
        next_ref = len(problem.customers)
        for event in events:
            assert event.kind in EVENT_KINDS
            if event.kind == "arrive":
                assert event.ref == next_ref
                assert event.xy is not None
                live.add(next_ref)
                next_ref += 1
            elif event.kind == "depart":
                assert event.ref in live
                live.remove(event.ref)
            else:
                assert 0 <= event.provider_id < len(problem.providers)
                assert event.capacity >= 0

    def test_times_strictly_increase(self, problem):
        events = generate_events(problem, EventStreamSpec(n_events=100), seed=0)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(b > a for a, b in zip(times, times[1:], strict=False))

    def test_requested_length(self, problem):
        for n in (0, 1, 17):
            spec = EventStreamSpec(n_events=n)
            assert len(generate_events(problem, spec, seed=0)) == n

    def test_summary_counts(self, problem):
        events = generate_events(problem, EventStreamSpec(n_events=90), seed=3)
        summary = summarize_events(events)
        assert (summary.arrivals + summary.departures + summary.capacity_changes == 90)
        assert summary.duration >= 0


class TestRateProfiles:
    def test_burst_rate_alternates(self):
        spec = EventStreamSpec(
            profile="burst",
            rate=10.0,
            burst_factor=3.0,
            burst_period=10.0,
            burst_width=2.0,
        )
        assert rate_at(spec, 1.0) == 30.0  # inside the burst window
        assert rate_at(spec, 5.0) == 10.0  # outside
        assert rate_at(spec, 11.0) == 30.0  # periodic

    def test_diurnal_stays_positive(self):
        spec = EventStreamSpec(profile="diurnal", rate=10.0, diurnal_amplitude=2.0)
        lows = [rate_at(spec, t / 10.0) for t in range(400)]
        assert min(lows) >= 10.0 * 0.05

    @pytest.mark.parametrize("profile", PROFILES)
    def test_ceiling_dominates(self, profile):
        spec = EventStreamSpec(profile=profile, rate=12.0)
        ceiling = _rate_ceiling(spec)
        assert all(rate_at(spec, t / 7.0) <= ceiling + 1e-12 for t in range(500))


class TestGrouping:
    def _stream(self, times):
        return [
            Event(seq=i, time=t, kind="arrive", xy=(0.0, 0.0), ref=i)
            for i, t in enumerate(times)
        ]

    def test_zero_window_one_event_per_group(self):
        groups = group_events(self._stream([0.0, 0.1, 0.2]), 0.0)
        assert [len(g) for g in groups] == [1, 1, 1]

    def test_window_coalesces_from_first_event(self):
        events = self._stream([0.0, 0.4, 0.9, 1.0, 2.5])
        groups = group_events(events, 1.0)
        assert [[e.seq for e in g] for g in groups] == [[0, 1, 2], [3], [4]]

    def test_order_and_content_preserved(self):
        events = self._stream([0.0, 0.1, 5.0, 5.1])
        groups = group_events(events, 0.5)
        assert [e for g in groups for e in g] == events

    def test_empty_stream(self):
        assert group_events([], 1.0) == []


class TestSpecValidation:
    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError):
            EventStreamSpec(profile="weekly")

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            EventStreamSpec(p_depart=0.8, p_capacity=0.3)
        with pytest.raises(ValueError):
            EventStreamSpec(p_depart=-0.1)

    def test_rejects_bad_rate_and_counts(self):
        with pytest.raises(ValueError):
            EventStreamSpec(rate=0.0)
        with pytest.raises(ValueError):
            EventStreamSpec(n_events=-1)

    def test_rejects_bad_capacity_factors(self):
        with pytest.raises(ValueError):
            EventStreamSpec(cap_lo_factor=2.0, cap_hi_factor=1.0)
