"""Synthetic road network tests."""

import numpy as np
import pytest

from repro.datagen.network import build_road_network


class TestConstruction:
    def test_default_shape(self):
        net = build_road_network(grid=10, seed=1)
        assert net.num_nodes == 100
        assert net.num_edges > 100
        assert net.node_xy.shape == (100, 2)
        assert net.edge_lengths.shape == (net.num_edges,)

    def test_world_bounds(self):
        net = build_road_network(grid=12, seed=2)
        assert net.node_xy.min() >= 0.0
        assert net.node_xy.max() <= 1000.0

    def test_deterministic_by_seed(self):
        a = build_road_network(grid=8, seed=3)
        b = build_road_network(grid=8, seed=3)
        assert np.array_equal(a.node_xy, b.node_xy)
        assert np.array_equal(a.edges, b.edges)

    def test_different_seeds_differ(self):
        a = build_road_network(grid=8, seed=3)
        b = build_road_network(grid=8, seed=4)
        assert not np.array_equal(a.node_xy, b.node_xy)

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            build_road_network(grid=1)


class TestConnectivity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_connected_after_drops(self, seed):
        net = build_road_network(grid=10, seed=seed, drop_fraction=0.3)
        graph = net.to_networkx()
        import networkx as nx

        assert nx.is_connected(graph)

    def test_drop_fraction_reduces_edges(self):
        dense = build_road_network(
            grid=10, seed=5, drop_fraction=0.0, shortcut_fraction=0.0
        )
        sparse = build_road_network(
            grid=10, seed=5, drop_fraction=0.25, shortcut_fraction=0.0
        )
        assert sparse.num_edges < dense.num_edges


class TestGeometry:
    def test_edge_lengths_match_coordinates(self):
        net = build_road_network(grid=6, seed=6)
        for (a, b), length in zip(net.edges, net.edge_lengths, strict=False):
            expected = np.hypot(*(net.node_xy[a] - net.node_xy[b]))
            assert length == pytest.approx(expected)

    def test_point_on_edge_interpolates(self):
        net = build_road_network(grid=6, seed=7)
        a, b = net.edges[0]
        x0, y0 = net.point_on_edge(0, 0.0)
        x1, y1 = net.point_on_edge(0, 1.0)
        assert (x0, y0) == pytest.approx(tuple(net.node_xy[a]))
        assert (x1, y1) == pytest.approx(tuple(net.node_xy[b]))
        xm, ym = net.point_on_edge(0, 0.5)
        assert (xm, ym) == pytest.approx(tuple(net.edge_midpoints[0]))

    def test_total_length_positive(self):
        assert build_road_network(grid=5, seed=8).total_length > 0
