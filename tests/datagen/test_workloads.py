"""Workload factory tests."""

import numpy as np
import pytest

from repro.datagen.workloads import make_capacities, make_problem


class TestCapacities:
    def test_fixed(self):
        rng = np.random.default_rng(0)
        assert make_capacities(5, 80, rng) == [80] * 5

    def test_range(self):
        rng = np.random.default_rng(0)
        caps = make_capacities(200, (10, 30), rng)
        assert len(caps) == 200
        assert all(10 <= c <= 30 for c in caps)
        assert len(set(caps)) > 1

    def test_invalid(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            make_capacities(3, -1, rng)
        with pytest.raises(ValueError):
            make_capacities(3, (5, 2), rng)


class TestMakeProblem:
    def test_shape_and_gamma(self):
        prob = make_problem(nq=10, np_=200, k=5, seed=1)
        assert len(prob.providers) == 10
        assert len(prob.customers) == 200
        assert prob.gamma == 50

    def test_seed_reproducibility(self):
        a = make_problem(nq=5, np_=50, k=3, seed=7)
        b = make_problem(nq=5, np_=50, k=3, seed=7)
        assert [q.point.coords for q in a.providers] == [
            q.point.coords for q in b.providers
        ]
        assert [p.point.coords for p in a.customers] == [
            p.point.coords for p in b.customers
        ]

    def test_distribution_combinations(self):
        for dq in ("uniform", "clustered"):
            for dp in ("uniform", "clustered"):
                prob = make_problem(nq=4, np_=30, k=2, dist_q=dq, dist_p=dp, seed=2)
                assert len(prob.customers) == 30

    def test_world_is_normalized(self):
        prob = make_problem(nq=5, np_=100, k=2, seed=3)
        world = prob.world_mbr()
        assert world.lo[0] >= 0.0 and world.hi[0] <= 1000.0
        assert world.lo[1] >= 0.0 and world.hi[1] <= 1000.0

    def test_mixed_capacities(self):
        prob = make_problem(nq=50, np_=100, k=(10, 30), seed=4)
        caps = prob.capacities
        assert all(10 <= c <= 30 for c in caps)
        assert len(set(caps)) > 1
