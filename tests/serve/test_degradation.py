"""Graceful degradation in the serving layer.

Three survival properties: a dead warm session is quarantined and
rebuilt cold without touching other shards' warm state; the async
frontend sheds load with a reason and a retry-after hint instead of
buffering without bound; per-request deadlines time out the *caller*
while the engine still applies the event.  Degraded operation is always
visible in ServeStats — never silent.
"""

import asyncio

import pytest

from repro.core.faults import FaultPlan
from repro.core.session import SessionDeadError
from repro.datagen.events import Event
from repro.datagen.workloads import make_problem
from repro.serve.async_front import AsyncAssignmentFrontend, Overloaded
from repro.serve.engine import OnlineAssignmentService


def _service(**kwargs):
    problem = make_problem(nq=8, np_=50, k=10, seed=3, network_grid=8)
    kwargs.setdefault("backend", "array")
    return OnlineAssignmentService(problem, **kwargs)


def _arrive(seq, xy):
    return Event(seq=seq, time=float(seq), kind="arrive", xy=xy)


def _run(coro):
    return asyncio.run(coro)


class TestQuarantine:
    def test_dead_session_is_rebuilt_and_state_stays_identical(self):
        service = _service()
        service.apply([_arrive(0, (40.0, 60.0))])
        session = service.sessions[0]
        session.mark_dead("simulated residual-state corruption")
        assert session.is_dead
        assert "corruption" in session.death_reason
        with pytest.raises(SessionDeadError):
            session.assign()
        # The next group that touches the shard quarantines + rebuilds.
        service.apply([_arrive(1, (60.0, 40.0))])
        assert service.sessions[0] is not session
        assert not service.sessions[0].is_dead
        assert service.stats.quarantines == 1
        assert service.stats.quarantine_s > 0.0
        assert service.verify_against_cold()["identical"]

    def test_session_exception_marks_dead_and_quarantines(self):
        """A session that blows up mid-assign is marked dead (its
        incremental state can no longer be trusted) and quarantined on
        the spot — the group still completes correctly."""
        service = _service()
        service.apply([_arrive(0, (40.0, 60.0))])
        session = service.sessions[0]
        original = session.assign

        calls = {"n": 0}

        def explode(*args, **kwargs):
            if calls["n"] == 0:
                calls["n"] += 1
                raise ValueError("simulated engine bug")
            return original(*args, **kwargs)

        session.assign = explode
        service.apply([_arrive(1, (60.0, 40.0))])
        assert session.is_dead
        assert "ValueError" in session.death_reason
        assert service.stats.quarantines == 1
        assert service.verify_against_cold()["identical"]

    def test_quarantine_preserves_other_shards_warm_state(self):
        service = _service(
            shards=2,
            fault_plan=FaultPlan.session_faults([1], num_shards=2),
        )
        service.apply([_arrive(0, (40.0, 60.0))])  # group 0: clean
        before = dict(service.sessions)
        service.apply([_arrive(1, (60.0, 40.0))])  # group 1: shard 0 dies
        assert service.stats.quarantines == 1
        # Only the dead shard was rebuilt; the sibling keeps its warm
        # session object (and with it, its incremental solver state).
        assert service.sessions[0] is not before[0]
        assert service.sessions[1] is before[1]

    def test_degradation_counters_surface_in_summary(self):
        service = _service()
        summary = service.stats.summary()
        for key in ("quarantines", "quarantine_s", "shed", "timeouts"):
            assert key in summary


class TestLoadShedding:
    def test_overloaded_carries_reason_and_retry_after(self):
        async def scenario():
            service = _service()
            front = AsyncAssignmentFrontend(
                service, window_s=30.0, max_batch=100, max_queue=2
            )
            parked = [
                asyncio.create_task(front.arrive((10.0 * i, 10.0))) for i in range(2)
            ]
            await asyncio.sleep(0.01)  # both enqueued, window far away
            with pytest.raises(Overloaded) as excinfo:
                await front.arrive((99.0, 99.0))
            shed_exc = excinfo.value
            await front.aclose()  # flushes the parked pair
            outcomes = await asyncio.gather(*parked)
            return service, front, shed_exc, outcomes

        service, front, exc, outcomes = _run(asyncio.wait_for(scenario(), timeout=10.0))
        assert "max_queue=2" in exc.reason
        assert exc.retry_after_s >= 0.0
        assert front.shed == 1
        assert service.stats.shed == 1
        # The shed request was never enqueued; the parked ones landed.
        assert all(o.ok for o in outcomes)
        assert service.stats.events == 2

    def test_backlog_drains_after_flush(self):
        async def scenario():
            service = _service()
            async with AsyncAssignmentFrontend(
                service, window_s=0.0, max_queue=2
            ) as front:
                # Zero window: every request flushes before the next
                # submit, so the backlog never accumulates and nothing
                # is shed.
                for i in range(6):
                    await front.arrive((10.0 * i, 20.0))
            return front

        front = _run(scenario())
        assert front.shed == 0
        assert front.requests == 6

    def test_zero_max_queue_disables_shedding(self):
        async def scenario():
            service = _service()
            front = AsyncAssignmentFrontend(
                service, window_s=30.0, max_batch=100, max_queue=0
            )
            parked = [
                asyncio.create_task(front.arrive((10.0 * i, 10.0))) for i in range(8)
            ]
            await asyncio.sleep(0.01)
            await front.aclose()
            await asyncio.gather(*parked)
            return front

        front = _run(asyncio.wait_for(scenario(), timeout=10.0))
        assert front.shed == 0


class TestRequestTimeouts:
    def test_caller_times_out_but_event_still_lands(self):
        async def scenario():
            service = _service()
            front = AsyncAssignmentFrontend(
                service,
                window_s=30.0,
                max_batch=100,
                request_timeout_s=0.05,
            )
            with pytest.raises(asyncio.TimeoutError):
                await front.arrive((50.0, 50.0))
            await front.aclose()  # the queued event flushes here
            return service, front

        service, front = _run(asyncio.wait_for(scenario(), timeout=10.0))
        assert front.timeouts == 1
        assert service.stats.timeouts == 1
        # The engine applied the event after the caller stopped waiting:
        # state stays consistent and certified.
        assert service.stats.events == 1
        assert service.verify_against_cold()["identical"]

    def test_fast_requests_do_not_time_out(self):
        async def scenario():
            service = _service()
            async with AsyncAssignmentFrontend(
                service, window_s=0.0, request_timeout_s=5.0
            ) as front:
                outcome = await front.arrive((50.0, 50.0))
            return front, outcome

        front, outcome = _run(scenario())
        assert outcome.ok
        assert front.timeouts == 0

    def test_rejects_bad_degradation_knobs(self):
        service = _service()
        with pytest.raises(ValueError):
            AsyncAssignmentFrontend(service, max_queue=-1)
        with pytest.raises(ValueError):
            AsyncAssignmentFrontend(service, request_timeout_s=0.0)
