"""AsyncAssignmentFrontend: request coalescing and per-request results."""

import asyncio

import pytest

from repro.datagen.workloads import make_problem
from repro.serve.async_front import AsyncAssignmentFrontend
from repro.serve.engine import OnlineAssignmentService


def _service(**kwargs):
    problem = make_problem(nq=8, np_=50, k=10, seed=3, network_grid=8)
    kwargs.setdefault("backend", "array")
    return OnlineAssignmentService(problem, **kwargs)


def _run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_requests_share_a_group(self):
        async def scenario():
            service = _service()
            async with AsyncAssignmentFrontend(
                service, window_s=0.02, max_batch=64
            ) as front:
                outcomes = await asyncio.gather(
                    *[front.arrive((50.0 * i, 100.0)) for i in range(8)]
                )
            return service, front, outcomes

        service, front, outcomes = _run(scenario())
        assert front.requests == 8
        # All eight landed within one batching window -> one delta group,
        # one warm re-assign, eight individual answers.
        assert front.groups_flushed == 1
        assert service.stats.groups == 1
        assert [o.customer_id for o in outcomes] == list(range(50, 58))
        assert all(o.ok for o in outcomes)

    def test_max_batch_flushes_early(self):
        async def scenario():
            service = _service()
            async with AsyncAssignmentFrontend(
                service, window_s=10.0, max_batch=3
            ) as front:
                await asyncio.gather(
                    *[front.arrive((10.0 * i, 10.0)) for i in range(3)]
                )
                return front.groups_flushed

        # A 10s window would stall forever; the size cap must flush.
        assert _run(asyncio.wait_for(scenario(), timeout=5.0)) == 1

    def test_zero_window_flushes_per_request(self):
        async def scenario():
            service = _service()
            async with AsyncAssignmentFrontend(service, window_s=0.0) as front:
                for i in range(3):
                    await front.arrive((10.0 * i, 20.0))
            return service

        service = _run(scenario())
        assert service.stats.groups == 3

    def test_requests_after_window_start_new_group(self):
        async def scenario():
            service = _service()
            async with AsyncAssignmentFrontend(service, window_s=0.01) as front:
                await front.arrive((10.0, 10.0))
                await asyncio.sleep(0.05)  # first window long gone
                await front.arrive((20.0, 20.0))
            return front

        assert _run(scenario()).groups_flushed == 2


class TestPerRequestResults:
    def test_mixed_kinds_resolve_individually(self):
        async def scenario():
            service = _service()
            async with AsyncAssignmentFrontend(
                service, window_s=0.02, max_batch=16
            ) as front:
                arrive, depart, capacity, bad = await asyncio.gather(
                    front.arrive((100.0, 100.0)),
                    front.depart(0),
                    front.set_capacity(2, 4),
                    front.depart(99999),
                )
            return service, (arrive, depart, capacity, bad)

        service, (arrive, depart, capacity, bad) = _run(scenario())
        assert arrive.ok and arrive.kind == "arrive"
        assert arrive.customer_id == 50
        assert depart.ok and depart.customer_id == 0
        assert capacity.ok and capacity.provider_id == 2
        assert not bad.ok and "not live" not in ("",) and bad.detail
        assert service.verify_against_cold()["identical"]

    def test_matched_arrival_carries_provider_and_distance(self):
        async def scenario():
            service = _service()
            q0 = service.problem.providers[0].point.coords
            async with AsyncAssignmentFrontend(service, window_s=0.0) as front:
                return await front.arrive((q0[0] + 1.0, q0[1] + 1.0))

        outcome = _run(scenario())
        assert outcome.provider_id is not None
        assert outcome.distance == pytest.approx(2.0 ** 0.5, rel=0.5)


class TestLifecycle:
    def test_close_flushes_pending(self):
        async def scenario():
            service = _service()
            front = AsyncAssignmentFrontend(service, window_s=30.0, max_batch=100)
            task = asyncio.create_task(front.arrive((50.0, 50.0)))
            await asyncio.sleep(0.01)  # parked, window far away
            await front.aclose()
            return await task

        outcome = _run(asyncio.wait_for(scenario(), timeout=5.0))
        assert outcome.ok

    def test_submit_after_close_raises(self):
        async def scenario():
            front = AsyncAssignmentFrontend(_service(), window_s=0.0)
            await front.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await front.arrive((1.0, 1.0))

        _run(scenario())

    def test_rejects_bad_knobs(self):
        service = _service()
        with pytest.raises(ValueError):
            AsyncAssignmentFrontend(service, window_s=-1.0)
        with pytest.raises(ValueError):
            AsyncAssignmentFrontend(service, max_batch=0)
