"""OnlineAssignmentService: replay correctness and fallback certification.

The load-bearing contract: with ``shards=1`` the service's live matching
is bit-identical to a cold solve of the final problem state after *any*
replay — including adversarial delta orders engineered to trip every
hazard path (capacity cut below usage, departures from saturated
providers, arrivals inside the served radius).  Fallbacks must be
*certified* (counted in the stats), never silent.
"""

import pytest

from repro.core.solve import solve
from repro.datagen.events import Event, EventStreamSpec, generate_events
from repro.datagen.workloads import make_problem
from repro.serve.engine import OnlineAssignmentService


def _make(seed=3, nq=8, np_=50, k=10):
    return make_problem(nq=nq, np_=np_, k=k, seed=seed, network_grid=8)


def _service(problem, **kwargs):
    kwargs.setdefault("backend", "array")
    return OnlineAssignmentService(problem, **kwargs)


def _assert_bit_identical(service):
    report = service.verify_against_cold()
    assert report["identical"], report
    return report


class TestReplayBitIdentity:
    @pytest.mark.parametrize("profile", ["steady", "burst", "diurnal"])
    def test_generated_stream(self, profile):
        problem = _make()
        spec = EventStreamSpec(n_events=80, profile=profile, rate=25.0)
        events = generate_events(problem, spec, seed=11)
        service = _service(problem)
        service.run(events, window=0.2)
        assert service.stats.events == 80
        _assert_bit_identical(service)

    def test_empty_stream_matches_startup_solve(self):
        problem = _make()
        service = _service(problem)
        _assert_bit_identical(service)

    def test_grouping_window_does_not_change_result(self):
        spec = EventStreamSpec(n_events=60, rate=25.0)
        events = generate_events(_make(), spec, seed=5)
        finals = []
        for window in (0.0, 0.5):
            service = _service(_make())
            service.run(events, window=window)
            _assert_bit_identical(service)
            finals.append(sorted(service.live_pairs()))
        assert finals[0] == finals[1]


class TestAdversarialFallbacks:
    """Hand-ordered deltas that force each cold-fallback path."""

    def _arrive(self, seq, xy):
        return Event(seq=seq, time=float(seq), kind="arrive", xy=xy)

    def _depart(self, seq, ref):
        return Event(seq=seq, time=float(seq), kind="depart", ref=ref)

    def _capacity(self, seq, pid, k):
        return Event(
            seq=seq,
            time=float(seq),
            kind="capacity",
            provider_id=pid,
            capacity=k,
        )

    def test_capacity_cut_below_usage_certifies_cold(self):
        """Slashing every provider to capacity 1 cuts below usage —
        each touched session must count a hazard cold, and the final
        matching must still be bit-identical to a cold solve."""
        problem = _make(k=10)
        service = _service(problem)
        events = [self._capacity(i, i, 1) for i in range(len(problem.providers))]
        before = service.stats.hazard_colds
        service.apply(events)
        assert service.stats.hazard_colds > before
        assert service.stats.warm_assigns == 0
        _assert_bit_identical(service)

    def test_arrival_inside_served_radius(self):
        """An arrival the current matching should have served (right on
        top of a provider) trips the pinned-potential hazard; the re-solve
        must pick it up anyway."""
        problem = _make(k=2, np_=40)  # tight capacity: saturated providers
        service = _service(problem)
        q0 = problem.providers[0].point.coords
        service.apply([self._arrive(0, (q0[0] + 0.5, q0[1] + 0.5))])
        _assert_bit_identical(service)

    def test_churn_storm_alternating_kinds(self):
        """Worst-case interleaving: shrink, arrive, depart, grow — every
        group mixes hazard kinds.  Identity must survive and the
        fallback taxonomy must cover every cold assign."""
        problem = _make(k=3, np_=30)
        service = _service(problem)
        nq = len(problem.providers)
        base = len(problem.customers)
        events = []
        seq = 0
        for round_ in range(4):
            events.append(self._capacity(seq, round_ % nq, 1)); seq += 1
            events.append(self._arrive(seq, (500.0, 500.0))); seq += 1
            events.append(self._depart(seq, round_)); seq += 1
            events.append(self._capacity(seq, round_ % nq, 6)); seq += 1
        for start in range(0, len(events), 4):
            service.apply(events[start : start + 4])
        stats = service.stats
        assert stats.cold_assigns == (stats.hazard_colds + stats.repair_fallbacks)
        assert stats.arrivals == 4 and stats.departures == 4
        assert len(service.problem.customers) == base + 4
        _assert_bit_identical(service)

    def test_depart_everyone_then_refill(self):
        problem = _make(np_=20, k=5)
        service = _service(problem)
        service.apply([self._depart(j, j) for j in range(len(problem.customers))])
        assert service.live_pairs() == []
        service.apply([self._arrive(100 + i, (100.0 * i, 50.0)) for i in range(6)])
        _assert_bit_identical(service)


class TestEventHandling:
    def test_rejects_are_counted_not_fatal(self):
        problem = _make()
        service = _service(problem)
        result = service.apply(
            [
                Event(seq=0, time=0.0, kind="depart", ref=999),
                Event(seq=1, time=0.1, kind="depart", ref=0),
                Event(seq=2, time=0.2, kind="depart", ref=0),  # double
                Event(seq=3, time=0.3, kind="capacity",
                      provider_id=999, capacity=3),
                Event(seq=4, time=0.4, kind="arrive", xy=None),
            ]
        )
        oks = [o.ok for o in result.outcomes]
        assert oks == [False, True, False, False, False]
        assert service.stats.rejected == 4
        _assert_bit_identical(service)

    def test_misaligned_arrival_ref_raises(self):
        service = _service(_make())
        with pytest.raises(ValueError, match="stream and service state"):
            service.apply([Event(seq=0, time=0.0, kind="arrive", xy=(1.0, 1.0), ref=0)])

    def test_arrival_outcome_reports_assignment(self):
        problem = _make(k=10)
        service = _service(problem)
        q0 = problem.providers[0].point.coords
        result = service.apply(
            [Event(seq=0, time=0.0, kind="arrive", xy=(q0[0] + 1.0, q0[1]))]
        )
        outcome = result.outcomes[0]
        assert outcome.ok and outcome.customer_id == len(problem.customers) - 1
        # Capacity is slack, so the arrival must be matched somewhere.
        assert outcome.provider_id is not None
        assert outcome.distance is not None

    def test_latency_and_throughput_surface(self):
        service = _service(_make())
        spec = EventStreamSpec(n_events=30, rate=30.0)
        service.run(generate_events(service.problem, spec, seed=1), window=0.2)
        summary = service.stats.summary()
        assert summary["latency_p99_ms"] >= summary["latency_p50_ms"] > 0
        assert summary["events_per_sec"] > 0
        assert summary["groups"] == len(service.stats.group_latencies_s)


class TestShardedService:
    def test_multi_shard_valid_and_maximal_after_reconcile(self):
        problem = _make(nq=18, np_=120, k=8, seed=7)
        spec = EventStreamSpec(n_events=100, rate=30.0)
        events = generate_events(problem, spec, seed=13)
        service = _service(problem, shards=3, reconcile_every=4)
        service.run(events, window=0.3)
        assert service.plan.num_shards > 1
        assert service.stats.reconcile_passes > 0
        final = service.final_problem()
        matching = service.live_matching()
        matching.validate(final)  # feasible AND |M| == gamma

    def test_sharded_cost_close_to_cold(self):
        problem = _make(nq=18, np_=120, k=8, seed=7)
        spec = EventStreamSpec(n_events=60, rate=30.0)
        events = generate_events(problem, spec, seed=2)
        service = _service(problem, shards=3, reconcile_every=4)
        service.run(events, window=0.3)
        report = service.verify_against_cold()
        assert report["live_size"] == report["cold_size"]
        assert report["live_cost"] <= 1.25 * report["cold_cost"]

    def test_reconcile_never_raises_cost(self):
        problem = _make(nq=18, np_=120, k=8, seed=9)
        service = _service(problem, shards=3, reconcile_every=0)
        spec = EventStreamSpec(n_events=40, rate=30.0)
        service.run(generate_events(problem, spec, seed=3), window=0.3)
        size_before = len(service.live_pairs())
        cost_before = service.live_cost()
        service.reconcile()
        assert len(service.live_pairs()) >= size_before
        # Rebalancing may grow |M| (adds cost); with size unchanged the
        # mover guarantees monotone non-increasing cost.
        if len(service.live_pairs()) == size_before:
            assert service.live_cost() <= cost_before + 1e-9

    def test_single_shard_never_reconciles(self):
        service = _service(_make(), shards=1, reconcile_every=1)
        spec = EventStreamSpec(n_events=20, rate=30.0)
        service.run(generate_events(service.problem, spec, seed=4), window=0.0)
        assert service.stats.reconcile_passes == 0


class TestAgainstSolveFacade:
    def test_matches_plain_solve_not_just_ida(self):
        """The cold reference inside verify_against_cold must agree with
        the public solve() on the same final state."""
        problem = _make()
        spec = EventStreamSpec(n_events=50, rate=25.0)
        service = _service(problem)
        service.run(generate_events(problem, spec, seed=6), window=0.2)
        report = _assert_bit_identical(service)
        independent = solve(
            service.final_problem(),
            "ida",
            backend="array",
            use_fast_path=False,
        )
        assert sorted(independent.pairs) == sorted(service.live_pairs())
        assert report["live_size"] == len(independent.pairs)
