"""Shared-memory lifecycle for the sharded engine.

``solve_sharded`` ships columns to workers through one
``multiprocessing.shared_memory`` segment; these tests pin the three
properties that make that safe: tasks really are column-free (tiny
pickles), attachments are zero-copy, and the segment is gone after the
solve — whether it finished or a worker died mid-flight.
"""

import gc
import glob
import pickle
import warnings

import numpy as np
import pytest

from repro.core.faults import FaultPlan
from repro.core.shard import FAULT_ENV, ShardTask, solve_sharded
from repro.core.shm import SEGMENT_PREFIX, SharedColumnStore, attach, close_and_unlink
from repro.core.supervisor import RetryPolicy
from tests.conftest import random_problem

# Pin the raise path: no retries, no cold requeue — the legacy
# fail-fast behaviour the leak tests were written against.
FAIL_FAST = RetryPolicy(max_retries=0, requeue_cold=False)


def _segments():
    """Live repro-cca segments on this machine (Linux: files in /dev/shm)."""
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


needs_dev_shm = pytest.mark.skipif(
    not glob.glob("/dev/shm"), reason="needs a visible /dev/shm (Linux)"
)


class TestSharedColumnStore:
    def test_attach_is_zero_copy_and_read_only(self):
        arrays = {
            "xy": np.arange(20, dtype=np.float64).reshape(10, 2),
            "cap": np.arange(5, dtype=np.int64),
        }
        store = SharedColumnStore(arrays)
        try:
            first = attach(store.handle)
            second = attach(store.handle)
            for key, arr in arrays.items():
                np.testing.assert_array_equal(first[key], arr)
                # Same process, same cached mapping: literally one buffer.
                assert np.shares_memory(first[key], second[key])
                assert not first[key].flags.writeable
        finally:
            store.close_and_unlink()

    @needs_dev_shm
    def test_close_and_unlink_is_idempotent(self):
        store = SharedColumnStore({"a": np.ones(3)})
        name = store.handle.name
        assert f"/dev/shm/{name}" in _segments()
        store.close_and_unlink()
        assert f"/dev/shm/{name}" not in _segments()
        store.close_and_unlink()  # second call is a no-op
        close_and_unlink(store.handle)  # module-level form too

    def test_handle_pickles_small(self):
        store = SharedColumnStore({"xy": np.zeros((100_000, 2)), "w": np.ones(100_000)})
        try:
            # The whole point: the payload does not scale with the data.
            assert len(pickle.dumps(store.handle)) < 1024
        finally:
            store.close_and_unlink()


class TestShardTaskTransport:
    def test_tasks_carry_no_columns(self):
        """ShardTask fields are scalars plus the store handle — no
        coordinate, capacity, or weight payloads."""
        fields = set(ShardTask.__dataclass_fields__)
        for leaky in (
            "provider_ids",
            "provider_xy",
            "capacities",
            "customer_ids",
            "customer_xy",
            "customer_weights",
        ):
            assert leaky not in fields
        assert "store" in fields


@needs_dev_shm
class TestSolveShardedLifecycle:
    def test_no_leaked_segments_after_solve(self):
        before = _segments()
        rng = np.random.default_rng(21)
        problem = random_problem(rng, nq=8, np_=160, cap_hi=30)
        matching = solve_sharded(problem, 3, workers=2)
        matching.validate(problem)
        assert _segments() == before

    def test_no_leaked_segments_after_worker_fault(self):
        before = _segments()
        rng = np.random.default_rng(22)
        problem = random_problem(rng, nq=8, np_=160, cap_hi=30)
        plan = FaultPlan.single("error", shard=1, at=None)
        with pytest.raises(RuntimeError, match="injected shard worker"):
            solve_sharded(
                problem,
                3,
                workers=2,
                fault_plan=plan,
                retry_policy=FAIL_FAST,
            )
        assert _segments() == before

    def test_no_leaked_segments_after_serial_fault(self):
        """The inline (workers=None) path runs the same finally cleanup."""
        before = _segments()
        rng = np.random.default_rng(23)
        problem = random_problem(rng, nq=6, np_=120, cap_hi=30)
        plan = FaultPlan.single("error", shard=0, at=None)
        with pytest.raises(RuntimeError, match="injected shard worker"):
            solve_sharded(problem, 3, fault_plan=plan, retry_policy=FAIL_FAST)
        assert _segments() == before

    def test_no_leaked_segments_when_supervision_recovers(self):
        """The default policy absorbs the fault — and still leaks
        nothing, even though a worker died mid-attach."""
        before = _segments()
        rng = np.random.default_rng(24)
        problem = random_problem(rng, nq=8, np_=160, cap_hi=30)
        clean = solve_sharded(problem, 3, workers=2)
        faulted = solve_sharded(
            problem,
            3,
            workers=2,
            fault_plan=FaultPlan.single("crash", shard=0),
        )
        assert faulted.pairs == clean.pairs
        assert _segments() == before


@needs_dev_shm
class TestEnvAlias:
    """REPRO_SHARD_FAULT_INDEX survives as a deprecated, coordinator-
    scoped alias: read once by resolve_fault_plan, never by workers."""

    def test_env_alias_warns_and_recovers(self, monkeypatch):
        before = _segments()
        monkeypatch.setenv(FAULT_ENV, "1")
        rng = np.random.default_rng(25)
        problem = random_problem(rng, nq=8, np_=160, cap_hi=30)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            clean = solve_sharded(problem, 3, workers=2, fault_plan=FaultPlan.none())
        with pytest.warns(DeprecationWarning, match=FAULT_ENV):
            faulted = solve_sharded(problem, 3, workers=2)
        # The env spec faults EVERY attempt on shard 1, so recovery goes
        # through the cold requeue — and is still bit-identical.
        assert faulted.pairs == clean.pairs
        assert faulted.stats.faults is not None
        assert faulted.stats.faults.requeues >= 1
        assert _segments() == before

    def test_explicit_none_plan_shields_from_env(self, monkeypatch):
        """A stray env var can no longer bleed into a run that opted out."""
        monkeypatch.setenv(FAULT_ENV, "0")
        rng = np.random.default_rng(26)
        problem = random_problem(rng, nq=6, np_=120, cap_hi=30)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            matching = solve_sharded(problem, 3, fault_plan=FaultPlan.none())
        matching.validate(problem)
        ledger = matching.stats.faults
        assert ledger is None or len(ledger) == 0


@needs_dev_shm
class TestFinalizerGuard:
    def test_dropped_store_is_unlinked_by_finalizer(self):
        """An owner that never reaches close_and_unlink (bug, crash path)
        must not leak: the weakref.finalize guard unlinks at GC."""
        before = _segments()
        store = SharedColumnStore({"a": np.ones(16)})
        name = store.handle.name
        assert f"/dev/shm/{name}" in _segments()
        del store
        gc.collect()
        assert f"/dev/shm/{name}" not in _segments()
        assert _segments() == before
