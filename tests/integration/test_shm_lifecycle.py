"""Shared-memory lifecycle for the sharded engine.

``solve_sharded`` ships columns to workers through one
``multiprocessing.shared_memory`` segment; these tests pin the three
properties that make that safe: tasks really are column-free (tiny
pickles), attachments are zero-copy, and the segment is gone after the
solve — whether it finished or a worker died mid-flight.
"""

import glob
import pickle

import numpy as np
import pytest

from repro.core.shard import FAULT_ENV, ShardTask, solve_sharded
from repro.core.shm import (
    SEGMENT_PREFIX,
    SharedColumnStore,
    attach,
    close_and_unlink,
)
from tests.conftest import random_problem


def _segments():
    """Live repro-cca segments on this machine (Linux: files in /dev/shm)."""
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


needs_dev_shm = pytest.mark.skipif(
    not glob.glob("/dev/shm"), reason="needs a visible /dev/shm (Linux)"
)


class TestSharedColumnStore:
    def test_attach_is_zero_copy_and_read_only(self):
        arrays = {
            "xy": np.arange(20, dtype=np.float64).reshape(10, 2),
            "cap": np.arange(5, dtype=np.int64),
        }
        store = SharedColumnStore(arrays)
        try:
            first = attach(store.handle)
            second = attach(store.handle)
            for key, arr in arrays.items():
                np.testing.assert_array_equal(first[key], arr)
                # Same process, same cached mapping: literally one buffer.
                assert np.shares_memory(first[key], second[key])
                assert not first[key].flags.writeable
        finally:
            store.close_and_unlink()

    @needs_dev_shm
    def test_close_and_unlink_is_idempotent(self):
        store = SharedColumnStore({"a": np.ones(3)})
        name = store.handle.name
        assert f"/dev/shm/{name}" in _segments()
        store.close_and_unlink()
        assert f"/dev/shm/{name}" not in _segments()
        store.close_and_unlink()  # second call is a no-op
        close_and_unlink(store.handle)  # module-level form too

    def test_handle_pickles_small(self):
        store = SharedColumnStore(
            {"xy": np.zeros((100_000, 2)), "w": np.ones(100_000)}
        )
        try:
            # The whole point: the payload does not scale with the data.
            assert len(pickle.dumps(store.handle)) < 1024
        finally:
            store.close_and_unlink()


class TestShardTaskTransport:
    def test_tasks_carry_no_columns(self):
        """ShardTask fields are scalars plus the store handle — no
        coordinate, capacity, or weight payloads."""
        fields = set(ShardTask.__dataclass_fields__)
        for leaky in (
            "provider_ids", "provider_xy", "capacities",
            "customer_ids", "customer_xy", "customer_weights",
        ):
            assert leaky not in fields
        assert "store" in fields


@needs_dev_shm
class TestSolveShardedLifecycle:
    def test_no_leaked_segments_after_solve(self):
        before = _segments()
        rng = np.random.default_rng(21)
        problem = random_problem(rng, nq=8, np_=160, cap_hi=30)
        matching = solve_sharded(problem, 3, workers=2)
        matching.validate(problem)
        assert _segments() == before

    def test_no_leaked_segments_after_worker_fault(self, monkeypatch):
        before = _segments()
        monkeypatch.setenv(FAULT_ENV, "1")
        rng = np.random.default_rng(22)
        problem = random_problem(rng, nq=8, np_=160, cap_hi=30)
        with pytest.raises(RuntimeError, match="injected shard worker"):
            solve_sharded(problem, 3, workers=2)
        assert _segments() == before

    def test_no_leaked_segments_after_serial_fault(self, monkeypatch):
        """The inline (workers=None) path runs the same finally cleanup."""
        before = _segments()
        monkeypatch.setenv(FAULT_ENV, "0")
        rng = np.random.default_rng(23)
        problem = random_problem(rng, nq=6, np_=120, cap_hi=30)
        with pytest.raises(RuntimeError, match="injected shard worker"):
            solve_sharded(problem, 3)
        assert _segments() == before
