"""Failure injection and hostile configurations.

The fault matrix at the bottom is the PR's acceptance gate in test
form: {crash, error, hang, attach, poison} × {inline, pool} ×
{dict, array} flow backends, each run asserting the supervised solve is
bit-identical to the fault-free one, the FaultLedger accounts for what
happened, and the run leaves no orphan workers or leaked segments.
"""

import glob
import multiprocessing

import numpy as np
import pytest

from repro.core.faults import FaultPlan
from repro.core.problem import CCAProblem
from repro.core.shard import solve_sharded
from repro.core.shm import SEGMENT_PREFIX
from repro.core.solve import solve
from repro.core.supervisor import RetryPolicy
from repro.datagen.events import EventStreamSpec, generate_events
from repro.datagen.workloads import make_problem
from repro.serve.engine import OnlineAssignmentService
from repro.storage.page import PageManager
from tests.conftest import random_problem


class TestHostileStorage:
    def test_one_page_buffer_still_correct(self):
        """Pathological thrashing must not change results, only I/O."""
        rng = np.random.default_rng(1)
        xy_q = rng.random((3, 2)) * 100
        xy_p = rng.random((80, 2)) * 100
        normal = CCAProblem.from_arrays(xy_q, [4] * 3, xy_p)
        tiny = CCAProblem.from_arrays(xy_q, [4] * 3, xy_p)
        tiny.rtree()._fixed_buffer_capacity = 1
        tiny.rtree().cold()
        m_normal = solve(normal, "ida")
        m_tiny = solve(tiny, "ida")
        assert m_tiny.cost == pytest.approx(m_normal.cost, abs=1e-6)
        assert m_tiny.stats.io.faults >= m_normal.stats.io.faults

    def test_tiny_pages_deep_tree(self):
        rng = np.random.default_rng(2)
        prob = CCAProblem.from_arrays(
            rng.random((3, 2)) * 100,
            [5] * 3,
            rng.random((120, 2)) * 100,
            page_size=128,  # ~4 entries per leaf
        )
        assert prob.rtree().height >= 3
        m = solve(prob, "ida")
        m.validate(prob)

    def test_absurd_page_size_rejected(self):
        with pytest.raises(ValueError):
            PageManager(page_size=16).leaf_capacity()


class TestHostileProblems:
    def test_empty_customers(self):
        prob = CCAProblem.from_arrays([(0.0, 0.0)], [5], np.empty((0, 2)))
        for method in ("sspa", "ria", "nia", "ida", "sm"):
            m = solve(prob, method)
            assert m.size == 0

    def test_empty_providers(self):
        prob = CCAProblem.from_arrays(np.empty((0, 2)), [], [(1.0, 1.0), (2.0, 2.0)])
        for method in ("sspa", "nia", "ida", "sm"):
            m = solve(prob, method)
            assert m.size == 0

    def test_both_empty(self):
        prob = CCAProblem.from_arrays(np.empty((0, 2)), [], np.empty((0, 2)))
        assert solve(prob, "ida").size == 0

    def test_identical_distances_everywhere(self):
        # All customers equidistant from all providers: ties everywhere.
        prob = CCAProblem.from_arrays(
            [(0.0, 0.0), (0.0, 0.0)],
            [2, 2],
            [(3.0, 4.0), (3.0, 4.0), (3.0, 4.0), (3.0, 4.0)],
        )
        m = solve(prob, "ida")
        m.validate(prob)
        assert m.cost == pytest.approx(4 * 5.0)

    def test_huge_capacities_do_not_overflow(self):
        rng = np.random.default_rng(3)
        prob = CCAProblem.from_arrays(
            rng.random((2, 2)) * 100,
            [10**9, 10**9],
            rng.random((20, 2)) * 100,
        )
        m = solve(prob, "ida")
        assert m.size == 20

    def test_extreme_coordinates(self):
        prob = CCAProblem.from_arrays(
            [(1e8, 1e8), (-1e8, -1e8)],
            [2, 2],
            [(1e8 + 1, 1e8), (1e8, 1e8 + 2), (-1e8 - 3, -1e8), (-1e8, -1e8 - 4)],
        )
        m = solve(prob, "ida")
        m.validate(prob)
        assert m.cost == pytest.approx(10.0)


class TestApproxCorners:
    def test_sa_with_one_provider(self):
        rng = np.random.default_rng(4)
        prob = random_problem(rng, nq=1, np_=40, cap_hi=5)
        m = solve(prob, "san", delta=50.0)
        m.validate(prob)

    def test_ca_delta_larger_than_world(self):
        rng = np.random.default_rng(5)
        prob = random_problem(rng, nq=3, np_=50, cap_hi=4)
        m = solve(prob, "can", delta=10_000.0)
        m.validate(prob)  # one giant group; still a valid matching

    def test_sm_with_exhausted_supply(self):
        # More capacity than customers: SM must stop at |P| pairs.
        rng = np.random.default_rng(6)
        prob = random_problem(rng, nq=3, np_=10, cap_hi=0)
        prob = CCAProblem.from_arrays(
            [q.point.coords for q in prob.providers],
            [100] * 3,
            [p.point.coords for p in prob.customers],
        )
        m = solve(prob, "sm")
        assert m.size == 10


# ----------------------------------------------------------------------
# Supervised shard runtime: the fault matrix
# ----------------------------------------------------------------------
BACKENDS = ("dict", "array")
POOL_KINDS = ("crash", "error", "hang", "attach", "poison")
# Inline (workers<=1) supervision has no deadline preemption, so "hang"
# is exercised there as its recoverable cousin "slow".
INLINE_KINDS = ("error", "attach", "poison", "slow")

SHARDS = 3


def _matrix_problem():
    rng = np.random.default_rng(77)
    return random_problem(rng, nq=8, np_=160, cap_hi=30)


def _plan_for(kind: str, shard: int = 1) -> FaultPlan:
    if kind == "hang":
        return FaultPlan.single("hang", shard=shard, delay_s=30.0)
    return FaultPlan.single(kind, shard=shard)


def _policy_for(kind: str) -> RetryPolicy:
    return RetryPolicy(
        max_retries=2,
        task_timeout_s=2.0 if kind == "hang" else None,
        backoff_base_s=0.01,
    )


def _segments():
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def _assert_ledger_accounts_for(ledger, kind: str):
    """The ledger must name the hazard it survived.  Counts are lower
    bounds: a hard worker death breaks the whole pool, so siblings can
    be retried as collateral crashes too."""
    assert ledger is not None and len(ledger) >= 1
    if kind == "crash":
        assert ledger.crashes >= 1
    elif kind == "hang":
        assert ledger.timeouts >= 1
    elif kind == "poison":
        assert ledger.poisoned >= 1
    else:  # error / attach / slow-that-misses-nothing
        assert ledger.retries + ledger.requeues >= 1


@pytest.fixture(scope="module")
def clean_reference():
    """Fault-free sharded matchings, one per flow backend.

    Pool and inline supervised paths are bit-identical to each other
    (pinned by tests/core/test_shard.py), so one reference serves both
    halves of the matrix.
    """
    problem = _matrix_problem()
    return problem, {
        backend: solve_sharded(
            problem, SHARDS, workers=2, backend=backend
        ).pairs
        for backend in BACKENDS
    }


class TestShardFaultMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", POOL_KINDS)
    def test_pool_recovers_bit_identical(self, kind, backend, clean_reference):
        problem, references = clean_reference
        before = _segments()
        matching = solve_sharded(
            problem,
            SHARDS,
            workers=2,
            backend=backend,
            fault_plan=_plan_for(kind),
            retry_policy=_policy_for(kind),
        )
        assert matching.pairs == references[backend]
        if kind != "slow":  # slow completes normally: nothing to record
            _assert_ledger_accounts_for(matching.stats.faults, kind)
        assert _segments() == before
        assert not multiprocessing.active_children()

    @pytest.mark.parametrize("kind", INLINE_KINDS)
    def test_inline_recovers_bit_identical(self, kind, clean_reference):
        problem, references = clean_reference
        before = _segments()
        matching = solve_sharded(
            problem,
            SHARDS,
            backend="array",
            fault_plan=_plan_for(kind),
            retry_policy=_policy_for(kind),
        )
        assert matching.pairs == references["array"]
        if kind != "slow":
            _assert_ledger_accounts_for(matching.stats.faults, kind)
        assert _segments() == before

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exhausted_retries_requeue_cold(self, backend, clean_reference):
        """A shard that fails EVERY attempt is re-solved cold in the
        coordinator — certify-or-fall-back, never silent degradation."""
        problem, references = clean_reference
        matching = solve_sharded(
            problem,
            SHARDS,
            workers=2,
            backend=backend,
            fault_plan=FaultPlan.single("error", shard=1, at=None),
            retry_policy=RetryPolicy(max_retries=1, backoff_base_s=0.01),
        )
        assert matching.pairs == references[backend]
        ledger = matching.stats.faults
        assert ledger.requeues >= 1
        assert ledger.retries >= 1
        assert matching.stats.extra["faults"]["requeues_cold"] >= 1

    def test_seeded_plans_all_recover(self, clean_reference):
        """FaultPlan.from_seed generates attempt-0 faults by design, so
        every seeded chaos plan must recover bit-identically — the same
        invariant `repro-cca chaos` sweeps at larger scale."""
        problem, references = clean_reference
        for seed in range(3):
            plan = FaultPlan.from_seed(seed, SHARDS, hang_s=30.0)
            matching = solve_sharded(
                problem,
                SHARDS,
                workers=2,
                backend="array",
                fault_plan=plan,
                retry_policy=_policy_for("hang"),
            )
            assert matching.pairs == references["array"], plan.describe()
        assert not multiprocessing.active_children()


class TestServeFaultMatrix:
    """Session-site faults during replay: quarantined sessions must be
    rebuilt cold without changing the final matching."""

    KILL_GROUPS = (1, 3, 5)

    def _events(self, problem):
        spec = EventStreamSpec(n_events=80, rate=25.0)
        return generate_events(problem, spec, seed=11)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_replay_with_session_kills_is_bit_identical(self, backend):
        events = self._events(make_problem(nq=8, np_=50, k=10, seed=3))

        clean = OnlineAssignmentService(
            make_problem(nq=8, np_=50, k=10, seed=3), backend=backend
        )
        clean.run(events, window=0.2)
        reference = sorted(clean.live_pairs())

        plan = FaultPlan.session_faults(self.KILL_GROUPS, num_shards=1)
        chaotic = OnlineAssignmentService(
            make_problem(nq=8, np_=50, k=10, seed=3),
            backend=backend,
            fault_plan=plan,
        )
        chaotic.run(events, window=0.2)

        assert sorted(chaotic.live_pairs()) == reference
        assert chaotic.stats.quarantines == len(self.KILL_GROUPS)
        assert chaotic.stats.quarantine_s > 0.0
        report = chaotic.verify_against_cold()
        assert report["identical"], report
        # The certification taxonomy still covers every cold assign:
        # quarantine rebuilds are counted separately, not smuggled in.
        stats = chaotic.stats
        assert stats.cold_assigns == (stats.hazard_colds + stats.repair_fallbacks)
