"""Failure injection and hostile configurations."""

import numpy as np
import pytest

from repro.core.problem import CCAProblem
from repro.core.solve import solve
from repro.storage.page import PageManager
from tests.conftest import random_problem


class TestHostileStorage:
    def test_one_page_buffer_still_correct(self):
        """Pathological thrashing must not change results, only I/O."""
        rng = np.random.default_rng(1)
        xy_q = rng.random((3, 2)) * 100
        xy_p = rng.random((80, 2)) * 100
        normal = CCAProblem.from_arrays(xy_q, [4] * 3, xy_p)
        tiny = CCAProblem.from_arrays(xy_q, [4] * 3, xy_p)
        tiny.rtree()._fixed_buffer_capacity = 1
        tiny.rtree().cold()
        m_normal = solve(normal, "ida")
        m_tiny = solve(tiny, "ida")
        assert m_tiny.cost == pytest.approx(m_normal.cost, abs=1e-6)
        assert m_tiny.stats.io.faults >= m_normal.stats.io.faults

    def test_tiny_pages_deep_tree(self):
        rng = np.random.default_rng(2)
        prob = CCAProblem.from_arrays(
            rng.random((3, 2)) * 100,
            [5] * 3,
            rng.random((120, 2)) * 100,
            page_size=128,  # ~4 entries per leaf
        )
        assert prob.rtree().height >= 3
        m = solve(prob, "ida")
        m.validate(prob)

    def test_absurd_page_size_rejected(self):
        with pytest.raises(ValueError):
            PageManager(page_size=16).leaf_capacity()


class TestHostileProblems:
    def test_empty_customers(self):
        prob = CCAProblem.from_arrays([(0.0, 0.0)], [5], np.empty((0, 2)))
        for method in ("sspa", "ria", "nia", "ida", "sm"):
            m = solve(prob, method)
            assert m.size == 0

    def test_empty_providers(self):
        prob = CCAProblem.from_arrays(
            np.empty((0, 2)), [], [(1.0, 1.0), (2.0, 2.0)]
        )
        for method in ("sspa", "nia", "ida", "sm"):
            m = solve(prob, method)
            assert m.size == 0

    def test_both_empty(self):
        prob = CCAProblem.from_arrays(np.empty((0, 2)), [], np.empty((0, 2)))
        assert solve(prob, "ida").size == 0

    def test_identical_distances_everywhere(self):
        # All customers equidistant from all providers: ties everywhere.
        prob = CCAProblem.from_arrays(
            [(0.0, 0.0), (0.0, 0.0)],
            [2, 2],
            [(3.0, 4.0), (3.0, 4.0), (3.0, 4.0), (3.0, 4.0)],
        )
        m = solve(prob, "ida")
        m.validate(prob)
        assert m.cost == pytest.approx(4 * 5.0)

    def test_huge_capacities_do_not_overflow(self):
        rng = np.random.default_rng(3)
        prob = CCAProblem.from_arrays(
            rng.random((2, 2)) * 100,
            [10**9, 10**9],
            rng.random((20, 2)) * 100,
        )
        m = solve(prob, "ida")
        assert m.size == 20

    def test_extreme_coordinates(self):
        prob = CCAProblem.from_arrays(
            [(1e8, 1e8), (-1e8, -1e8)],
            [2, 2],
            [(1e8 + 1, 1e8), (1e8, 1e8 + 2), (-1e8 - 3, -1e8), (-1e8, -1e8 - 4)],
        )
        m = solve(prob, "ida")
        m.validate(prob)
        assert m.cost == pytest.approx(10.0)


class TestApproxCorners:
    def test_sa_with_one_provider(self):
        rng = np.random.default_rng(4)
        prob = random_problem(rng, nq=1, np_=40, cap_hi=5)
        m = solve(prob, "san", delta=50.0)
        m.validate(prob)

    def test_ca_delta_larger_than_world(self):
        rng = np.random.default_rng(5)
        prob = random_problem(rng, nq=3, np_=50, cap_hi=4)
        m = solve(prob, "can", delta=10_000.0)
        m.validate(prob)  # one giant group; still a valid matching

    def test_sm_with_exhausted_supply(self):
        # More capacity than customers: SM must stop at |P| pairs.
        rng = np.random.default_rng(6)
        prob = random_problem(rng, nq=3, np_=10, cap_hi=0)
        prob = CCAProblem.from_arrays(
            [q.point.coords for q in prob.providers],
            [100] * 3,
            [p.point.coords for p in prob.customers],
        )
        m = solve(prob, "sm")
        assert m.size == 10
