"""The repository's load-bearing invariant:

    Ψ(SSPA) = Ψ(RIA) = Ψ(NIA) = Ψ(IDA) = Ψ(scipy oracle)

across capacity regimes, distributions, and degenerate corners.
"""

import numpy as np
import pytest

from repro.core.problem import CCAProblem
from repro.core.solve import solve
from repro.datagen.workloads import make_problem
from repro.flow.reference import oracle_cost, oracle_lsa
from tests.conftest import random_problem

EXACT = ("sspa", "ria", "nia", "ida")


def assert_all_exact_agree(prob):
    expected = oracle_cost(oracle_lsa(prob.capacities, prob.weights, prob.distance))
    for method in EXACT:
        m = solve(prob, method)
        m.validate(prob)
        assert m.cost == pytest.approx(expected, abs=1e-6), method
    return expected


class TestRegimes:
    def test_tight_capacity(self):
        """k·|Q| << |P|: all providers end full."""
        rng = np.random.default_rng(1)
        prob = random_problem(rng, nq=4, np_=60, cap_hi=2)
        assert_all_exact_agree(prob)

    def test_slack_capacity(self):
        """k·|Q| >> |P|: every customer is served."""
        prob = CCAProblem.from_arrays(
            np.random.default_rng(2).random((3, 2)) * 100,
            [40, 40, 40],
            np.random.default_rng(3).random((25, 2)) * 100,
        )
        assert_all_exact_agree(prob)

    def test_exact_balance(self):
        """Σk == |P|: every provider AND every customer saturated."""
        prob = CCAProblem.from_arrays(
            np.random.default_rng(4).random((4, 2)) * 100,
            [5, 5, 5, 5],
            np.random.default_rng(5).random((20, 2)) * 100,
        )
        expected = assert_all_exact_agree(prob)
        assert expected > 0

    def test_single_provider(self):
        rng = np.random.default_rng(6)
        prob = random_problem(rng, nq=1, np_=30, cap_hi=7)
        assert_all_exact_agree(prob)

    def test_single_customer(self):
        rng = np.random.default_rng(7)
        prob = random_problem(rng, nq=5, np_=1, cap_hi=3)
        assert_all_exact_agree(prob)


class TestDistributions:
    @pytest.mark.parametrize("dq", ["uniform", "clustered"])
    @pytest.mark.parametrize("dp", ["uniform", "clustered"])
    def test_distribution_grid(self, dq, dp):
        prob = make_problem(nq=4, np_=120, k=8, dist_q=dq, dist_p=dp, seed=11)
        assert_all_exact_agree(prob)


class TestDegenerate:
    def test_colocated_points(self):
        """Many zero-distance edges (points on top of each other)."""
        prob = CCAProblem.from_arrays(
            [(5.0, 5.0), (5.0, 5.0)],
            [2, 2],
            [(5.0, 5.0)] * 3 + [(6.0, 6.0)],
        )
        expected = assert_all_exact_agree(prob)
        assert expected == pytest.approx(2**0.5)

    def test_zero_capacity_mixed_in(self):
        prob = CCAProblem.from_arrays(
            [(0.0, 0.0), (10.0, 10.0), (20.0, 20.0)],
            [0, 3, 0],
            np.random.default_rng(8).random((10, 2)) * 30,
        )
        assert_all_exact_agree(prob)
        m = solve(prob, "ida")
        assert all(q == 1 for q, _, _ in m.pairs)

    def test_all_zero_capacity_gives_empty_matching(self):
        prob = CCAProblem.from_arrays([(0.0, 0.0)], [0], [(1.0, 1.0), (2.0, 2.0)])
        for method in EXACT:
            m = solve(prob, method)
            assert m.size == 0
            assert m.cost == 0.0

    def test_collinear_points(self):
        prob = CCAProblem.from_arrays(
            [(float(i * 10), 0.0) for i in range(3)],
            [2, 2, 2],
            [(float(j), 0.0) for j in range(12)],
        )
        assert_all_exact_agree(prob)

    def test_weighted_customers_all_methods(self):
        rng = np.random.default_rng(9)
        prob = random_problem(rng, nq=4, np_=15, cap_hi=6, weights_hi=4)
        assert_all_exact_agree(prob)


class TestBackendEquivalence:
    """The flow-backend seam: dict and array kernels must be bit-identical
    (cost, |Esub|, matched pairs) on every instance and method."""

    @pytest.mark.parametrize("method", EXACT)
    def test_exact_methods_bit_identical(self, method):
        a = make_problem(nq=4, np_=120, k=8, seed=11)
        b = make_problem(nq=4, np_=120, k=8, seed=11)
        md = solve(a, method, backend="dict")
        ma = solve(b, method, backend="array")
        assert ma.cost == md.cost  # exact equality, not approx
        assert ma.stats.esub_edges == md.stats.esub_edges
        assert sorted(ma.pairs) == sorted(md.pairs)

    def test_weighted_instances_bit_identical(self):
        rng = np.random.default_rng(9)
        qxy = rng.random((4, 2)) * 100
        pxy = rng.random((15, 2)) * 100
        caps = rng.integers(1, 7, 4).tolist()
        weights = rng.integers(1, 5, 15).tolist()
        pa = CCAProblem.from_arrays(qxy, caps, pxy, customer_weights=weights)
        pb = CCAProblem.from_arrays(qxy, caps, pxy, customer_weights=weights)
        md = solve(pa, "ida", backend="dict")
        ma = solve(pb, "ida", backend="array")
        assert ma.cost == md.cost
        assert sorted(ma.pairs) == sorted(md.pairs)

    @pytest.mark.parametrize("method", ["san", "cae"])
    def test_approx_concise_matching_on_seam(self, method):
        a = make_problem(nq=6, np_=90, k=5, seed=34)
        b = make_problem(nq=6, np_=90, k=5, seed=34)
        assert (
            solve(a, method, backend="array").cost
            == solve(b, method, backend="dict").cost
        )


class TestDeterminism:
    def test_same_seed_same_everything(self):
        a = make_problem(nq=4, np_=80, k=6, seed=33)
        b = make_problem(nq=4, np_=80, k=6, seed=33)
        ma = solve(a, "ida")
        mb = solve(b, "ida")
        assert ma.cost == mb.cost
        assert sorted(ma.pairs) == sorted(mb.pairs)
        assert ma.stats.esub_edges == mb.stats.esub_edges
        assert ma.stats.io.faults == mb.stats.io.faults

    def test_approx_deterministic(self):
        a = make_problem(nq=6, np_=90, k=5, seed=34)
        b = make_problem(nq=6, np_=90, k=5, seed=34)
        assert solve(a, "can").cost == solve(b, "can").cost
        assert solve(a, "sae").cost == solve(b, "sae").cost
