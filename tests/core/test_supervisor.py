"""Unit tests for the supervised shard-task runner."""

import multiprocessing
from dataclasses import dataclass

import pytest

from repro.core.faults import FaultInjected, FaultLedger, FaultSpec, trigger
from repro.core.supervisor import RetryPolicy, run_supervised


@dataclass(frozen=True)
class Toy:
    """Minimal task shape run_supervised needs: .index and .attempt."""

    index: int
    attempt: int = 0
    fail_until: int = 0  # attempts below this misbehave
    kind: str = "error"  # error | crash | hang | poison
    delay_s: float = 0.0


def _solve(task: Toy):
    bad = task.attempt < task.fail_until
    if bad and task.kind != "poison":
        trigger(
            FaultSpec(kind=task.kind, delay_s=task.delay_s),
            where=f"shard {task.index}, attempt {task.attempt}",
        )
    payload = "bad" if (bad and task.kind == "poison") else "ok"
    return (payload, task.index, task.attempt)


def _fallback(task: Toy):
    return ("ok", task.index, "cold")


def _verify(task: Toy, result):
    return None if result[0] == "ok" else "bad payload"


def _fast_policy(**kw) -> RetryPolicy:
    kw.setdefault("backoff_base_s", 0.001)
    return RetryPolicy(**kw)


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_grows(self):
        a = RetryPolicy(seed=3)
        b = RetryPolicy(seed=3)
        assert a.backoff_s(1, 0) == b.backoff_s(1, 0)
        base = a.backoff_base_s
        assert base <= a.backoff_s(1, 0) <= base * (1 + a.backoff_jitter)
        # Exponential growth dominates jitter at the default settings.
        assert a.backoff_s(1, 1) > a.backoff_s(1, 0)
        assert a.backoff_s(1, 2) > a.backoff_s(1, 1)

    def test_zero_jitter_is_pure_exponential(self):
        p = RetryPolicy(backoff_jitter=0.0, backoff_base_s=0.1)
        assert p.backoff_s(0, 0) == pytest.approx(0.1)
        assert p.backoff_s(0, 2) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="task_timeout_s"):
            RetryPolicy(task_timeout_s=0.0)


class TestInline:
    def test_clean_run_keeps_order_and_empty_ledger(self):
        tasks = [Toy(index=i) for i in range(3)]
        ledger = FaultLedger()
        out = run_supervised(tasks, solve=_solve, fallback=_fallback, ledger=ledger)
        assert out == [("ok", 0, 0), ("ok", 1, 0), ("ok", 2, 0)]
        assert len(ledger) == 0

    def test_retry_recovers(self):
        tasks = [Toy(index=0), Toy(index=1, fail_until=1)]
        ledger = FaultLedger()
        out = run_supervised(
            tasks,
            solve=_solve,
            fallback=_fallback,
            policy=_fast_policy(max_retries=2),
            ledger=ledger,
        )
        assert out == [("ok", 0, 0), ("ok", 1, 1)]
        assert ledger.retries == 1
        assert ledger.events[0].shard == 1

    def test_requeue_cold_after_exhausted_retries(self):
        tasks = [Toy(index=0, fail_until=99)]
        ledger = FaultLedger()
        out = run_supervised(
            tasks,
            solve=_solve,
            fallback=_fallback,
            policy=_fast_policy(max_retries=1),
            ledger=ledger,
        )
        assert out == [("ok", 0, "cold")]
        assert ledger.retries == 1
        assert ledger.requeues == 1

    def test_raise_when_requeue_disabled(self):
        tasks = [Toy(index=0, fail_until=99)]
        ledger = FaultLedger()
        with pytest.raises(FaultInjected, match="injected shard worker"):
            run_supervised(
                tasks,
                solve=_solve,
                fallback=_fallback,
                policy=_fast_policy(max_retries=0, requeue_cold=False),
                ledger=ledger,
            )
        assert ledger.count(action="raise") == 1

    def test_poisoned_result_is_retried_via_verify(self):
        tasks = [Toy(index=0, fail_until=1, kind="poison")]
        ledger = FaultLedger()
        out = run_supervised(
            tasks,
            solve=_solve,
            fallback=_fallback,
            verify=_verify,
            policy=_fast_policy(max_retries=2),
            ledger=ledger,
        )
        assert out == [("ok", 0, 1)]
        assert ledger.poisoned == 1

    def test_cold_fallback_failing_verify_is_a_real_bug(self):
        def bad_fallback(task):
            return ("bad", task.index, "cold")

        tasks = [Toy(index=0, fail_until=99)]
        with pytest.raises(RuntimeError, match="failed verification"):
            run_supervised(
                tasks,
                solve=_solve,
                fallback=bad_fallback,
                verify=_verify,
                policy=_fast_policy(max_retries=0),
                ledger=FaultLedger(),
            )

    def test_crash_degrades_to_retryable_error_inline(self):
        # Inline "crash" must not os._exit the test process.
        tasks = [Toy(index=0, fail_until=1, kind="crash"), Toy(index=1)]
        ledger = FaultLedger()
        out = run_supervised(
            tasks,
            solve=_solve,
            fallback=_fallback,
            policy=_fast_policy(max_retries=1),
            ledger=ledger,
        )
        assert out == [("ok", 0, 1), ("ok", 1, 0)]
        assert ledger.retries == 1


class TestPool:
    def test_worker_crash_is_retried(self):
        tasks = [Toy(index=0), Toy(index=1, fail_until=1, kind="crash")]
        ledger = FaultLedger()
        out = run_supervised(
            tasks,
            solve=_solve,
            fallback=_fallback,
            workers=2,
            policy=_fast_policy(max_retries=2),
            ledger=ledger,
        )
        # A hard worker death breaks the whole pool, so the clean sibling
        # may be swept up too (requeued as collateral, or retried if its
        # future was poisoned first) — payloads must still be exact, but
        # the sibling's attempt counter depends on that race.
        assert [(r[0], r[1]) for r in out] == [("ok", 0), ("ok", 1)]
        assert out[1][2] >= 1  # the crashing shard needed at least one retry
        assert ledger.crashes >= 1
        assert not multiprocessing.active_children()

    def test_hung_worker_hits_deadline_and_recovers(self):
        tasks = [
            Toy(index=0, fail_until=1, kind="hang", delay_s=30.0),
            Toy(index=1),
        ]
        ledger = FaultLedger()
        out = run_supervised(
            tasks,
            solve=_solve,
            fallback=_fallback,
            workers=2,
            policy=_fast_policy(max_retries=2, task_timeout_s=0.75),
            ledger=ledger,
        )
        assert out == [("ok", 0, 1), ("ok", 1, 0)]
        assert ledger.timeouts >= 1
        assert not multiprocessing.active_children()

    def test_pool_poisoned_result_requeues_cold(self):
        tasks = [
            Toy(index=0, fail_until=99, kind="poison"),
            Toy(index=1),
        ]
        ledger = FaultLedger()
        out = run_supervised(
            tasks,
            solve=_solve,
            fallback=_fallback,
            verify=_verify,
            workers=2,
            policy=_fast_policy(max_retries=1),
            ledger=ledger,
        )
        assert out == [("ok", 0, "cold"), ("ok", 1, 0)]
        assert ledger.poisoned >= 1
        assert ledger.requeues == 1
        assert not multiprocessing.active_children()
