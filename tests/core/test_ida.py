"""IDA (Algorithm 4) tests: full-provider keys and the Theorem 2 fast path."""

import numpy as np
import pytest

from repro.core.ida import IDASolver
from repro.core.nia import NIASolver
from repro.core.problem import CCAProblem
from repro.flow.reference import oracle_cost, oracle_lsa
from tests.conftest import random_problem


def oracle(prob):
    return oracle_cost(oracle_lsa(prob.capacities, prob.weights, prob.distance))


class TestCorrectness:
    def test_small_fixture_optimal(self, small_problem):
        m = IDASolver(small_problem).solve()
        m.validate(small_problem)
        assert m.cost == pytest.approx(oracle(small_problem), abs=1e-6)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(200 + seed)
        prob = random_problem(rng)
        m = IDASolver(prob).solve()
        m.validate(prob)
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)

    @pytest.mark.parametrize("fast", [True, False])
    @pytest.mark.parametrize("pua", [True, False])
    def test_all_toggle_combinations(self, fast, pua, rng):
        prob = random_problem(rng, nq=6, np_=70, cap_hi=4)
        m = IDASolver(prob, use_pua=pua, use_fast_path=fast).solve()
        m.validate(prob)
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)

    def test_weighted_customers(self, rng):
        # The CA concise-matching case: customers with multi-unit weights.
        prob = random_problem(rng, nq=5, np_=25, cap_hi=6, weights_hi=4)
        m = IDASolver(prob).solve()
        m.validate(prob)
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)

    def test_weighted_customers_many_seeds(self):
        for seed in range(5):
            rng = np.random.default_rng(300 + seed)
            prob = random_problem(rng, cap_hi=8, weights_hi=5)
            m = IDASolver(prob).solve()
            m.validate(prob)
            assert m.cost == pytest.approx(oracle(prob), abs=1e-6), seed


class TestFastPath:
    def test_slack_instance_runs_entirely_fast(self, rng):
        # Abundant capacity: no provider ever fills, so every augmentation
        # uses Theorem 2 and no Dijkstra ever runs.
        prob = random_problem(rng, nq=4, np_=50, cap_hi=0, world=100.0)
        prob = CCAProblem.from_arrays(
            [q.point.coords for q in prob.providers],
            [50] * 4,
            [p.point.coords for p in prob.customers],
        )
        m = IDASolver(prob).solve()
        assert m.stats.fast_path_augments == m.stats.gamma
        assert m.stats.dijkstra_runs == 0
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)

    def test_fast_path_disabled_still_optimal(self, rng):
        prob = random_problem(rng, nq=4, np_=60, cap_hi=5)
        m = IDASolver(prob, use_fast_path=False).solve()
        assert m.stats.fast_path_augments == 0
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)

    def test_fast_path_stops_at_first_full_provider(self, rng):
        # Tight capacity: providers fill quickly, so only a prefix of
        # augmentations can be fast.
        prob = random_problem(rng, nq=3, np_=100, cap_hi=2)
        m = IDASolver(prob).solve()
        assert 0 < m.stats.fast_path_augments <= m.stats.gamma
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)

    def test_potentials_materialized_after_solve(self, rng):
        prob = random_problem(rng, nq=3, np_=30, cap_hi=30)
        solver = IDASolver(prob)
        solver.solve()
        assert solver._materialized
        assert solver.net.tau_s > 0.0


class TestPruning:
    def test_ida_explores_no_more_than_nia_when_tight(self):
        # k·|Q| < |P|: full-provider keys must prune edge discovery.
        rng = np.random.default_rng(7)
        xy_q = rng.random((8, 2)) * 1000
        xy_p = rng.random((400, 2)) * 1000
        prob_a = CCAProblem.from_arrays(xy_q, [10] * 8, xy_p)
        prob_b = CCAProblem.from_arrays(xy_q, [10] * 8, xy_p)
        ida = IDASolver(prob_a).solve()
        nia = NIASolver(prob_b).solve()
        assert ida.cost == pytest.approx(nia.cost, abs=1e-6)
        assert ida.stats.esub_edges <= nia.stats.esub_edges

    def test_real_estimates_monotone_nonnegative(self, rng):
        prob = random_problem(rng, nq=5, np_=80, cap_hi=3)
        solver = IDASolver(prob)
        solver.solve()
        assert all(r >= 0 for r in solver._real_est)
