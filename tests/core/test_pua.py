"""PUA (Algorithm 5) tests: Dijkstra state repair after edge insertion."""

import numpy as np
import pytest

from repro.core.pua import path_update
from repro.flow.dijkstra import INF, DijkstraState
from repro.flow.graph import CCAFlowNetwork


def fresh_cost(net):
    state = DijkstraState(net)
    state.run()
    return state.sp_cost


class TestRepair:
    def test_unreached_provider_is_noop(self):
        net = CCAFlowNetwork([1, 1], [1, 1])
        net.add_edge(0, 0, 1.0)
        # q1 is full before the search starts, so Dijkstra never labels it.
        net.q_used[1] = 1
        state = DijkstraState(net)
        state.run()
        assert state.alpha_of(1) == INF
        net.add_edge(1, 1, 0.5)
        assert not path_update(state, net, 1, 1, 0.5)

    def test_improvement_detected_and_applied(self):
        net = CCAFlowNetwork([1, 1], [1], )
        net.add_edge(0, 0, 9.0)
        state = DijkstraState(net)
        state.run()
        assert state.sp_cost == pytest.approx(9.0)
        net.add_edge(1, 0, 2.0)
        assert path_update(state, net, 1, 0, 2.0)
        state.run()
        assert state.sp_cost == pytest.approx(2.0)

    def test_non_improving_edge_changes_nothing(self):
        net = CCAFlowNetwork([1, 1], [1])
        net.add_edge(0, 0, 2.0)
        state = DijkstraState(net)
        state.run()
        net.add_edge(1, 0, 50.0)
        assert not path_update(state, net, 1, 0, 50.0)
        state.run()
        assert state.sp_cost == pytest.approx(2.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_repaired_equals_fresh_on_random_growth(self, seed):
        """Insert edges one by one; the PUA-repaired state must always
        agree with a from-scratch Dijkstra."""
        rng = np.random.default_rng(seed)
        nq, np_ = 5, 15
        net = CCAFlowNetwork([2] * nq, [1] * np_)
        dists = rng.random((nq, np_)) * 100
        order = [(i, j) for i in range(nq) for j in range(np_)]
        rng.shuffle(order)
        state = DijkstraState(net)
        state.run()
        for i, j in order[:40]:
            d = float(dists[i, j])
            net.add_edge(i, j, d)
            path_update(state, net, i, j, d)
            state.run()
            fresh = DijkstraState(net)
            fresh.run()
            assert state.sp_cost == pytest.approx(fresh.sp_cost), (i, j)

    def test_repair_after_partial_matching(self):
        # Augment a few paths, then grow Esub mid-iteration and compare
        # repaired vs fresh searches in the residual graph.
        rng = np.random.default_rng(9)
        nq, np_ = 4, 10
        net = CCAFlowNetwork([1] * nq, [1] * np_)
        dists = rng.random((nq, np_)) * 100
        for i in range(nq):
            for j in range(0, np_, 2):
                net.add_edge(i, j, float(dists[i, j]))
        for _ in range(2):
            s = DijkstraState(net)
            assert s.run()
            net.augment(s.path_nodes(), s.sp_cost, s.settled_alpha_for_update())
        state = DijkstraState(net)
        state.run()
        for i in range(nq):
            for j in range(1, np_, 2):
                d = float(dists[i, j])
                net.add_edge(i, j, d)
                path_update(state, net, i, j, d)
                state.run()
                fresh = DijkstraState(net)
                fresh.run()
                assert state.sp_cost == pytest.approx(fresh.sp_cost)
