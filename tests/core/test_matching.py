"""Unit tests for Matching and SolverStats."""

import pytest

from repro.core.matching import Matching, SolverStats
from repro.core.problem import CCAProblem


@pytest.fixture
def prob():
    return CCAProblem.from_arrays(
        [(0.0, 0.0), (10.0, 0.0)],
        [1, 2],
        [(1.0, 0.0), (9.0, 0.0), (11.0, 0.0)],
    )


class TestMatching:
    def test_cost_and_size(self):
        m = Matching([(0, 0, 1.0), (1, 1, 1.0), (1, 2, 1.0)])
        assert m.cost == pytest.approx(3.0)
        assert m.size == 3
        assert len(m) == 3

    def test_lookups(self):
        m = Matching([(0, 0, 1.0), (1, 1, 1.0), (1, 2, 1.0)])
        assert m.assignment_of(1) == 1
        assert m.assignment_of(99) is None
        assert sorted(m.customers_of(1)) == [1, 2]

    def test_validate_accepts_valid(self, prob):
        m = Matching([(0, 0, 1.0), (1, 1, 1.0), (1, 2, 1.0)])
        m.validate(prob)

    def test_validate_rejects_provider_overload(self, prob):
        m = Matching([(0, 0, 1.0), (0, 1, 9.0), (1, 2, 1.0)])
        with pytest.raises(AssertionError, match="provider 0"):
            m.validate(prob)

    def test_validate_rejects_duplicate_customer(self, prob):
        m = Matching([(0, 0, 1.0), (1, 0, 9.0), (1, 2, 1.0)])
        with pytest.raises(AssertionError, match="customer 0"):
            m.validate(prob)

    def test_validate_rejects_wrong_size(self, prob):
        m = Matching([(0, 0, 1.0)])
        with pytest.raises(AssertionError, match="size"):
            m.validate(prob)

    def test_validate_rejects_wrong_distance(self, prob):
        m = Matching([(0, 0, 42.0), (1, 1, 1.0), (1, 2, 1.0)])
        with pytest.raises(AssertionError, match="distance"):
            m.validate(prob)


class TestSolverStats:
    def test_total_time_combines_cpu_and_io(self):
        s = SolverStats(cpu_s=1.0)
        s.io.faults = 100  # 1 s at 10 ms each
        assert s.io_s == pytest.approx(1.0)
        assert s.total_s == pytest.approx(2.0)

    def test_defaults(self):
        s = SolverStats(method="x", gamma=5)
        assert s.esub_edges == 0
        assert s.invalid_paths == 0
        assert s.extra == {}
