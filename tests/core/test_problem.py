"""Unit tests for the CCA problem data model."""

import numpy as np
import pytest

from repro.core.problem import CCAProblem, Customer, Provider
from repro.geometry.point import Point


class TestDataClasses:
    def test_provider_fields(self):
        q = Provider(Point(0, (1.0, 2.0)), 5)
        assert q.pid == 0
        assert q.capacity == 5

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Provider(Point(0, (0.0, 0.0)), -1)

    def test_customer_default_weight(self):
        p = Customer(Point(3, (0.0, 0.0)))
        assert p.weight == 1

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Customer(Point(0, (0.0, 0.0)), -2)


class TestProblem:
    def test_from_arrays_assigns_ids(self):
        prob = CCAProblem.from_arrays(
            [(0.0, 0.0), (10.0, 10.0)], [1, 2], [(1.0, 1.0), (2.0, 2.0)]
        )
        assert [q.pid for q in prob.providers] == [0, 1]
        assert [p.pid for p in prob.customers] == [0, 1]

    def test_misnumbered_ids_rejected(self):
        with pytest.raises(ValueError):
            CCAProblem([Provider(Point(5, (0, 0)), 1)], [])
        with pytest.raises(ValueError):
            CCAProblem([], [Customer(Point(1, (0, 0)))])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CCAProblem.from_arrays([(0, 0)], [1, 2], [(1, 1)])
        with pytest.raises(ValueError):
            CCAProblem.from_arrays([(0, 0)], [1], [(1, 1)], customer_weights=[1, 1])

    def test_gamma(self):
        prob = CCAProblem.from_arrays([(0, 0)], [3], [(1, 1), (2, 2)])
        assert prob.gamma == 2  # min(2 customers, capacity 3)
        prob2 = CCAProblem.from_arrays([(0, 0)], [1], [(1, 1), (2, 2)])
        assert prob2.gamma == 1

    def test_gamma_with_weights(self):
        prob = CCAProblem.from_arrays(
            [(0, 0)], [10], [(1, 1), (2, 2)], customer_weights=[3, 4]
        )
        assert prob.gamma == 7

    def test_distance(self):
        prob = CCAProblem.from_arrays([(0, 0)], [1], [(3.0, 4.0)])
        assert prob.distance(0, 0) == pytest.approx(5.0)

    def test_world_mbr(self):
        prob = CCAProblem.from_arrays([(-5.0, 0.0)], [1], [(10.0, 20.0), (0.0, -1.0)])
        world = prob.world_mbr()
        assert world.lo == (-5.0, -1.0)
        assert world.hi == (10.0, 20.0)

    def test_rtree_cached_and_rebuilt(self):
        rng = np.random.default_rng(0)
        prob = CCAProblem.from_arrays([(0, 0)], [1], rng.random((50, 2)) * 100)
        t1 = prob.rtree()
        assert prob.rtree() is t1
        t2 = prob.rtree(rebuild=True)
        assert t2 is not t1
        assert len(t2) == 50

    def test_attach_rtree(self):
        prob = CCAProblem.from_arrays([(0, 0)], [1], [(1.0, 1.0)])
        other = CCAProblem.from_arrays([(0, 0)], [1], [(1.0, 1.0)])
        tree = prob.rtree()
        other.attach_rtree(tree)
        assert other.rtree() is tree

    def test_repr(self):
        prob = CCAProblem.from_arrays([(0, 0)], [2], [(1, 1)])
        assert "|Q|=1" in repr(prob) and "|P|=1" in repr(prob)
