"""SM greedy baseline tests."""

import numpy as np
import pytest

from repro.core.sm import SMSolver
from repro.core.solve import solve
from tests.conftest import random_problem


class TestValidity:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_maximal_matching(self, seed):
        rng = np.random.default_rng(400 + seed)
        prob = random_problem(rng)
        m = SMSolver(prob).solve()
        m.validate(prob)

    def test_never_better_than_optimal(self, rng):
        prob = random_problem(rng, nq=5, np_=40, cap_hi=3)
        greedy = SMSolver(prob).solve()
        optimal = solve(prob, "ida")
        assert greedy.cost >= optimal.cost - 1e-9

    def test_greedy_first_pair_is_global_closest(self, rng):
        prob = random_problem(rng, nq=4, np_=30, cap_hi=2)
        m = SMSolver(prob).solve()
        all_d = min(
            prob.distance(i, j)
            for i in range(len(prob.providers))
            for j in range(len(prob.customers))
        )
        assert min(d for _, _, d in m.pairs) == pytest.approx(all_d)

    def test_greedy_is_suboptimal_on_adversarial_chain(self):
        # Classic chain: greedy grabs the middle pair and forces a long
        # edge; the optimal matching avoids it.
        from repro.core.problem import CCAProblem

        prob = CCAProblem.from_arrays(
            [(0.0, 0.0), (10.0, 0.0)],
            [1, 1],
            [(4.0, 0.0), (-9.0, 0.0)],
        )
        greedy = SMSolver(prob).solve()
        optimal = solve(prob, "ida")
        # greedy: q1-p0 (4) then q2-p1 (19) = 23 ; optimal: 9 + 6 = 15.
        assert greedy.cost > optimal.cost

    def test_weighted_customers(self, rng):
        prob = random_problem(rng, nq=3, np_=15, cap_hi=5, weights_hi=3)
        m = SMSolver(prob).solve()
        m.validate(prob)

    def test_zero_capacity_provider_ignored(self):
        from repro.core.problem import CCAProblem

        prob = CCAProblem.from_arrays(
            [(0.0, 0.0), (5.0, 5.0)], [0, 2], [(1.0, 1.0), (6.0, 6.0)]
        )
        m = SMSolver(prob).solve()
        m.validate(prob)
        assert all(q == 1 for q, _, _ in m.pairs)
