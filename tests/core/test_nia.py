"""NIA (Algorithm 3) tests."""

import numpy as np
import pytest

from repro.core.nia import NIASolver
from repro.flow.reference import oracle_cost, oracle_lsa
from tests.conftest import random_problem


def oracle(prob):
    return oracle_cost(oracle_lsa(prob.capacities, prob.weights, prob.distance))


class TestCorrectness:
    def test_small_fixture_optimal(self, small_problem):
        m = NIASolver(small_problem).solve()
        m.validate(small_problem)
        assert m.cost == pytest.approx(oracle(small_problem), abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(100 + seed)
        prob = random_problem(rng)
        m = NIASolver(prob).solve()
        m.validate(prob)
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)

    @pytest.mark.parametrize("use_pua", [True, False])
    def test_pua_toggle_same_result(self, use_pua, rng):
        prob = random_problem(rng, nq=5, np_=60, cap_hi=4)
        m = NIASolver(prob, use_pua=use_pua).solve()
        m.validate(prob)
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)

    @pytest.mark.parametrize("group_size", [1, 3, 16])
    def test_ann_group_size_irrelevant_to_result(self, group_size, rng):
        prob = random_problem(rng, nq=6, np_=80, cap_hi=3)
        m = NIASolver(prob, ann_group_size=group_size).solve()
        assert m.cost == pytest.approx(oracle(prob), abs=1e-6)


class TestMechanics:
    def test_one_pending_edge_per_provider(self, rng):
        prob = random_problem(rng, nq=5, np_=50, cap_hi=2)
        solver = NIASolver(prob)
        solver.solve()
        # After completion each provider has at most one frontier entry.
        live = [f for f in solver._frontier if f is not None]
        assert len(live) <= len(prob.providers)

    def test_subgraph_much_smaller_than_full(self, rng):
        prob = random_problem(rng, nq=6, np_=300, cap_hi=3)
        m = NIASolver(prob).solve()
        full = len(prob.providers) * len(prob.customers)
        assert m.stats.esub_edges < full / 3

    def test_pua_reduces_dijkstra_restarts(self, rng):
        prob = random_problem(rng, nq=6, np_=200, cap_hi=10)
        with_pua = NIASolver(prob).solve()
        prob2 = random_problem(np.random.default_rng(12345), nq=6, np_=200, cap_hi=10)
        without = NIASolver(prob2, use_pua=False).solve()
        assert with_pua.stats.dijkstra_runs < without.stats.dijkstra_runs

    def test_nn_requests_counted(self, rng):
        prob = random_problem(rng, nq=4, np_=40, cap_hi=2)
        m = NIASolver(prob).solve()
        assert m.stats.nn_requests >= m.stats.edges_inserted
