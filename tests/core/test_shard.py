"""Tests for the sharded parallel assignment engine."""

import pytest

from repro.core.problem import CCAProblem
from repro.core.shard import (
    ShardPlan,
    plan_shards,
    route_concise,
    route_nearest,
    solve_sharded,
)
from repro.core.solve import solve
from repro.datagen.workloads import make_problem, make_separated_problem


def fresh_problem(**kwargs):
    params = dict(nq=10, np_=300, k=12, seed=5)
    params.update(kwargs)
    return make_problem(**params)


class TestPlanShards:
    def test_provider_disjoint_cover(self):
        problem = fresh_problem()
        plan = plan_shards(problem, 3)
        seen = [pid for spec in plan.shards for pid in spec.provider_ids]
        assert sorted(seen) == list(range(len(problem.providers)))

    def test_capacity_recorded(self):
        problem = fresh_problem()
        plan = plan_shards(problem, 3)
        total = sum(spec.capacity for spec in plan.shards)
        assert total == sum(q.capacity for q in problem.providers)

    def test_at_most_requested_shards(self):
        problem = fresh_problem()
        assert plan_shards(problem, 4).num_shards <= 4
        # More shards than providers collapses to one per provider.
        assert plan_shards(problem, 99).num_shards <= len(problem.providers)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            plan_shards(fresh_problem(), 0)


class TestRouting:
    def test_nearest_respects_shard_of_provider(self):
        problem = fresh_problem()
        plan = plan_shards(problem, 3)
        routed = route_nearest(problem, plan)
        assert len(routed) == plan.num_shards
        total = sum(sum(bucket.values()) for bucket in routed)
        assert total == sum(p.weight for p in problem.customers)

    def test_concise_demand_within_capacity(self):
        problem = fresh_problem()
        plan = plan_shards(problem, 3, delta=40.0)
        routed = route_concise(problem, plan)
        for spec, bucket in zip(plan.shards, routed, strict=False):
            assert sum(bucket.values()) <= spec.capacity
        # Routed demand equals the concise matching size γ.
        total = sum(sum(bucket.values()) for bucket in routed)
        assert total == problem.gamma


class TestSolveSharded:
    def test_single_shard_is_serial(self):
        serial = solve(fresh_problem(), "ida", backend="array")
        sharded = solve_sharded(fresh_problem(), 1, backend="array")
        assert sharded.pairs == serial.pairs

    def test_multi_shard_valid_and_maximal(self):
        problem = fresh_problem()
        matching = solve_sharded(problem, 3, backend="array")
        # solve_sharded validates internally; re-assert the essentials.
        assert matching.size == problem.gamma
        assert matching.stats.extra["shards"] == 3

    def test_pool_matches_inline(self):
        inline = solve_sharded(fresh_problem(), 3, backend="array")
        pooled = solve_sharded(fresh_problem(), 3, workers=2, backend="array")
        assert pooled.pairs == inline.pairs

    def test_per_shard_backend_selection(self):
        problem = fresh_problem()
        plan = plan_shards(problem, 2)
        backends = ["dict", "array"][: plan.num_shards]
        mixed = solve_sharded(fresh_problem(), plan.num_shards, backend=backends)
        uniform = solve_sharded(fresh_problem(), plan.num_shards, backend="dict")
        assert mixed.cost == pytest.approx(uniform.cost, abs=1e-9)

    def test_separated_clusters_exact(self):
        problem = make_separated_problem(clusters=4, nq_per=5, np_per=60, k=12, seed=1)
        serial = solve(problem, "ida", backend="array")
        sharded = solve_sharded(
            make_separated_problem(clusters=4, nq_per=5, np_per=60, k=12, seed=1),
            4,
            delta=200.0,
            backend="array",
        )
        assert sharded.cost == pytest.approx(serial.cost, rel=1e-9)

    def test_concise_router_not_worse_than_sa(self):
        delta = 40.0
        sharded = solve_sharded(fresh_problem(), 3, router="concise", delta=delta)
        sa = solve(fresh_problem(), "san", delta=delta)
        assert sharded.cost <= sa.cost * (1 + 1e-9) + 1e-9

    def test_facade_dispatch(self):
        problem = fresh_problem()
        matching = solve(problem, "ida", shards=2, backend="array")
        assert matching.size == problem.gamma
        assert matching.stats.method == "shard-ida"

    def test_rejects_bad_arguments(self):
        problem = fresh_problem()
        with pytest.raises(ValueError):
            solve_sharded(problem, 0)
        with pytest.raises(ValueError):
            solve_sharded(problem, 2, router="teleport")
        with pytest.raises(ValueError):
            solve_sharded(problem, 2, method="sspa")
        with pytest.raises(ValueError):
            solve(problem, "san", shards=2)
        with pytest.raises(ValueError):
            solve_sharded(problem, 2, backend=["dict"] * 7)

    def test_rejects_overlapping_plan(self):
        problem = CCAProblem.from_arrays([(0.0, 0.0), (5.0, 0.0)], [1, 1], [(1.0, 0.0)])
        plan = ShardPlan.from_provider_lists([[0, 1], [1]], problem)
        with pytest.raises(ValueError):
            solve_sharded(problem, 2, plan=plan)


class TestReconciliation:
    """Hand-built geometries that force the boundary pass to act."""

    def _problem(self, provider_xy, caps, customer_xy):
        return CCAProblem.from_arrays(provider_xy, caps, customer_xy)

    def test_accepted_move_reaches_optimum(self):
        # Shard 0 owns P0(0,0) and P1(1,0); shard 1 owns P2(0.9,0) with
        # spare capacity.  c1 routes to shard 0 (nearest P0) but shard 0's
        # exact solve must park it on P1 at 0.6 — the reconciliation move
        # re-homes it to P2 at 0.5, reaching the global optimum.
        problem = self._problem(
            [(0.0, 0.0), (1.0, 0.0), (0.9, 0.0)],
            [1, 1, 1],
            [(0.0, 0.0), (0.4, 0.0)],
        )
        plan = ShardPlan.from_provider_lists([[0, 1], [2]], problem)
        matching = solve_sharded(problem, 2, plan=plan)
        assert matching.stats.extra["reconcile_moves"] == 1
        assert matching.cost == pytest.approx(0.5)
        serial = solve(
            self._problem(
                [(0.0, 0.0), (1.0, 0.0), (0.9, 0.0)],
                [1, 1, 1],
                [(0.0, 0.0), (0.4, 0.0)],
            ),
            "ida",
        )
        assert matching.cost == pytest.approx(serial.cost)

    def test_losing_move_is_reverted(self):
        # Same boundary bait, but shard 1's nearby provider is occupied
        # and its spare capacity sits far away at P3(5,0): the trial move
        # re-solves to a worse total and must be rolled back.
        problem = self._problem(
            [(0.0, 0.0), (1.0, 0.0), (0.9, 0.0), (5.0, 0.0)],
            [1, 1, 1, 1],
            [(0.0, 0.0), (0.4, 0.0), (0.9, 0.0)],
        )
        plan = ShardPlan.from_provider_lists([[0, 1], [2, 3]], problem)
        matching = solve_sharded(problem, 2, plan=plan)
        assert matching.stats.extra["reconcile_moves"] == 0
        assert matching.stats.extra["reconcile_attempted"] == 1
        assert matching.cost == pytest.approx(0.6)
        assert matching.size == problem.gamma

    def test_reconcile_never_degrades(self):
        problem = fresh_problem(seed=7)
        with_rec = solve_sharded(problem, 3, backend="array")
        without = solve_sharded(
            fresh_problem(seed=7), 3, backend="array", reconcile=False
        )
        assert with_rec.cost <= without.cost + 1e-9
