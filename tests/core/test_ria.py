"""RIA (Algorithm 2) tests."""

import numpy as np
import pytest

from repro.core.ria import RIASolver
from repro.flow.reference import oracle_cost, oracle_lsa
from tests.conftest import random_problem


class TestCorrectness:
    def test_small_fixture_optimal(self, small_problem):
        m = RIASolver(small_problem, theta=5.0).solve()
        m.validate(small_problem)
        expected = oracle_cost(
            oracle_lsa(
                small_problem.capacities,
                small_problem.weights,
                small_problem.distance,
            )
        )
        assert m.cost == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("theta", [0.5, 3.0, 20.0, 500.0])
    def test_theta_does_not_change_result(self, small_problem, theta):
        m = RIASolver(small_problem, theta=theta).solve()
        expected = oracle_cost(
            oracle_lsa(
                small_problem.capacities,
                small_problem.weights,
                small_problem.distance,
            )
        )
        assert m.cost == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        prob = random_problem(rng)
        m = RIASolver(prob, theta=7.0).solve()
        m.validate(prob)
        expected = oracle_cost(oracle_lsa(prob.capacities, prob.weights, prob.distance))
        assert m.cost == pytest.approx(expected, abs=1e-6)

    def test_invalid_theta_rejected(self, small_problem):
        with pytest.raises(ValueError):
            RIASolver(small_problem, theta=0.0)


class TestMechanics:
    def test_subgraph_smaller_than_full(self, rng):
        prob = random_problem(rng, nq=5, np_=200, cap_hi=3)
        m = RIASolver(prob, theta=10.0).solve()
        full = len(prob.providers) * len(prob.customers)
        assert 0 < m.stats.esub_edges < full

    def test_small_theta_means_more_range_searches(self, rng):
        prob = random_problem(rng, nq=4, np_=150, cap_hi=3)
        fine = RIASolver(prob, theta=2.0).solve()
        prob2 = random_problem(np.random.default_rng(12345), nq=4, np_=150, cap_hi=3)
        coarse = RIASolver(prob2, theta=50.0).solve()
        assert fine.stats.range_searches > coarse.stats.range_searches
        assert fine.cost == pytest.approx(coarse.cost, abs=1e-6)

    def test_io_is_charged(self, rng):
        prob = random_problem(rng, nq=4, np_=300, cap_hi=4, world=1000.0)
        m = RIASolver(prob, theta=20.0).solve()
        assert m.stats.io.faults > 0
        assert m.stats.io_s == pytest.approx(m.stats.io.faults * 0.010)

    def test_expansions_needed_helper(self):
        assert RIASolver.expansions_needed(100.0, 10.0) == 10
        assert RIASolver.expansions_needed(101.0, 10.0) == 11
