"""Matcher warm-start sessions: delta re-solves must equal cold solves.

The service scenario: clustered demand around each provider with spare
capacity, then customers arrive/leave and capacities change.  Every warm
re-solve must return the optimal matching of the *mutated* instance (same
cost as solving it from scratch) — warm starting buys fewer Dijkstra
pops, never a different answer.
"""

import numpy as np
import pytest

from repro.core.problem import CCAProblem
from repro.core.session import Matcher
from repro.core.solve import solve
from repro.flow.reference import oracle_cost, oracle_lsa

BACKENDS = ("dict", "array")


def service_instance(caps=(12, 12, 12, 12), per_cluster=8, seed=7):
    """Clustered customers near 4 providers (potentials stay moderate, so
    distant arrivals are warm-admissible)."""
    rng = np.random.default_rng(seed)
    qxy = np.array([[20.0, 20.0], [80.0, 20.0], [20.0, 80.0], [80.0, 80.0]])
    pxy = np.vstack([q + rng.normal(0, 4, (per_cluster, 2)) for q in qxy])
    return qxy, list(caps), pxy


def fresh_problem(qxy, caps, pxy):
    return CCAProblem.from_arrays(qxy, caps, pxy)


def cold_reference(qxy, caps, pxy, backend="dict"):
    """Cost and pop count of a brand-new session on the instance."""
    matcher = Matcher(fresh_problem(qxy, caps, pxy), backend=backend)
    matching = matcher.assign()
    return matching.cost, matcher.last_stats.dijkstra_pops


class TestColdAssign:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_first_assign_is_cold_and_optimal(self, backend):
        qxy, caps, pxy = service_instance()
        prob = fresh_problem(qxy, caps, pxy)
        matcher = Matcher(prob, backend=backend)
        matching = matcher.assign()
        assert not matcher.last_was_warm
        matching.validate(prob)
        expected = oracle_cost(oracle_lsa(prob.capacities, prob.weights, prob.distance))
        assert matching.cost == pytest.approx(expected, abs=1e-6)

    def test_assign_without_deltas_reuses_network(self):
        qxy, caps, pxy = service_instance()
        matcher = Matcher(fresh_problem(qxy, caps, pxy))
        first = matcher.assign()
        again = matcher.assign()
        assert matcher.last_was_warm
        assert matcher.last_stats.dijkstra_pops == 0
        assert again.cost == first.cost


class TestCustomerArrival:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_arrival_equals_cold_with_fewer_pops(self, backend):
        qxy, caps, pxy = service_instance()
        matcher = Matcher(fresh_problem(qxy, caps, pxy), backend=backend)
        matcher.assign()
        arrival = (50.0, 50.0)  # mid-field: farther than every τ_q
        matcher.add_customer(arrival)
        warm = matcher.assign()
        assert matcher.last_was_warm
        warm_pops = matcher.last_stats.dijkstra_pops
        warm.validate(matcher.problem)

        cold_cost, cold_pops = cold_reference(
            qxy, caps, np.vstack([pxy, [arrival]]), backend=backend
        )
        assert warm.cost == pytest.approx(cold_cost, abs=1e-9)
        assert warm_pops > 0  # γ grew: the arrival had to be matched
        assert warm_pops < cold_pops  # strictly fewer — the warm-start win

    def test_conflicting_arrival_falls_back_to_cold_and_stays_exact(self):
        """An arrival closer than a provider's matched customers makes the
        old matching suboptimal; the session must detect it (negative
        cycle through the new node) and re-solve from scratch."""
        rng = np.random.default_rng(5)
        qxy = rng.random((4, 2)) * 100
        pxy = rng.random((40, 2)) * 100
        caps = [3, 3, 3, 3]
        matcher = Matcher(CCAProblem.from_arrays(qxy, caps, pxy))
        matcher.assign()
        arrival = (qxy[0][0] + 1.0, qxy[0][1] + 1.0)  # on top of provider 0
        matcher.add_customer(arrival)
        res = matcher.assign()
        assert not matcher.last_was_warm  # honesty: fell back cold
        cold_cost, _ = cold_reference(qxy, caps, np.vstack([pxy, [arrival]]))
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)

    def test_arrival_when_capacity_bound_keeps_matching_optimal(self):
        """Σk-bound instance: a far arrival cannot enter the matching, and
        the session proves the old matching still optimal (0 pops)."""
        rng = np.random.default_rng(5)
        qxy = rng.random((4, 2)) * 100
        pxy = rng.random((40, 2)) * 100
        caps = [3, 3, 3, 3]
        matcher = Matcher(CCAProblem.from_arrays(qxy, caps, pxy))
        matcher.assign()
        matcher.add_customer((150.0, 150.0))
        res = matcher.assign()
        assert matcher.last_was_warm
        assert matcher.last_stats.dijkstra_pops == 0
        cold_cost, _ = cold_reference(qxy, caps, np.vstack([pxy, [[150.0, 150.0]]]))
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)


class TestOtherDeltas:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_remove_matched_customer(self, backend):
        qxy, caps, pxy = service_instance()
        matcher = Matcher(fresh_problem(qxy, caps, pxy), backend=backend)
        first = matcher.assign()
        victim = first.pairs[0][1]
        matcher.remove_customer(victim)
        res = matcher.assign()
        assert matcher.last_was_warm
        cold_cost, _ = cold_reference(
            qxy, caps, np.delete(pxy, victim, axis=0), backend=backend
        )
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)
        assert all(p != victim for _, p, _ in res.pairs)

    def test_remove_customer_is_idempotent(self):
        qxy, caps, pxy = service_instance()
        matcher = Matcher(fresh_problem(qxy, caps, pxy))
        matcher.assign()
        matcher.remove_customer(0)
        matcher.remove_customer(0)  # tombstoned: second call is a no-op
        res = matcher.assign()
        cold_cost, _ = cold_reference(qxy, caps, np.delete(pxy, 0, axis=0))
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_capacity_increase_is_warm_when_potential_fresh(self, backend):
        """A provider that saturated in the *final* augmentation keeps
        τ_q = τ_s, so reopening its source edge is certifiably safe and
        the widening stays warm."""
        qxy = np.array([[10.0, 10.0]])
        pxy = np.array([[11.0, 10.0], [10.0, 13.0], [14.0, 10.0]])
        matcher = Matcher(fresh_problem(qxy, [1], pxy), backend=backend)
        matcher.assign()
        matcher.set_provider_capacity(0, 3)
        res = matcher.assign()
        assert matcher.last_was_warm
        warm_pops = matcher.last_stats.dijkstra_pops
        cold_cost, cold_pops = cold_reference(qxy, [3], pxy, backend=backend)
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)
        assert 0 < warm_pops < cold_pops

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_capacity_increase_on_stale_provider_falls_back_cold(self, backend):
        """Regression (code review): widening an early-saturated provider
        reopens its (s, q) edge with τ_q < τ_s; the old matching is no
        longer provably optimal and the session must re-solve cold
        rather than return the stale assignment."""
        qxy = np.array([[0.0, 0.0], [10.0, 0.0]])  # A near, B far
        pxy = np.array([[0.0, 1.0], [0.0, 2.0]])   # both next to A
        matcher = Matcher(fresh_problem(qxy, [1, 1], pxy), backend=backend)
        first = matcher.assign()  # {A-p0, B-p1}: A saturates first
        matcher.set_provider_capacity(0, 2)
        res = matcher.assign()
        assert not matcher.last_was_warm
        cold_cost, _ = cold_reference(qxy, [2, 1], pxy, backend=backend)
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)
        assert res.cost < first.cost  # A now serves both: cheaper

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_remove_customer_of_stale_provider_falls_back_cold(self, backend):
        """Regression (code review): releasing an early-saturated
        provider's flow reopens its (s, q) edge with τ_q < τ_s; a warm
        continuation would keep the now-suboptimal remainder, so the
        session must go cold."""
        qxy = np.array([[0.0, 0.0], [10.0, 0.0]])
        pxy = np.array([[0.0, 1.0], [0.0, 2.0]])
        matcher = Matcher(fresh_problem(qxy, [1, 1], pxy), backend=backend)
        matcher.assign()  # {A-p0, B-p1}
        matcher.remove_customer(0)  # frees A, whose potential is stale
        res = matcher.assign()
        assert not matcher.last_was_warm
        cold_cost, _ = cold_reference(qxy, [1, 1], pxy[1:], backend=backend)
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)  # {A-p1}

    def test_capacity_decrease_below_usage_falls_back_cold(self):
        qxy, caps, pxy = service_instance()
        matcher = Matcher(fresh_problem(qxy, caps, pxy))
        matcher.assign()
        used = len(matcher.matching.customers_of(0))
        assert used > 0
        matcher.set_provider_capacity(0, used - 1)
        res = matcher.assign()
        assert not matcher.last_was_warm
        cold_cost, _ = cold_reference(qxy, [used - 1, 12, 12, 12], pxy)
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)

    def test_capacity_decrease_above_usage_stays_warm(self):
        qxy, _, pxy = service_instance()
        caps = [20, 20, 20, 20]  # slack: no provider near its cap
        matcher = Matcher(fresh_problem(qxy, caps, pxy))
        matcher.assign()
        used = len(matcher.matching.customers_of(0))
        matcher.set_provider_capacity(0, max(used, 1))
        res = matcher.assign()
        assert matcher.last_was_warm
        cold_cost, _ = cold_reference(qxy, [max(used, 1), 20, 20, 20], pxy)
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)


class TestDeltaSequences:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_sequence_matches_fresh_solve(self, backend):
        qxy, caps, pxy = service_instance()
        matcher = Matcher(fresh_problem(qxy, caps, pxy), backend=backend)
        matcher.assign()
        a1 = matcher.add_customer((50.0, 50.0))
        matcher.assign()
        matcher.add_customer((52.0, 48.0))
        matcher.remove_customer(3)
        matcher.set_provider_capacity(1, 20)
        res = matcher.assign()
        res.validate(matcher.problem)

        mutated_pxy = np.vstack(
            [np.delete(pxy, 3, axis=0), [(50.0, 50.0)], [(52.0, 48.0)]]
        )
        cold_cost, _ = cold_reference(
            qxy, [12, 20, 12, 12], mutated_pxy, backend=backend
        )
        assert res.cost == pytest.approx(cold_cost, abs=1e-9)
        assert a1 == pxy.shape[0]  # arrivals get fresh positional ids

    def test_backends_agree_across_a_session(self):
        results = {}
        for backend in BACKENDS:
            qxy, caps, pxy = service_instance()
            matcher = Matcher(fresh_problem(qxy, caps, pxy), backend=backend)
            costs = [matcher.assign().cost]
            matcher.add_customer((55.0, 45.0))
            costs.append(matcher.assign().cost)
            matcher.remove_customer(1)
            costs.append(matcher.assign().cost)
            results[backend] = costs
        assert results["dict"] == results["array"]  # bit-identical


class TestValidation:
    def test_negative_weight_rejected(self):
        qxy, caps, pxy = service_instance()
        matcher = Matcher(fresh_problem(qxy, caps, pxy))
        with pytest.raises(ValueError):
            matcher.add_customer((1.0, 1.0), weight=-1)

    def test_negative_capacity_rejected(self):
        qxy, caps, pxy = service_instance()
        matcher = Matcher(fresh_problem(qxy, caps, pxy))
        with pytest.raises(ValueError):
            matcher.set_provider_capacity(0, -2)

    def test_matching_agrees_with_plain_solver(self):
        """The session is a façade over IDA: cold results must match the
        one-shot `solve` entry point exactly."""
        qxy, caps, pxy = service_instance()
        session_cost = Matcher(fresh_problem(qxy, caps, pxy)).assign().cost
        solver_cost = solve(fresh_problem(qxy, caps, pxy), "ida").cost
        assert session_cost == pytest.approx(solver_cost, abs=1e-9)


class TestWarmFallbackOnStalePotentials:
    def test_sharded_reconciliation_seed_4198_regression(self):
        """Hypothesis-found latent bug (pre-dating the index seam): a warm
        reconciliation re-solve discovered a *new* edge whose reduced cost
        was negative against the inherited potentials and crashed with
        NegativeReducedCostError.  The session now detects that the seeded
        state is stale and falls back to a cold solve; this pins the exact
        failing instance (seed=4198, shards=3, nearest router)."""
        import numpy as np

        from repro.core.shard import solve_sharded

        def build_instance(seed, max_nq=6, max_np=24):
            rng = np.random.default_rng(seed)
            nq = int(rng.integers(2, max_nq + 1))
            np_ = int(rng.integers(4, max_np + 1))
            caps = rng.integers(0, 4, nq).tolist()
            if sum(caps) == 0:
                caps[0] = 1
            qxy = rng.random((nq, 2)) * 200.0
            pxy = rng.random((np_, 2)) * 200.0
            return CCAProblem.from_arrays(qxy, caps, pxy)

        problem = build_instance(4198)
        matching = solve_sharded(
            build_instance(4198), 3, router="nearest", backend="array"
        )
        optimal = solve(build_instance(4198), "ida", backend="array")
        assert matching.size == problem.gamma
        assert matching.cost >= optimal.cost - 1e-9
