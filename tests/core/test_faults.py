"""Unit tests for the deterministic fault-injection framework."""

import pickle

import pytest

from repro.core.faults import (
    FAULT_ENV,
    FaultInjected,
    FaultLedger,
    FaultPlan,
    FaultSpec,
    attach_fault,
    poison_result,
    resolve_fault_plan,
    trigger,
)


class TestFaultSpec:
    def test_matches_site_shard_and_occurrence(self):
        spec = FaultSpec(kind="error", site="worker", shard=2, at=(0, 3))
        assert spec.matches("worker", 2, 0)
        assert spec.matches("worker", 2, 3)
        assert not spec.matches("worker", 2, 1)
        assert not spec.matches("worker", 1, 0)
        assert not spec.matches("attach", 2, 0)

    def test_wildcards(self):
        every = FaultSpec(kind="error", shard=None, at=None)
        assert every.matches("worker", 0, 0)
        assert every.matches("worker", 7, 12)
        periodic = FaultSpec(kind="error", at=None, period=3)
        assert periodic.matches("worker", 0, 3)
        assert periodic.matches("worker", 0, 6)
        assert not periodic.matches("worker", 0, 0)
        assert not periodic.matches("worker", 0, 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="nowhere")
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="gremlin")
        with pytest.raises(ValueError, match="period"):
            FaultSpec(period=0)


class TestFaultPlan:
    def test_single_and_attach_alias(self):
        plan = FaultPlan.single("error", shard=1)
        assert plan.match("worker", 1, 0).kind == "error"
        assert plan.match("worker", 1, 1) is None  # first attempt only
        attach_plan = FaultPlan.single("attach", shard=0)
        spec = attach_plan.match("attach", 0, 0)
        assert spec is not None and spec.kind == "error"
        assert attach_plan.match("worker", 0, 0) is None

    def test_compose_first_match_wins(self):
        a = FaultPlan.single("poison", shard=0)
        b = FaultPlan.single("error", shard=0)
        assert (a | b).match("worker", 0, 0).kind == "poison"
        assert (b | a).match("worker", 0, 0).kind == "error"

    def test_bool_and_none(self):
        assert not FaultPlan.none()
        assert FaultPlan.single("error")
        assert FaultPlan.none().match("worker", 0, 0) is None

    def test_from_seed_is_deterministic_and_picklable(self):
        one = FaultPlan.from_seed(7, num_shards=4)
        two = FaultPlan.from_seed(7, num_shards=4)
        other = FaultPlan.from_seed(8, num_shards=4)
        assert one == two
        assert one.seed == 7
        assert pickle.loads(pickle.dumps(one)) == one
        assert one.describe() != FaultPlan.none().describe()
        # Different seeds should not all collapse to the same plan.
        assert any(
            FaultPlan.from_seed(s, num_shards=4) != one for s in range(8)
        ) or other != one
        # Generated faults fire on the first attempt only, so a
        # supervised retry always recovers.
        for spec in one.specs:
            assert spec.at == (0,)
            assert 0 <= spec.shard < 4

    def test_session_faults_schedule(self):
        plan = FaultPlan.session_faults([2, 5], num_shards=3)
        assert plan.match("session", 0, 2) is not None
        assert plan.match("session", 1, 5) is not None
        assert plan.match("session", 0, 5) is None
        assert plan.match("worker", 0, 2) is None


class TestResolver:
    def test_explicit_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "0")
        plan = FaultPlan.single("poison", shard=1)
        assert resolve_fault_plan(plan) is plan

    def test_none_plan_disables_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "0")
        assert resolve_fault_plan(FaultPlan.none()) is None

    def test_env_alias_deprecated(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "2")
        with pytest.warns(DeprecationWarning, match=FAULT_ENV):
            plan = resolve_fault_plan(None)
        assert plan.match("worker", 2, 0).kind == "error"
        assert plan.match("worker", 2, 5) is not None  # every attempt
        assert plan.match("worker", 1, 0) is None

    def test_no_env_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        assert resolve_fault_plan(None) is None


class TestTrigger:
    def test_error_raises_with_stable_message(self):
        spec = FaultSpec(kind="error")
        with pytest.raises(FaultInjected, match="injected shard worker"):
            trigger(spec, where="shard 3, attempt 0")

    def test_crash_degrades_to_raise_in_parent_process(self):
        # os._exit would kill pytest; inline execution must degrade.
        spec = FaultSpec(kind="crash")
        with pytest.raises(FaultInjected, match="crash"):
            trigger(spec, where="shard 0, attempt 0")

    def test_slow_returns(self):
        trigger(FaultSpec(kind="slow", delay_s=0.0))

    def test_attach_fault_context_arms_and_disarms(self):
        from repro.core import shm

        spec = FaultSpec(kind="error", site="attach")
        with attach_fault(spec, where="shard 0"):
            with pytest.raises(FaultInjected, match="attach failure"):
                shm.attach(
                    shm.StoreHandle(name="repro_cca_none", manifest=(), nbytes=0)
                )
        assert shm._ATTACH_FAULT is None
        with attach_fault(None):
            pass  # no-op arm


class TestPoisonAndLedger:
    def test_poison_result_perturbs(self):
        class R:
            pairs = [(0, 1, 2.0), (1, 2, 3.0)]
            gamma = 2

        r = R()
        poison_result(r)
        assert r.pairs[0][2] == pytest.approx(3.0)

        class Empty:
            pairs = []
            gamma = 0

        e = Empty()
        poison_result(e)
        assert e.gamma == 1

    def test_ledger_counts_and_summary(self):
        ledger = FaultLedger()
        ledger.record(0, 0, "crash", "retry", backoff_s=0.1)
        ledger.record(0, 1, "timeout", "retry", backoff_s=0.2)
        ledger.record(0, 2, "poison", "requeue_cold")
        ledger.record(1, 0, "error", "raise")
        assert len(ledger) == 4
        assert ledger.retries == 2
        assert ledger.requeues == 1
        assert ledger.timeouts == 1
        assert ledger.crashes == 1
        assert ledger.poisoned == 1
        summary = ledger.summary()
        assert summary["events"] == 4
        assert summary["by_shard"] == [0, 1]
        assert summary["backoff_s"] == pytest.approx(0.3)
