"""The solve() façade and cross-method agreement on the fixture."""

import pytest

from repro.core.solve import APPROX_METHODS, EXACT_METHODS, solve
from repro.flow.reference import oracle_cost, oracle_lsa


class TestFacade:
    def test_unknown_method_rejected(self, small_problem):
        with pytest.raises(ValueError, match="unknown method"):
            solve(small_problem, "magic")

    def test_method_case_insensitive(self, small_problem):
        a = solve(small_problem, "IDA")
        b = solve(small_problem, "ida")
        assert a.cost == pytest.approx(b.cost)

    @pytest.mark.parametrize("method", EXACT_METHODS)
    def test_exact_methods_agree(self, small_problem, method):
        expected = oracle_cost(
            oracle_lsa(
                small_problem.capacities,
                small_problem.weights,
                small_problem.distance,
            )
        )
        m = solve(small_problem, method)
        m.validate(small_problem)
        assert m.cost == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("method", APPROX_METHODS)
    def test_approx_methods_valid(self, small_problem, method):
        m = solve(small_problem, method, delta=30.0)
        m.validate(small_problem)
        assert m.stats is not None

    def test_stats_method_label(self, small_problem):
        assert solve(small_problem, "ida").stats.method == "ida"
        assert solve(small_problem, "san").stats.method == "san"
        assert solve(small_problem, "cae").stats.method == "cae"

    def test_figure1_style_assignment(self, small_problem):
        """The Figure 1 narrative: the Voronoi assignment violates
        capacities; CCA respects them while minimizing cost."""
        m = solve(small_problem, "ida")
        loads = {i: 0 for i in range(3)}
        for q, _, _ in m.pairs:
            loads[q] += 1
        assert loads[0] <= 3 and loads[1] <= 5 and loads[2] <= 3
        assert m.size == small_problem.gamma == 11
