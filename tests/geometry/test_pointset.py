"""Unit tests for the columnar PointSet and its batch distance kernels.

The batch kernels are specified as **bit-identical** to the scalar
functions in :mod:`repro.geometry.distance` — exact ``==`` comparisons
throughout, never ``approx``.
"""

import numpy as np
import pytest

from repro.geometry.distance import (
    dist,
    maxdist_point_mbr,
    mindist_mbr_mbr,
    mindist_point_mbr,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.pointset import (
    PointSet,
    batch_dists,
    cross_dists,
    maxdist_point_to_boxes,
    mindist_box_to_boxes,
    mindist_box_to_points,
    mindist_point_to_boxes,
)


def random_points(n, d=2, seed=0, span=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(i, rng.random(d) * span) for i in range(n)]


class TestPointSet:
    def test_from_points_round_trip(self):
        points = random_points(40)
        ps = PointSet.from_points(points)
        assert len(ps) == 40
        assert ps.dim == 2
        for row, p in enumerate(points):
            view = ps.point(row)
            assert view == p
        assert ps.to_points() == points

    def test_native_array_construction(self):
        coords = np.array([[1.0, 2.0], [3.0, 4.0]])
        ps = PointSet(coords, ids=[7, 9])
        assert ps.point(0).pid == 7
        assert ps.point(1).coords == (3.0, 4.0)

    def test_flat_input_is_one_dimensional(self):
        ps = PointSet([1.0, 2.0, 3.0])
        assert ps.dim == 1
        assert ps.point(2).coords == (3.0,)

    def test_default_ids_are_positional(self):
        ps = PointSet(np.zeros((5, 2)))
        assert ps.ids.tolist() == [0, 1, 2, 3, 4]

    def test_id_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PointSet(np.zeros((3, 2)), ids=[0, 1])

    def test_empty_set(self):
        ps = PointSet.from_points([])
        assert len(ps) == 0
        with pytest.raises(ValueError):
            ps.bounds()

    def test_take_preserves_ids(self):
        ps = PointSet.from_points(random_points(10))
        sub = ps.take([3, 7])
        assert sub.ids.tolist() == [3, 7]
        assert sub.point(1) == ps.point(7)

    def test_mbr_matches_object_path(self):
        points = random_points(25, seed=3)
        ps = PointSet.from_points(points)
        assert ps.mbr() == MBR.from_points(points)

    def test_dists_to_bit_identical(self):
        points = random_points(60, seed=1)
        ps = PointSet.from_points(points)
        q = Point(99, (123.456, 789.012))
        batched = ps.dists_to(q.coords)
        for row, p in enumerate(points):
            assert batched[row] == dist(p, q)


class TestBatchKernels:
    def setup_method(self):
        rng = np.random.default_rng(11)
        self.a = rng.random((13, 2)) * 500
        self.b = rng.random((29, 2)) * 500
        self.lo = rng.random((29, 2)) * 400
        self.hi = self.lo + rng.random((29, 2)) * 100

    def test_batch_dists(self):
        q = self.b[0]
        out = batch_dists(self.a, q)
        for row in range(len(self.a)):
            assert out[row] == dist(Point(0, self.a[row]), Point(1, q))

    def test_cross_dists(self):
        out = cross_dists(self.a, self.b)
        assert out.shape == (13, 29)
        for i in (0, 5, 12):
            for j in (0, 17, 28):
                assert out[i, j] == dist(Point(0, self.a[i]), Point(1, self.b[j]))

    def test_mindist_point_to_boxes(self):
        q = self.a[0]
        out = mindist_point_to_boxes(q, self.lo, self.hi)
        for row in range(len(self.lo)):
            box = MBR(self.lo[row], self.hi[row])
            assert out[row] == mindist_point_mbr(Point(0, q), box)

    def test_maxdist_point_to_boxes(self):
        q = self.a[0]
        out = maxdist_point_to_boxes(q, self.lo, self.hi)
        for row in range(len(self.lo)):
            box = MBR(self.lo[row], self.hi[row])
            assert out[row] == maxdist_point_mbr(Point(0, q), box)

    def test_mindist_box_to_boxes(self):
        qlo, qhi = self.a.min(axis=0), self.a.max(axis=0)
        qbox = MBR(qlo, qhi)
        out = mindist_box_to_boxes(qlo, qhi, self.lo, self.hi)
        for row in range(len(self.lo)):
            box = MBR(self.lo[row], self.hi[row])
            assert out[row] == mindist_mbr_mbr(qbox, box)

    def test_mindist_box_to_points_degenerate_box(self):
        qlo, qhi = self.a.min(axis=0), self.a.max(axis=0)
        qbox = MBR(qlo, qhi)
        out = mindist_box_to_points(qlo, qhi, self.b)
        for row in range(len(self.b)):
            p = Point(0, self.b[row])
            assert out[row] == mindist_mbr_mbr(qbox, MBR.from_point(p))

    def test_inside_box_is_zero(self):
        lo = np.array([[0.0, 0.0]])
        hi = np.array([[10.0, 10.0]])
        assert mindist_point_to_boxes(np.array([5.0, 5.0]), lo, hi)[0] == 0.0
