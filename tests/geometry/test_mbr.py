"""Unit tests for repro.geometry.mbr."""

import pytest

from repro.geometry.mbr import MBR
from repro.geometry.point import Point


class TestConstruction:
    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            MBR((1.0, 0.0), (0.0, 1.0))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MBR((0.0,), (1.0, 1.0))

    def test_from_point_is_degenerate(self):
        m = MBR.from_point(Point(0, (3.0, 4.0)))
        assert m.lo == m.hi == (3.0, 4.0)
        assert m.area == 0.0
        assert m.diagonal == 0.0

    def test_from_points(self):
        m = MBR.from_points(
            [Point(0, (0.0, 5.0)), Point(1, (2.0, 1.0)), Point(2, (1.0, 9.0))]
        )
        assert m.lo == (0.0, 1.0)
        assert m.hi == (2.0, 9.0)

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            MBR.from_points([])

    def test_union_all(self):
        m = MBR.union_all([MBR((0, 0), (1, 1)), MBR((2, -1), (3, 0.5))])
        assert m.lo == (0.0, -1.0)
        assert m.hi == (3.0, 1.0)


class TestDerived:
    def test_diagonal(self):
        m = MBR((0.0, 0.0), (3.0, 4.0))
        assert m.diagonal == pytest.approx(5.0)

    def test_center_area_margin(self):
        m = MBR((0.0, 0.0), (4.0, 2.0))
        assert m.center == (2.0, 1.0)
        assert m.area == 8.0
        assert m.margin == 6.0

    def test_longest_axis(self):
        assert MBR((0, 0), (4, 2)).longest_axis() == 0
        assert MBR((0, 0), (2, 4)).longest_axis() == 1

    def test_split_halves(self):
        lo, hi = MBR((0.0, 0.0), (4.0, 2.0)).split_halves(0)
        assert lo.hi[0] == 2.0 and hi.lo[0] == 2.0
        assert lo.lo == (0.0, 0.0) and hi.hi == (4.0, 2.0)


class TestPredicates:
    def test_contains_point_inclusive(self):
        m = MBR((0.0, 0.0), (1.0, 1.0))
        assert m.contains_point(Point(0, (0.0, 0.0)))
        assert m.contains_point(Point(0, (1.0, 1.0)))
        assert not m.contains_point(Point(0, (1.0001, 0.5)))

    def test_contains_mbr(self):
        outer = MBR((0, 0), (10, 10))
        assert outer.contains_mbr(MBR((1, 1), (2, 2)))
        assert not MBR((1, 1), (2, 2)).contains_mbr(outer)

    def test_intersects(self):
        a = MBR((0, 0), (2, 2))
        assert a.intersects(MBR((1, 1), (3, 3)))
        assert a.intersects(MBR((2, 2), (3, 3)))  # edge touch counts
        assert not a.intersects(MBR((2.1, 2.1), (3, 3)))

    def test_union_and_enlargement(self):
        a = MBR((0, 0), (1, 1))
        b = MBR((2, 2), (3, 3))
        u = a.union(b)
        assert u.lo == (0.0, 0.0) and u.hi == (3.0, 3.0)
        assert a.enlargement(b) == pytest.approx(9.0 - 1.0)
        assert a.enlargement(MBR((0.2, 0.2), (0.8, 0.8))) == 0.0

    def test_equality_and_hash(self):
        assert MBR((0, 0), (1, 1)) == MBR((0, 0), (1, 1))
        assert len({MBR((0, 0), (1, 1)), MBR((0, 0), (1, 1))}) == 1
