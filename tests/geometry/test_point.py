"""Unit tests for repro.geometry.point."""

import pytest

from repro.geometry.point import Point


class TestConstruction:
    def test_basic(self):
        p = Point(3, (1.0, 2.0))
        assert p.pid == 3
        assert p.x == 1.0
        assert p.y == 2.0
        assert p.dim == 2

    def test_coords_coerced_to_float(self):
        p = Point(0, (1, 2))
        assert isinstance(p.coords[0], float)

    def test_empty_coords_rejected(self):
        with pytest.raises(ValueError):
            Point(0, ())

    def test_higher_dimensions_supported(self):
        p = Point(0, (1.0, 2.0, 3.0))
        assert p.dim == 3
        assert p[2] == 3.0


class TestBehaviour:
    def test_distance_to(self):
        a = Point(0, (0.0, 0.0))
        b = Point(1, (3.0, 4.0))
        assert a.distance_to(b) == pytest.approx(5.0)
        assert b.distance_to(a) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        a = Point(0, (2.5, -1.5))
        assert a.distance_to(a) == 0.0

    def test_iteration_and_indexing(self):
        p = Point(0, (7.0, 9.0))
        assert list(p) == [7.0, 9.0]
        assert len(p) == 2
        assert p[0] == 7.0

    def test_equality_requires_id_and_coords(self):
        assert Point(1, (1.0, 2.0)) == Point(1, (1.0, 2.0))
        assert Point(1, (1.0, 2.0)) != Point(2, (1.0, 2.0))
        assert Point(1, (1.0, 2.0)) != Point(1, (1.0, 2.5))

    def test_hashable(self):
        s = {Point(1, (1.0, 2.0)), Point(1, (1.0, 2.0)), Point(2, (0.0, 0.0))}
        assert len(s) == 2

    def test_not_equal_to_other_types(self):
        assert Point(1, (1.0, 2.0)) != (1.0, 2.0)

    def test_repr_mentions_id(self):
        assert "id=5" in repr(Point(5, (0.0, 0.0)))
