"""Unit tests for repro.geometry.distance."""

import math

import numpy as np
import pytest

from repro.geometry.distance import (
    dist,
    dist_squared,
    maxdist_point_mbr,
    mindist_mbr_mbr,
    mindist_point_mbr,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Point


class TestPointPoint:
    def test_dist_matches_squared(self):
        a, b = Point(0, (1.0, 2.0)), Point(1, (4.0, 6.0))
        assert dist(a, b) == pytest.approx(math.sqrt(dist_squared(a, b)))
        assert dist(a, b) == pytest.approx(5.0)

    def test_symmetry_random(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = Point(0, rng.random(2) * 100)
            b = Point(1, rng.random(2) * 100)
            assert dist(a, b) == pytest.approx(dist(b, a))


class TestPointMBR:
    def setup_method(self):
        self.mbr = MBR((0.0, 0.0), (10.0, 10.0))

    def test_inside_is_zero(self):
        assert mindist_point_mbr(Point(0, (5.0, 5.0)), self.mbr) == 0.0

    def test_outside_axis(self):
        assert mindist_point_mbr(Point(0, (15.0, 5.0)), self.mbr) == 5.0

    def test_outside_corner(self):
        d = mindist_point_mbr(Point(0, (13.0, 14.0)), self.mbr)
        assert d == pytest.approx(5.0)

    def test_maxdist_corner(self):
        d = maxdist_point_mbr(Point(0, (5.0, 5.0)), self.mbr)
        assert d == pytest.approx(math.hypot(5.0, 5.0))

    def test_mindist_lower_bounds_all_contained_points(self):
        rng = np.random.default_rng(1)
        q = Point(99, (25.0, -7.0))
        for _ in range(50):
            inside = Point(0, rng.random(2) * 10)
            assert mindist_point_mbr(q, self.mbr) <= dist(q, inside) + 1e-12

    def test_maxdist_upper_bounds_all_contained_points(self):
        rng = np.random.default_rng(2)
        q = Point(99, (25.0, -7.0))
        for _ in range(50):
            inside = Point(0, rng.random(2) * 10)
            assert maxdist_point_mbr(q, self.mbr) >= dist(q, inside) - 1e-12


class TestMBRMBR:
    def test_overlapping_is_zero(self):
        assert mindist_mbr_mbr(MBR((0, 0), (2, 2)), MBR((1, 1), (3, 3))) == 0.0

    def test_separated_on_one_axis(self):
        assert mindist_mbr_mbr(
            MBR((0, 0), (1, 1)), MBR((4, 0), (5, 1))
        ) == pytest.approx(3.0)

    def test_diagonal_separation(self):
        d = mindist_mbr_mbr(MBR((0, 0), (1, 1)), MBR((4, 5), (6, 7)))
        assert d == pytest.approx(5.0)

    def test_lower_bounds_point_pairs(self):
        rng = np.random.default_rng(3)
        a = MBR((0.0, 0.0), (2.0, 3.0))
        b = MBR((7.0, 1.0), (9.0, 4.0))
        bound = mindist_mbr_mbr(a, b)
        for _ in range(50):
            pa = Point(0, (rng.uniform(0, 2), rng.uniform(0, 3)))
            pb = Point(1, (rng.uniform(7, 9), rng.uniform(1, 4)))
            assert bound <= dist(pa, pb) + 1e-12
