"""Tests for the shared, solver-agnostic partitioning primitives."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.partitioning import (
    balanced_bundles,
    capacity_weighted_centroid,
    hilbert_greedy_groups,
    hilbert_sorted,
)


def random_points(n, seed=0, world=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(i, rng.random(2) * world) for i in range(n)]


class TestHilbertSorted:
    def test_is_a_permutation(self):
        pts = random_points(50, seed=4)
        ordered = hilbert_sorted(pts, (0, 0), (1000, 1000))
        assert sorted(p.pid for p in ordered) == list(range(50))

    def test_deterministic(self):
        pts = random_points(50, seed=4)
        a = hilbert_sorted(pts, (0, 0), (1000, 1000))
        b = hilbert_sorted(list(reversed(pts)), (0, 0), (1000, 1000))
        assert [p.pid for p in a] == [p.pid for p in b]


class TestSharedHilbertGreedy:
    def test_same_function_as_approx_module(self):
        # core/approx/partition re-exports the shared implementation —
        # SA and the shard planner must partition identically.
        from repro.core.approx import partition

        assert partition.hilbert_greedy_groups is hilbert_greedy_groups

    def test_groups_respect_delta(self):
        pts = random_points(120, seed=5)
        groups = hilbert_greedy_groups(pts, 80.0, (0, 0), (1000, 1000))
        for g in groups:
            assert MBR.from_points(g).diagonal <= 80.0 + 1e-9


class TestBalancedBundles:
    def test_contiguous_cover(self):
        ranges = balanced_bundles([1, 2, 3, 4, 5], 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 5
        for (_, end), (start, _) in zip(ranges, ranges[1:], strict=False):
            assert end == start

    def test_bundle_count_capped_by_items(self):
        assert len(balanced_bundles([1, 1], 5)) == 2
        assert balanced_bundles([], 3) == []

    def test_every_bundle_nonempty(self):
        for n_items in range(1, 12):
            for k in range(1, 8):
                ranges = balanced_bundles([1.0] * n_items, k)
                assert len(ranges) == min(k, n_items)
                assert all(end > start for start, end in ranges)

    def test_balances_weight(self):
        rng = np.random.default_rng(6)
        weights = rng.integers(1, 10, 40).tolist()
        ranges = balanced_bundles(weights, 4)
        sums = [sum(weights[s:e]) for s, e in ranges]
        # Greedy contiguous balance: heaviest bundle within one max item
        # of the ideal quarter.
        assert max(sums) <= sum(weights) / 4 + max(weights)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            balanced_bundles([1], 0)


class TestCentroid:
    def test_capacity_weighted(self):
        pts = [Point(0, (0.0, 0.0)), Point(1, (10.0, 0.0))]
        assert capacity_weighted_centroid(pts, [1, 3]) == (7.5, 0.0)

    def test_zero_capacity_falls_back_to_mean(self):
        pts = [Point(0, (0.0, 0.0)), Point(1, (10.0, 4.0))]
        assert capacity_weighted_centroid(pts, [0, 0]) == (5.0, 2.0)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            capacity_weighted_centroid([], [])
