"""Unit tests for scripts/bench_trajectory.py (the merged perf artifact).

The script is CI tooling, but its schema check is the guard that keeps
the committed BENCH_*.json headline metrics diffable across PRs — so the
check itself gets pinned here.
"""

import importlib.util
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SPEC = importlib.util.spec_from_file_location(
    "bench_trajectory",
    os.path.join(REPO_ROOT, "scripts", "bench_trajectory.py"),
)
bench_trajectory = importlib.util.module_from_spec(_SPEC)
sys.modules["bench_trajectory"] = bench_trajectory
_SPEC.loader.exec_module(bench_trajectory)


def _committed_args(**overrides):
    paths = {
        "kernel": os.path.join(REPO_ROOT, "BENCH_kernel.json"),
        "index": os.path.join(REPO_ROOT, "BENCH_index.json"),
        "shard": os.path.join(REPO_ROOT, "BENCH_shard.json"),
        "serve": os.path.join(REPO_ROOT, "BENCH_serve.json"),
    }
    paths.update(overrides)
    args = []
    for name, path in paths.items():
        args.extend([f"--{name}", str(path)])
    return args


def test_committed_reports_satisfy_schema_and_merge(tmp_path):
    out = tmp_path / "BENCH_trajectory.json"
    rc = bench_trajectory.main(_committed_args() + ["--out", str(out)])
    assert rc == 0
    trajectory = json.loads(out.read_text())
    assert trajectory["schema_version"] == bench_trajectory.SCHEMA_VERSION
    assert set(trajectory["benches"]) == {
        "kernel",
        "index",
        "shard",
        "serve",
    }
    kernel = trajectory["benches"]["kernel"]["metrics"]
    # The fused-pipeline floor the ISSUE-4 tentpole establishes: the
    # committed columnar stack wins end to end at every sweep point.
    assert kernel["end_to_end_geomean"] >= 1.0
    assert kernel["end_to_end_speedup_min"] >= 1.0
    assert all(v >= 1.0 for v in kernel["end_to_end_per_point"].values())
    # The numba block is always folded — either measured metrics or a
    # recorded skip reason, so the trajectory shows *why* the compiled
    # column is absent on a numba-free runner.
    numba = trajectory["benches"]["kernel"]["numba"]
    if numba["status"] == "ok":
        assert numba["vs_array_geomean"] > 0.0
    else:
        assert numba["status"] == "skipped"
        assert numba["reason"]
    shard = trajectory["benches"]["shard"]
    assert shard["gates"]["provider_disjoint_exactness"] == "pass"
    assert shard["cpu_count"] >= 1
    assert shard["metrics"]["scaling_efficiency_geomean"] > 0.0
    serve = trajectory["benches"]["serve"]
    # The serving layer's acceptance contract: the committed artifact
    # was produced with the bit-identity gate on and passing.
    assert serve["gates"]["bit_identity"] == "pass"
    metrics = serve["metrics"]
    assert metrics["latency_p99_ms"] >= metrics["latency_p50_ms"] > 0.0
    assert metrics["events_per_sec"] > 0.0
    assert set(metrics["per_profile"]) >= {"steady"}
    for row in metrics["per_profile"].values():
        assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0.0
    # The degraded-mode point (ISSUE-9): serving under a fixed session
    # crash rate stays bit-identical and records its recovery cost.
    assert serve["gates"]["faulted_identity"] == "pass"
    assert metrics["degraded_latency_p99_ms"] > 0.0
    faulted = serve["faulted"]
    assert faulted["quarantines"] >= 1
    assert faulted["session_kills"] >= 1
    assert faulted["recovery_overhead"] >= 0.0
    assert faulted["p99_inflation"] > 0.0


def test_schema_violations_fail(tmp_path):
    broken = tmp_path / "BENCH_kernel.json"
    report = json.load(open(os.path.join(REPO_ROOT, "BENCH_kernel.json")))
    del report["end_to_end_geomean"]
    report["kernel_speedup_geomean"] = True  # bool is not a metric
    broken.write_text(json.dumps(report))
    rc = bench_trajectory.main(
        _committed_args(kernel=broken) + ["--out", str(tmp_path / "out.json")]
    )
    assert rc == 1


def test_serve_schema_violations_fail(tmp_path):
    broken = tmp_path / "BENCH_serve.json"
    report = json.load(open(os.path.join(REPO_ROOT, "BENCH_serve.json")))
    del report["latency_p99_ms"]
    report["events_per_sec"] = "fast"  # not a number
    broken.write_text(json.dumps(report))
    rc = bench_trajectory.main(
        _committed_args(serve=broken) + ["--out", str(tmp_path / "out.json")]
    )
    assert rc == 1


def test_missing_inputs_fail_unless_allowed(tmp_path):
    rc = bench_trajectory.main(
        _committed_args(kernel=tmp_path / "absent.json")
        + ["--out", str(tmp_path / "out.json")]
    )
    assert rc == 1
    rc = bench_trajectory.main(
        _committed_args(kernel=tmp_path / "absent.json")
        + ["--out", str(tmp_path / "out.json"), "--allow-missing"]
    )
    assert rc == 0
