"""The two oracles must agree with each other (and be exact)."""

import numpy as np
import pytest

from repro.flow.reference import oracle_cost, oracle_lsa, oracle_networkx


def euclid(pts_q, pts_p):
    def d(i, j):
        return float(np.hypot(*(pts_q[i] - pts_p[j])))

    return d


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_lsa_equals_networkx(self, seed):
        rng = np.random.default_rng(seed)
        nq = int(rng.integers(2, 5))
        np_ = int(rng.integers(3, 12))
        caps = rng.integers(1, 4, nq).tolist()
        d = euclid(rng.random((nq, 2)) * 100, rng.random((np_, 2)) * 100)
        cost_lsa = oracle_cost(oracle_lsa(caps, [1] * np_, d))
        cost_nx = oracle_cost(oracle_networkx(caps, [1] * np_, d))
        assert cost_lsa == pytest.approx(cost_nx, abs=1e-3)

    def test_weighted_customers_agree(self):
        rng = np.random.default_rng(11)
        caps = [4, 2]
        weights = [2, 3, 1]
        d = euclid(rng.random((2, 2)) * 50, rng.random((3, 2)) * 50)
        cost_lsa = oracle_cost(oracle_lsa(caps, weights, d))
        cost_nx = oracle_cost(oracle_networkx(caps, weights, d))
        assert cost_lsa == pytest.approx(cost_nx, abs=1e-3)


class TestBehaviour:
    def test_known_tiny_instance(self):
        # One provider (k=1), two customers at distances 1 and 9.
        d = {(0, 0): 1.0, (0, 1): 9.0}
        pairs = oracle_lsa([1], [1, 1], lambda i, j: d[(i, j)])
        assert pairs == [(0, 0, 1.0)]

    def test_matching_size_is_gamma(self):
        def d(i, j):
            return 1.0

        assert len(oracle_lsa([2, 2], [1] * 10, d)) == 4
        assert len(oracle_lsa([9], [1] * 3, d)) == 3

    def test_empty_sides(self):
        assert oracle_lsa([], [1, 1], lambda i, j: 1.0) == []
        assert oracle_lsa([0], [1], lambda i, j: 1.0) == []

    def test_size_guard(self):
        with pytest.raises(ValueError):
            oracle_lsa([10**5], [1] * (10**3), lambda i, j: 1.0)

    def test_oracle_cost_sums(self):
        assert oracle_cost([(0, 0, 1.5), (1, 2, 2.5)]) == pytest.approx(4.0)
