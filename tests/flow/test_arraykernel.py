"""Unit tests for the array flow kernel and the backend seam."""

import pytest

from repro.flow import (
    BACKENDS,
    DEFAULT_BACKEND,
    S_NODE,
    T_NODE,
    ArrayDijkstraState,
    ArrayFlowNetwork,
    CCAFlowNetwork,
    DijkstraState,
    FlowBackend,
    NegativeReducedCostError,
    get_backend,
    sspa_solve,
)


def simple_net():
    """2 providers (k=1, k=2), 2 customers (w=1 each)."""
    return ArrayFlowNetwork([1, 2], [1, 1])


def force_tau(net, *, q=None, p=None):
    """Write potentials directly for a test scenario.

    The array backend mirrors its potential vectors into Python lists
    and documents direct array writes as unsupported — tests that need a
    hand-crafted potential state must keep the mirror in step.
    """
    for i, v in (q or {}).items():
        net.q_tau[i] = v
        if hasattr(net, "_q_tau_py"):
            net._q_tau_py[i] = float(v)
    for j, v in (p or {}).items():
        net.p_tau[j] = v
        if hasattr(net, "_p_tau_py"):
            net._p_tau_py[j] = float(v)


class TestBackendRegistry:
    def test_default_is_dict(self):
        assert DEFAULT_BACKEND == "dict"
        assert get_backend().name == "dict"

    def test_named_lookup(self):
        assert get_backend("dict").network_cls is CCAFlowNetwork
        assert get_backend("array").network_cls is ArrayFlowNetwork
        assert get_backend("array").dijkstra_cls is ArrayDijkstraState

    def test_instance_passthrough(self):
        backend = BACKENDS["array"]
        assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown flow backend"):
            get_backend("cuda")
        with pytest.raises(ValueError):
            get_backend(42)

    def test_factories(self):
        backend = get_backend("array")
        net = backend.network([2], [1, 1])
        assert isinstance(net, ArrayFlowNetwork)
        state = backend.dijkstra(net)
        assert isinstance(state, ArrayDijkstraState)
        assert isinstance(state, DijkstraState)  # drop-in subtype

    def test_repr_is_short(self):
        assert repr(get_backend("array")) == "FlowBackend('array')"
        assert isinstance(get_backend("dict"), FlowBackend)


class TestNegativeReducedCostError:
    def test_is_assertion_error_subclass(self):
        assert issubclass(NegativeReducedCostError, AssertionError)

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_raised_by_both_backends(self, cls):
        net = cls([1], [1])
        force_tau(net, q={0: 100.0})
        with pytest.raises(NegativeReducedCostError):
            net.reduced_cost_qp(0, 0, 1.0)


class TestArrayNetworkBasics:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            ArrayFlowNetwork([-1], [1])
        with pytest.raises(ValueError):
            ArrayFlowNetwork([1], [-1])

    def test_gamma_and_addressing(self):
        net = simple_net()
        assert net.gamma == 2
        assert net.customer_node(0) == 2
        assert net.is_provider(1) and net.is_customer(2)

    def test_add_edge_semantics_match_reference(self):
        net = simple_net()
        assert net.add_edge(0, 0, 5.0)
        assert not net.add_edge(0, 0, 5.0)  # duplicate
        assert net.edge_count == 1
        assert net.has_edge(0, 0)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)
        zero = ArrayFlowNetwork([0, 1], [1])
        assert not zero.add_edge(0, 0, 5.0)  # zero-capacity provider
        assert zero.add_edge(1, 0, 5.0)

    def test_apply_path_and_extraction(self):
        net = simple_net()
        net.add_edge(0, 0, 5.0)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        assert net.q_used[0] == 1 and net.p_used[0] == 1
        assert net.provider_full(0) and net.customer_full(0)
        assert net.edge_flow(0, 0) == 1
        assert net.matching_pairs() == [(0, 0, 5.0)]
        assert net.matching_cost() == pytest.approx(5.0)

    def test_reassignment_path(self):
        net = simple_net()
        net.add_edge(0, 0, 5.0)
        net.add_edge(1, 0, 2.0)
        net.add_edge(0, 1, 7.0)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        net.apply_path(
            [S_NODE, 1, net.customer_node(0), 0, net.customer_node(1), T_NODE]
        )
        assert sorted(net.matching_pairs()) == [(0, 1, 7.0), (1, 0, 2.0)]
        assert list(net.q_used) == [1, 1]

    def test_multi_unit_edge_partial_flow(self):
        net = ArrayFlowNetwork([3], [2])
        net.add_edge(0, 0, 4.0)
        cnode = net.customer_node(0)
        net.apply_path([S_NODE, 0, cnode, T_NODE])
        assert net.edge_flow(0, 0) == 1
        assert net.edge_residual(0, 0) == 1
        net.apply_path([S_NODE, 0, cnode, T_NODE])
        assert net.edge_flow(0, 0) == 2
        assert net.matching_cost() == pytest.approx(8.0)
        assert len(net.matching_pairs()) == 2

    def test_edge_triples_in_insertion_order(self):
        net = simple_net()
        net.add_edge(1, 1, 3.0)
        net.add_edge(0, 0, 5.0)
        assert net.edge_triples() == [(1, 1, 3.0), (0, 0, 5.0)]


class TestSaturationCounters:
    """The any_provider_full / tau_max satellites, on both backends."""

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_saturated_counter_tracks_brute_force(self, cls):
        net = cls([1, 2], [1, 1, 1])
        assert not net.any_provider_full()
        net.add_edge(0, 0, 1.0)
        net.add_edge(1, 1, 1.0)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        assert net.any_provider_full()
        assert net.saturated_providers == 1
        net.apply_path([S_NODE, 1, net.customer_node(1), T_NODE])
        assert net.saturated_providers == 1  # q1 has spare capacity
        net.add_edge(1, 2, 1.0)
        net.apply_path([S_NODE, 1, net.customer_node(2), T_NODE])
        assert net.saturated_providers == 2

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_zero_capacity_provider_counts_as_full(self, cls):
        net = cls([0, 1], [1])
        assert net.any_provider_full()
        assert net.saturated_providers == 1

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_tau_max_tracked_through_augment(self, cls):
        net = cls([1, 2], [1, 1])
        assert net.tau_max == 0.0
        net.add_edge(0, 0, 5.0)
        settled = {S_NODE: 0.0, 0: 0.0, 1: 0.0, net.customer_node(0): 5.0}
        net.augment([S_NODE, 0, net.customer_node(0), T_NODE], 5.0, settled)
        assert net.tau_max == pytest.approx(5.0)
        assert net.tau_s == pytest.approx(5.0)

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_tau_max_tracked_through_advance(self, cls):
        net = cls([1, 1], [1])
        net.advance_source_and_providers(3.5)
        assert net.tau_max == pytest.approx(3.5)
        assert net.tau_s == pytest.approx(3.5)
        assert float(net.q_tau[0]) == pytest.approx(3.5)


class TestSessionNodeOps:
    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_add_customer_node(self, cls):
        net = cls([2], [1])
        j = net.add_customer_node(3)
        assert j == 1
        assert net.np == 2
        assert net.gamma == 2  # min(1 + 3, 2)
        assert net.add_edge(0, j, 1.5)
        assert net.edge_residual(0, j) == 2  # min(k=2, w=3)

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_remove_customer_node_releases_flow(self, cls):
        net = cls([1, 1], [1, 1])
        net.add_edge(0, 0, 1.0)
        net.add_edge(1, 1, 2.0)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        assert net.matched == 1 and net.any_provider_full()
        released = net.remove_customer_node(0)
        assert released == 1
        assert net.matched == 0
        assert not net.provider_full(0)
        assert not net.any_provider_full() or net.provider_full(1) is False
        assert not net.has_edge(0, 0)
        assert net.edge_count == 1  # q1-p1 survives
        assert net.customer_full(0)  # weight 0 => full forever

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_set_provider_capacity_lifts_edges(self, cls):
        net = cls([1], [3])
        net.add_edge(0, 0, 1.0)
        assert net.edge_residual(0, 0) == 1  # min(1, 3)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        assert net.provider_full(0)
        net.set_provider_capacity(0, 5)
        assert not net.provider_full(0)
        assert net.edge_residual(0, 0) == 2  # min(5, 3) - 1 unit of flow

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_set_provider_capacity_below_usage_rejected(self, cls):
        net = cls([2], [1, 1])
        net.add_edge(0, 0, 1.0)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        with pytest.raises(ValueError, match="cold re-solve"):
            net.set_provider_capacity(0, 0)

    @pytest.mark.parametrize("cls", [CCAFlowNetwork, ArrayFlowNetwork])
    def test_admit_customer_conflict_detection(self, cls):
        net = cls([1], [1])
        net.add_edge(0, 0, 2.0)
        net.augment(
            [S_NODE, 0, net.customer_node(0), T_NODE],
            2.0,
            {S_NODE: 0.0, 0: 0.0, net.customer_node(0): 2.0},
        )
        # Provider 0 now serves p0 at distance 2 (τ_q0 pinned ≥ 2): an
        # arrival at distance 1 creates a negative cycle -> refuse.
        assert net.admit_customer(1, [1.0]) is None
        # A farther arrival is admissible and lowers no potential.
        j = net.admit_customer(1, [10.0])
        assert j == 1 and net.np == 2


class TestArrayDijkstra:
    def test_matches_reference_on_tiny_net(self):
        def build(cls):
            net = cls([1, 2], [1, 1])
            net.add_edge(0, 0, 5.0)
            net.add_edge(1, 0, 2.0)
            net.add_edge(0, 1, 7.0)
            net.add_edge(1, 1, 4.0)
            return net

        ref_net, arr_net = build(CCAFlowNetwork), build(ArrayFlowNetwork)
        ref, arr = DijkstraState(ref_net), ArrayDijkstraState(arr_net)
        assert ref.run() and arr.run()
        assert arr.sp_cost == ref.sp_cost
        assert arr.path_nodes() == [int(n) for n in ref.path_nodes()]
        assert dict(arr.settled_items()) == dict(ref.settled_items())
        assert arr.pops == ref.pops

    def test_sspa_solve_backend_equivalence(self):
        import numpy as np

        rng = np.random.default_rng(3)
        q = rng.random((3, 2)) * 10
        p = rng.random((9, 2)) * 10

        def dfn(i, j):
            return float(np.hypot(*(q[i] - p[j])))

        pairs_d, net_d = sspa_solve([2, 2, 2], [1] * 9, dfn)
        pairs_a, net_a = sspa_solve([2, 2, 2], [1] * 9, dfn, backend="array")
        assert net_a.matching_cost() == net_d.matching_cost()
        assert sorted(pairs_a) == sorted(pairs_d)

    def test_resumption_after_improve(self):
        """PUA-style resume: improve() un-settles and re-relaxes."""
        net = ArrayFlowNetwork([1, 1], [1])
        net.add_edge(0, 0, 5.0)
        state = ArrayDijkstraState(net)
        assert state.run()
        first = float(state.sp_cost)
        net.add_edge(1, 0, 1.0)
        # Offer the cheaper path through q1 (its α is 0 pre-potentials).
        assert state.improve(net.customer_node(0), 1.0, 1)
        assert state.run()
        assert state.sp_cost == pytest.approx(1.0)
        assert state.sp_cost < first
