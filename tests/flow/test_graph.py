"""Unit tests for the residual CCA flow network."""

import pytest

from repro.flow.graph import S_NODE, T_NODE, CCAFlowNetwork


def simple_net():
    """2 providers (k=1, k=2), 2 customers (w=1 each)."""
    return CCAFlowNetwork([1, 2], [1, 1])


class TestConstruction:
    def test_gamma(self):
        assert simple_net().gamma == 2
        assert CCAFlowNetwork([5, 5], [1] * 3).gamma == 3
        assert CCAFlowNetwork([1], [1] * 10).gamma == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            CCAFlowNetwork([-1], [1])
        with pytest.raises(ValueError):
            CCAFlowNetwork([1], [-1])

    def test_node_addressing(self):
        net = simple_net()
        assert net.provider_node(1) == 1
        assert net.customer_node(0) == 2
        assert net.is_provider(0) and net.is_provider(1)
        assert not net.is_provider(2)
        assert net.is_customer(2)
        assert net.customer_index(3) == 1


class TestEdges:
    def test_add_edge(self):
        net = simple_net()
        assert net.add_edge(0, 0, 5.0)
        assert net.has_edge(0, 0)
        assert net.edge_count == 1
        assert not net.add_edge(0, 0, 5.0)  # duplicate
        assert net.edge_count == 1

    def test_zero_capacity_edge_rejected(self):
        net = CCAFlowNetwork([0, 1], [1])
        assert not net.add_edge(0, 0, 5.0)  # provider capacity 0
        assert net.add_edge(1, 0, 5.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            simple_net().add_edge(0, 0, -1.0)

    def test_edge_capacity_is_min_of_sides(self):
        net = CCAFlowNetwork([3], [5])
        net.add_edge(0, 0, 1.0)
        assert net.edge_residual(0, 0) == 3  # min(3, 5)


class TestAugmentation:
    def test_direct_path_flips_edge(self):
        net = simple_net()
        net.add_edge(0, 0, 5.0)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        assert net.q_used[0] == 1
        assert net.p_used[0] == 1
        assert net.provider_full(0)
        assert net.customer_full(0)
        assert net.edge_flow(0, 0) == 1
        assert net.matching_pairs() == [(0, 0, 5.0)]
        assert net.matching_cost() == pytest.approx(5.0)

    def test_reassignment_path(self):
        # Path s -> q2 -> p0 -> q1 -> p1 -> t  reassigns p0 from q1 to q2.
        net = simple_net()
        net.add_edge(0, 0, 5.0)
        net.add_edge(1, 0, 2.0)
        net.add_edge(0, 1, 7.0)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        net.apply_path(
            [S_NODE, 1, net.customer_node(0), 0, net.customer_node(1), T_NODE]
        )
        pairs = sorted(net.matching_pairs())
        assert pairs == [(0, 1, 7.0), (1, 0, 2.0)]
        assert net.q_used == [1, 1]

    def test_over_capacity_detected(self):
        net = CCAFlowNetwork([1], [1, 1])
        net.add_edge(0, 0, 1.0)
        net.add_edge(0, 1, 1.0)
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])
        with pytest.raises(RuntimeError):
            net.apply_path([S_NODE, 0, net.customer_node(1), T_NODE])

    def test_path_must_span_s_to_t(self):
        net = simple_net()
        net.add_edge(0, 0, 1.0)
        with pytest.raises(ValueError):
            net.apply_path([0, net.customer_node(0), T_NODE])

    def test_multi_unit_edge_partial_flow(self):
        net = CCAFlowNetwork([3], [2])
        net.add_edge(0, 0, 4.0)
        cnode = net.customer_node(0)
        net.apply_path([S_NODE, 0, cnode, T_NODE])
        # Partially used: both residual directions exist.
        assert net.edge_flow(0, 0) == 1
        assert net.edge_residual(0, 0) == 1
        assert 0 in net.forward[0]
        assert 0 in net.backward[0]
        net.apply_path([S_NODE, 0, cnode, T_NODE])
        assert net.edge_flow(0, 0) == 2
        assert 0 not in net.forward[0]  # saturated
        assert net.matching_cost() == pytest.approx(8.0)
        assert len(net.matching_pairs()) == 2

    def test_cancel_unit_restores_forward(self):
        net = CCAFlowNetwork([1, 1], [1, 1])
        net.add_edge(0, 0, 1.0)
        net.add_edge(1, 0, 1.0)
        net.add_edge(0, 1, 1.0)
        c0, c1 = net.customer_node(0), net.customer_node(1)
        net.apply_path([S_NODE, 0, c0, T_NODE])
        net.apply_path([S_NODE, 1, c0, 0, c1, T_NODE])
        assert net.edge_flow(0, 0) == 0
        assert 0 in net.forward[0]
        assert 0 not in net.backward[0]


class TestPotentials:
    def test_initial_taus_zero(self):
        net = simple_net()
        assert net.tau_s == 0.0
        assert net.tau_max == 0.0
        assert net.reduced_cost_sq(0) == 0.0

    def test_augment_updates_potentials(self):
        net = simple_net()
        net.add_edge(0, 0, 5.0)
        settled = {S_NODE: 0.0, 0: 0.0, 1: 0.0, net.customer_node(0): 5.0}
        net.augment([S_NODE, 0, net.customer_node(0), T_NODE], 5.0, settled)
        assert net.tau_s == pytest.approx(5.0)
        assert net.q_tau == pytest.approx([5.0, 5.0])
        # Settled exactly at alpha_min: customer potential unchanged.
        assert net.p_tau[0] == 0.0
        assert net.tau_max == pytest.approx(5.0)

    def test_reduced_costs_follow_convention(self):
        net = simple_net()
        net.q_tau[0] = 4.0
        net.p_tau[1] = 1.0
        assert net.reduced_cost_qp(0, 1, 4.0) == pytest.approx(4.0 - 4.0 + 1.0)
        assert net.reduced_cost_pq(1, 0, 2.5) == pytest.approx(-2.5 - 1.0 + 4.0)
        assert net.reduced_cost_pt(0) == 0.0

    def test_truly_negative_reduced_cost_is_a_bug(self):
        net = simple_net()
        net.q_tau[0] = 100.0
        with pytest.raises(AssertionError):
            net.reduced_cost_qp(0, 0, 1.0)

    def test_float_noise_clamped(self):
        net = simple_net()
        net.q_tau[0] = 1.0 + 1e-12
        assert net.reduced_cost_qp(0, 0, 1.0) == 0.0
