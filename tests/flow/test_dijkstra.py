"""Unit tests for the resumable potential-aware Dijkstra."""

import pytest

from repro.flow.dijkstra import INF, DijkstraState
from repro.flow.graph import S_NODE, T_NODE, CCAFlowNetwork


def net_with_edges(caps, weights, edges):
    net = CCAFlowNetwork(caps, weights)
    for i, j, d in edges:
        net.add_edge(i, j, d)
    return net


class TestBasicSearch:
    def test_single_edge_path(self):
        net = net_with_edges([1], [1], [(0, 0, 5.0)])
        state = DijkstraState(net)
        assert state.run()
        assert state.sp_cost == pytest.approx(5.0)
        assert state.path_nodes() == [S_NODE, 0, net.customer_node(0), T_NODE]

    def test_picks_cheapest_provider(self):
        net = net_with_edges([1, 1], [1], [(0, 0, 5.0), (1, 0, 3.0)])
        state = DijkstraState(net)
        assert state.run()
        assert state.sp_cost == pytest.approx(3.0)
        assert state.path_nodes()[1] == 1

    def test_unreachable_sink(self):
        net = CCAFlowNetwork([1], [1])  # no bipartite edges
        state = DijkstraState(net)
        assert not state.run()
        assert state.sp_cost == INF
        with pytest.raises(RuntimeError):
            state.path_nodes()

    def test_full_provider_not_entered_from_source(self):
        net = net_with_edges([1, 1], [1, 1], [(0, 0, 1.0), (0, 1, 1.0), (1, 1, 9.0)])
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])  # q0 full
        state = DijkstraState(net)
        assert state.run()
        # Only q1's edge is usable from s now.
        assert state.path_nodes()[1] == 1

    def test_full_customer_blocks_sink_edge(self):
        net = net_with_edges([2], [1, 1], [(0, 0, 1.0), (0, 1, 4.0)])
        net.apply_path([S_NODE, 0, net.customer_node(0), T_NODE])  # p0 full
        state = DijkstraState(net)
        assert state.run()
        assert state.sp_cost == pytest.approx(4.0)
        assert state.path_nodes()[2] == net.customer_node(1)

    def test_reassignment_through_reverse_edge(self):
        # q0 matched to p0; q1 can only reach p0; path must reassign.
        net = net_with_edges([1, 1], [1, 1], [(0, 0, 1.0), (0, 1, 10.0), (1, 0, 2.0)])
        state = DijkstraState(net)
        state.run()
        net.augment(state.path_nodes(), state.sp_cost, state.settled_alpha_for_update())
        state2 = DijkstraState(net)
        assert state2.run()
        path = state2.path_nodes()
        assert path == [
            S_NODE,
            1,
            net.customer_node(0),
            0,
            net.customer_node(1),
            T_NODE,
        ]


class TestResumption:
    def test_improve_unsettles_and_requeues(self):
        net = net_with_edges([1, 1], [1], [(0, 0, 5.0)])
        state = DijkstraState(net)
        assert state.run()
        assert state.sp_cost == pytest.approx(5.0)
        # Insert a cheaper edge from q1 and repair manually.
        net.add_edge(1, 0, 2.0)
        assert state.improve(net.customer_node(0), 2.0, 1)
        assert state.run()
        assert state.sp_cost == pytest.approx(2.0)
        assert state.path_nodes()[1] == 1

    def test_improve_rejects_worse_offers(self):
        net = net_with_edges([1], [1], [(0, 0, 5.0)])
        state = DijkstraState(net)
        state.run()
        assert not state.improve(net.customer_node(0), 9.0, 0)

    def test_resume_noop_when_nothing_improved(self):
        net = net_with_edges([1], [1, 1], [(0, 0, 1.0), (0, 1, 2.0)])
        state = DijkstraState(net)
        state.run()
        cost = state.sp_cost
        pops = state.pops
        assert state.run()  # immediate: sink entry still on the heap
        assert state.sp_cost == cost
        assert state.pops == pops

    def test_resumed_equals_fresh(self):
        # Build incrementally with resume; compare against a fresh run.
        import numpy as np

        rng = np.random.default_rng(5)
        nq, np_ = 4, 12
        caps = [2] * nq
        net = CCAFlowNetwork(caps, [1] * np_)
        dists = rng.random((nq, np_)) * 100
        state = DijkstraState(net)
        edges = [(i, j) for i in range(nq) for j in range(np_)]
        rng.shuffle(edges)
        for _idx, (i, j) in enumerate(edges):
            net.add_edge(i, j, float(dists[i, j]))
            base = state.alpha_of(i)
            if base < INF:
                state.improve(
                    net.customer_node(j),
                    base + net.reduced_cost_qp(i, j, float(dists[i, j])),
                    i,
                )
            state.run()
            fresh = DijkstraState(net)
            fresh.run()
            assert state.sp_cost == pytest.approx(fresh.sp_cost)


class TestAccounting:
    def test_settled_items_unique(self):
        net = net_with_edges([1, 1], [1, 1], [(0, 0, 1.0), (1, 0, 1.5), (1, 1, 2.0)])
        state = DijkstraState(net)
        state.run()
        nodes = [n for n, _ in state.settled_items()]
        assert len(nodes) == len(set(nodes))

    def test_settled_alpha_for_update_includes_sink(self):
        net = net_with_edges([1], [1], [(0, 0, 5.0)])
        state = DijkstraState(net)
        state.run()
        out = state.settled_alpha_for_update()
        assert out[T_NODE] == pytest.approx(5.0)
        assert out[S_NODE] == 0.0

    def test_settled_alphas_bounded_by_sp_cost(self):
        net = net_with_edges(
            [2, 2],
            [1, 1, 1],
            [(0, 0, 3.0), (0, 1, 8.0), (1, 1, 2.0), (1, 2, 9.0)],
        )
        state = DijkstraState(net)
        state.run()
        for _node, alpha in state.settled_items():
            assert alpha <= state.sp_cost + 1e-9
