"""SSPA baseline tests, including the paper's Figure 2/3 worked example."""

import numpy as np
import pytest

from repro.flow.reference import oracle_cost, oracle_lsa
from repro.flow.sspa import sspa_solve


class TestPaperExample:
    """Figure 2: q1.k=1, q2.k=2; d(q1,p1)=7, d(q1,p2)=3, d(q2,p1)=10,
    d(q2,p2)=4.  SSPA's trace (Figure 3) finds sp1 = {s,q1,p2,t} of cost 3,
    then sp2 = {s,q2,p2,q1,p1,t}, ending with M = {(q1,p1), (q2,p2)}."""

    DIST = {(0, 0): 7.0, (0, 1): 3.0, (1, 0): 10.0, (1, 1): 4.0}

    def solve(self):
        return sspa_solve([1, 2], [1, 1], lambda i, j: self.DIST[(i, j)])

    def test_final_matching(self):
        pairs, _ = self.solve()
        assert sorted((i, j) for i, j, _ in pairs) == [(0, 0), (1, 1)]

    def test_final_cost_is_eleven(self):
        pairs, net = self.solve()
        assert net.matching_cost() == pytest.approx(11.0)

    def test_gamma_iterations(self):
        _, net = self.solve()
        assert net.augmentations == 2
        assert net.matched == 2

    def test_figure3_potentials_after_completion(self):
        # Figure 3(d) shows τ(s) = 8 after both augmentations: sp1 has
        # reduced cost 3; sp2 = {s,q2,p2,q1,p1,t} has real cost
        # 0+4-3+7+0 = 8 and reduced cost 8 − τ_s = 5, so τ_s = 3 + 5 = 8.
        _, net = self.solve()
        assert net.tau_s == pytest.approx(8.0)
        assert all(t >= 0 for t in net.q_tau)
        assert all(t >= 0 for t in net.p_tau)

    def test_first_path_cost_is_three(self):
        from repro.flow.dijkstra import DijkstraState
        from repro.flow.graph import CCAFlowNetwork

        net = CCAFlowNetwork([1, 2], [1, 1])
        for (i, j), d in self.DIST.items():
            net.add_edge(i, j, d)
        state = DijkstraState(net)
        assert state.run()
        assert state.sp_cost == pytest.approx(3.0)  # sp1 = {s, q1, p2, t}
        assert state.path_nodes() == [-1, 0, net.customer_node(1), -2]


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_lsa_oracle(self, seed):
        rng = np.random.default_rng(seed)
        nq = int(rng.integers(2, 6))
        np_ = int(rng.integers(4, 25))
        caps = rng.integers(0, 5, nq).tolist()
        if sum(caps) == 0:
            caps[0] = 2
        pts_q = rng.random((nq, 2)) * 100
        pts_p = rng.random((np_, 2)) * 100

        def d(i, j):
            return float(np.hypot(*(pts_q[i] - pts_p[j])))

        pairs, net = sspa_solve(caps, [1] * np_, d)
        expected = oracle_cost(oracle_lsa(caps, [1] * np_, d))
        assert net.matching_cost() == pytest.approx(expected, abs=1e-6)
        assert len(pairs) == min(sum(caps), np_)

    def test_weighted_customers(self):
        rng = np.random.default_rng(42)
        caps = [3, 4]
        weights = [2, 1, 3]
        pts_q = rng.random((2, 2)) * 50
        pts_p = rng.random((3, 2)) * 50

        def d(i, j):
            return float(np.hypot(*(pts_q[i] - pts_p[j])))

        pairs, net = sspa_solve(caps, weights, d)
        expected = oracle_cost(oracle_lsa(caps, weights, d))
        assert net.matching_cost() == pytest.approx(expected, abs=1e-6)
        assert net.matched == min(sum(caps), sum(weights))

    def test_progress_callback(self):
        seen = []
        sspa_solve(
            [1], [1], lambda i, j: 1.0, progress=lambda a, b: seen.append((a, b))
        )
        assert seen == [(1, 1)]

    def test_zero_gamma(self):
        pairs, net = sspa_solve([0], [1], lambda i, j: 1.0)
        assert pairs == []
        assert net.matched == 0
