"""Tests for the numba flow backend (:mod:`repro.flow.numbakernel`).

Without the optional dependency installed the kernels run interpreted —
the exact same Python source, so the slab-consistency and bit-identity
checks here pin the backend's semantics on every environment.  The CI
``test-numba`` job re-runs this file with the JIT active; the
``numba``-marked test at the bottom only executes there.
"""

import warnings

import numpy as np
import pytest

from repro.flow import numbakernel
from repro.flow.backend import BACKENDS, get_backend
from repro.flow.numbakernel import (
    NUMBA_AVAILABLE,
    NumbaDijkstraState,
    NumbaFlowNetwork,
    interpreted_backend,
    warm_kernels,
)


def _assert_slabs_match(net):
    """The pooled slabs must mirror the parent's compact adjacency and
    counters exactly — same entries, same positions."""
    for i in range(net.nq):
        n = net._fwd_n[i]
        assert int(net._np_fwd_n[i]) == n
        base = int(net._fw_start[i])
        assert net._pool_tgt[base : base + n].tolist() == (net._fwd_tgt[i][:n].tolist())
        assert net._pool_dist[base : base + n].tolist() == (
            net._fwd_dist[i][:n].tolist()
        )
    for j in range(net.np):
        entries = net._bwd[j]
        n = len(entries)
        assert int(net._np_bw_n[j]) == n
        base = int(net._bw_start[j])
        assert net._bpool_src[base : base + n].tolist() == (
            [src for _eid, src, _d in entries]
        )
        assert net._bpool_dist[base : base + n].tolist() == (
            [d for _eid, _src, d in entries]
        )
    assert net._np_q_used.tolist() == list(net.q_used)
    assert net._np_q_cap.tolist() == list(net.q_cap)
    assert net._np_p_used.tolist() == list(net.p_used)
    assert net._np_p_cap.tolist() == list(net.p_cap)


def _drain(net):
    """Run SSP to completion, checking slab consistency per augment."""
    while net.matched < net.gamma:
        state = NumbaDijkstraState(net)
        if not state.run():
            break
        net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        _assert_slabs_match(net)


def test_registry_offers_numba_iff_importable():
    assert ("numba" in BACKENDS) == NUMBA_AVAILABLE
    backend = interpreted_backend()
    assert backend.name == "numba"
    assert backend.network_cls is NumbaFlowNetwork
    assert backend.dijkstra_cls is NumbaDijkstraState


def test_get_backend_numba_falls_back_with_warning():
    if NUMBA_AVAILABLE:
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = get_backend("numba")
        assert backend.network_cls is NumbaFlowNetwork
    else:
        with pytest.warns(RuntimeWarning, match=r"pip install .*\[perf\]") as caught:
            backend = get_backend("numba")
        assert backend is BACKENDS["array"]
        # The warning must say what to install AND what actually runs.
        message = str(caught[0].message)
        assert "falling back" in message and "'array'" in message


def test_slabs_track_random_mutation_sequences():
    """Adds (scalar + bulk), augments, and removals in a random order
    keep the slab mirrors identical to the parent adjacency."""
    rng = np.random.default_rng(7)
    for _trial in range(8):
        nq = int(rng.integers(1, 5))
        np_ = int(rng.integers(1, 12))
        caps = [int(c) for c in rng.integers(0, 4, nq)]
        if sum(caps) == 0:
            caps[0] = 1
        net = NumbaFlowNetwork(caps, [1] * np_)
        for _ in range(int(rng.integers(3, 20))):
            op = rng.integers(0, 3)
            if op == 0:
                net.add_edge(
                    int(rng.integers(0, nq)),
                    int(rng.integers(0, np_)),
                    float(rng.random() * 50),
                )
            elif op == 1:
                i = int(rng.integers(0, nq))
                m = int(rng.integers(1, 6))
                net.add_edges(
                    i,
                    rng.integers(0, np_, m).astype(np.int64),
                    (rng.random(m) * 50).astype(np.float64),
                )
            else:
                cols = int(rng.integers(1, 8))
                net.add_edges(
                    rng.integers(0, nq, cols).astype(np.int64),
                    rng.integers(0, np_, cols).astype(np.int64),
                    (rng.random(cols) * 50).astype(np.float64),
                )
            _assert_slabs_match(net)
        _drain(net)


def test_slabs_track_session_deltas():
    """add/remove customer and capacity changes resync every mirror."""
    rng = np.random.default_rng(11)
    net = NumbaFlowNetwork([2, 2, 1], [1] * 6)
    net.add_edges(
        rng.integers(0, 3, 12).astype(np.int64),
        rng.integers(0, 6, 12).astype(np.int64),
        (rng.random(12) * 30).astype(np.float64),
    )
    _drain(net)
    j = net.add_customer_node(1)
    _assert_slabs_match(net)
    net.add_edge(0, j, 3.5)
    net.add_edge(2, j, 1.5)
    _assert_slabs_match(net)
    _drain(net)
    net.set_provider_capacity(1, 4)
    _assert_slabs_match(net)
    net.remove_customer_node(j)
    _assert_slabs_match(net)
    net.set_provider_capacity(0, net.q_used[0])
    _assert_slabs_match(net)
    _drain(net)


def test_ssp_trace_matches_dict_reference():
    """Deterministic instance: settled orders, pops, costs, and the final
    matching equal the dict backend's, entry for entry."""
    rng = np.random.default_rng(3)
    caps = [2, 1, 3]
    weights = [1] * 9
    triples = [
        (int(i), int(j), float(d))
        for i, j, d in zip(
            rng.integers(0, 3, 25),
            rng.integers(0, 9, 25),
            rng.random(25) * 40,
         strict=False)
    ]

    def trace(backend):
        net = backend.network(caps, weights)
        for i, j, d in triples:
            net.add_edge(i, j, d)
        out = []
        while net.matched < net.gamma:
            state = backend.dijkstra(net)
            if not state.run():
                break
            out.append(
                (
                    list(state._settled_order),
                    state.pops,
                    state.sp_cost,
                    state.path_nodes(),
                )
            )
            net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        return out, sorted(net.matching_flows()), net.matching_cost()

    assert trace(interpreted_backend()) == trace(BACKENDS["dict"])


def test_warm_kernels_runs_and_reports_availability():
    assert warm_kernels() is NUMBA_AVAILABLE


def test_kernels_actually_compiled_when_numba_present():
    pytest.importorskip("numba")
    # Under the perf extra the hot kernels must be numba dispatchers,
    # not the interpreted fallbacks.
    for fn in (
        numbakernel._run_kernel,
        numbakernel._augment_kernel,
        numbakernel._hpush,
        numbakernel._hpop,
    ):
        assert hasattr(fn, "py_func"), fn
    assert "numba" in BACKENDS
