"""Unit tests for I/O accounting."""

import pytest

from repro.storage.iostats import DEFAULT_IO_PENALTY_S, IOStats


class TestCounters:
    def test_defaults(self):
        s = IOStats()
        assert s.reads == s.faults == s.writes == 0
        assert s.io_penalty_s == DEFAULT_IO_PENALTY_S

    def test_hits_and_ratio(self):
        s = IOStats(reads=10, faults=3)
        assert s.hits == 7
        assert s.hit_ratio == pytest.approx(0.7)

    def test_hit_ratio_no_reads(self):
        assert IOStats().hit_ratio == 0.0

    def test_io_time_charges_penalty_per_fault(self):
        s = IOStats(reads=100, faults=25)
        assert s.io_time_s == pytest.approx(25 * 0.010)

    def test_custom_penalty(self):
        s = IOStats(reads=10, faults=10, io_penalty_s=0.002)
        assert s.io_time_s == pytest.approx(0.02)


class TestSnapshots:
    def test_snapshot_is_independent(self):
        s = IOStats(reads=5, faults=2)
        snap = s.snapshot()
        s.reads += 10
        assert snap.reads == 5

    def test_diff(self):
        s = IOStats(reads=5, faults=2, writes=1)
        before = s.snapshot()
        s.reads += 7
        s.faults += 3
        delta = s.diff(before)
        assert delta.reads == 7
        assert delta.faults == 3
        assert delta.writes == 0

    def test_reset(self):
        s = IOStats(reads=5, faults=2, writes=1)
        s.reset()
        assert (s.reads, s.faults, s.writes) == (0, 0, 0)

    def test_repr_contains_key_numbers(self):
        text = repr(IOStats(reads=5, faults=2))
        assert "reads=5" in text and "faults=2" in text
