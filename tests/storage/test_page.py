"""Unit tests for the page manager (simulated disk)."""

import pytest

from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.rtree.node import RTreeNode
from repro.storage.page import (
    DIR_ENTRY_BYTES,
    HEADER_BYTES,
    LEAF_ENTRY_BYTES,
    PageManager,
    PageOverflowError,
)


class TestAllocation:
    def test_sequential_ids(self):
        pm = PageManager()
        assert [pm.allocate().page_id for _ in range(3)] == [0, 1, 2]

    def test_free_and_reuse(self):
        pm = PageManager()
        a = pm.allocate()
        b = pm.allocate()
        pm.free(a.page_id)
        assert a.page_id not in pm
        c = pm.allocate()
        assert c.page_id == a.page_id  # freed id recycled
        assert len(pm) == 2
        assert b.page_id in pm

    def test_double_free_rejected(self):
        pm = PageManager()
        p = pm.allocate()
        pm.free(p.page_id)
        with pytest.raises(KeyError):
            pm.free(p.page_id)

    def test_get_missing_rejected(self):
        with pytest.raises(KeyError):
            PageManager().get(99)


class TestCapacities:
    def test_leaf_capacity_formula(self):
        pm = PageManager(page_size=1024)
        assert pm.leaf_capacity() == (1024 - HEADER_BYTES) // LEAF_ENTRY_BYTES

    def test_dir_capacity_formula(self):
        pm = PageManager(page_size=1024)
        assert pm.dir_capacity() == (1024 - HEADER_BYTES) // DIR_ENTRY_BYTES

    def test_tiny_page_rejected(self):
        with pytest.raises(ValueError):
            PageManager(page_size=32).leaf_capacity()


class TestSerialization:
    def test_leaf_roundtrip(self):
        pm = PageManager()
        page = pm.allocate()
        node = RTreeNode(page.page_id, is_leaf=True)
        node.points = [Point(7, (1.5, 2.5)), Point(9, (-3.0, 4.0))]
        page.payload = node
        raw = pm.serialize(page)
        assert len(raw) == pm.page_size
        pid, is_leaf, count = pm.deserialize_header(raw)
        assert (pid, is_leaf, count) == (page.page_id, True, 2)
        entries = pm.deserialize_leaf_entries(raw)
        assert entries == [(7, 1.5, 2.5), (9, -3.0, 4.0)]

    def test_dir_roundtrip(self):
        pm = PageManager()
        page = pm.allocate()
        node = RTreeNode(page.page_id, is_leaf=False)
        node.add_child(3, MBR((0.0, 1.0), (2.0, 3.0)))
        node.add_child(5, MBR((-1.0, -1.0), (0.0, 0.0)))
        page.payload = node
        raw = pm.serialize(page)
        entries = pm.deserialize_dir_entries(raw)
        assert entries == [(3, 0.0, 1.0, 2.0, 3.0), (5, -1.0, -1.0, 0.0, 0.0)]

    def test_wrong_kind_decode_rejected(self):
        pm = PageManager()
        page = pm.allocate()
        node = RTreeNode(page.page_id, is_leaf=True)
        node.points = [Point(0, (0.0, 0.0))]
        page.payload = node
        raw = pm.serialize(page)
        with pytest.raises(ValueError):
            pm.deserialize_dir_entries(raw)

    def test_overflow_detected(self):
        pm = PageManager(page_size=128)
        page = pm.allocate()
        node = RTreeNode(page.page_id, is_leaf=True)
        node.points = [Point(i, (float(i), 0.0)) for i in range(50)]
        page.payload = node
        with pytest.raises(PageOverflowError):
            pm.serialize(page)

    def test_serialize_clears_dirty(self):
        pm = PageManager()
        page = pm.allocate()
        node = RTreeNode(page.page_id, is_leaf=True)
        node.points = [Point(0, (0.0, 0.0))]
        page.payload = node
        assert page.dirty
        pm.serialize(page)
        assert not page.dirty

    def test_empty_payload_rejected(self):
        pm = PageManager()
        page = pm.allocate()
        with pytest.raises(ValueError):
            pm.serialize(page)
