"""Unit tests for the LRU buffer pool."""

import pytest

from repro.storage.buffer import MIN_BUFFER_PAGES, LRUBufferPool
from repro.storage.page import PageManager


def make_pool(capacity=2, pages=5):
    pm = PageManager()
    ids = [pm.allocate(payload=f"node{i}").page_id for i in range(pages)]
    return pm, ids, LRUBufferPool(pm, capacity=capacity)


class TestFaulting:
    def test_first_access_faults(self):
        _, ids, pool = make_pool()
        pool.access(ids[0])
        assert pool.stats.reads == 1
        assert pool.stats.faults == 1

    def test_repeat_access_hits(self):
        _, ids, pool = make_pool()
        pool.access(ids[0])
        pool.access(ids[0])
        assert pool.stats.reads == 2
        assert pool.stats.faults == 1

    def test_payload_returned(self):
        _, ids, pool = make_pool()
        assert pool.access(ids[3]).payload == "node3"

    def test_capacity_one_thrashes(self):
        _, ids, pool = make_pool(capacity=1)
        pool.access(ids[0])
        pool.access(ids[1])
        pool.access(ids[0])
        assert pool.stats.faults == 3

    def test_invalid_capacity_rejected(self):
        pm = PageManager()
        with pytest.raises(ValueError):
            LRUBufferPool(pm, capacity=0)


class TestLRUOrder:
    def test_lru_victim_is_least_recent(self):
        _, ids, pool = make_pool(capacity=2)
        pool.access(ids[0])
        pool.access(ids[1])
        pool.access(ids[0])  # 1 becomes LRU
        pool.access(ids[2])  # evicts 1
        assert pool.is_resident(ids[0])
        assert not pool.is_resident(ids[1])
        assert pool.is_resident(ids[2])

    def test_eviction_writes_back_dirty_pages(self):
        pm, ids, pool = make_pool(capacity=1)
        pm.get(ids[0]).dirty = True
        pool.access(ids[0])
        pool.access(ids[1])  # evicts dirty page 0
        assert pool.stats.writes == 1

    def test_sequence_of_faults_matches_simulation(self):
        # Classic LRU trace on 3 pages with capacity 2.
        _, ids, pool = make_pool(capacity=2)
        trace = [0, 1, 2, 0, 1, 2]
        faults = 0
        for t in trace:
            before = pool.stats.faults
            pool.access(ids[t])
            faults += pool.stats.faults - before
        assert faults == 6  # cyclic access with cap 2 over 3 pages: all miss


class TestManagement:
    def test_pin_warm_charges_nothing(self):
        _, ids, pool = make_pool()
        pool.pin_warm(ids[0])
        assert pool.stats.reads == 0
        pool.access(ids[0])
        assert pool.stats.faults == 0

    def test_invalidate_forces_refault(self):
        _, ids, pool = make_pool()
        pool.access(ids[0])
        pool.invalidate(ids[0])
        pool.access(ids[0])
        assert pool.stats.faults == 2

    def test_clear(self):
        _, ids, pool = make_pool()
        pool.access(ids[0])
        pool.clear()
        assert len(pool) == 0

    def test_capacity_for_tree_rule(self):
        assert LRUBufferPool.capacity_for_tree(1000, 0.01) == 10
        assert LRUBufferPool.capacity_for_tree(10, 0.01) == MIN_BUFFER_PAGES
