"""Tests for the grouped incremental ANN search (Algorithm 6)."""

import numpy as np
import pytest

from repro.geometry.distance import dist
from repro.geometry.point import Point
from repro.rtree.ann import ANNGroup, GroupedANN, group_providers_by_hilbert
from repro.rtree.tree import RTree


def make_world(n_customers=300, n_providers=12, seed=0):
    rng = np.random.default_rng(seed)
    customers = [Point(i, rng.random(2) * 1000) for i in range(n_customers)]
    providers = [Point(i, rng.random(2) * 1000) for i in range(n_providers)]
    return customers, providers, RTree.from_points(customers)


class TestGrouping:
    def test_groups_cover_all_providers(self):
        _, providers, _ = make_world()
        groups = group_providers_by_hilbert(
            providers, (0, 0), (1000, 1000), group_size=5
        )
        flat = [q.pid for g in groups for q in g]
        assert sorted(flat) == sorted(q.pid for q in providers)
        assert all(len(g) <= 5 for g in groups)

    def test_group_size_one(self):
        _, providers, _ = make_world()
        groups = group_providers_by_hilbert(
            providers, (0, 0), (1000, 1000), group_size=1
        )
        assert len(groups) == len(providers)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            group_providers_by_hilbert([], (0, 0), (1, 1), group_size=0)

    def test_empty_group_rejected(self):
        _, _, tree = make_world()
        with pytest.raises(ValueError):
            ANNGroup(tree, [])


class TestStreamCorrectness:
    @pytest.mark.parametrize("group_size", [1, 4, 12])
    def test_each_provider_sees_sorted_complete_stream(self, group_size):
        customers, providers, tree = make_world(n_customers=120)
        ann = GroupedANN(tree, providers, group_size=group_size)
        for q in providers[:5]:
            seen = []
            while True:
                p = ann.next_nn(q.pid)
                if p is None:
                    break
                seen.append(p)
            dists = [dist(q, p) for p in seen]
            assert dists == sorted(dists)
            assert {p.pid for p in seen} == {c.pid for c in customers}

    def test_interleaved_requests_stay_correct(self):
        customers, providers, tree = make_world(n_customers=150, seed=3)
        ann = GroupedANN(tree, providers, group_size=6)
        brute = {q.pid: sorted(dist(q, c) for c in customers) for q in providers}
        cursors = {q.pid: 0 for q in providers}
        rng = np.random.default_rng(4)
        for _ in range(300):
            q = providers[int(rng.integers(0, len(providers)))]
            p = ann.next_nn(q.pid)
            idx = cursors[q.pid]
            assert p is not None
            assert dist(q, p) == pytest.approx(brute[q.pid][idx])
            cursors[q.pid] += 1

    def test_grouping_reduces_io_versus_singletons(self):
        customers, providers, tree = make_world(n_customers=800, seed=5)
        # Draw the first 20 NNs of every provider with singleton groups.
        tree.cold()
        single = GroupedANN(tree, providers, group_size=1)
        for q in providers:
            for _ in range(20):
                single.next_nn(q.pid)
        singleton_faults = tree.stats.faults
        tree.cold()
        grouped = GroupedANN(tree, providers, group_size=len(providers))
        for q in providers:
            for _ in range(20):
                grouped.next_nn(q.pid)
        grouped_faults = tree.stats.faults
        assert grouped_faults <= singleton_faults
