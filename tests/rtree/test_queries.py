"""Query correctness against brute force."""

import numpy as np
import pytest

from repro.geometry.distance import dist
from repro.geometry.point import Point
from repro.rtree.queries import (
    IncrementalNN,
    annular_range_search,
    knn_search,
    range_search,
)
from repro.rtree.tree import RTree


def make_dataset(n=400, seed=0, world=1000.0):
    rng = np.random.default_rng(seed)
    pts = [Point(i, rng.random(2) * world) for i in range(n)]
    return pts, RTree.from_points(pts)


PTS, TREE = make_dataset()
QUERIES = [Point(1000 + i, xy) for i, xy in enumerate(
    [(500.0, 500.0), (0.0, 0.0), (999.0, 1.0), (250.0, 750.0)]
)]


class TestRange:
    @pytest.mark.parametrize("radius", [0.0, 25.0, 120.0, 2000.0])
    @pytest.mark.parametrize("q", QUERIES, ids=lambda q: f"q{q.pid}")
    def test_matches_brute_force(self, q, radius):
        expected = {p.pid for p in PTS if dist(q, p) <= radius}
        got = {p.pid for p in range_search(TREE, q, radius)}
        assert got == expected

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            range_search(TREE, QUERIES[0], -1.0)

    def test_empty_tree(self):
        assert range_search(RTree(), QUERIES[0], 10.0) == []


class TestAnnular:
    @pytest.mark.parametrize("ring", [(0.0, 50.0), (50.0, 130.0), (130.0, 131.0)])
    @pytest.mark.parametrize("q", QUERIES, ids=lambda q: f"q{q.pid}")
    def test_matches_brute_force(self, q, ring):
        inner, outer = ring
        expected = {p.pid for p in PTS if inner < dist(q, p) <= outer}
        got = {p.pid for p in annular_range_search(TREE, q, inner, outer)}
        assert got == expected

    def test_ring_union_equals_range(self):
        q = QUERIES[0]
        rings = [(0.0, 40.0), (40.0, 80.0), (80.0, 120.0)]
        union = set()
        for inner, outer in rings:
            union |= {p.pid for p in annular_range_search(TREE, q, inner, outer)}
        full = {p.pid for p in range_search(TREE, q, 120.0)}
        # The first ring excludes dist=0 points only if the query point
        # coincides with a data point; include radius-0 matches.
        union |= {p.pid for p in PTS if dist(q, p) == 0.0}
        assert union == full

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            annular_range_search(TREE, QUERIES[0], 10.0, 5.0)


class TestKNN:
    @pytest.mark.parametrize("k", [0, 1, 7, 50, 400, 500])
    def test_matches_brute_force(self, k):
        q = QUERIES[0]
        expected = sorted(PTS, key=lambda p: (dist(q, p), p.pid))[:k]
        got = knn_search(TREE, q, k)
        assert len(got) == min(k, len(PTS))
        # Distances must agree position by position (ids may tie-swap).
        for e, g in zip(expected, got, strict=False):
            assert dist(q, g) == pytest.approx(dist(q, e))

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            knn_search(TREE, QUERIES[0], -1)


class TestIncrementalNN:
    def test_stream_is_sorted_and_complete(self):
        q = QUERIES[2]
        stream = IncrementalNN(TREE, q)
        out = list(stream)
        assert len(out) == len(PTS)
        dists = [dist(q, p) for p in out]
        assert dists == sorted(dists)
        assert {p.pid for p in out} == {p.pid for p in PTS}

    def test_peek_key_lower_bounds_next(self):
        q = QUERIES[0]
        stream = IncrementalNN(TREE, q)
        for _ in range(30):
            key = stream.peek_key()
            p = stream.next()
            assert key is not None
            assert key <= dist(q, p) + 1e-9

    def test_exhaustion_returns_none(self):
        pts, tree = make_dataset(n=5, seed=2)
        stream = IncrementalNN(tree, QUERIES[0])
        for _ in range(5):
            assert stream.next() is not None
        assert stream.next() is None
        assert stream.next() is None

    def test_empty_tree_stream(self):
        stream = IncrementalNN(RTree(), QUERIES[0])
        assert stream.next() is None
