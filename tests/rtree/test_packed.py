"""Unit tests for the packed (columnar) R-tree.

Structure parity with the pointer STR bulk load is the load-bearing
property (identical node ids, fan-outs, MBRs ⇒ identical traversals and
page accounting); the edge cases exercise what the flat-array loader must
survive: duplicate coordinates, fewer points than one leaf holds, and
1-D inputs (which the pointer loader cannot even build).
"""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.pointset import PointSet
from repro.rtree.backend import backend_of_tree, index_info
from repro.rtree.packed import PackedRTree
from repro.rtree.queries import annular_range_search, knn_search, range_search
from repro.rtree.tree import RTree


def random_points(n, seed=0, span=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(i, rng.random(2) * span) for i in range(n)]


def assert_same_structure(pointer: RTree, packed: PackedRTree):
    assert pointer.num_pages == packed.num_pages
    assert pointer.height == packed.height
    assert pointer.size == packed.size
    assert pointer.root_id == packed.root_id
    stack = [] if pointer.root_id is None else [pointer.root_id]
    while stack:
        nid = stack.pop()
        a = pointer.manager.get(nid).payload
        b = packed.node(nid)
        assert a.is_leaf == b.is_leaf
        if a.is_leaf:
            assert [(p.pid, p.coords) for p in a.points] == [
                (p.pid, p.coords) for p in b.points
            ]
            assert a.mbr() == b.mbr()
        else:
            assert a.children_ids == b.children_ids
            assert a.child_mbrs == b.child_mbrs
            stack.extend(a.children_ids)


class TestBulkLoad:
    @pytest.mark.parametrize("n", [1, 2, 41, 42, 43, 500, 3000])
    def test_structure_mirrors_pointer_tree(self, n):
        points = random_points(n, seed=n)
        pointer = RTree.from_points(points)
        packed = PackedRTree.from_points(points)
        packed.check_integrity()
        assert_same_structure(pointer, packed)

    def test_duplicate_coordinates(self):
        points = [Point(i, (5.0, 5.0)) for i in range(200)]
        packed = PackedRTree.from_points(points)
        packed.check_integrity()
        assert sorted(p.pid for p in packed.all_points()) == list(range(200))
        assert_same_structure(RTree.from_points(points), packed)

    def test_fewer_points_than_leaf_fanout(self):
        points = random_points(5, seed=9)
        packed = PackedRTree.from_points(points)
        assert packed.height == 1
        assert packed.num_pages == 1
        assert sorted(p.pid for p in packed.all_points()) == list(range(5))

    def test_one_dimensional_points(self):
        points = [Point(i, (float(i % 37),)) for i in range(300)]
        packed = PackedRTree.from_points(points)
        packed.check_integrity()
        assert sorted(p.pid for p in packed.all_points()) == list(range(300))
        hits = packed.range_search(Point(999, (3.0,)), 1.0)
        expected = {p.pid for p in points if 2.0 <= p.coords[0] <= 4.0}
        assert {p.pid for p in hits} == expected

    def test_empty_tree(self):
        packed = PackedRTree.from_points([])
        assert packed.root_id is None
        assert len(packed) == 0
        assert packed.all_points() == []
        assert packed.root_mbr() is None

    def test_from_point_set_native(self):
        rng = np.random.default_rng(4)
        ps = PointSet(rng.random((100, 2)) * 100)
        packed = PackedRTree.from_points(ps)
        assert len(packed) == 100
        packed.check_integrity()


class TestQueries:
    def setup_method(self):
        self.points = random_points(800, seed=2)
        self.pointer = RTree.from_points(self.points)
        self.packed = PackedRTree.from_points(self.points)
        self.queries = random_points(10, seed=3)

    def test_range_search_matches_pointer_order(self):
        for q in self.queries:
            a = range_search(self.pointer, q, 75.0)
            b = range_search(self.packed, q, 75.0)
            assert [(p.pid, p.coords) for p in a] == [(p.pid, p.coords) for p in b]

    def test_annular_search_matches_pointer_order(self):
        for q in self.queries:
            a = annular_range_search(self.pointer, q, 40.0, 120.0)
            b = annular_range_search(self.packed, q, 40.0, 120.0)
            assert [(p.pid, p.coords) for p in a] == [(p.pid, p.coords) for p in b]

    def test_knn_via_generic_iterator(self):
        # The generic best-first iterator runs on packed node views.
        for q in self.queries[:3]:
            a = knn_search(self.pointer, q, 15)
            b = knn_search(self.packed, q, 15)
            assert [p.pid for p in a] == [p.pid for p in b]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            self.packed.range_search(self.queries[0], -1.0)
        with pytest.raises(ValueError):
            self.packed.annular_range_search(self.queries[0], 5.0, 1.0)


class TestIOAccounting:
    def test_query_faults_match_pointer(self):
        points = random_points(2000, seed=5)
        pointer = RTree.from_points(points)
        packed = PackedRTree.from_points(points)
        pointer.cold()
        packed.cold()
        assert pointer.buffer.capacity == packed.buffer.capacity
        for q in random_points(30, seed=6):
            range_search(pointer, q, 50.0)
            range_search(packed, q, 50.0)
            assert pointer.stats.reads == packed.stats.reads
            assert pointer.stats.faults == packed.stats.faults

    def test_cold_resets_counters_and_buffer(self):
        packed = PackedRTree.from_points(random_points(500, seed=7))
        packed.range_search(Point(0, (1.0, 1.0)), 100.0)
        assert packed.stats.reads > 0
        packed.cold()
        assert packed.stats.reads == 0
        assert len(packed.buffer) == 0

    def test_one_page_per_node(self):
        packed = PackedRTree.from_points(random_points(700, seed=8))
        assert packed.num_pages == len(packed.node_is_leaf)


class TestMutation:
    def test_insert_then_query_rebuilds(self):
        packed = PackedRTree.from_points(random_points(100, seed=10))
        packed.insert(Point(100, (250.0, 250.0)))
        assert len(packed) == 101
        hits = packed.range_search(Point(999, (250.0, 250.0)), 1.0)
        assert any(p.pid == 100 for p in hits)
        packed.check_integrity()

    def test_delete_matches_id_and_coords(self):
        points = random_points(100, seed=11)
        packed = PackedRTree.from_points(points)
        assert packed.delete(points[13])
        assert not packed.delete(points[13])
        assert not packed.delete(Point(14, (-1.0, -1.0)))  # wrong coords
        assert len(packed) == 99
        assert sorted(p.pid for p in packed.all_points()) == sorted(
            p.pid for p in points if p.pid != 13
        )

    def test_delete_to_empty(self):
        p = Point(0, (1.0, 2.0))
        packed = PackedRTree.from_points([p])
        assert packed.delete(p)
        assert packed.root_id is None
        assert packed.all_points() == []

    def test_insert_into_empty(self):
        packed = PackedRTree.from_points([])
        packed.insert(Point(0, (3.0, 4.0)))
        assert [p.pid for p in packed.all_points()] == [0]

    def test_dimension_mismatch_rejected(self):
        packed = PackedRTree.from_points(random_points(10, seed=12))
        with pytest.raises(ValueError):
            packed.insert(Point(10, (1.0,)))


class TestIntrospection:
    def test_backend_detection(self):
        points = random_points(50, seed=13)
        assert backend_of_tree(PackedRTree.from_points(points)).name == "packed"
        assert backend_of_tree(RTree.from_points(points)).name == "pointer"

    def test_index_info_agrees_across_backends(self):
        points = random_points(1500, seed=14)
        a = index_info(RTree.from_points(points))
        b = index_info(PackedRTree.from_points(points))
        for key in (
            "points",
            "height",
            "pages",
            "leaves",
            "dir_nodes",
            "leaf_fill",
            "dir_fill",
        ):
            assert a[key] == b[key], key


class TestPackedSessions:
    def test_matcher_deltas_match_pointer_backend(self):
        from repro.core.session import Matcher
        from repro.datagen.workloads import make_problem

        results = {}
        for name in ("pointer", "packed"):
            problem = make_problem(nq=6, np_=150, k=5, seed=21)
            matcher = Matcher(problem, index_backend=name)
            costs = [matcher.assign().cost]
            new_id = matcher.add_customer((500.0, 500.0))
            costs.append(matcher.assign().cost)
            matcher.remove_customer(new_id)
            matcher.set_provider_capacity(0, 8)
            costs.append(matcher.assign().cost)
            results[name] = costs
        assert results["pointer"] == results["packed"]
