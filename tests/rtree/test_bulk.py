"""Unit tests for STR bulk loading."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.rtree.bulk import str_bulk_load
from repro.rtree.tree import RTree
from repro.storage.page import PageManager


def random_points(n, seed=0, world=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(i, rng.random(2) * world) for i in range(n)]


class TestStructure:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            str_bulk_load(PageManager(), [])

    def test_single_point_is_a_leaf_root(self):
        pm = PageManager()
        root_id, height, pages = str_bulk_load(pm, random_points(1))
        assert height == 1
        assert len(pages) == 1
        assert pm.get(root_id).payload.is_leaf

    def test_all_points_present(self):
        tree = RTree.from_points(random_points(500))
        assert sorted(p.pid for p in tree.all_points()) == list(range(500))

    def test_heights_grow_with_cardinality(self):
        small = RTree.from_points(random_points(30))
        large = RTree.from_points(random_points(5000))
        assert small.height <= large.height
        assert large.height >= 2

    def test_integrity_of_bulk_loaded_tree(self):
        for n in (1, 2, 41, 42, 43, 500, 2000):
            tree = RTree.from_points(random_points(n, seed=n))
            tree.check_integrity()

    def test_leaves_respect_capacity(self):
        pm = PageManager(page_size=256)
        cap = pm.leaf_capacity()
        root_id, _, pages = str_bulk_load(pm, random_points(200))
        for pid in pages:
            node = pm.get(pid).payload
            if node.is_leaf:
                assert 0 < len(node.points) <= cap

    def test_duplicate_coordinates_supported(self):
        pts = [Point(i, (5.0, 5.0)) for i in range(100)]
        tree = RTree.from_points(pts)
        assert len(tree.all_points()) == 100
        tree.check_integrity()


class TestPacking:
    def test_str_produces_near_minimal_leaf_count(self):
        pm = PageManager(page_size=1024)
        cap = pm.leaf_capacity()
        n = cap * 7
        root_id, height, pages = str_bulk_load(pm, random_points(n))
        leaves = [p for p in pages if pm.get(p).payload.is_leaf]
        assert len(leaves) == 7  # perfectly packed

    def test_spatial_locality_of_leaves(self):
        # STR leaves over uniform data tile the space with little overlap:
        # their total area stays close to (and not far above) the world
        # area, unlike a random grouping whose leaf MBRs overlap heavily.
        tree = RTree.from_points(random_points(2000, seed=3))
        total_area = 0.0
        stack = [tree.root_id]
        while stack:
            node = tree.node(stack.pop())
            if node.is_leaf:
                total_area += node.mbr().area
            else:
                stack.extend(node.children_ids)
        assert total_area < 1.3 * (1000.0 * 1000.0)
