"""Unit tests for R-tree maintenance (insert / delete / integrity)."""

import numpy as np

from repro.geometry.point import Point
from repro.rtree.tree import RTree


def random_points(n, seed=0, world=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(i, rng.random(2) * world) for i in range(n)]


class TestInsert:
    def test_insert_into_empty(self):
        tree = RTree()
        tree.insert(Point(0, (1.0, 2.0)))
        assert len(tree) == 1
        assert tree.height == 1
        tree.check_integrity(strict_fill=True)

    def test_insert_many_keeps_integrity(self):
        tree = RTree(page_size=256)  # small fan-out forces deep trees
        for p in random_points(400, seed=1):
            tree.insert(p)
        assert len(tree) == 400
        assert tree.height >= 3
        tree.check_integrity(strict_fill=True)
        assert sorted(p.pid for p in tree.all_points()) == list(range(400))

    def test_incremental_matches_bulk_content(self):
        pts = random_points(300, seed=2)
        incremental = RTree()
        for p in pts:
            incremental.insert(p)
        bulk = RTree.from_points(pts)
        assert sorted(p.pid for p in incremental.all_points()) == sorted(
            p.pid for p in bulk.all_points()
        )

    def test_root_split_grows_height(self):
        tree = RTree(page_size=256)
        cap = tree.leaf_cap
        for p in random_points(cap + 1, seed=3):
            tree.insert(p)
        assert tree.height == 2
        tree.check_integrity(strict_fill=True)


class TestDelete:
    def test_delete_existing(self):
        pts = random_points(100, seed=4)
        tree = RTree.from_points(pts)
        assert tree.delete(pts[42])
        assert len(tree) == 99
        assert 42 not in {p.pid for p in tree.all_points()}
        tree.check_integrity(strict_fill=True)

    def test_delete_missing_returns_false(self):
        pts = random_points(10, seed=5)
        tree = RTree.from_points(pts)
        assert not tree.delete(Point(999, (12345.0, 12345.0)))
        assert len(tree) == 10

    def test_delete_all_empties_tree(self):
        pts = random_points(60, seed=6)
        tree = RTree(page_size=256)
        for p in pts:
            tree.insert(p)
        for p in pts:
            assert tree.delete(p)
        assert len(tree) == 0
        assert tree.root_id is None

    def test_heavy_churn_keeps_integrity(self):
        rng = np.random.default_rng(7)
        pts = random_points(200, seed=7)
        tree = RTree(page_size=256)
        live = []
        for p in pts:
            tree.insert(p)
            live.append(p)
            if len(live) > 50 and rng.random() < 0.4:
                victim = live.pop(int(rng.integers(0, len(live))))
                assert tree.delete(victim)
        tree.check_integrity(strict_fill=True)
        assert sorted(p.pid for p in tree.all_points()) == sorted(p.pid for p in live)


class TestColdAndIO:
    def test_cold_resets_counters_and_buffer(self):
        tree = RTree.from_points(random_points(500, seed=8))
        tree.all_points()
        assert tree.stats.reads > 0
        tree.cold()
        assert tree.stats.reads == 0
        assert len(tree.buffer) == 0

    def test_buffer_sized_at_one_percent(self):
        tree = RTree.from_points(random_points(5000, seed=9))
        expected = max(4, int(tree.num_pages * 0.01))
        assert tree.buffer.capacity == expected

    def test_access_charges_faults(self):
        tree = RTree.from_points(random_points(500, seed=10))
        tree.cold()
        tree.all_points()
        assert tree.stats.faults > 0
        assert tree.stats.faults <= tree.num_pages + tree.stats.reads

    def test_fixed_buffer_capacity_override(self):
        tree = RTree.from_points(random_points(500, seed=11), buffer_capacity=7)
        assert tree.buffer.capacity == 7
