"""Partitioning-phase tests (Figures 6 and 7 scenarios)."""

import numpy as np
import pytest

from repro.core.approx.partition import hilbert_greedy_groups, rtree_customer_partition
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.rtree.tree import RTree


def random_points(n, seed=0, world=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(i, rng.random(2) * world) for i in range(n)]


class TestHilbertGreedy:
    @pytest.mark.parametrize("delta", [5.0, 40.0, 200.0])
    def test_all_group_diagonals_bounded(self, delta):
        pts = random_points(200, seed=1)
        groups = hilbert_greedy_groups(pts, delta, (0, 0), (1000, 1000))
        for g in groups:
            assert MBR.from_points(g).diagonal <= delta + 1e-9

    def test_partition_is_complete_and_disjoint(self):
        pts = random_points(150, seed=2)
        groups = hilbert_greedy_groups(pts, 60.0, (0, 0), (1000, 1000))
        ids = [p.pid for g in groups for p in g]
        assert sorted(ids) == list(range(150))

    def test_larger_delta_fewer_groups(self):
        pts = random_points(300, seed=3)
        small = hilbert_greedy_groups(pts, 20.0, (0, 0), (1000, 1000))
        large = hilbert_greedy_groups(pts, 300.0, (0, 0), (1000, 1000))
        assert len(large) < len(small)

    def test_zero_delta_singletons(self):
        pts = random_points(30, seed=4)
        groups = hilbert_greedy_groups(pts, 0.0, (0, 0), (1000, 1000))
        assert len(groups) == 30

    def test_colocated_points_group_together_at_zero_delta(self):
        pts = [Point(i, (5.0, 5.0)) for i in range(4)]
        groups = hilbert_greedy_groups(pts, 0.0, (0, 0), (10, 10))
        assert len(groups) == 1

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            hilbert_greedy_groups([], -1.0, (0, 0), (1, 1))


class TestRTreePartition:
    @pytest.mark.parametrize("delta", [15.0, 60.0, 400.0])
    def test_groups_cover_all_points_with_bounded_mbr(self, delta):
        pts = random_points(500, seed=5)
        tree = RTree.from_points(pts)
        groups = rtree_customer_partition(tree, delta)
        ids = sorted(p.pid for g in groups for p in g.members)
        assert ids == list(range(500))
        for g in groups:
            assert g.mbr.diagonal <= delta + 1e-9
            assert g.weight == len(g.members)
            # Members must lie inside the partition rectangle.
            for p in g.members:
                assert g.mbr.contains_point(p)

    def test_representative_within_half_delta_of_members(self):
        # The Theorem 4 geometric fact.
        pts = random_points(400, seed=6)
        tree = RTree.from_points(pts)
        delta = 50.0
        for g in rtree_customer_partition(tree, delta):
            rx, ry = g.representative_xy
            for p in g.members:
                d = ((p.x - rx) ** 2 + (p.y - ry) ** 2) ** 0.5
                assert d <= delta / 2 + 1e-9

    def test_small_delta_splits_leaves(self):
        # δ far below leaf MBR size forces the conceptual halving path.
        pts = random_points(300, seed=7)
        tree = RTree.from_points(pts)
        groups = rtree_customer_partition(tree, 8.0)
        assert len(groups) > tree.num_pages

    def test_huge_delta_single_group(self):
        pts = random_points(100, seed=8)
        tree = RTree.from_points(pts)
        groups = rtree_customer_partition(tree, 10_000.0)
        assert len(groups) == 1
        assert groups[0].weight == 100

    def test_empty_tree(self):
        assert rtree_customer_partition(RTree(), 10.0) == []

    def test_invalid_delta_rejected(self):
        with pytest.raises(ValueError):
            rtree_customer_partition(RTree(), 0.0)

    def test_partition_incurs_io(self):
        pts = random_points(800, seed=9)
        tree = RTree.from_points(pts)
        tree.cold()
        rtree_customer_partition(tree, 30.0)
        assert tree.stats.faults > 0
