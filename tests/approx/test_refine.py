"""Refinement-phase heuristics tests."""

import numpy as np
import pytest

from repro.core.approx.refine import exclusive_nn_refine, nn_refine
from repro.geometry.distance import dist
from repro.geometry.point import Point


def setup_case(nq=3, np_=10, seed=0, quota=3):
    rng = np.random.default_rng(seed)
    providers = [(Point(100 + i, rng.random(2) * 100), quota) for i in range(nq)]
    customers = [Point(j, rng.random(2) * 100) for j in range(np_)]
    return providers, customers


@pytest.mark.parametrize("refine", [nn_refine, exclusive_nn_refine])
class TestCommonContract:
    def test_respects_quotas(self, refine):
        providers, customers = setup_case(quota=2)
        pairs = refine(providers, customers)
        from collections import Counter

        loads = Counter(q for q, _, _ in pairs)
        assert all(v <= 2 for v in loads.values())

    def test_customers_assigned_once(self, refine):
        providers, customers = setup_case()
        pairs = refine(providers, customers)
        assigned = [p for _, p, _ in pairs]
        assert len(assigned) == len(set(assigned))

    def test_size_is_min_of_quota_and_customers(self, refine):
        providers, customers = setup_case(nq=2, np_=10, quota=3)
        assert len(refine(providers, customers)) == 6  # quota-bound
        providers, customers = setup_case(nq=3, np_=5, quota=9)
        assert len(refine(providers, customers)) == 5  # customer-bound

    def test_distances_reported_correctly(self, refine):
        providers, customers = setup_case()
        by_id = {p.pid: p for p in customers}
        q_by_id = {q.pid: q for q, _ in providers}
        for q, p, d in refine(providers, customers):
            assert d == pytest.approx(dist(q_by_id[q], by_id[p]))

    def test_zero_quota_provider_unused(self, refine):
        providers, customers = setup_case(nq=2, quota=0)
        assert refine(providers, customers) == []

    def test_empty_customers(self, refine):
        providers, _ = setup_case()
        assert refine(providers, []) == []


class TestDifferences:
    def test_exclusive_first_pair_is_globally_closest(self):
        providers, customers = setup_case(seed=3)
        pairs = exclusive_nn_refine(providers, customers)
        best = min(dist(q, p) for q, _ in providers for p in customers)
        assert min(d for _, _, d in pairs) == pytest.approx(best)

    def test_nn_round_robin_spreads_assignments(self):
        # Two providers, four customers all nearer to provider A: round-
        # robin still gives B its turns (within quota).
        a = (Point(100, (0.0, 0.0)), 2)
        b = (Point(101, (100.0, 0.0)), 2)
        customers = [
            Point(0, (1.0, 0.0)),
            Point(1, (2.0, 0.0)),
            Point(2, (3.0, 0.0)),
            Point(3, (4.0, 0.0)),
        ]
        pairs = nn_refine([a, b], customers)
        loads = {100: 0, 101: 0}
        for q, _, _ in pairs:
            loads[q] += 1
        assert loads == {100: 2, 101: 2}
