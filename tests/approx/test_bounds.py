"""Unit tests for the error-bound helpers (Theorems 3-4)."""

import pytest

from repro.core.approx.bounds import (
    ca_error_bound,
    delta_for_target_error,
    quality_ratio,
    sa_error_bound,
)


class TestBounds:
    def test_formulas(self):
        assert sa_error_bound(10, 4.0) == 80.0
        assert ca_error_bound(10, 4.0) == 40.0

    def test_zero_gamma(self):
        assert sa_error_bound(0, 100.0) == 0.0
        assert ca_error_bound(0, 100.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sa_error_bound(-1, 1.0)
        with pytest.raises(ValueError):
            ca_error_bound(1, -1.0)


class TestQualityRatio:
    def test_normal_case(self):
        assert quality_ratio(110.0, 100.0) == pytest.approx(1.1)

    def test_perfect(self):
        assert quality_ratio(100.0, 100.0) == 1.0

    def test_zero_optimal(self):
        assert quality_ratio(0.0, 0.0) == 1.0
        assert quality_ratio(1.0, 0.0) == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            quality_ratio(-1.0, 1.0)


class TestDeltaPlanner:
    def test_inversion_roundtrip(self):
        gamma = 50
        target = 123.0
        d_ca = delta_for_target_error(gamma, target, "ca")
        assert ca_error_bound(gamma, d_ca) == pytest.approx(target)
        d_sa = delta_for_target_error(gamma, target, "sa")
        assert sa_error_bound(gamma, d_sa) == pytest.approx(target)

    def test_zero_gamma_unbounded(self):
        assert delta_for_target_error(0, 10.0) == float("inf")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            delta_for_target_error(1, 1.0, "xx")

    def test_negative_target(self):
        with pytest.raises(ValueError):
            delta_for_target_error(1, -1.0)
