"""SA / CA end-to-end tests with the Theorem 3/4 guarantees."""

import numpy as np
import pytest

from repro.core.approx.bounds import ca_error_bound, sa_error_bound
from repro.core.approx.ca import CAApproxSolver
from repro.core.approx.sa import SAApproxSolver
from repro.core.solve import solve
from tests.conftest import random_problem


def optimal_cost(prob):
    return solve(prob, "ida").cost


class TestSA:
    @pytest.mark.parametrize("refinement", ["nn", "exclusive"])
    @pytest.mark.parametrize("delta", [10.0, 50.0, 150.0])
    def test_valid_and_within_bound(self, refinement, delta):
        rng = np.random.default_rng(17)
        prob = random_problem(rng, nq=6, np_=60, cap_hi=4, world=500.0)
        m = SAApproxSolver(prob, delta=delta, refinement=refinement).solve()
        m.validate(prob)
        err = m.cost - optimal_cost(prob)
        assert err <= sa_error_bound(prob.gamma, delta) + 1e-6

    def test_tiny_delta_is_nearly_exact(self):
        rng = np.random.default_rng(18)
        prob = random_problem(rng, nq=5, np_=50, cap_hi=3, world=500.0)
        m = SAApproxSolver(prob, delta=1e-9).solve()
        # Every provider is its own group: result must be optimal.
        assert m.cost == pytest.approx(optimal_cost(prob), abs=1e-5)

    def test_groups_reported_in_stats(self):
        rng = np.random.default_rng(19)
        prob = random_problem(rng, nq=8, np_=40, cap_hi=2, world=200.0)
        solver = SAApproxSolver(prob, delta=100.0)
        solver.solve()
        assert 1 <= solver.stats.extra["num_groups"] <= 8

    def test_invalid_refinement_rejected(self, small_problem):
        with pytest.raises(ValueError):
            SAApproxSolver(small_problem, refinement="best")


class TestCA:
    @pytest.mark.parametrize("refinement", ["nn", "exclusive"])
    @pytest.mark.parametrize("delta", [5.0, 25.0, 100.0])
    def test_valid_and_within_bound(self, refinement, delta):
        rng = np.random.default_rng(20)
        prob = random_problem(rng, nq=5, np_=80, cap_hi=5, world=500.0)
        m = CAApproxSolver(prob, delta=delta, refinement=refinement).solve()
        m.validate(prob)
        err = m.cost - optimal_cost(prob)
        assert err <= ca_error_bound(prob.gamma, delta) + 1e-6

    def test_ca_bound_tighter_than_sa(self):
        assert ca_error_bound(10, 5.0) == pytest.approx(sa_error_bound(10, 5.0) / 2)

    def test_concise_stats_captured(self):
        rng = np.random.default_rng(21)
        prob = random_problem(rng, nq=4, np_=60, cap_hi=3, world=400.0)
        solver = CAApproxSolver(prob, delta=30.0)
        solver.solve()
        assert solver.stats.extra["num_groups"] >= 1
        assert "concise" in solver.stats.extra

    def test_partial_coverage_when_capacity_short(self):
        # Σk < |P|: some customers stay unassigned, matching has size γ.
        rng = np.random.default_rng(22)
        prob = random_problem(rng, nq=2, np_=50, cap_hi=3, world=300.0)
        m = CAApproxSolver(prob, delta=20.0).solve()
        m.validate(prob)  # validates |M| == gamma
        assert m.size == prob.gamma < 50


class TestQualityTrends:
    def test_quality_improves_with_smaller_delta(self):
        # Statistical trend on one workload — smaller δ must not be worse
        # (allowing small noise).
        rng = np.random.default_rng(23)
        prob = random_problem(rng, nq=8, np_=120, cap_hi=4, world=800.0)
        opt = optimal_cost(prob)
        coarse = CAApproxSolver(prob, delta=200.0).solve().cost
        fine = CAApproxSolver(prob, delta=10.0).solve().cost
        assert fine <= coarse * 1.05
        assert fine >= opt - 1e-9

    def test_sa_and_ca_costs_at_least_optimal(self):
        rng = np.random.default_rng(24)
        prob = random_problem(rng, nq=5, np_=70, cap_hi=4, world=600.0)
        opt = optimal_cost(prob)
        for method in ("san", "sae", "can", "cae"):
            assert solve(prob, method).cost >= opt - 1e-9
