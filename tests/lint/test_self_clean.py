"""The tree gates on itself: ``src/repro`` must produce zero
undisclosed diagnostics, in lenient *and* strict mode, and the CLI
wiring must exit with the codes CI keys on."""

from pathlib import Path

from repro.cli import main
from repro.lint import lint_paths

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean():
    diags = lint_paths([str(REPO / "src")])
    assert diags == [], "\n".join(d.render() for d in diags)


def test_src_tree_is_clean_under_strict():
    # Strict additionally proves every suppression in the tree is
    # load-bearing: none of them silences a finding that no longer fires.
    diags = lint_paths([str(REPO / "src")], strict=True)
    assert diags == [], "\n".join(d.render() for d in diags)


def test_tests_and_benchmarks_pass_the_global_rules():
    diags = lint_paths([str(REPO / "tests"), str(REPO / "benchmarks")], strict=True)
    assert diags == [], "\n".join(d.render() for d in diags)


def test_cli_exits_zero_on_clean_tree(capsys):
    assert main(["lint", str(REPO / "src")]) == 0
    assert capsys.readouterr().out == ""


def test_cli_exits_one_and_reports_on_dirty_tree(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "rtree" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def d(ax, bx):\n    return (ax - bx) ** 2\n")
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out
    assert f"{bad}:2:" in out  # precise line anchoring survives the CLI
    assert "1 finding(s) in 1 file(s)" in out


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 9):
        assert f"RPR00{i}" in out
