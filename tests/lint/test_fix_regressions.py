"""Pinned regressions for the true positives repro-lint found on its
own tree (each was fixed, not suppressed — these keep them fixed)."""

import math
from concurrent.futures import Future
from dataclasses import FrozenInstanceError, replace

import pytest

from repro.core.shard import ShardPlan, ShardSpec, ShardTask
from repro.core.supervisor import _drain_order
from repro.geometry.mbr import MBR


def _task(index: int, attempt: int = 0) -> ShardTask:
    return ShardTask(
        index=index,
        method="ida",
        backend="dict",
        index_backend="pointer",
        use_pua=False,
        ann_group_size=8,
        use_fast_path=False,
        theta=None,
        page_size=4096,
        buffer_fraction=0.1,
        need_net=False,
        attempt=attempt,
    )


class TestMBRDiagonalExplicitProduct:
    def test_diagonal_is_bit_identical_to_explicit_product(self):
        # RPR001 regression: `(h - l) ** 2` routed through libm pow and
        # could be 1 ulp off the explicit product, flipping δ-threshold
        # ties between index backends.  Pin exact float equality.
        lo, hi = (0.1, 0.2, 0.3), (10.7, 20.11, 30.13)
        box = MBR(lo, hi)
        acc = 0.0
        for low, high in zip(lo, hi, strict=True):
            d = high - low
            acc += d * d
        assert box.diagonal == math.sqrt(acc)

    def test_degenerate_box_has_zero_diagonal(self):
        assert MBR((3.0, 4.0), (3.0, 4.0)).diagonal == 0.0


class TestFrozenPayloads:
    def test_shard_task_is_immutable(self):
        task = _task(0)
        with pytest.raises(FrozenInstanceError):
            task.attempt = 5

    def test_retry_restamps_via_replace(self):
        task = _task(3)
        retry = replace(task, attempt=2)
        assert (retry.index, retry.attempt) == (3, 2)
        assert task.attempt == 0  # original untouched

    def test_shard_plan_is_immutable_but_post_init_still_fills_map(self):
        plan = ShardPlan(
            shards=[
                ShardSpec(index=0, provider_ids=(1, 2), capacity=4),
                ShardSpec(index=1, provider_ids=(3,), capacity=2),
            ],
            groups=[[1, 2], [3]],
            group_to_shard=[0, 1],
            delta=1.0,
        )
        assert plan.shard_of_provider == {1: 0, 2: 0, 3: 1}
        with pytest.raises(FrozenInstanceError):
            plan.delta = 2.0


class TestSupervisorDrainOrder:
    def test_completed_futures_drain_in_task_position_order(self):
        # RPR003 regression: `wait()` returns a *set* of futures, whose
        # iteration order follows heap addresses; draining it directly
        # made ledger event order differ run to run.
        futures = [Future() for _ in range(8)]
        in_flight = {f: (pos, 0, None) for pos, f in enumerate(futures)}
        finished = {futures[6], futures[1], futures[4]}
        assert [in_flight[f][0] for f in _drain_order(finished, in_flight)] == [
            1,
            4,
            6,
        ]

    def test_drain_order_ignores_attempt_and_deadline(self):
        a, b = Future(), Future()
        in_flight = {a: (5, 9, 0.0), b: (2, 0, 99.0)}
        assert _drain_order({a, b}, in_flight) == [b, a]
