"""Suppression machinery: reasons are mandatory, coverage is precise,
and the escape hatch cannot hide its own misuse."""

import textwrap

from repro.lint import lint_source

PATH = "src/repro/rtree/dist.py"


def run(src: str, *, strict: bool = False):
    return lint_source(textwrap.dedent(src), PATH, strict=strict)


BUG_LINE = "d = (ax - bx) ** 2\n"


def test_trailing_suppression_with_reason_silences():
    src = "d = (ax - bx) ** 2  # repro-lint: disable=RPR001 -- fixture\n"
    assert run(src) == []


def test_standalone_suppression_covers_next_code_line():
    src = """\
        # repro-lint: disable=RPR001 -- reproduces the seed layout,
        # which predates the explicit-product rule
        d = (ax - bx) ** 2
    """
    assert run(src) == []


def test_suppression_without_reason_is_itself_a_finding():
    src = "d = (ax - bx) ** 2  # repro-lint: disable=RPR001\n"
    diags = run(src)
    # The original finding survives AND the naked pragma is flagged.
    assert sorted(d.rule for d in diags) == ["RPR000", "RPR001"]
    reasonless = next(d for d in diags if d.rule == "RPR000")
    assert "no reason" in reasonless.message


def test_suppression_does_not_cover_other_rules_or_lines():
    src = """\
        # repro-lint: disable=RPR004 -- wrong rule on purpose
        d = (ax - bx) ** 2
        e = (ay - by) ** 2  # line not covered by anything
    """
    assert [d.rule for d in run(src)] == ["RPR001", "RPR001"]


def test_file_level_suppression_covers_all_occurrences():
    src = """\
        # repro-lint: disable-file=RPR001 -- generated lookup table,
        # the exponents are integer powers evaluated once at import
        a = x ** 2
        b = y ** 2
    """
    assert run(src) == []


def test_strict_flags_unused_suppression():
    src = "d = ax * ax  # repro-lint: disable=RPR001 -- stale\n"
    assert run(src) == []  # lenient mode: silent
    diags = run(src, strict=True)
    assert [d.rule for d in diags] == ["RPR000"]
    assert "unused" in diags[0].message


def test_unknown_code_is_rejected():
    src = "d = (ax - bx) ** 2  # repro-lint: disable=SPAM -- nope\n"
    assert sorted(d.rule for d in run(src)) == ["RPR000", "RPR001"]


def test_rpr000_cannot_be_suppressed():
    src = """\
        # repro-lint: disable-file=RPR000 -- trying to gag the referee
        d = (ax - bx) ** 2  # repro-lint: disable=RPR001
    """
    diags = run(src, strict=True)
    # The reasonless pragma is still reported (and the RPR001 it failed
    # to suppress), plus the gag attempt shows up as unused.
    assert sorted(d.rule for d in diags) == ["RPR000", "RPR000", "RPR001"]


def test_pragma_examples_inside_strings_are_ignored():
    src = '''\
        DOC = """
        # repro-lint: disable=RPR001 -- this is documentation, not a pragma
        """
        HELP = "# repro-lint: disable=RPR9"
    '''
    assert run(src, strict=True) == []


def test_malformed_pragma_is_flagged():
    src = "d = ax * ax  # repro-lint: disable RPR001 -- missing equals\n"
    diags = run(src)
    assert [d.rule for d in diags] == ["RPR000"]
    assert "malformed" in diags[0].message


def test_syntax_error_reports_instead_of_crashing():
    diags = lint_source("def broken(:\n", PATH)
    assert [d.rule for d in diags] == ["RPR000"]
    assert "does not parse" in diags[0].message
