"""Per-rule fixture corpus: each RPR rule fires on its historical bug
pattern (positive) and stays quiet on the sanctioned idiom (negative).

Fixtures are inline source snippets, not files on disk, so the nightly
strict sweep over ``tests/`` never trips over its own corpus.  The
``path=`` argument drives rule scoping exactly as it does for real
files.
"""

import textwrap

from repro.lint import lint_source


def run(src: str, path: str, *, strict: bool = False):
    return lint_source(textwrap.dedent(src), path, strict=strict)


def codes(diags):
    return [d.rule for d in diags]


class TestRPR001Pow:
    BUG = """\
        import math

        def sq_dist(ax, ay, bx, by):
            return (ax - bx) ** 2 + (ay - by) ** 2

        def norm(x):
            return math.pow(x, 2)
    """

    def test_fires_on_pow_in_distance_code(self):
        diags = run(self.BUG, "src/repro/rtree/dist.py")
        assert codes(diags) == ["RPR001", "RPR001", "RPR001"]
        assert [d.line for d in diags] == [4, 4, 7]

    def test_quiet_on_explicit_product(self):
        ok = """\
            def sq_dist(ax, ay, bx, by):
                dx, dy = ax - bx, ay - by
                return dx * dx + dy * dy
        """
        assert run(ok, "src/repro/rtree/dist.py") == []

    def test_quiet_on_variable_exponent_and_out_of_scope(self):
        # 2 ** order is the Hilbert curve's genuine arithmetic: the
        # exponent is not a literal 2/0.5, and hilbert/ is out of scope.
        assert run("side = 2 ** order\n", "src/repro/rtree/grid.py") == []
        assert run("x = y ** 2\n", "src/repro/hilbert/curve.py") == []
        assert run("x = y ** 2\n", "src/repro/serve/engine.py") == []


class TestRPR002Randomness:
    BUG = """\
        import random

        import numpy as np

        def jitter(xs):
            random.shuffle(xs)
            rng = np.random.default_rng()
            return np.random.rand(3), rng
    """

    def test_fires_on_ambient_and_unseeded_rng(self):
        diags = run(self.BUG, "src/repro/core/noise.py")
        assert codes(diags) == ["RPR002", "RPR002", "RPR002"]
        assert [d.line for d in diags] == [6, 7, 8]

    def test_quiet_on_seeded_generator(self):
        ok = """\
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)
                return rng.random(3)
        """
        assert run(ok, "src/repro/core/noise.py") == []

    def test_datagen_is_exempt(self):
        assert run(self.BUG, "src/repro/datagen/noise.py") == []

    def test_from_import_alias_is_resolved(self):
        src = """\
            from numpy.random import default_rng as mk

            def f():
                return mk()
        """
        assert codes(run(src, "src/repro/flow/x.py")) == ["RPR002"]


class TestRPR003SetOrder:
    BUG = """\
        def drain(done):
            finished = set()
            finished |= done
            for item in finished:
                print(item)
            squares = [x for x in {1, 2, 3}]
            return list(finished), squares
    """

    def test_fires_on_set_iteration(self):
        diags = run(self.BUG, "src/repro/core/loop.py")
        assert codes(diags) == ["RPR003", "RPR003", "RPR003"]
        assert [d.line for d in diags] == [4, 6, 7]

    def test_quiet_on_sorted_and_membership(self):
        ok = """\
            def drain(done):
                finished = set(done)
                if 3 in finished:
                    return []
                return [x for x in sorted(finished)]
        """
        assert run(ok, "src/repro/core/loop.py") == []

    def test_quiet_outside_ordered_subpackages(self):
        assert run(self.BUG, "src/repro/rtree/loop.py") == []

    def test_fires_on_dict_fromkeys_of_set(self):
        src = """\
            def index(ids):
                pending = frozenset(ids)
                return dict.fromkeys(pending)
        """
        assert codes(run(src, "src/repro/serve/x.py")) == ["RPR003"]


class TestRPR004Env:
    BUG = """\
        import os

        def knobs():
            a = os.environ.get("REPRO_X")
            b = os.getenv("REPRO_Y")
            return a, b, "REPRO_Z" in os.environ
    """

    def test_fires_everywhere_incl_outside_package(self):
        diags = run(self.BUG, "src/repro/core/config.py")
        assert codes(diags) == ["RPR004", "RPR004", "RPR004"]
        assert [d.line for d in diags] == [4, 5, 6]
        assert codes(run(self.BUG, "tests/core/test_x.py")) == ["RPR004"] * 3

    def test_config_seam_is_allowlisted(self):
        assert run(self.BUG, "src/repro/core/faults.py") == []

    def test_quiet_without_environ(self):
        ok = """\
            def knobs(env_alias=None):
                return env_alias
        """
        assert run(ok, "src/repro/core/config.py") == []


class TestRPR005Executor:
    BUG = """\
        from dataclasses import dataclass

        @dataclass
        class RepackTask:
            x: int

        class Driver:
            def go(self, pool, payload):
                def helper(p):
                    return p
                pool.submit(lambda: payload)
                pool.submit(self.work, payload)
                pool.submit(helper, payload)
    """

    def test_fires_on_unpicklable_submissions_and_mutable_payload(self):
        diags = run(self.BUG, "src/repro/core/driver.py")
        assert codes(diags) == ["RPR005"] * 4
        assert [d.line for d in diags] == [4, 11, 12, 13]

    def test_quiet_on_module_function_and_frozen_payload(self):
        ok = """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class RepackTask:
                x: int

            def solve_one(task):
                return task.x

            def fan_out(pool, tasks):
                return [pool.submit(solve_one, t) for t in tasks]
        """
        assert run(ok, "src/repro/core/driver.py") == []

    def test_scoped_to_core(self):
        # serve/ submits bound methods into a *thread* pool on purpose.
        assert run(self.BUG, "src/repro/serve/driver.py") == []


class TestRPR006WallClock:
    BUG = """\
        import time

        def solve_loop(budget):
            start = time.monotonic()
            while time.monotonic() - start < budget:
                time.sleep(0.01)
            return time.perf_counter()
    """

    def test_fires_on_wall_clock_in_solver(self):
        diags = run(self.BUG, "src/repro/flow/loop.py")
        assert codes(diags) == ["RPR006"] * 3
        assert [d.line for d in diags] == [4, 5, 6]

    def test_perf_counter_is_fine(self):
        ok = """\
            import time

            def timed(fn):
                t0 = time.perf_counter()
                out = fn()
                return out, time.perf_counter() - t0
        """
        assert run(ok, "src/repro/flow/loop.py") == []

    def test_serving_layer_may_use_clocks(self):
        assert run(self.BUG, "src/repro/serve/loop.py") == []


class TestRPR007SharedMemory:
    BUG = """\
        from multiprocessing import shared_memory

        def make(n):
            return shared_memory.SharedMemory(create=True, size=n)
    """

    def test_fires_globally(self):
        assert codes(run(self.BUG, "src/repro/core/transport.py")) == ["RPR007"]
        assert codes(run(self.BUG, "src/repro/serve/engine.py")) == ["RPR007"]
        assert codes(run(self.BUG, "tests/core/test_x.py")) == ["RPR007"]

    def test_direct_class_import_is_resolved(self):
        src = """\
            from multiprocessing.shared_memory import SharedMemory

            def make(n):
                return SharedMemory(create=True, size=n)
        """
        assert codes(run(src, "benchmarks/bench_x.py")) == ["RPR007"]

    def test_guarded_constructor_module_is_exempt(self):
        assert run(self.BUG, "src/repro/core/shm.py") == []


class TestRPR008BroadExcept:
    BUG = """\
        def attempt(task):
            try:
                return task()
            except Exception:
                return None

        def attempt_bare(task):
            try:
                return task()
            except:
                return None
    """

    def test_fires_on_swallowing_handlers(self):
        diags = run(self.BUG, "src/repro/core/run.py")
        assert codes(diags) == ["RPR008", "RPR008"]
        assert [d.line for d in diags] == [4, 10]

    def test_reraise_escapes(self):
        ok = """\
            def attempt(task, log):
                try:
                    return task()
                except Exception:
                    log.flush()
                    raise
        """
        assert run(ok, "src/repro/core/run.py") == []

    def test_narrow_handler_is_fine_and_flow_is_out_of_scope(self):
        ok = """\
            def attempt(task):
                try:
                    return task()
                except ValueError:
                    return None
        """
        assert run(ok, "src/repro/core/run.py") == []
        assert run(self.BUG, "src/repro/flow/run.py") == []


def test_rule_catalogue_is_complete():
    from repro.lint import all_rules

    rules = all_rules()
    assert [r.id for r in rules] == [f"RPR00{i}" for i in range(1, 9)]
    for rule in rules:
        assert rule.title and rule.rationale and rule.node_types
