"""Figure 10: performance vs |Q| (exact methods).

Paper: k=80, |P|=100K, |Q| in {0.25K..5K}; cost grows with |Q| and
saturates once k·|Q| > |P|.
"""

import pytest

from benchmarks.helpers import EXACT_TRIO, bench_problem, solve_once

NQ_SWEEP = (250, 500, 1000, 2500, 5000)


@pytest.mark.benchmark(group="fig10-vs-nq")
@pytest.mark.parametrize("nq", NQ_SWEEP)
@pytest.mark.parametrize("method", EXACT_TRIO)
def bench_fig10(benchmark, method, nq):
    solve_once(benchmark, bench_problem(nq_paper=nq), method)
