"""Figure 11: performance vs |P| (exact methods).

Paper: k=80, |Q|=1K, |P| in {25K..200K}; the explored subgraph *shrinks*
as P densifies (each provider's NNs get closer).
"""

import pytest

from benchmarks.helpers import EXACT_TRIO, bench_problem, solve_once

NP_SWEEP = (25_000, 50_000, 100_000, 150_000, 200_000)


@pytest.mark.benchmark(group="fig11-vs-np")
@pytest.mark.parametrize("np_paper", NP_SWEEP)
@pytest.mark.parametrize("method", EXACT_TRIO)
def bench_fig11(benchmark, method, np_paper):
    solve_once(benchmark, bench_problem(np_paper=np_paper), method)
